//! Cross-crate integration tests: the complete CALLOC pipeline from
//! simulated survey through curriculum training to attacked evaluation.

use calloc::{CallocConfig, CallocTrainer, Curriculum, Localizer};
use calloc_attack::{craft, AttackConfig, AttackKind};
use calloc_sim::{Building, BuildingId, BuildingSpec, CollectionConfig, Scenario};
use calloc_tensor::stats;

fn small_building() -> Building {
    let spec = BuildingSpec {
        path_length_m: 18,
        num_aps: 28,
        ..BuildingId::B1.spec()
    };
    Building::generate(spec, 2)
}

fn trained_calloc(scenario: &Scenario) -> calloc::CallocModel {
    CallocTrainer::new(CallocConfig {
        embedding_dim: 64,
        attention_dim: 32,
        epochs_per_lesson: 10,
        ..CallocConfig::default()
    })
    .with_curriculum(Curriculum::linear(6, 0.025))
    .fit(&scenario.train)
    .model
}

#[test]
fn full_pipeline_localizes_accurately() {
    let building = small_building();
    let scenario = Scenario::generate(&building, &CollectionConfig::paper(), 1);
    let model = trained_calloc(&scenario);
    // Every device's clean mean error should beat a trivial predictor by a
    // wide margin (random guessing on this path is ~7 m).
    for (device, test) in &scenario.test_per_device {
        let errs = test.errors_meters(&model.predict_classes(&test.x));
        let mean = stats::mean(&errs);
        assert!(
            mean < 5.0,
            "{}: clean mean error {mean:.2} m",
            device.acronym
        );
    }
}

#[test]
fn attacks_are_bounded_and_effective_end_to_end() {
    let building = small_building();
    let scenario = Scenario::generate(&building, &CollectionConfig::small(), 2);
    let model = trained_calloc(&scenario);
    let test = &scenario.test_per_device[0].1;
    let clean = stats::mean(&test.errors_meters(&model.predict_classes(&test.x)));
    for kind in AttackKind::ALL {
        let cfg = AttackConfig::standard(kind, 0.1, 100.0);
        let adv = craft(&model, &test.x, &test.labels, &cfg);
        // ε bound and range validity hold through the whole pipeline.
        assert!(adv.sub(&test.x).map(f64::abs).max() <= 0.1 + 1e-12);
        assert!(adv.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        let attacked = stats::mean(&test.errors_meters(&model.predict_classes(&adv)));
        assert!(
            attacked >= clean * 0.9,
            "{}: attack reduced error ({clean:.2} -> {attacked:.2})",
            kind.name()
        );
    }
}

#[test]
fn calloc_is_more_robust_than_undefended_dnn() {
    use calloc_baselines::{DnnConfig, DnnLocalizer};
    let building = small_building();
    let scenario = Scenario::generate(&building, &CollectionConfig::small(), 3);
    let model = trained_calloc(&scenario);
    let dnn = DnnLocalizer::fit(
        &scenario.train.x,
        &scenario.train.labels,
        scenario.train.num_classes(),
        &DnnConfig::default(),
    );
    let test = &scenario.test_per_device[1].1; // OP3
    let cfg = AttackConfig::fgsm(0.075, 100.0); // paper ε=0.3 calibrated
    let calloc_adv = craft(&model, &test.x, &test.labels, &cfg);
    let calloc_err = stats::mean(&test.errors_meters(&model.predict_classes(&calloc_adv)));
    let dnn_model = dnn.as_differentiable().expect("differentiable");
    let dnn_adv = craft(dnn_model, &test.x, &test.labels, &cfg);
    let dnn_err = stats::mean(&test.errors_meters(&dnn.predict_classes(&dnn_adv)));
    assert!(
        calloc_err < dnn_err,
        "CALLOC {calloc_err:.2} m should beat undefended DNN {dnn_err:.2} m under attack"
    );
}

#[test]
fn training_pipeline_is_deterministic_end_to_end() {
    let building = small_building();
    let scenario = Scenario::generate(&building, &CollectionConfig::small(), 4);
    let a = trained_calloc(&scenario);
    let b = trained_calloc(&scenario);
    let test = &scenario.test_per_device[0].1;
    assert_eq!(a.predict_classes(&test.x), b.predict_classes(&test.x));
}

#[test]
fn attention_diagnostics_are_well_formed() {
    let building = small_building();
    let scenario = Scenario::generate(&building, &CollectionConfig::small(), 5);
    let model = trained_calloc(&scenario);
    let test = &scenario.test_per_device[1].1;
    let weights = model.attention_map(&test.x);
    assert_eq!(weights.shape(), (test.len(), building.num_rps()));
    for r in 0..weights.rows() {
        let sum: f64 = weights.row(r).iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "row {r} sums to {sum}");
        assert!(weights.row(r).iter().all(|&w| (0.0..=1.0).contains(&w)));
    }
    // Soft locations are convex combinations of RP coordinates, so they
    // must lie inside the RP bounding box.
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in building.rp_positions() {
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    for (x, y) in model.soft_locations(&test.x) {
        assert!((min_x - 1e-9..=max_x + 1e-9).contains(&x));
        assert!((min_y - 1e-9..=max_y + 1e-9).contains(&y));
    }
}
