//! Golden-report regression tier: the exact CSV bytes of a quick-profile
//! attack sweep are pinned in `tests/golden/quick_sweep.csv`, of a
//! quick-profile environment-axis sweep (drift multipliers 1 and 2,
//! datasets re-collected through the scenario-grid engine) in
//! `tests/golden/env_sweep.csv`, and of the quick-profile trajectory
//! sweep (motion simulation + sequential inference over the
//! buildings × path-lengths × environments grid) in
//! `tests/golden/trajectory_sweep.csv`.
//!
//! The sweep engine's contract is that a `ResultTable` is bit-identical
//! for every `CALLOC_THREADS`; this suite locks the *whole* pipeline
//! behind that promise — scenario simulation (incl. the parallel
//! scenario-grid engine feeding the environment sweep), suite training
//! (CALLOC + the classical baselines, so the GPC Cholesky hot path is
//! pinned too), attack crafting across every axis (3 kinds × 2 MITM
//! variants × 3 targeting strategies × ε × ø grids plus the clean
//! baseline) and CSV serialization. Any change to any of those layers
//! that moves a single byte fails here and must regenerate the golden
//! files *as a reviewed artifact* (run the `#[ignore]`d
//! `regenerate_golden_reports` test).
//!
//! CI runs this suite in every tier-1 leg (`CALLOC_THREADS` = 1, 2, 3
//! and 4), and the in-process tests additionally compare thread counts
//! 1 and 4 against the same bytes.

use calloc_eval::{ResultTable, Suite, SweepSpec};
use calloc_repro::testkit::{lock_knobs, pinned_building_spec, scenario_and_suite};
use calloc_sim::{CollectionConfig, EnvLevel, Scenario, ScenarioSpec};
use calloc_tensor::par;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/quick_sweep.csv");
const ENV_GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/env_sweep.csv");
const TRAJ_GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/trajectory_sweep.csv"
);

fn golden_bytes() -> String {
    std::fs::read_to_string(GOLDEN_PATH).expect(
        "tests/golden/quick_sweep.csv is checked in; regenerate it with \
         `cargo test --test golden_reports -- --ignored`",
    )
}

fn env_golden_bytes() -> String {
    std::fs::read_to_string(ENV_GOLDEN_PATH).expect(
        "tests/golden/env_sweep.csv is checked in; regenerate it with \
         `cargo test --test golden_reports -- --ignored`",
    )
}

fn traj_golden_bytes() -> String {
    std::fs::read_to_string(TRAJ_GOLDEN_PATH).expect(
        "tests/golden/trajectory_sweep.csv is checked in; regenerate it with \
         `cargo test --test golden_reports -- --ignored`",
    )
}

/// The pinned trajectory sweep: the bench crate's quick-profile grid
/// (two shrunken buildings × two path lengths × baseline-and-drift
/// environments × one seed), walked, observed, and decoded by the raw /
/// forward-filtered / smoothed estimators of a KNN and a GPC member per
/// building.
fn trajectory_sweep_csv() -> String {
    calloc_bench::trajectory_sweep_table(calloc_bench::Profile::Quick).to_csv()
}

/// The pinned quick-profile sweep: the full threat-model cross-product
/// over a reduced (ε, ø) grid (the fixture parameters live in
/// `calloc_repro::testkit`, shared with the fault-tolerance tier).
fn quick_sweep() -> ResultTable {
    let (scenario, suite) = scenario_and_suite();
    let spec = calloc_repro::testkit::quick_sweep_spec();
    let datasets = Suite::scenario_datasets(scenario, "B1");
    suite.sweep(&datasets, &spec)
}

/// The pinned environment-axis sweep: the same suite evaluated under
/// drift multipliers 1 and 2, the per-environment datasets re-collected
/// through the scenario-grid engine (whose baseline cell is bit-identical
/// to the pinned scenario above), crossed with the default attack grid at
/// one (ε, ø) point.
fn env_sweep() -> ResultTable {
    let (_, suite) = scenario_and_suite();
    let set = ScenarioSpec::single(pinned_building_spec(), 5, CollectionConfig::small(), 11)
        .with_environments(vec![EnvLevel::BASELINE, EnvLevel::uniform(2.0)])
        .generate();
    let scenarios: Vec<&Scenario> = set.scenarios().iter().collect();
    let spec = SweepSpec::grid(vec![0.1], vec![100.0])
        .with_seed(9)
        .with_env_multipliers(vec![1.0, 2.0]);
    suite.env_sweep("B1", &scenarios, &spec)
}

#[test]
fn quick_sweep_csv_matches_golden_at_ambient_threads() {
    // No knob override: under CI this leg runs at CALLOC_THREADS ∈
    // {1, 2, 4}, comparing the same golden bytes across processes.
    let _guard = lock_knobs();
    let csv = quick_sweep().to_csv();
    assert_eq!(
        csv,
        golden_bytes(),
        "sweep CSV diverged from tests/golden/quick_sweep.csv at the \
         ambient thread count ({} workers)",
        par::threads()
    );
}

#[test]
fn quick_sweep_csv_matches_golden_at_threads_1_and_4() {
    let _guard = lock_knobs();
    // The guard restores the ambient budget even when the byte comparison
    // below panics — a golden mismatch must not leak a stale override.
    let _threads = par::ThreadGuard::new(1);
    for threads in [1usize, 4] {
        par::set_threads(threads);
        let csv = quick_sweep().to_csv();
        assert_eq!(
            csv,
            golden_bytes(),
            "sweep CSV diverged from the golden file at {threads} threads"
        );
    }
}

#[test]
fn golden_file_is_well_formed() {
    let golden = golden_bytes();
    let mut lines = golden.lines();
    let header = lines.next().expect("non-empty golden file");
    assert_eq!(
        header,
        "plan_index,framework,building,device,attack,variant,targeting,\
         epsilon,phi,mean_error_m,max_error_m"
    );
    let mut rows = 0usize;
    for (i, line) in lines.enumerate() {
        assert!(
            line.starts_with(&format!("{i},")),
            "row {i} does not carry its plan index: {line}"
        );
        assert_eq!(line.split(',').count(), 11, "row {i} column count");
        rows += 1;
    }
    // 4 members × 2 devices × (1 clean + 3·2·3·2·2 attack cells)
    assert_eq!(rows, 4 * 2 * (1 + 72));
}

#[test]
fn env_sweep_csv_matches_golden_at_ambient_threads() {
    // No knob override: under CI this leg runs at CALLOC_THREADS ∈
    // {1, 2, 3, 4}, comparing the same golden bytes across processes.
    let _guard = lock_knobs();
    let csv = env_sweep().to_csv();
    assert_eq!(
        csv,
        env_golden_bytes(),
        "environment sweep CSV diverged from tests/golden/env_sweep.csv at \
         the ambient thread count ({} workers)",
        par::threads()
    );
}

#[test]
fn env_sweep_csv_matches_golden_at_threads_1_and_4() {
    let _guard = lock_knobs();
    let _threads = par::ThreadGuard::new(1);
    for threads in [1usize, 4] {
        par::set_threads(threads);
        let csv = env_sweep().to_csv();
        assert_eq!(
            csv,
            env_golden_bytes(),
            "environment sweep CSV diverged from the golden file at {threads} threads"
        );
    }
}

#[test]
fn env_golden_file_is_well_formed() {
    let golden = env_golden_bytes();
    let mut lines = golden.lines();
    let header = lines.next().expect("non-empty golden file");
    assert_eq!(
        header,
        "plan_index,framework,building,device,env_mult,attack,variant,\
         targeting,epsilon,phi,mean_error_m,max_error_m"
    );
    let mut rows = 0usize;
    for (i, line) in lines.enumerate() {
        assert!(
            line.starts_with(&format!("{i},")),
            "row {i} does not carry its plan index: {line}"
        );
        assert_eq!(line.split(',').count(), 12, "row {i} column count");
        rows += 1;
    }
    // 4 members × 2 devices × 2 environments × (1 clean + 3·1·1·1·1)
    assert_eq!(rows, 4 * 2 * 2 * (1 + 3));
}

#[test]
fn trajectory_sweep_csv_matches_golden_at_ambient_threads() {
    // No knob override: under CI this leg runs at CALLOC_THREADS ∈
    // {1, 2, 4}, comparing the same golden bytes across processes.
    let _guard = lock_knobs();
    let csv = trajectory_sweep_csv();
    assert_eq!(
        csv,
        traj_golden_bytes(),
        "trajectory sweep CSV diverged from tests/golden/trajectory_sweep.csv \
         at the ambient thread count ({} workers)",
        par::threads()
    );
}

#[test]
fn trajectory_sweep_csv_matches_golden_at_threads_1_and_4() {
    let _guard = lock_knobs();
    let _threads = par::ThreadGuard::new(1);
    for threads in [1usize, 4] {
        par::set_threads(threads);
        let csv = trajectory_sweep_csv();
        assert_eq!(
            csv,
            traj_golden_bytes(),
            "trajectory sweep CSV diverged from the golden file at {threads} threads"
        );
    }
}

#[test]
fn trajectory_golden_file_is_well_formed() {
    let golden = traj_golden_bytes();
    let mut lines = golden.lines();
    let header = lines.next().expect("non-empty golden file");
    assert_eq!(
        header,
        "plan_index,building,member,env,path_steps,seed,mode,mean_error_m,final_error_m"
    );
    let mut rows = 0usize;
    for (i, line) in lines.enumerate() {
        // Rows come in member × (raw, filtered, smoothed) runs of six
        // per grid cell, cell-major, so the plan index advances every
        // sixth row.
        assert!(
            line.starts_with(&format!("{},", i / 6)),
            "row {i} does not carry plan index {}: {line}",
            i / 6
        );
        assert_eq!(line.split(',').count(), 9, "row {i} column count");
        rows += 1;
    }
    // 2 buildings × 2 path lengths × 2 environments × 1 seed cells,
    // each scored by 2 members in 3 decoding modes.
    assert_eq!(rows, 2 * 2 * 2 * 2 * 3);
}

#[test]
fn env_grid_baseline_cell_matches_pinned_scenario() {
    // The environment grid's baseline cell must reproduce the pinned
    // scenario bit for bit — the grid engine adds axes, not randomness.
    let (scenario, _) = scenario_and_suite();
    let set = ScenarioSpec::single(pinned_building_spec(), 5, CollectionConfig::small(), 11)
        .with_environments(vec![EnvLevel::BASELINE, EnvLevel::uniform(2.0)])
        .generate();
    assert_eq!(set.scenario(0), scenario);
    // The harsher environment shares the survey but not the sessions.
    assert_eq!(set.scenario(1).train, scenario.train);
    assert_ne!(
        set.scenario(1).test_per_device[0].1.x,
        scenario.test_per_device[0].1.x
    );
}

/// Regenerates `tests/golden/quick_sweep.csv` and
/// `tests/golden/env_sweep.csv`. Ignored by default — run explicitly when
/// a deliberate pipeline change moves the pinned bytes:
///
/// ```text
/// cargo test --test golden_reports -- --ignored
/// ```
#[test]
#[ignore = "writes the golden files; run explicitly after deliberate changes"]
fn regenerate_golden_reports() {
    let _guard = lock_knobs();
    // Crash-safe writes: a kill mid-regeneration must not leave a
    // truncated golden that the comparison tests would then "pass" or
    // fail against confusingly.
    let csv = quick_sweep();
    csv.write_csv(std::path::Path::new(GOLDEN_PATH))
        .expect("write golden CSV");
    println!("wrote {GOLDEN_PATH} ({} bytes)", csv.to_csv().len());
    let env_csv = env_sweep();
    env_csv
        .write_csv(std::path::Path::new(ENV_GOLDEN_PATH))
        .expect("write env golden CSV");
    println!("wrote {ENV_GOLDEN_PATH} ({} bytes)", env_csv.to_csv().len());
    let traj_csv = trajectory_sweep_csv();
    calloc_eval::write_atomic(std::path::Path::new(TRAJ_GOLDEN_PATH), traj_csv.as_bytes())
        .expect("write trajectory golden CSV");
    println!("wrote {TRAJ_GOLDEN_PATH} ({} bytes)", traj_csv.len());
}
