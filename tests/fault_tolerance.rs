//! Fault-tolerance acceptance tier: the quick-profile sweep executed as
//! (a) a one-shot store-backed run, (b) two shards merged, (c) a
//! kill/resume cycle over a checkpointed disk store, and (d) a run with
//! injected cell panics absorbed by the retry budget must all produce
//! **byte-identical** CSV to `tests/golden/quick_sweep.csv` — the same
//! bytes the plain [`calloc_eval::Suite::sweep`] path pins in
//! `tests/golden_reports.rs`, without regenerating goldens.
//!
//! The pinned fixture (building, scenario, suite profile, sweep spec)
//! comes from `calloc_repro::testkit`, shared with the golden tier. CI
//! runs this binary in every tier-1 leg (`CALLOC_THREADS` = 1, 2, 3, 4
//! and 8) plus a dedicated fault-injection leg, and the in-process
//! invariance test additionally compares thread counts 1 and 4.
//!
//! Faults are injected only through [`calloc_eval::FaultPlan`] — an
//! explicit, deterministic schedule on plan indices — never ambient
//! randomness, so every leg injects exactly the same panics.

use calloc_eval::{ExecSpec, FaultPlan, ResultStore, Suite, SweepPlan};
use calloc_repro::testkit::{
    lock_knobs, quick_sweep_spec, scenario_and_suite, silence_injected_panics,
};
use calloc_sim::Dataset;
use calloc_tensor::par;
use std::path::PathBuf;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/quick_sweep.csv");

fn golden_bytes() -> String {
    std::fs::read_to_string(GOLDEN_PATH).expect(
        "tests/golden/quick_sweep.csv is checked in; regenerate it with \
         `cargo test --test golden_reports -- --ignored`",
    )
}

/// The quick-profile plan and datasets over the pinned trained suite.
fn plan_and_datasets() -> (SweepPlan, Vec<(String, String, &'static Dataset)>) {
    let (scenario, suite) = scenario_and_suite();
    let datasets = Suite::scenario_datasets(scenario, "B1");
    let plan = suite.sweep_plan(&datasets, &quick_sweep_spec());
    (plan, datasets)
}

/// A per-process, per-case temp path for file-backed stores.
fn tmp_store(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("calloc_ft_{}_{name}.bin", std::process::id()))
}

#[test]
fn store_backed_one_shot_matches_golden() {
    let _guard = lock_knobs();
    let (_, suite) = scenario_and_suite();
    let (plan, datasets) = plan_and_datasets();
    let mut store = plan.memory_store();
    let report = suite
        .sweep_with_store(&plan, &datasets, &ExecSpec::default(), &mut store)
        .expect("one-shot store-backed run");
    assert!(report.is_complete(), "{}", report.summary());
    assert_eq!(report.executed, plan.len());
    assert_eq!(
        report.table.to_csv(),
        golden_bytes(),
        "store-backed one-shot CSV diverged from the golden file at {} threads",
        par::threads()
    );
}

#[test]
fn two_shards_merge_to_the_golden_bytes() {
    let _guard = lock_knobs();
    let (_, suite) = scenario_and_suite();
    let (plan, datasets) = plan_and_datasets();
    let ranges = plan.shard_ranges(2);
    assert_eq!(ranges.len(), 2);

    // Each shard runs against its own store — as two independent
    // processes would — and the stores merge afterwards.
    let mut merged: Option<ResultStore> = None;
    let mut executed = 0;
    for range in ranges {
        let shard = plan.shard(range);
        let mut store = plan.memory_store();
        let report = suite
            .sweep_with_store(&shard, &datasets, &ExecSpec::default(), &mut store)
            .expect("shard run");
        assert!(report.is_complete(), "{}", report.summary());
        executed += report.executed;
        merged = Some(match merged.take() {
            None => store,
            Some(mut acc) => {
                acc.merge(&store).expect("disjoint shard stores");
                acc
            }
        });
    }
    assert_eq!(executed, plan.len(), "the shards must partition the plan");
    let merged = merged.expect("two shards ran");
    assert_eq!(merged.len(), plan.len());
    assert_eq!(
        plan.table_from_store(&merged).to_csv(),
        golden_bytes(),
        "merged two-shard CSV diverged from the golden file at {} threads",
        par::threads()
    );
}

#[test]
fn kill_and_resume_cycle_matches_golden() {
    let _guard = lock_knobs();
    let (_, suite) = scenario_and_suite();
    let (plan, datasets) = plan_and_datasets();
    let path = tmp_store("resume");
    let _ = std::fs::remove_file(&path);
    let half = plan.len() / 2;

    // First run: half the plan into a checkpointed disk store, then the
    // process "dies" — only the store file survives this scope.
    {
        let mut store = plan.open_store(&path).expect("open fresh store");
        let report = suite
            .sweep_with_store(
                &plan.shard(0..half),
                &datasets,
                &ExecSpec::default().with_checkpoint_every(16),
                &mut store,
            )
            .expect("first (killed) run");
        assert!(report.is_complete(), "{}", report.summary());
    }

    // Resume: reopen from disk, rerun the same spec; only the missing
    // cells may execute, and restored rows must be bit-exact.
    let mut store = plan.open_store(&path).expect("reopen after the crash");
    assert_eq!(store.len(), half, "the checkpointed rows must survive");
    let report = suite
        .sweep_with_store(&plan, &datasets, &ExecSpec::default(), &mut store)
        .expect("resumed run");
    assert!(report.is_complete(), "{}", report.summary());
    assert_eq!(
        report.executed,
        plan.len() - half,
        "resume must only execute the missing cells"
    );
    assert_eq!(
        report.table.to_csv(),
        golden_bytes(),
        "killed-then-resumed CSV diverged from the golden file at {} threads",
        par::threads()
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn cadence_zero_checkpoints_exactly_once_at_run_finish() {
    let _guard = lock_knobs();
    let (_, suite) = scenario_and_suite();
    let (plan, datasets) = plan_and_datasets();
    let path = tmp_store("cadence0");
    let _ = std::fs::remove_file(&path);

    // checkpoint_every = 0 disables mid-run checkpoints: the store file
    // must not exist while rows are only accumulating in memory, and the
    // single finish-time checkpoint must land the complete result set.
    let mut store = plan.open_store(&path).expect("open fresh store");
    let report = suite
        .sweep_with_store(
            &plan,
            &datasets,
            &ExecSpec::default().with_checkpoint_every(0),
            &mut store,
        )
        .expect("cadence-0 run");
    assert!(report.is_complete(), "{}", report.summary());
    assert_eq!(report.executed, plan.len());

    let reopened = plan
        .open_store(&path)
        .expect("reopen the finish checkpoint");
    assert_eq!(
        reopened.len(),
        plan.len(),
        "the finish-time checkpoint must hold every row"
    );
    assert_eq!(
        plan.table_from_store(&reopened).to_csv(),
        golden_bytes(),
        "cadence-0 store CSV diverged from the golden file at {} threads",
        par::threads()
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn injected_panics_absorbed_by_retry_match_golden() {
    silence_injected_panics();
    let _guard = lock_knobs();
    let (_, suite) = scenario_and_suite();
    let (plan, datasets) = plan_and_datasets();
    // Three cells across the plan panic on their first two attempts and
    // succeed on the third — inside the budget, so nothing is lost.
    let faulted = vec![0, plan.len() / 2, plan.len() - 1];
    let exec = ExecSpec::default()
        .with_retries(2)
        .with_faults(FaultPlan::panic_on(&faulted, 2));
    let report = suite.sweep_fault_tolerant(&datasets, &quick_sweep_spec(), &exec);
    assert!(report.is_complete(), "{}", report.summary());
    assert_eq!(
        report.recovered,
        faulted.len(),
        "every faulted cell must recover within the retry budget"
    );
    assert_eq!(
        report.table.to_csv(),
        golden_bytes(),
        "retried-past-faults CSV diverged from the golden file at {} threads",
        par::threads()
    );
}

#[test]
fn quarantined_cell_resumes_to_the_golden_bytes() {
    silence_injected_panics();
    let _guard = lock_knobs();
    let (_, suite) = scenario_and_suite();
    let (plan, datasets) = plan_and_datasets();
    // One cell panics on every attempt of the first run: it is
    // quarantined (not fatal), surfaced in the summary, and left out of
    // the store — so a second run with the fault gone heals the sweep.
    let poisoned = plan.len() / 3;
    let exec = ExecSpec::default()
        .with_retries(1)
        .with_faults(FaultPlan::none().panicking(poisoned, 10));
    let mut store = plan.memory_store();
    let report = suite
        .sweep_with_store(&plan, &datasets, &exec, &mut store)
        .expect("run with a poisoned cell");
    assert!(!report.is_complete());
    assert_eq!(report.errors.len(), 1);
    assert_eq!(report.errors[0].plan_index, poisoned);
    assert!(
        report.summary().contains("1 quarantined"),
        "{}",
        report.summary()
    );
    assert_eq!(store.len(), plan.len() - 1);

    let report = suite
        .sweep_with_store(&plan, &datasets, &ExecSpec::default(), &mut store)
        .expect("healing rerun");
    assert!(report.is_complete(), "{}", report.summary());
    assert_eq!(report.executed, 1, "only the quarantined cell may rerun");
    assert_eq!(
        report.table.to_csv(),
        golden_bytes(),
        "quarantine-then-resume CSV diverged from the golden file at {} threads",
        par::threads()
    );
}

#[test]
fn fault_paths_match_golden_at_threads_1_and_4() {
    silence_injected_panics();
    let _guard = lock_knobs();
    let (scenario, suite) = scenario_and_suite();
    let datasets = Suite::scenario_datasets(scenario, "B1");
    let plan = suite.sweep_plan(&datasets, &quick_sweep_spec());
    let exec = ExecSpec::default()
        .with_retries(2)
        .with_faults(FaultPlan::panic_on(&[1, plan.len() - 2], 2));
    // The guard restores the ambient budget even if a comparison fails.
    let _threads = par::ThreadGuard::new(1);
    for threads in [1usize, 4] {
        par::set_threads(threads);
        let report = suite.sweep_fault_tolerant(&datasets, &quick_sweep_spec(), &exec);
        assert!(report.is_complete(), "{}", report.summary());
        assert_eq!(
            report.table.to_csv(),
            golden_bytes(),
            "fault-tolerant CSV diverged from the golden file at {threads} threads"
        );
    }
}
