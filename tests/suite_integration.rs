//! Integration tests of the evaluation harness across all frameworks.

use calloc::CallocConfig;
use calloc_attack::{AttackConfig, AttackKind};
use calloc_eval::{evaluate, ResultRow, ResultTable, Suite, SuiteProfile};
use calloc_sim::{Building, BuildingId, BuildingSpec, CollectionConfig, Scenario};

fn tiny_suite() -> (Scenario, Suite) {
    let spec = BuildingSpec {
        path_length_m: 14,
        num_aps: 20,
        ..BuildingId::B2.spec()
    };
    let building = Building::generate(spec, 6);
    let scenario = Scenario::generate(&building, &CollectionConfig::small(), 8);
    let profile = SuiteProfile {
        calloc: CallocConfig {
            epochs_per_lesson: 5,
            ..CallocConfig::fast()
        },
        lessons: 3,
        include_nc: false,
        include_sota: true,
        include_classical: false,
        baseline_epochs: 15,
        train_epsilon: 0.025,
        seed: 2,
    };
    let suite = Suite::train(&scenario, &profile);
    (scenario, suite)
}

#[test]
fn every_framework_survives_every_attack_kind() {
    let (scenario, suite) = tiny_suite();
    let test = &scenario.test_per_device[0].1;
    for member in &suite.members {
        for kind in AttackKind::ALL {
            let cfg = AttackConfig::standard(kind, 0.05, 50.0);
            let eval = evaluate(
                member.model.as_ref(),
                test,
                Some(&cfg),
                Some(suite.surrogate()),
            );
            assert!(
                eval.summary.mean.is_finite() && eval.summary.mean >= 0.0,
                "{} under {}",
                member.name,
                kind.name()
            );
            assert_eq!(eval.errors_m.len(), test.len());
        }
    }
}

#[test]
fn result_table_round_trips_through_csv() {
    let (scenario, suite) = tiny_suite();
    let test = &scenario.test_per_device[0].1;
    let mut table = ResultTable::new();
    for member in &suite.members {
        let eval = evaluate(member.model.as_ref(), test, None, None);
        table.push(ResultRow {
            framework: member.name.clone(),
            building: "B2".into(),
            device: "MOTO".into(),
            attack: "none".into(),
            epsilon: 0.0,
            phi: 0.0,
            mean_error_m: eval.summary.mean,
            max_error_m: eval.summary.max,
        });
    }
    let csv = table.to_csv();
    // header + one line per member
    assert_eq!(csv.lines().count(), suite.members.len() + 1);
    assert!(csv.contains("CALLOC"));
    assert!(csv.contains("WiDeep"));
}

#[test]
fn surrogate_transfer_hits_tree_ensembles() {
    let (scenario, suite) = tiny_suite();
    let sangria = suite.member("SANGRIA").expect("SANGRIA trained");
    assert!(sangria.model.as_differentiable().is_none());
    let test = &scenario.test_per_device[0].1;
    let clean = evaluate(sangria.model.as_ref(), test, None, None);
    let cfg = AttackConfig::fgsm(0.125, 100.0);
    let attacked = evaluate(
        sangria.model.as_ref(),
        test,
        Some(&cfg),
        Some(suite.surrogate()),
    );
    assert!(
        attacked.summary.mean >= clean.summary.mean * 0.8,
        "transfer attack did nothing: {} -> {}",
        clean.summary.mean,
        attacked.summary.mean
    );
}
