//! Integration tests of the evaluation harness across all frameworks.

use calloc::CallocConfig;
use calloc_attack::{AttackConfig, AttackKind, MitmVariant, Targeting};
use calloc_eval::{evaluate, Suite, SuiteProfile, SweepSpec};
use calloc_sim::{Building, BuildingId, BuildingSpec, CollectionConfig, Scenario};

fn tiny_suite() -> (Scenario, Suite) {
    let spec = BuildingSpec {
        path_length_m: 14,
        num_aps: 20,
        ..BuildingId::B2.spec()
    };
    let building = Building::generate(spec, 6);
    let scenario = Scenario::generate(&building, &CollectionConfig::small(), 8);
    let profile = SuiteProfile {
        calloc: CallocConfig {
            epochs_per_lesson: 5,
            ..CallocConfig::fast()
        },
        lessons: 3,
        include_nc: false,
        include_sota: true,
        include_classical: false,
        baseline_epochs: 15,
        train_epsilon: 0.025,
        seed: 2,
    };
    let suite = Suite::train(&scenario, &profile);
    (scenario, suite)
}

#[test]
fn every_framework_survives_every_attack_kind() {
    let (scenario, suite) = tiny_suite();
    let test = &scenario.test_per_device[0].1;
    for member in &suite.members {
        for kind in AttackKind::ALL {
            let cfg = AttackConfig::standard(kind, 0.05, 50.0);
            let eval = evaluate(
                member.model.as_ref(),
                test,
                Some(&cfg),
                Some(suite.surrogate()),
            );
            assert!(
                eval.summary.mean.is_finite() && eval.summary.mean >= 0.0,
                "{} under {}",
                member.name,
                kind.name()
            );
            assert_eq!(eval.errors_m.len(), test.len());
        }
    }
}

#[test]
fn suite_sweep_covers_every_member_and_round_trips_through_csv() {
    let (scenario, suite) = tiny_suite();
    let datasets = Suite::scenario_datasets(&scenario, "B2");
    let spec = SweepSpec::clean_only();
    let table = suite.sweep(&datasets, &spec);
    // One clean cell per (member, device), in plan-index order.
    assert_eq!(table.len(), suite.members.len() * datasets.len());
    for (i, row) in table.rows().iter().enumerate() {
        assert_eq!(row.plan_index, i);
        assert_eq!(row.attack, "none");
        assert!(row.mean_error_m.is_finite());
    }
    let csv = table.to_csv();
    // header + one line per cell
    assert_eq!(csv.lines().count(), table.len() + 1);
    assert!(csv.starts_with("plan_index,framework,"));
    assert!(csv.contains("CALLOC"));
    assert!(csv.contains("WiDeep"));
}

#[test]
fn full_grid_sweep_evaluates_every_axis_combination() {
    let (scenario, suite) = tiny_suite();
    let datasets = Suite::scenario_datasets(&scenario, "B2");
    let spec = SweepSpec::full_grid(vec![0.05], vec![50.0]);
    let table = suite.sweep(&datasets, &spec);
    let per_pair = 1 + 3 * MitmVariant::ALL.len() * Targeting::ALL.len();
    assert_eq!(table.len(), suite.members.len() * datasets.len() * per_pair);
    // Every variant and targeting shows up, and all errors are sane.
    for variant in MitmVariant::ALL {
        assert!(
            table.rows().iter().any(|r| r.variant == variant.name()),
            "no rows for variant {}",
            variant.name()
        );
    }
    for targeting in Targeting::ALL {
        assert!(
            table.rows().iter().any(|r| r.targeting == targeting.name()),
            "no rows for targeting {}",
            targeting.name()
        );
    }
    assert!(table
        .rows()
        .iter()
        .all(|r| r.mean_error_m.is_finite() && r.mean_error_m >= 0.0));
}

#[test]
fn surrogate_transfer_hits_tree_ensembles() {
    let (scenario, suite) = tiny_suite();
    let sangria = suite.member("SANGRIA").expect("SANGRIA trained");
    assert!(sangria.model.as_differentiable().is_none());
    let test = &scenario.test_per_device[0].1;
    let clean = evaluate(sangria.model.as_ref(), test, None, None);
    let cfg = AttackConfig::fgsm(0.125, 100.0);
    let attacked = evaluate(
        sangria.model.as_ref(),
        test,
        Some(&cfg),
        Some(suite.surrogate()),
    );
    assert!(
        attacked.summary.mean >= clean.summary.mean * 0.8,
        "transfer attack did nothing: {} -> {}",
        clean.summary.mean,
        attacked.summary.mean
    );
}
