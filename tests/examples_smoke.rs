//! Smoke test mirroring the `examples/` entry points under a fast
//! configuration, so `cargo test` catches a broken quickstart path without
//! paying full example runtime. (CI additionally runs
//! `cargo build --examples` so every example keeps compiling.)

use calloc::{CallocConfig, CallocTrainer, Localizer};
use calloc_attack::{craft, AttackConfig};
use calloc_sim::{Building, BuildingId, BuildingSpec, CollectionConfig, Scenario};
use calloc_tensor::stats;

/// A miniature run of the `quickstart` example: simulate, train with
/// `CallocConfig::fast()`, localize clean and FGSM-attacked fingerprints.
#[test]
fn quickstart_path_runs_under_fast_config() {
    let spec = BuildingSpec {
        path_length_m: 12,
        num_aps: 16,
        ..BuildingId::B1.spec()
    };
    let building = Building::generate(spec, 7);
    let scenario = Scenario::generate(&building, &CollectionConfig::small(), 42);

    let outcome = CallocTrainer::new(CallocConfig::fast()).fit(&scenario.train);
    let model = outcome.model;
    assert!(!outcome.lesson_reports.is_empty());

    let (_, test) = &scenario.test_per_device[0];
    let clean_errs = test.errors_meters(&model.predict_classes(&test.x));
    assert_eq!(clean_errs.len(), test.len());
    let clean_mean = stats::mean(&clean_errs);
    assert!(clean_mean.is_finite() && clean_mean >= 0.0);

    let victim = model.as_differentiable().expect("calloc is differentiable");
    let adv = craft(
        victim,
        &test.x,
        &test.labels,
        &AttackConfig::fgsm(0.1, 50.0),
    );
    let adv_errs = test.errors_meters(&model.predict_classes(&adv));
    let adv_mean = stats::mean(&adv_errs);
    assert!(adv_mean.is_finite() && adv_mean >= 0.0);
}
