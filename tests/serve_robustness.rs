//! Serving robustness tier: the acceptance harness for `calloc_serve`.
//!
//! Two families of law are pinned here:
//!
//! 1. **Determinism** — replaying a request log at fixed batch
//!    boundaries produces *bit-identical* response frames at every
//!    `CALLOC_THREADS`, whether the registry was trained cache-off,
//!    through a cold model-cache file, or restored from a warm one.
//! 2. **Robustness** — over real sockets, every failure mode the issue
//!    names (malformed frames, deadline expiry, overload shedding,
//!    mid-request panics, drain) is answered with a *typed* protocol
//!    reply and the server keeps serving afterwards. Faults are
//!    injected through the deterministic [`ServeFaults`] plan, never
//!    ambient randomness.
//!
//! The fixture is the pinned quick-tier scenario shared with the golden
//! and fault-tolerance tiers; the registry members are the cheap
//! classical localizers (KNN with a KNN degradation fallback, plus GPC)
//! so the tier stays fast while still crossing the batched-kernel path.

use calloc_eval::{Localizer, ModelCache, Suite};
use calloc_repro::testkit::{
    lock_knobs, pinned_building_spec, quick_profile, silence_injected_panics,
};
use calloc_serve::{
    boot, decode_frame, encode_frame, replay_frames, Client, Engine, LogEntry, Registry, Request,
    Response, ServeConfig, ServeError, ServeFaults, ServeMember, Server,
};
use calloc_sim::{collection_identity, Building, CollectionConfig, Scenario};
use calloc_tensor::par;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// The pinned quick-tier scenario (building salt 5, small collection,
/// seed 11) plus its model-cache cell identity, built once per binary.
fn fixture() -> &'static (Scenario, String) {
    static FIXTURE: OnceLock<(Scenario, String)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let building = Building::generate(pinned_building_spec(), 5);
        let scenario = Scenario::generate(&building, &CollectionConfig::small(), 11);
        let cell = collection_identity(&pinned_building_spec(), 5, &CollectionConfig::small(), 11);
        (scenario, cell)
    })
}

/// Trains (or restores) one classical member through `cache`.
fn member(name: &str, cache: &mut ModelCache) -> Box<dyn Localizer> {
    let (scenario, cell) = fixture();
    Suite::train_member_cached(scenario, &quick_profile(), name, cell, cache)
        .expect("model cache I/O")
        .expect("the quick profile includes the classical members")
}

/// Full test registry: `KNN` (primary, with a KNN degradation fallback)
/// and `GPC` (no fallback), trained through `cache`.
fn registry_via(cache: &mut ModelCache) -> Registry {
    let knn = member("KNN", cache);
    let knn_fallback = member("KNN", cache);
    let gpc = member("GPC", cache);
    let (scenario, _) = fixture();
    let positions = scenario.train.rp_positions.clone();
    let num_aps = scenario.train.num_aps();
    let mut registry = Registry::new();
    registry.insert(
        "KNN",
        ServeMember::new(knn, Some(knn_fallback), positions.clone(), num_aps),
    );
    registry.insert("GPC", ServeMember::new(gpc, None, positions, num_aps));
    registry
}

/// A real fingerprint row from the pinned scenario's test points.
fn fingerprint() -> Vec<f64> {
    let (scenario, _) = fixture();
    boot::request_log(scenario, "KNN", 1)
        .pop()
        .expect("the pinned scenario has test points")
        .1
}

/// A request log alternating between the two registry members, so
/// replay exercises the per-model batch grouping.
fn mixed_log(total: usize) -> Vec<LogEntry> {
    let (scenario, _) = fixture();
    let knn = boot::request_log(scenario, "KNN", total);
    let gpc = boot::request_log(scenario, "GPC", total);
    let log: Vec<LogEntry> = knn
        .into_iter()
        .zip(gpc)
        .flat_map(|(a, b)| [a, b])
        .take(total)
        .collect();
    assert_eq!(log.len(), total, "the scenario must cover the log length");
    log
}

/// Binds a server on an ephemeral port and runs it on its own thread.
fn spawn_server(config: ServeConfig) -> (SocketAddr, JoinHandle<calloc_serve::HealthReport>) {
    let registry = registry_via(&mut ModelCache::in_memory());
    let server = Server::bind("127.0.0.1:0", registry, config).expect("bind an ephemeral port");
    let addr = server.local_addr().expect("bound address");
    (addr, std::thread::spawn(move || server.run()))
}

/// Deterministic byte-noise source (no ambient randomness in tests).
struct Lcg(u64);

impl Lcg {
    fn step(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }
}

// ---------------------------------------------------------------------
// 1. Replay determinism
// ---------------------------------------------------------------------

/// The tentpole law: a replayed request log at fixed batch boundaries
/// yields bit-identical response frames at `CALLOC_THREADS` 1/2/4, for
/// a cache-off registry, one trained through a cold cache file, and one
/// restored from the warm file.
#[test]
fn replay_is_bit_identical_across_threads_and_cache_states() {
    let _guard = lock_knobs();
    let _threads = par::ThreadGuard::new(1);
    let path = std::env::temp_dir().join(format!("calloc_serve_rb_{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let cache_off = registry_via(&mut ModelCache::in_memory());
    let mut cold_cache = ModelCache::open(&path).expect("temp cache file");
    let cold = registry_via(&mut cold_cache);
    assert_eq!(cold_cache.misses(), 2, "cold file trains KNN and GPC once");
    drop(cold_cache);
    let mut warm_cache = ModelCache::open(&path).expect("reopen the cache file");
    let warm = registry_via(&mut warm_cache);
    assert_eq!(warm_cache.misses(), 0, "a warm cache must not retrain");
    assert_eq!(warm_cache.hits(), 3, "all three members restore");

    let log = mixed_log(40);
    let baseline = replay_frames(&cache_off, &log, 7);
    assert_eq!(baseline.len(), log.len(), "one response frame per query");
    for frame in &baseline {
        let payload = decode_frame(frame).expect("replay emits valid frames");
        match Response::decode(&payload).expect("replay emits valid messages") {
            Response::Located(location) => {
                assert!(!location.degraded, "replay never degrades");
            }
            other => panic!("replay answered {other:?} to a valid query"),
        }
    }

    for threads in [1usize, 2, 4] {
        par::set_threads(threads);
        for (registry, label) in [(&cache_off, "cache-off"), (&cold, "cold"), (&warm, "warm")] {
            assert_eq!(
                replay_frames(registry, &log, 7),
                baseline,
                "replay diverged: {label} registry at {threads} threads"
            );
        }
    }
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------
// 2. Malformed input over real sockets
// ---------------------------------------------------------------------

/// Every malformed byte stream is answered with a typed error — frame
/// corruption closes the (unsynchronizable) connection, message-level
/// garbage keeps it open — and the server serves real queries
/// throughout. Includes request-validation errors (unknown model, bad
/// arity).
#[test]
fn malformed_frames_get_typed_replies_and_the_server_survives() {
    let _guard = lock_knobs();
    let (addr, handle) = spawn_server(ServeConfig::default());
    let fp = fingerprint();

    // Deterministic noise blobs: never a panic or hang, always a typed
    // BadFrame reply (bad magic, or torn frame past the read timeout).
    let mut lcg = Lcg(0xCA110C);
    for round in 0..8 {
        let len = 1 + (lcg.step() % 48) as usize;
        let noise: Vec<u8> = (0..len).map(|_| lcg.step() as u8).collect();
        let mut client = Client::connect(addr).expect("connect");
        client.send_raw(&noise).expect("send noise");
        match client.read_response() {
            Ok(Response::Error(ServeError::BadFrame { .. })) => {}
            other => panic!("noise round {round}: expected BadFrame, got {other:?}"),
        }
    }

    // Structured corruption: wrong version, flipped payload byte,
    // oversized length field.
    let valid = encode_frame(&Request::Health.encode());
    let mut wrong_version = valid.clone();
    wrong_version[8] = 99;
    let mut flipped = valid.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x10;
    let mut oversized = valid.clone();
    oversized[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
    for (case, bytes) in [
        ("wrong version", wrong_version),
        ("flipped payload byte", flipped),
        ("oversized length", oversized),
    ] {
        let mut client = Client::connect(addr).expect("connect");
        client.send_raw(&bytes).expect("send corrupt frame");
        match client.read_response() {
            Ok(Response::Error(ServeError::BadFrame { .. })) => {}
            other => panic!("{case}: expected BadFrame, got {other:?}"),
        }
    }

    // A valid frame with a garbage payload is a *message* error; the
    // connection stays synchronized and usable.
    let mut client = Client::connect(addr).expect("connect");
    client
        .send_raw(&encode_frame(&[0xEE, 1, 2, 3]))
        .expect("send garbage message");
    match client.read_response() {
        Ok(Response::Error(ServeError::BadMessage { .. })) => {}
        other => panic!("garbage message: expected BadMessage, got {other:?}"),
    }
    match client.locate("KNN", fp.clone(), 0) {
        Ok(Response::Located(_)) => {}
        other => panic!("same connection after BadMessage: {other:?}"),
    }

    // Request-validation errors are typed too.
    match client.locate("NOPE", fp.clone(), 0) {
        Ok(Response::Error(ServeError::UnknownModel { model })) => assert_eq!(model, "NOPE"),
        other => panic!("unknown model: {other:?}"),
    }
    match client.locate("KNN", vec![0.0; 3], 0) {
        Ok(Response::Error(ServeError::BadArity { expected, got, .. })) => {
            assert_eq!((expected, got), (fp.len() as u32, 3));
        }
        other => panic!("bad arity: {other:?}"),
    }

    // A half-sent frame followed by a hangup must not wedge the server.
    let mut torn = Client::connect(addr).expect("connect");
    let frame = encode_frame(
        &Request::Locate {
            model: "KNN".into(),
            deadline_ms: 0,
            fingerprint: fp.clone(),
        }
        .encode(),
    );
    torn.send_raw(&frame[..frame.len() / 2]).expect("send half");
    drop(torn);

    // After all of the above the server still answers fresh queries.
    let mut survivor = Client::connect(addr).expect("connect");
    match survivor.locate("KNN", fp, 0) {
        Ok(Response::Located(_)) => {}
        other => panic!("server wedged after malformed input: {other:?}"),
    }
    let served = survivor.drain().expect("drain");
    assert!(served >= 2, "the valid queries were served");
    let report = handle.join().expect("server thread");
    assert!(report.draining, "the final health snapshot is draining");
}

// ---------------------------------------------------------------------
// 3. Deadlines
// ---------------------------------------------------------------------

/// A deadline shorter than the batch window expires in the queue and is
/// answered with the typed `DeadlineExceeded` reply — while undeadlined
/// and generously-deadlined queries on the same server succeed.
#[test]
fn expired_deadlines_are_typed_replies_not_hangs() {
    let _guard = lock_knobs();
    let config = ServeConfig {
        batch_window: Duration::from_millis(120),
        ..ServeConfig::default()
    };
    let (addr, handle) = spawn_server(config);
    let mut client = Client::connect(addr).expect("connect");
    let fp = fingerprint();

    match client.locate("KNN", fp.clone(), 1) {
        Ok(Response::Error(ServeError::DeadlineExceeded { deadline_ms })) => {
            assert_eq!(deadline_ms, 1);
        }
        other => panic!("1 ms deadline under a 120 ms window: {other:?}"),
    }
    match client.locate("KNN", fp.clone(), 0) {
        Ok(Response::Located(_)) => {}
        other => panic!("undeadlined query: {other:?}"),
    }
    match client.locate("KNN", fp, 30_000) {
        Ok(Response::Located(_)) => {}
        other => panic!("generous deadline: {other:?}"),
    }

    let health = client.health().expect("health");
    assert_eq!(health.deadline_expired, 1);
    assert_eq!(health.served, 2);
    client.drain().expect("drain");
    handle.join().expect("server thread");
}

// ---------------------------------------------------------------------
// 4. Overload shedding
// ---------------------------------------------------------------------

/// A burst far beyond the admission queue's capacity is shed at the
/// door with `Overloaded` + a positive retry hint; everything admitted
/// is still answered, and the server recovers to serve new queries.
#[test]
fn overload_sheds_with_a_retry_hint_and_recovers() {
    let _guard = lock_knobs();
    let config = ServeConfig {
        max_batch: 1,
        queue_capacity: 2,
        batch_window: Duration::from_millis(60),
        degrade_watermark: usize::MAX,
        ..ServeConfig::default()
    };
    let (addr, handle) = spawn_server(config);
    let fp = fingerprint();

    const CLIENTS: usize = 10;
    let served = AtomicUsize::new(0);
    let shed = AtomicUsize::new(0);
    let barrier = Barrier::new(CLIENTS);
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            scope.spawn(|| {
                let mut client = Client::connect(addr).expect("connect");
                barrier.wait();
                match client.locate("KNN", fp.clone(), 0) {
                    Ok(Response::Located(_)) => {
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(Response::Error(ServeError::Overloaded { retry_after_ms })) => {
                        assert!(retry_after_ms > 0, "the shed reply must hint a retry");
                        shed.fetch_add(1, Ordering::Relaxed);
                    }
                    other => panic!("burst query: {other:?}"),
                }
            });
        }
    });
    let (served, shed) = (served.into_inner(), shed.into_inner());
    assert_eq!(served + shed, CLIENTS, "every query got exactly one reply");
    assert!(
        shed > 0,
        "{CLIENTS} simultaneous queries against a 2-slot queue must shed"
    );
    assert!(served > 0, "admitted queries are still answered under load");

    let mut client = Client::connect(addr).expect("connect");
    match client.locate("KNN", fp, 0) {
        Ok(Response::Located(_)) => {}
        other => panic!("post-burst query: {other:?}"),
    }
    let health = client.health().expect("health");
    assert_eq!(health.shed, shed as u64);
    assert_eq!(health.served, served as u64 + 1);
    client.drain().expect("drain");
    handle.join().expect("server thread");
}

// ---------------------------------------------------------------------
// 5. Degradation under sustained backlog
// ---------------------------------------------------------------------

/// When the queue stays above the degrade watermark, members with a
/// configured fallback answer from it and flag the response as
/// degraded; members without a fallback never carry the flag.
#[test]
fn sustained_backlog_degrades_to_the_fallback_member() {
    let _guard = lock_knobs();
    let config = ServeConfig {
        max_batch: 1,
        queue_capacity: 64,
        batch_window: Duration::from_millis(25),
        degrade_watermark: 2,
        ..ServeConfig::default()
    };
    let (addr, handle) = spawn_server(config);
    let fp = fingerprint();

    const CLIENTS: usize = 10;
    let degraded = AtomicUsize::new(0);
    let barrier = Barrier::new(CLIENTS);
    std::thread::scope(|scope| {
        let (degraded, fp, barrier) = (&degraded, &fp, &barrier);
        for slot in 0..CLIENTS {
            scope.spawn(move || {
                let model = if slot < 2 { "GPC" } else { "KNN" };
                let mut client = Client::connect(addr).expect("connect");
                barrier.wait();
                match client.locate(model, fp.clone(), 0) {
                    Ok(Response::Located(location)) => {
                        if location.degraded {
                            assert_eq!(model, "KNN", "GPC has no fallback to degrade to");
                            degraded.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    other => panic!("backlog query on {model}: {other:?}"),
                }
            });
        }
    });
    let degraded = degraded.into_inner();
    assert!(
        degraded > 0,
        "a backlog of {CLIENTS} at watermark 2 must degrade some answers"
    );

    let mut client = Client::connect(addr).expect("connect");
    let health = client.health().expect("health");
    assert_eq!(health.degraded, degraded as u64);
    // With the backlog gone, answers come from the primary again.
    match client.locate("KNN", fp.clone(), 0) {
        Ok(Response::Located(location)) => assert!(!location.degraded),
        other => panic!("post-backlog query: {other:?}"),
    }
    client.drain().expect("drain");
    handle.join().expect("server thread");
}

// ---------------------------------------------------------------------
// 6. Panic quarantine
// ---------------------------------------------------------------------

/// Mid-request panics — injected via the deterministic fault plan — are
/// caught at the request boundary: the poisoned query answers
/// `Internal` naming the panic, its batch-mates still get locations,
/// and the server keeps serving.
#[test]
fn injected_panics_are_quarantined_per_request() {
    let _guard = lock_knobs();
    silence_injected_panics();
    let config = ServeConfig {
        max_batch: 8,
        batch_window: Duration::from_millis(60),
        faults: ServeFaults::panic_on([1, 4]),
        ..ServeConfig::default()
    };
    let (addr, handle) = spawn_server(config);
    let fp = fingerprint();

    // Phase A: sequential queries get admission ids 0, 1, 2 — only the
    // poisoned id answers Internal, and the panic message is preserved.
    let mut client = Client::connect(addr).expect("connect");
    for id in 0..3u64 {
        match (id, client.locate("KNN", fp.clone(), 0)) {
            (1, Ok(Response::Error(ServeError::Internal { detail }))) => {
                assert!(
                    detail.contains("injected fault"),
                    "the reply names the quarantined panic, got: {detail}"
                );
            }
            (0 | 2, Ok(Response::Located(_))) => {}
            (_, other) => panic!("sequential query {id}: {other:?}"),
        }
    }

    // Phase B: three concurrent queries (ids 3, 4, 5) share one
    // micro-batch; exactly one is poisoned, the other two survive the
    // batch-level unwind via the per-query re-run.
    let located = AtomicUsize::new(0);
    let quarantined = AtomicUsize::new(0);
    let barrier = Barrier::new(3);
    std::thread::scope(|scope| {
        for _ in 0..3 {
            scope.spawn(|| {
                let mut client = Client::connect(addr).expect("connect");
                barrier.wait();
                match client.locate("KNN", fp.clone(), 0) {
                    Ok(Response::Located(_)) => {
                        located.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(Response::Error(ServeError::Internal { .. })) => {
                        quarantined.fetch_add(1, Ordering::Relaxed);
                    }
                    other => panic!("co-batched query: {other:?}"),
                }
            });
        }
    });
    assert_eq!(
        (located.into_inner(), quarantined.into_inner()),
        (2, 1),
        "exactly the poisoned query is quarantined, its batch-mates answer"
    );

    let health = client.health().expect("health");
    assert_eq!(health.quarantined, 2);
    match client.locate("KNN", fp, 0) {
        Ok(Response::Located(_)) => {}
        other => panic!("server wedged after quarantine: {other:?}"),
    }
    client.drain().expect("drain");
    handle.join().expect("server thread");
}

// ---------------------------------------------------------------------
// 7. Drain
// ---------------------------------------------------------------------

/// Drain finishes in-flight work before acknowledging: queries parked
/// in the queue when the drain arrives are still answered, the ack
/// reports the served count, and the listener shuts down.
#[test]
fn drain_answers_inflight_work_then_stops() {
    let _guard = lock_knobs();
    let config = ServeConfig {
        max_batch: 1,
        batch_window: Duration::from_millis(80),
        ..ServeConfig::default()
    };
    let (addr, handle) = spawn_server(config);
    let fp = fingerprint();

    const INFLIGHT: usize = 4;
    let drained_ack = std::thread::scope(|scope| {
        for _ in 0..INFLIGHT {
            scope.spawn(|| {
                let mut client = Client::connect(addr).expect("connect");
                match client.locate("KNN", fp.clone(), 0) {
                    Ok(Response::Located(_)) => {}
                    other => panic!("in-flight query dropped by drain: {other:?}"),
                }
            });
        }
        // Give the senders time to be admitted (the 80 ms window keeps
        // them parked in the queue), then drain under them.
        std::thread::sleep(Duration::from_millis(40));
        let mut closer = Client::connect(addr).expect("connect");
        closer.drain().expect("drain ack")
    });
    assert_eq!(
        drained_ack, INFLIGHT as u64,
        "the drain ack reports every admitted query as served"
    );

    let report = handle.join().expect("server thread");
    assert!(report.draining);
    assert_eq!(report.served, INFLIGHT as u64);
    assert_eq!(report.queue_depth, 0, "nothing is left parked");
    assert!(
        Client::connect(addr).is_err(),
        "the listener is closed after drain"
    );
}

// ---------------------------------------------------------------------
// 8. Engine-level drain refusal
// ---------------------------------------------------------------------

/// After a drain begins, new submissions are refused with the typed
/// `Draining` error (no socket in the way: this pins the engine API).
#[test]
fn submissions_after_drain_are_refused_typed() {
    let _guard = lock_knobs();
    let registry = registry_via(&mut ModelCache::in_memory());
    let engine = Engine::start(registry, ServeConfig::default());
    let fp = fingerprint();

    let receiver = engine.submit("KNN", fp.clone(), 0).expect("admitted");
    match receiver.recv() {
        Ok(Response::Located(_)) => {}
        other => panic!("pre-drain query: {other:?}"),
    }
    engine.begin_drain();
    match engine.submit("KNN", fp, 0) {
        Err(ServeError::Draining) => {}
        Ok(_) => panic!("a draining engine admitted a query"),
        Err(other) => panic!("expected Draining, got {other:?}"),
    }
    engine.await_drained();
    assert!(engine.health().draining);
}
