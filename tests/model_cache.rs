//! Model-cache acceptance tier: the content-addressed trained-model
//! cache must (a) train each unique `(member config, scenario cell)`
//! pair **exactly once** across figure-style passes over overlapping
//! cells — asserted through the cache's hit/miss counters — and (b) be
//! invisible in the results: a suite restored from a warm cache sweeps
//! to the **byte-identical** `tests/golden/quick_sweep.csv` a cache-off
//! `Suite::train` produces, at every tested `CALLOC_THREADS`, without
//! regenerating goldens.
//!
//! The pinned fixture (building, collection protocol, suite profile,
//! sweep spec) comes from `calloc_repro::testkit`, shared with the
//! golden and fault-tolerance tiers. The cache is exercised through its
//! explicit API rather than `CALLOC_MODEL_CACHE` so the tests cannot
//! leak process-global environment into sibling tests; CI's warm-cache
//! legs cover the environment-variable path end to end.

use calloc_eval::{ModelCache, Suite};
use calloc_repro::testkit::{lock_knobs, pinned_building_spec, quick_profile, quick_sweep_spec};
use calloc_sim::{collection_identity, Building, CollectionConfig, Scenario};
use calloc_tensor::par;
use std::path::PathBuf;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/quick_sweep.csv");

fn golden_bytes() -> String {
    std::fs::read_to_string(GOLDEN_PATH).expect(
        "tests/golden/quick_sweep.csv is checked in; regenerate it with \
         `cargo test --test golden_reports -- --ignored`",
    )
}

/// The pinned scenario of the golden tier plus its cache-cell identity —
/// the same (spec, salt 5, small protocol, seed 11) recipe
/// `testkit::scenario_and_suite` trains on.
fn pinned_cell(seed: u64) -> (Scenario, String) {
    let building = Building::generate(pinned_building_spec(), 5);
    let scenario = Scenario::generate(&building, &CollectionConfig::small(), seed);
    let cell = collection_identity(&pinned_building_spec(), 5, &CollectionConfig::small(), seed);
    (scenario, cell)
}

fn tmp_cache(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("calloc_mc_{}_{name}.bin", std::process::id()))
}

#[test]
fn overlapping_figure_passes_train_each_member_cell_pair_exactly_once() {
    let _guard = lock_knobs();
    let profile = quick_profile();
    let (scenario_a, cell_a) = pinned_cell(11);
    let (scenario_b, cell_b) = pinned_cell(12);
    let mut cache = ModelCache::in_memory();

    // "Figure 1" covers cell A cold: every member (plus the surrogate)
    // misses once and trains once.
    Suite::train_cached(&scenario_a, &profile, &cell_a, &mut cache).expect("fig-1 pass");
    let trainings = cache.misses();
    assert!(trainings > 0, "the suite must train at least one member");
    assert_eq!(cache.hits(), 0, "a fresh cache cannot hit");
    assert_eq!(
        cache.len() as u64,
        trainings,
        "every training must be recorded"
    );

    // "Figure 2" covers cell B (new — trains) and then cell A again
    // (overlapping — restored, zero retraining).
    Suite::train_cached(&scenario_b, &profile, &cell_b, &mut cache).expect("fig-2 new cell");
    assert_eq!(cache.misses(), 2 * trainings, "cell B is a cold cell");
    assert_eq!(cache.hits(), 0, "cell B shares no models with cell A");
    Suite::train_cached(&scenario_a, &profile, &cell_a, &mut cache).expect("fig-2 overlap");
    assert_eq!(
        cache.misses(),
        2 * trainings,
        "the overlapping cell must not train anything"
    );
    assert_eq!(
        cache.hits(),
        trainings,
        "the overlapping cell must restore every member from the cache"
    );
    assert_eq!(
        cache.len() as u64,
        2 * trainings,
        "each unique (member config, cell) pair is recorded exactly once"
    );
}

#[test]
fn warm_cache_sweep_matches_golden_at_threads_1_and_4() {
    let _guard = lock_knobs();
    let profile = quick_profile();
    let (scenario, cell) = pinned_cell(11);
    let path = tmp_cache("warm_golden");
    let _ = std::fs::remove_file(&path);
    let datasets = Suite::scenario_datasets(&scenario, "B1");
    let spec = quick_sweep_spec();

    // Cold: train into a fresh disk cache (checkpointed by train_cached).
    let mut cold_cache = ModelCache::open(&path).expect("fresh cache");
    let cold = Suite::train_cached(&scenario, &profile, &cell, &mut cold_cache).expect("cold run");
    assert_eq!(cold_cache.hits(), 0);

    // Warm: a new "process" reopens the checkpoint and restores every
    // model without training.
    let mut warm_cache = ModelCache::open(&path).expect("reopen checkpoint");
    assert_eq!(warm_cache.len(), cold_cache.len(), "checkpoint is complete");
    let warm = Suite::train_cached(&scenario, &profile, &cell, &mut warm_cache).expect("warm run");
    assert_eq!(warm_cache.misses(), 0, "a warm cache must not train");

    // Both suites must sweep to the golden bytes — the same bytes the
    // cache-off `Suite::train` path pins in tests/golden_reports.rs — at
    // 1 and 4 threads. The guard restores the ambient budget on failure.
    let _threads = par::ThreadGuard::new(1);
    for threads in [1usize, 4] {
        par::set_threads(threads);
        assert_eq!(
            cold.sweep(&datasets, &spec).to_csv(),
            golden_bytes(),
            "cold cached sweep diverged from the golden file at {threads} threads"
        );
        assert_eq!(
            warm.sweep(&datasets, &spec).to_csv(),
            golden_bytes(),
            "warm cached sweep diverged from the golden file at {threads} threads"
        );
    }
    let _ = std::fs::remove_file(&path);
}
