//! Determinism regression tests: the whole pipeline — simulation, training
//! and inference — must be bit-identical across runs for a fixed seed.
//!
//! Every future performance PR (sharding, batching, parallel hot paths)
//! rides on the seeded xoshiro/splitmix substrate in `calloc_tensor::Rng`;
//! this suite is the tripwire that catches any change that silently breaks
//! reproducibility.

use calloc::{CallocConfig, CallocTrainer, Localizer};
use calloc_sim::{Building, BuildingId, BuildingSpec, CollectionConfig, Scenario};
use calloc_tensor::par;
use std::sync::Mutex;

/// Serializes the tests that flip the process-global `par` knobs, so one
/// test's guard drop cannot land in the middle of another's parallel run
/// and silently turn it into a serial-vs-serial comparison.
static KNOB_LOCK: Mutex<()> = Mutex::new(());

fn lock_knobs() -> std::sync::MutexGuard<'static, ()> {
    KNOB_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Raw-bit matrix equality: the contract is *bit*-identity, and
/// `PartialEq` on `f64` would let a `0.0` / `-0.0` divergence slip by.
fn assert_matrix_bits_eq(a: &calloc_tensor::Matrix, b: &calloc_tensor::Matrix, context: &str) {
    assert_eq!(a.shape(), b.shape(), "{context}: shapes differ");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{context}: element {i} differs ({x} vs {y})"
        );
    }
}

fn small_spec() -> BuildingSpec {
    BuildingSpec {
        path_length_m: 14,
        num_aps: 18,
        ..BuildingId::B1.spec()
    }
}

/// `Scenario::generate` is a pure function of (building, config, seed):
/// feature matrices and labels are bit-identical across runs.
#[test]
fn scenario_generation_is_bit_identical() {
    let building = Building::generate(small_spec(), 9);
    let a = Scenario::generate(&building, &CollectionConfig::small(), 123);
    let b = Scenario::generate(&building, &CollectionConfig::small(), 123);
    assert_eq!(a.train.x, b.train.x);
    assert_eq!(a.train.labels, b.train.labels);
    assert_eq!(a.test_per_device.len(), b.test_per_device.len());
    for ((da, dsa), (db, dsb)) in a.test_per_device.iter().zip(&b.test_per_device) {
        assert_eq!(da, db);
        assert_eq!(dsa.x, dsb.x, "test features differ for device {da:?}");
        assert_eq!(dsa.labels, dsb.labels);
    }
}

/// Building realization itself is seed-deterministic.
#[test]
fn building_generation_is_bit_identical() {
    let a = Building::generate(small_spec(), 4);
    let b = Building::generate(small_spec(), 4);
    assert_eq!(a.num_rps(), b.num_rps());
    assert_eq!(a.num_aps(), b.num_aps());
    let pm = calloc_sim::PropagationModel::default();
    for rp in 0..a.num_rps() {
        for ap in 0..a.num_aps() {
            assert_eq!(
                pm.mean_rss_dbm(&a, rp, ap).to_bits(),
                pm.mean_rss_dbm(&b, rp, ap).to_bits(),
                "mean RSS differs at rp={rp} ap={ap}"
            );
        }
    }
}

/// Two `CallocTrainer::fit` runs with the same config seed produce
/// bit-identical models: identical logits (compared exactly, via `f64`
/// bit patterns) and identical predictions on both train and test data.
#[test]
fn calloc_training_is_bit_identical() {
    let building = Building::generate(small_spec(), 9);
    let scenario = Scenario::generate(&building, &CollectionConfig::small(), 123);
    let config = CallocConfig {
        epochs_per_lesson: 4,
        ..CallocConfig::fast()
    };

    let run_a = CallocTrainer::new(config).fit(&scenario.train);
    let run_b = CallocTrainer::new(config).fit(&scenario.train);

    let test = &scenario.test_per_device[0].1;
    let logits_a = run_a
        .model
        .as_differentiable()
        .expect("calloc is differentiable")
        .logits(&test.x);
    let logits_b = run_b
        .model
        .as_differentiable()
        .expect("calloc is differentiable")
        .logits(&test.x);
    assert_matrix_bits_eq(&logits_a, &logits_b, "test logits are not bit-identical");

    assert_eq!(
        run_a.model.predict_classes(&scenario.train.x),
        run_b.model.predict_classes(&scenario.train.x)
    );
    assert_eq!(
        run_a.model.predict_classes(&test.x),
        run_b.model.predict_classes(&test.x)
    );
    assert_eq!(run_a.lesson_reports.len(), run_b.lesson_reports.len());
}

/// The parallel compute runtime's core contract: training is
/// bit-identical for every thread count (`CALLOC_THREADS` = 1, 2, 4 here,
/// via the process-local override), with the per-chunk work floor dropped
/// so the parallel code paths actually engage at test sizes.
///
/// CI additionally runs this whole suite twice, with `CALLOC_THREADS=1`
/// and `CALLOC_THREADS=4`, comparing across processes.
#[test]
fn calloc_training_is_thread_count_invariant() {
    let _guard = lock_knobs();
    let building = Building::generate(small_spec(), 9);
    let scenario = Scenario::generate(&building, &CollectionConfig::small(), 123);
    let config = CallocConfig {
        epochs_per_lesson: 3,
        ..CallocConfig::fast()
    };
    let test = &scenario.test_per_device[0].1;

    let _floor = par::MinWorkGuard::new(1);
    let _threads = par::ThreadGuard::new(1);
    let mut logits_per_thread_count = Vec::new();
    for threads in [1usize, 2, 4] {
        par::set_threads(threads);
        let run = CallocTrainer::new(config).fit(&scenario.train);
        logits_per_thread_count.push((
            threads,
            run.model
                .as_differentiable()
                .expect("calloc is differentiable")
                .logits(&test.x),
        ));
    }

    let (_, ref serial) = logits_per_thread_count[0];
    for (threads, logits) in &logits_per_thread_count[1..] {
        assert_matrix_bits_eq(
            serial,
            logits,
            &format!("training logits diverge between 1 and {threads} threads"),
        );
    }
}

/// Parallel suite training (members fan out onto worker threads) must
/// produce the same members, in figure order, with bit-identical
/// predictions, for every thread count.
#[test]
fn suite_training_is_thread_count_invariant() {
    use calloc_eval::{Suite, SuiteProfile};

    let _guard = lock_knobs();
    let building = Building::generate(small_spec(), 9);
    let scenario = Scenario::generate(&building, &CollectionConfig::small(), 7);
    let profile = SuiteProfile {
        calloc: CallocConfig {
            epochs_per_lesson: 2,
            ..CallocConfig::fast()
        },
        lessons: 2,
        include_nc: false,
        include_sota: false,
        include_classical: true,
        baseline_epochs: 4,
        train_epsilon: 0.025,
        seed: 3,
    };
    let test = &scenario.test_per_device[0].1;

    let _floor = par::MinWorkGuard::new(1);
    let _threads = par::ThreadGuard::new(1);
    let serial = Suite::train(&scenario, &profile);
    par::set_threads(4);
    let parallel = Suite::train(&scenario, &profile);

    assert_eq!(serial.members.len(), parallel.members.len());
    for (a, b) in serial.members.iter().zip(&parallel.members) {
        assert_eq!(a.name, b.name, "member order must be figure order");
        assert_eq!(
            a.model.predict_classes(&test.x),
            b.model.predict_classes(&test.x),
            "{} predictions diverge across thread counts",
            a.name
        );
    }
    assert_matrix_bits_eq(
        &serial.surrogate.infer(&test.x),
        &parallel.surrogate.infer(&test.x),
        "surrogate diverges across thread counts",
    );
}

/// GPC inference rides on the batched kernel-distance engine
/// (`calloc_tensor::kernel` cross-kernel + row-parallel gradient): scores,
/// predictions and the white-box input gradient must be bit-identical for
/// every thread count, with the work floor dropped so every row fan-out
/// engages at test sizes.
#[test]
fn gpc_inference_is_thread_count_invariant() {
    use calloc_baselines::{GpcConfig, GpcLocalizer};
    use calloc_nn::DifferentiableModel;
    use calloc_tensor::{Matrix, Rng};

    let _guard = lock_knobs();
    let mut rng = Rng::new(41);
    let classes = 4;
    let x_train = Matrix::from_fn(33, 6, |_, _| rng.uniform(0.0, 1.0));
    let y_train: Vec<usize> = (0..33).map(|i| i % classes).collect();
    let gpc =
        GpcLocalizer::fit(x_train, y_train, classes, GpcConfig::default()).expect("SPD kernel");
    let x = Matrix::from_fn(11, 6, |_, _| rng.uniform(0.0, 1.0));
    let targets: Vec<usize> = (0..11).map(|i| (i * 3) % classes).collect();

    let _floor = par::MinWorkGuard::new(1);
    let _threads = par::ThreadGuard::new(1);
    let mut runs = Vec::new();
    for threads in [1usize, 2, 4] {
        par::set_threads(threads);
        let (loss, grad) = gpc.loss_and_input_grad(&x, &targets);
        runs.push((threads, gpc.scores(&x), loss, grad));
    }

    let (_, ref scores1, loss1, ref grad1) = runs[0];
    for (threads, scores, loss, grad) in &runs[1..] {
        assert_matrix_bits_eq(
            scores1,
            scores,
            &format!("GPC scores diverge between 1 and {threads} threads"),
        );
        assert_eq!(
            loss1.to_bits(),
            loss.to_bits(),
            "GPC loss diverges between 1 and {threads} threads"
        );
        assert_matrix_bits_eq(
            grad1,
            grad,
            &format!("GPC input gradient diverges between 1 and {threads} threads"),
        );
    }
}

/// The sweep engine's plan-index merge contract: the full attack-axis
/// cross-product (all crafting kinds × both MITM variants × all targeting
/// strategies × ε × ø grids plus the clean cell) over a quick-profile
/// suite produces an **equal `ResultTable`** — same rows, same order,
/// same CSV bytes — at every thread count.
#[test]
fn sweep_engine_is_thread_count_invariant() {
    use calloc_eval::{Suite, SuiteProfile, SweepSpec};

    let _guard = lock_knobs();
    let building = Building::generate(small_spec(), 9);
    let scenario = Scenario::generate(&building, &CollectionConfig::small(), 7);
    let profile = SuiteProfile {
        calloc: CallocConfig {
            epochs_per_lesson: 2,
            ..CallocConfig::fast()
        },
        lessons: 2,
        include_nc: false,
        include_sota: false,
        include_classical: true, // covers the GPC Cholesky path
        baseline_epochs: 4,
        train_epsilon: 0.025,
        seed: 3,
    };
    let spec = SweepSpec::full_grid(vec![0.1, 0.3], vec![50.0, 100.0]).with_seed(5);

    let _floor = par::MinWorkGuard::new(1);
    let _threads = par::ThreadGuard::new(1);
    let suite = Suite::train(&scenario, &profile);
    let datasets = Suite::scenario_datasets(&scenario, "B1");
    let serial = suite.sweep(&datasets, &spec);
    let mut parallel_tables = Vec::new();
    for threads in [2usize, 4] {
        par::set_threads(threads);
        parallel_tables.push((threads, suite.sweep(&datasets, &spec)));
    }

    let per_pair = 1 + 3 * 2 * 3 * 2 * 2;
    assert_eq!(
        serial.len(),
        suite.members.len() * datasets.len() * per_pair,
        "plan must cover the full cross-product"
    );
    for (threads, table) in &parallel_tables {
        assert_eq!(
            &serial, table,
            "ResultTable diverges between 1 and {threads} threads"
        );
        assert_eq!(
            serial.to_csv(),
            table.to_csv(),
            "CSV bytes diverge between 1 and {threads} threads"
        );
    }
}

/// The scenario-grid engine's plan-index merge contract: a
/// `ScenarioSpec` grid (buildings × densities × device sets ×
/// environments × seeds) generates **bit-identical** scenario sets at
/// every thread count, and a one-cell grid is bit-identical to the direct
/// `Scenario::generate` call — the session-level fan-out inside a single
/// generation is covered by the same comparison (a one-cell plan leaves
/// the thread budget to the sessions).
#[test]
fn scenario_grid_is_thread_count_invariant() {
    use calloc_sim::{EnvLevel, ScenarioSpec};

    let _guard = lock_knobs();
    let spec = ScenarioSpec::from_base(
        vec![
            small_spec(),
            BuildingSpec {
                path_length_m: 11,
                num_aps: 13,
                ..BuildingId::B5.spec()
            },
        ],
        9,
        CollectionConfig::small(),
        vec![123, 124],
    )
    .with_environments(vec![EnvLevel::BASELINE, EnvLevel::uniform(2.0)]);
    let single = ScenarioSpec::single(small_spec(), 9, CollectionConfig::small(), 123);

    let _floor = par::MinWorkGuard::new(1);
    let _threads = par::ThreadGuard::new(1);
    let serial = spec.generate();
    let serial_single = single.generate();
    assert_eq!(serial.len(), 2 * 2 * 2);
    let mut parallel_runs = Vec::new();
    for threads in [2usize, 4] {
        par::set_threads(threads);
        parallel_runs.push((threads, spec.generate(), single.generate()));
    }

    let direct = Scenario::generate(
        &Building::generate(small_spec(), 9),
        &CollectionConfig::small(),
        123,
    );
    assert_eq!(
        serial_single.scenario(0),
        &direct,
        "one-cell grid must match the direct call"
    );
    for (threads, set, set_single) in &parallel_runs {
        assert_eq!(serial.len(), set.len());
        for i in 0..serial.len() {
            let (a, b) = (serial.scenario(i), set.scenario(i));
            assert_matrix_bits_eq(
                &a.train.x,
                &b.train.x,
                &format!("grid cell {i} survey diverges between 1 and {threads} threads"),
            );
            assert_eq!(a.train.labels, b.train.labels);
            for ((da, ta), (_, tb)) in a.test_per_device.iter().zip(&b.test_per_device) {
                assert_matrix_bits_eq(
                    &ta.x,
                    &tb.x,
                    &format!(
                        "grid cell {i} {} session diverges between 1 and {threads} threads",
                        da.acronym
                    ),
                );
            }
        }
        assert_matrix_bits_eq(
            &serial_single.scenario(0).train.x,
            &set_single.scenario(0).train.x,
            &format!("single-cell survey diverges between 1 and {threads} threads"),
        );
    }
}

/// Fault-tolerance extension of the merge contract: a sweep that is
/// first poisoned by an injected always-failing cell (quarantined, not
/// fatal) and then **resumed** against the same store with the fault
/// cleared must produce a `ResultTable` equal — same rows, same order,
/// same CSV bytes — to the plain one-shot sweep, at every thread count.
#[test]
fn resume_after_injected_fault_is_thread_count_invariant() {
    use calloc_eval::{ExecSpec, FaultPlan, Suite, SuiteProfile, SweepSpec};

    calloc_tensor::par::silence_injected_panics();
    let _guard = lock_knobs();
    let building = Building::generate(small_spec(), 9);
    let scenario = Scenario::generate(&building, &CollectionConfig::small(), 7);
    let profile = SuiteProfile {
        calloc: CallocConfig {
            epochs_per_lesson: 2,
            ..CallocConfig::fast()
        },
        lessons: 2,
        include_nc: false,
        include_sota: false,
        include_classical: true,
        baseline_epochs: 4,
        train_epsilon: 0.025,
        seed: 3,
    };
    let spec = SweepSpec::full_grid(vec![0.1, 0.3], vec![50.0, 100.0]).with_seed(5);

    let _floor = par::MinWorkGuard::new(1);
    let _threads = par::ThreadGuard::new(1);
    let suite = Suite::train(&scenario, &profile);
    let datasets = Suite::scenario_datasets(&scenario, "B1");
    let reference = suite.sweep(&datasets, &spec);
    let plan = suite.sweep_plan(&datasets, &spec);
    let poisoned = [1usize, plan.len() / 2];

    for threads in [1usize, 2, 4] {
        par::set_threads(threads);
        // First pass: the poisoned cells fail every attempt and are
        // quarantined; everything else lands in the store.
        let faulty = ExecSpec::default()
            .with_retries(1)
            .with_faults(FaultPlan::panic_on(&poisoned, usize::MAX));
        let mut store = plan.memory_store();
        let report = suite
            .sweep_with_store(&plan, &datasets, &faulty, &mut store)
            .expect("poisoned pass");
        assert_eq!(
            report.errors.len(),
            poisoned.len(),
            "both poisoned cells must be quarantined at {threads} threads"
        );
        assert_eq!(store.len(), plan.len() - poisoned.len());
        // Resume with the fault gone: only the quarantined cells rerun.
        let report = suite
            .sweep_with_store(&plan, &datasets, &ExecSpec::default(), &mut store)
            .expect("resumed pass");
        assert!(report.is_complete(), "{}", report.summary());
        assert_eq!(report.executed, poisoned.len());
        assert_eq!(
            &reference, &report.table,
            "resumed ResultTable diverges from the one-shot sweep at {threads} threads"
        );
        assert_eq!(
            reference.to_csv(),
            report.table.to_csv(),
            "resumed CSV bytes diverge from the one-shot sweep at {threads} threads"
        );
    }
}

/// The trajectory pipeline's merge contract: grid generation (motion
/// walks + per-tick sessions) and the sequential-inference sweep (raw /
/// filtered / smoothed rows per member) produce an **equal
/// `TrajectoryTable`** — same rows, same order, same CSV bytes — at
/// `CALLOC_THREADS` 1, 2, 4 and 8, and the generated trajectories
/// themselves are bit-identical across thread counts.
#[test]
fn trajectory_sweep_is_thread_count_invariant() {
    use calloc_baselines::KnnLocalizer;
    use calloc_sim::{EnvLevel, MotionConfig, TrajectorySpec};
    use calloc_track::{run_trajectory_sweep, TrackConfig};

    let _guard = lock_knobs();
    let spec = TrajectorySpec::from_base(
        vec![
            small_spec(),
            BuildingSpec {
                path_length_m: 11,
                num_aps: 13,
                ..BuildingId::B5.spec()
            },
        ],
        9,
        MotionConfig::paper(),
        CollectionConfig::small(),
        vec![5, 8],
        vec![3],
    )
    .with_environments(vec![EnvLevel::BASELINE, EnvLevel::uniform(2.0)]);

    let _floor = par::MinWorkGuard::new(1);
    let _threads = par::ThreadGuard::new(1);
    let run = || {
        let set = spec.plan().generate();
        let members: Vec<KnnLocalizer> = set
            .plan()
            .buildings()
            .iter()
            .map(|building| {
                let scenario = Scenario::generate(building, &CollectionConfig::small(), 17);
                KnnLocalizer::fit(
                    scenario.train.x.clone(),
                    scenario.train.labels.clone(),
                    building.num_rps(),
                    3,
                )
            })
            .collect();
        let member_refs: Vec<Vec<(&str, &dyn Localizer)>> = members
            .iter()
            .map(|knn| vec![("KNN", knn as &dyn Localizer)])
            .collect();
        let table = run_trajectory_sweep(&set, &member_refs, &TrackConfig::paper());
        let observation_bits: Vec<Vec<u64>> = set
            .trajectories()
            .iter()
            .map(|t| {
                t.observations
                    .as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect()
            })
            .collect();
        (table, observation_bits)
    };

    let (serial_table, serial_bits) = run();
    assert_eq!(
        serial_table.len(),
        2 * 2 * 2 * 3,
        "one raw/filtered/smoothed row triple per grid cell"
    );
    for threads in [2usize, 4, 8] {
        par::set_threads(threads);
        let (table, bits) = run();
        assert_eq!(
            serial_bits, bits,
            "generated trajectories diverge between 1 and {threads} threads"
        );
        assert_eq!(
            serial_table, table,
            "TrajectoryTable diverges between 1 and {threads} threads"
        );
        assert_eq!(
            serial_table.to_csv(),
            table.to_csv(),
            "trajectory CSV bytes diverge between 1 and {threads} threads"
        );
    }
}

/// Different seeds must actually change the realization — guards against a
/// determinism test passing because the seed is ignored entirely.
#[test]
fn different_seeds_produce_different_scenarios() {
    let building = Building::generate(small_spec(), 9);
    let a = Scenario::generate(&building, &CollectionConfig::small(), 1);
    let b = Scenario::generate(&building, &CollectionConfig::small(), 2);
    assert_ne!(
        a.train.x, b.train.x,
        "seed is ignored by Scenario::generate"
    );
}
