//! Determinism regression tests: the whole pipeline — simulation, training
//! and inference — must be bit-identical across runs for a fixed seed.
//!
//! Every future performance PR (sharding, batching, parallel hot paths)
//! rides on the seeded xoshiro/splitmix substrate in `calloc_tensor::Rng`;
//! this suite is the tripwire that catches any change that silently breaks
//! reproducibility.

use calloc::{CallocConfig, CallocTrainer, Localizer};
use calloc_sim::{Building, BuildingId, BuildingSpec, CollectionConfig, Scenario};

fn small_spec() -> BuildingSpec {
    BuildingSpec {
        path_length_m: 14,
        num_aps: 18,
        ..BuildingId::B1.spec()
    }
}

/// `Scenario::generate` is a pure function of (building, config, seed):
/// feature matrices and labels are bit-identical across runs.
#[test]
fn scenario_generation_is_bit_identical() {
    let building = Building::generate(small_spec(), 9);
    let a = Scenario::generate(&building, &CollectionConfig::small(), 123);
    let b = Scenario::generate(&building, &CollectionConfig::small(), 123);
    assert_eq!(a.train.x, b.train.x);
    assert_eq!(a.train.labels, b.train.labels);
    assert_eq!(a.test_per_device.len(), b.test_per_device.len());
    for ((da, dsa), (db, dsb)) in a.test_per_device.iter().zip(&b.test_per_device) {
        assert_eq!(da, db);
        assert_eq!(dsa.x, dsb.x, "test features differ for device {da:?}");
        assert_eq!(dsa.labels, dsb.labels);
    }
}

/// Building realization itself is seed-deterministic.
#[test]
fn building_generation_is_bit_identical() {
    let a = Building::generate(small_spec(), 4);
    let b = Building::generate(small_spec(), 4);
    assert_eq!(a.num_rps(), b.num_rps());
    assert_eq!(a.num_aps(), b.num_aps());
    let pm = calloc_sim::PropagationModel::default();
    for rp in 0..a.num_rps() {
        for ap in 0..a.num_aps() {
            assert_eq!(
                pm.mean_rss_dbm(&a, rp, ap).to_bits(),
                pm.mean_rss_dbm(&b, rp, ap).to_bits(),
                "mean RSS differs at rp={rp} ap={ap}"
            );
        }
    }
}

/// Two `CallocTrainer::fit` runs with the same config seed produce
/// bit-identical models: identical logits (compared exactly, via `f64`
/// bit patterns) and identical predictions on both train and test data.
#[test]
fn calloc_training_is_bit_identical() {
    let building = Building::generate(small_spec(), 9);
    let scenario = Scenario::generate(&building, &CollectionConfig::small(), 123);
    let config = CallocConfig {
        epochs_per_lesson: 4,
        ..CallocConfig::fast()
    };

    let run_a = CallocTrainer::new(config).fit(&scenario.train);
    let run_b = CallocTrainer::new(config).fit(&scenario.train);

    let test = &scenario.test_per_device[0].1;
    let logits_a = run_a
        .model
        .as_differentiable()
        .expect("calloc is differentiable")
        .logits(&test.x);
    let logits_b = run_b
        .model
        .as_differentiable()
        .expect("calloc is differentiable")
        .logits(&test.x);
    assert_eq!(logits_a, logits_b, "test logits are not bit-identical");

    assert_eq!(
        run_a.model.predict_classes(&scenario.train.x),
        run_b.model.predict_classes(&scenario.train.x)
    );
    assert_eq!(
        run_a.model.predict_classes(&test.x),
        run_b.model.predict_classes(&test.x)
    );
    assert_eq!(run_a.lesson_reports.len(), run_b.lesson_reports.len());
}

/// Different seeds must actually change the realization — guards against a
/// determinism test passing because the seed is ignored entirely.
#[test]
fn different_seeds_produce_different_scenarios() {
    let building = Building::generate(small_spec(), 9);
    let a = Scenario::generate(&building, &CollectionConfig::small(), 1);
    let b = Scenario::generate(&building, &CollectionConfig::small(), 2);
    assert_ne!(
        a.train.x, b.train.x,
        "seed is ignored by Scenario::generate"
    );
}
