//! Property tests of online GPC recalibration: `GpcLocalizer::absorb`
//! must stay within its pinned tolerance of a full refit across random
//! problem sizes — the tolerance-tier contract of the streaming
//! recalibration path (batch fitting and inference stay bit-pinned and
//! are covered by `perf_baseline` and the golden tier).

use calloc_baselines::{GpcConfig, GpcLocalizer};
use calloc_nn::Localizer;
use calloc_tensor::{Matrix, Rng};
use proptest::prelude::*;

/// Pinned absorb-vs-refit tolerance on raw GP scores (documented on
/// [`GpcLocalizer::absorb`] and in the README's trajectory section).
const ABSORB_TOLERANCE: f64 = 1e-6;

/// A random normalized fingerprint bank with `classes` labels.
fn random_bank(n: usize, dim: usize, classes: usize, seed: u64) -> (Matrix, Vec<usize>) {
    let mut rng = Rng::new(seed);
    let x = Matrix::from_fn(n, dim, |_, _| rng.uniform(0.0, 1.0));
    let y = (0..n).map(|i| i % classes).collect();
    (x, y)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `absorb`-then-predict stays within the pinned tolerance of a full
    /// refit on the concatenated bank, for arbitrary bank sizes, widths,
    /// class counts and absorb batch sizes — and the absorbed factor
    /// still reconstructs the grown kernel matrix.
    #[test]
    fn absorb_then_predict_matches_full_refit(
        n in 4usize..32,
        dim in 2usize..10,
        classes in 2usize..5,
        extra in 1usize..6,
        seed in any::<u64>(),
    ) {
        let (x, y) = random_bank(n + extra, dim, classes, seed);
        let head = Matrix::from_fn(n, dim, |r, c| x.get(r, c));
        let tail = Matrix::from_fn(extra, dim, |r, c| x.get(n + r, c));
        let config = GpcConfig::default();

        let mut absorbed = GpcLocalizer::fit(head, y[..n].to_vec(), classes, config)
            .expect("random banks with default noise are SPD");
        absorbed.absorb(&tail, &y[n..]).expect("absorb");
        let refit = GpcLocalizer::fit(x, y, classes, config).expect("refit");

        let mut rng = Rng::new(seed ^ 0x0BAD_CAFE);
        let queries = Matrix::from_fn(6, dim, |_, _| rng.uniform(0.0, 1.0));
        let (sa, sr) = (absorbed.scores(&queries), refit.scores(&queries));
        for (i, (a, b)) in sa.as_slice().iter().zip(sr.as_slice()).enumerate() {
            prop_assert!(
                (a - b).abs() < ABSORB_TOLERANCE,
                "score {}: absorbed {} vs refit {} (diff {:e})", i, a, b, (a - b).abs()
            );
        }
        prop_assert_eq!(
            absorbed.predict_classes(&queries),
            refit.predict_classes(&queries),
            "predictions must agree within the tolerance regime"
        );

        // The incrementally grown factor is still a valid factorization
        // of the grown kernel (L·Lᵀ = K + σ²I).
        let l = absorbed.factor().expect("absorb retains the factor");
        let kernel = calloc_tensor::linalg::add_diagonal(
            &calloc_tensor::kernel::rbf_gram(absorbed.x_train(), config.length_scale),
            config.noise,
        );
        prop_assert!(
            l.matmul(&l.transpose()).approx_eq(&kernel, 1e-7),
            "grown factor no longer factors the grown kernel"
        );
    }

    /// Absorbing in one batch equals absorbing point by point: the
    /// incremental path is associative over its inputs.
    #[test]
    fn batched_and_sequential_absorb_agree(
        n in 4usize..24,
        dim in 2usize..8,
        extra in 2usize..5,
        seed in any::<u64>(),
    ) {
        let classes = 3;
        let (x, y) = random_bank(n + extra, dim, classes, seed);
        let head = Matrix::from_fn(n, dim, |r, c| x.get(r, c));
        let tail = Matrix::from_fn(extra, dim, |r, c| x.get(n + r, c));
        let config = GpcConfig::default();

        let mut batched = GpcLocalizer::fit(head.clone(), y[..n].to_vec(), classes, config)
            .expect("fit");
        batched.absorb(&tail, &y[n..]).expect("absorb");

        let mut sequential = GpcLocalizer::fit(head, y[..n].to_vec(), classes, config)
            .expect("fit");
        for i in 0..extra {
            let point = Matrix::from_fn(1, dim, |_, c| tail.get(i, c));
            sequential.absorb(&point, &y[n + i..n + i + 1]).expect("absorb");
        }

        for (i, (a, b)) in batched
            .alpha()
            .as_slice()
            .iter()
            .zip(sequential.alpha().as_slice())
            .enumerate()
        {
            prop_assert_eq!(
                a.to_bits(), b.to_bits(),
                "alpha {}: batch absorb must equal point-by-point absorb exactly", i
            );
        }
    }
}
