//! Property-based tests of the classical baselines, starting with the KNN
//! localizer's shape and validity invariants.

use calloc_baselines::KnnLocalizer;
use calloc_nn::Localizer;
use calloc_tensor::{Matrix, Rng};
use proptest::prelude::*;

/// Random training set: `n` fingerprints of `d` APs with labels covering
/// `classes` RP classes.
fn training_set(seed: u64, n: usize, d: usize, classes: usize) -> (Matrix, Vec<usize>) {
    let mut rng = Rng::new(seed);
    let x = Matrix::from_fn(n, d, |_, _| rng.uniform(0.0, 1.0));
    let y = (0..n).map(|i| i % classes).collect();
    (x, y)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Prediction count equals query count, for every k and query size,
    /// and every predicted class is in range.
    #[test]
    fn knn_prediction_count_matches_query_count(
        seed in 0u64..5000,
        n_train in 6usize..40,
        n_query in 1usize..30,
        d in 2usize..24,
        k in 1usize..8,
        classes in 2usize..6,
    ) {
        let classes = classes.min(n_train);
        let (x, y) = training_set(seed, n_train, d, classes);
        let knn = KnnLocalizer::fit(x, y, classes, k);
        let mut rng = Rng::new(seed ^ 0x51_7e);
        let queries = Matrix::from_fn(n_query, d, |_, _| rng.uniform(0.0, 1.0));
        let preds = knn.predict_classes(&queries);
        prop_assert_eq!(preds.len(), n_query);
        prop_assert!(preds.iter().all(|&c| c < classes),
            "prediction out of range: {:?} (classes = {})", preds, classes);
    }

    /// With k = 1, every training fingerprint's nearest neighbor is itself
    /// (distance zero), so the training set is reproduced exactly.
    #[test]
    fn knn_k1_memorizes_training_points(
        seed in 0u64..5000,
        n_train in 4usize..30,
        d in 2usize..16,
    ) {
        let classes = 4usize.min(n_train);
        let (x, y) = training_set(seed, n_train, d, classes);
        let knn = KnnLocalizer::fit(x.clone(), y.clone(), classes, 1);
        prop_assert_eq!(knn.predict_classes(&x), y);
    }

    /// Predictions are per-row independent: predicting a batch equals
    /// predicting each row alone.
    #[test]
    fn knn_rows_predict_independently(
        seed in 0u64..5000,
        n_query in 2usize..10,
        k in 1usize..5,
    ) {
        let (d, classes) = (8, 4);
        let (x, y) = training_set(seed, 20, d, classes);
        let knn = KnnLocalizer::fit(x, y, classes, k);
        let mut rng = Rng::new(seed ^ 0xBEEF);
        let queries = Matrix::from_fn(n_query, d, |_, _| rng.uniform(0.0, 1.0));
        let batch = knn.predict_classes(&queries);
        for (r, &expected) in batch.iter().enumerate() {
            let single = knn.predict_classes(&queries.select_rows(&[r]));
            prop_assert_eq!(single.len(), 1);
            prop_assert_eq!(single[0], expected, "row {} differs", r);
        }
    }
}
