//! Gradient-boosted decision trees (multiclass, softmax objective).
//!
//! SANGRIA classifies autoencoder latents with a categorical
//! gradient-boosted tree ensemble; since no tree library is available
//! offline, this is a from-scratch implementation in the XGBoost style:
//! second-order (Newton) boosting with per-leaf weights
//! `w = −G / (H + λ)` and split gain
//! `G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)`.
//!
//! Split candidates are feature quantiles (not every midpoint), which keeps
//! training fast at the dimensionalities SANGRIA uses it for (a 32-d
//! latent).

use calloc_nn::state::{StateError, StateReader, StateWriter};
use calloc_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// GBDT hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GbdtConfig {
    /// Boosting rounds (one tree per class per round).
    pub rounds: usize,
    /// Shrinkage applied to each tree's output.
    pub learning_rate: f64,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required in a leaf.
    pub min_samples_leaf: usize,
    /// L2 regularization λ on leaf weights.
    pub lambda: f64,
    /// Number of quantile split candidates evaluated per feature.
    pub num_thresholds: usize,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            rounds: 40,
            learning_rate: 0.3,
            max_depth: 4,
            min_samples_leaf: 2,
            lambda: 1.0,
            num_thresholds: 16,
        }
    }
}

/// A node of a regression tree, stored in an index arena.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Arena index of the `x <= threshold` child.
        left: usize,
        /// Arena index of the `x > threshold` child.
        right: usize,
    },
}

/// A single regression tree fitted to (gradient, hessian) targets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Predicted value for one feature row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (leaves + splits).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn fit(x: &Matrix, grad: &[f64], hess: &[f64], indices: &[usize], config: &GbdtConfig) -> Self {
        let mut nodes = Vec::new();
        build(x, grad, hess, indices, 0, config, &mut nodes);
        RegressionTree { nodes }
    }

    fn encode_into(&self, w: &mut StateWriter) {
        w.usize(self.nodes.len());
        for node in &self.nodes {
            match node {
                Node::Leaf { value } => {
                    w.u8(0);
                    w.f64(*value);
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    w.u8(1);
                    w.usize(*feature);
                    w.f64(*threshold);
                    w.usize(*left);
                    w.usize(*right);
                }
            }
        }
    }

    fn decode_from(r: &mut StateReader) -> Result<Self, StateError> {
        let n = r.usize()?;
        if n == 0 {
            return Err("regression tree with no nodes".to_string());
        }
        // Each node is at least a tag byte — bound the allocation.
        if n > r.remaining() {
            return Err(format!(
                "node count {n} exceeds {} remaining bytes",
                r.remaining()
            ));
        }
        let mut nodes = Vec::with_capacity(n);
        for me in 0..n {
            nodes.push(match r.u8()? {
                0 => Node::Leaf { value: r.f64()? },
                1 => {
                    let feature = r.usize()?;
                    let threshold = r.f64()?;
                    let left = r.usize()?;
                    let right = r.usize()?;
                    // The builder's arena invariant — children strictly
                    // after their parent — is what makes predict_row
                    // terminate; corrupt indices must not create cycles.
                    if left <= me || right <= me || left >= n || right >= n {
                        return Err(format!(
                            "split node {me} has out-of-order children {left}/{right} of {n}"
                        ));
                    }
                    Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    }
                }
                tag => return Err(format!("unknown tree node tag {tag}")),
            });
        }
        Ok(RegressionTree { nodes })
    }
}

/// Recursively builds a node over `indices`; returns the arena index.
fn build(
    x: &Matrix,
    grad: &[f64],
    hess: &[f64],
    indices: &[usize],
    depth: usize,
    config: &GbdtConfig,
    nodes: &mut Vec<Node>,
) -> usize {
    let g: f64 = indices.iter().map(|&i| grad[i]).sum();
    let h: f64 = indices.iter().map(|&i| hess[i]).sum();
    let leaf_value = -g / (h + config.lambda);

    let make_leaf = |nodes: &mut Vec<Node>| {
        nodes.push(Node::Leaf { value: leaf_value });
        nodes.len() - 1
    };

    if depth >= config.max_depth || indices.len() < 2 * config.min_samples_leaf {
        return make_leaf(nodes);
    }

    // Greedy best split over quantile candidates of every feature.
    let parent_score = g * g / (h + config.lambda);
    let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
    for feature in 0..x.cols() {
        let mut values: Vec<f64> = indices.iter().map(|&i| x.get(i, feature)).collect();
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
        values.dedup();
        if values.len() < 2 {
            continue;
        }
        let step = (values.len() as f64 / (config.num_thresholds + 1) as f64).max(1.0);
        let mut cand = 1.0 * step;
        while (cand as usize) < values.len() {
            let idx = cand as usize;
            let threshold = (values[idx - 1] + values[idx]) / 2.0;
            let (mut gl, mut hl, mut nl) = (0.0, 0.0, 0usize);
            for &i in indices {
                if x.get(i, feature) <= threshold {
                    gl += grad[i];
                    hl += hess[i];
                    nl += 1;
                }
            }
            let nr = indices.len() - nl;
            if nl >= config.min_samples_leaf && nr >= config.min_samples_leaf {
                let gr = g - gl;
                let hr = h - hl;
                let gain =
                    gl * gl / (hl + config.lambda) + gr * gr / (hr + config.lambda) - parent_score;
                if gain > 1e-9 && best.is_none_or(|(bg, _, _)| gain > bg) {
                    best = Some((gain, feature, threshold));
                }
            }
            cand += step;
        }
    }

    let Some((_, feature, threshold)) = best else {
        return make_leaf(nodes);
    };
    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
        .iter()
        .partition(|&&i| x.get(i, feature) <= threshold);

    // Reserve this node's slot before recursing so children come after it.
    nodes.push(Node::Leaf { value: 0.0 });
    let me = nodes.len() - 1;
    let left = build(x, grad, hess, &left_idx, depth + 1, config, nodes);
    let right = build(x, grad, hess, &right_idx, depth + 1, config, nodes);
    nodes[me] = Node::Split {
        feature,
        threshold,
        left,
        right,
    };
    me
}

/// Multiclass gradient-boosted tree classifier (softmax objective).
///
/// # Example
///
/// ```
/// use calloc_baselines::gbdt::{GbdtClassifier, GbdtConfig};
/// use calloc_tensor::Matrix;
///
/// let x = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![0.9], vec![1.0]]);
/// let y = vec![0, 0, 1, 1];
/// let model = GbdtClassifier::fit(&x, &y, 2, &GbdtConfig::default());
/// assert_eq!(model.predict(&x), y);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GbdtClassifier {
    /// `trees[round][class]`.
    trees: Vec<Vec<RegressionTree>>,
    num_classes: usize,
    learning_rate: f64,
}

impl GbdtClassifier {
    /// Fits the ensemble with softmax cross-entropy boosting.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, empty data or an out-of-range label.
    pub fn fit(x: &Matrix, y: &[usize], num_classes: usize, config: &GbdtConfig) -> Self {
        assert_eq!(x.rows(), y.len(), "sample/label mismatch");
        assert!(!y.is_empty(), "empty training set");
        assert!(y.iter().all(|&c| c < num_classes), "label out of range");

        let n = x.rows();
        let all: Vec<usize> = (0..n).collect();
        let mut scores = Matrix::zeros(n, num_classes);
        let mut trees = Vec::with_capacity(config.rounds);

        for _ in 0..config.rounds {
            let probs = scores.softmax_rows();
            let mut round = Vec::with_capacity(num_classes);
            for k in 0..num_classes {
                let mut grad = vec![0.0; n];
                let mut hess = vec![0.0; n];
                for i in 0..n {
                    let p = probs.get(i, k);
                    let target = if y[i] == k { 1.0 } else { 0.0 };
                    grad[i] = p - target;
                    hess[i] = (p * (1.0 - p)).max(1e-6);
                }
                let tree = RegressionTree::fit(x, &grad, &hess, &all, config);
                for i in 0..n {
                    let delta = config.learning_rate * tree.predict_row(x.row(i));
                    scores.set(i, k, scores.get(i, k) + delta);
                }
                round.push(tree);
            }
            trees.push(round);
        }
        GbdtClassifier {
            trees,
            num_classes,
            learning_rate: config.learning_rate,
        }
    }

    /// Raw boosting scores (pre-softmax), `batch` x `num_classes`.
    pub fn scores(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), self.num_classes);
        for r in 0..x.rows() {
            let row = x.row(r);
            for round in &self.trees {
                for (k, tree) in round.iter().enumerate() {
                    out.set(
                        r,
                        k,
                        out.get(r, k) + self.learning_rate * tree.predict_row(row),
                    );
                }
            }
        }
        out
    }

    /// Predicted class per row.
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.scores(x).argmax_rows()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Total number of trees in the ensemble.
    pub fn tree_count(&self) -> usize {
        self.trees.iter().map(Vec::len).sum()
    }

    /// Encodes the fitted ensemble into an open writer (used nested
    /// inside SANGRIA's state).
    pub(crate) fn encode_into(&self, w: &mut StateWriter) {
        w.usize(self.trees.len());
        for round in &self.trees {
            w.usize(round.len());
            for tree in round {
                tree.encode_into(w);
            }
        }
        w.usize(self.num_classes);
        w.f64(self.learning_rate);
    }

    /// Decodes an ensemble written by [`Self::encode_into`].
    pub(crate) fn decode_from(r: &mut StateReader) -> Result<Self, StateError> {
        let rounds = r.usize()?;
        if rounds > r.remaining() {
            return Err(format!(
                "round count {rounds} exceeds {} remaining bytes",
                r.remaining()
            ));
        }
        let mut trees = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let per_round = r.usize()?;
            if per_round > r.remaining() {
                return Err(format!(
                    "tree count {per_round} exceeds {} remaining bytes",
                    r.remaining()
                ));
            }
            let mut round = Vec::with_capacity(per_round);
            for _ in 0..per_round {
                round.push(RegressionTree::decode_from(r)?);
            }
            trees.push(round);
        }
        let num_classes = r.usize()?;
        let learning_rate = r.f64()?;
        if trees.iter().any(|round| round.len() != num_classes) {
            return Err(format!(
                "a boosting round does not hold one tree per class ({num_classes})"
            ));
        }
        Ok(GbdtClassifier {
            trees,
            num_classes,
            learning_rate,
        })
    }

    /// Bit-exact encoding of the fitted ensemble for the model cache
    /// (see [`calloc_nn::state`]).
    pub fn state_bytes(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Decodes an ensemble written by [`Self::state_bytes`]; malformed
    /// input errors, never panics.
    pub fn from_state(bytes: &[u8]) -> Result<Self, StateError> {
        let mut r = StateReader::new(bytes);
        let model = Self::decode_from(&mut r)?;
        r.finish()?;
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calloc_tensor::Rng;

    fn blobs(n_per: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = Rng::new(seed);
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        let centers = [(0.2, 0.2), (0.8, 0.2), (0.5, 0.8)];
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..n_per {
                rows.push(vec![
                    cx + rng.normal(0.0, 0.05),
                    cy + rng.normal(0.0, 0.05),
                    rng.uniform(0.0, 1.0),
                ]);
                ys.push(c);
            }
        }
        (Matrix::from_rows(&rows), ys)
    }

    #[test]
    fn fits_blobs() {
        let (x, y) = blobs(25, 1);
        let model = GbdtClassifier::fit(&x, &y, 3, &GbdtConfig::default());
        let acc = calloc_nn::metrics::accuracy(&model.predict(&x), &y);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn generalizes_to_held_out_points() {
        let (x, y) = blobs(25, 2);
        let (xt, yt) = blobs(10, 3);
        let model = GbdtClassifier::fit(&x, &y, 3, &GbdtConfig::default());
        let acc = calloc_nn::metrics::accuracy(&model.predict(&xt), &yt);
        assert!(acc > 0.85, "held-out accuracy {acc}");
    }

    #[test]
    fn more_rounds_reduce_training_loss() {
        let (x, y) = blobs(20, 4);
        let loss_of = |rounds: usize| {
            let model = GbdtClassifier::fit(
                &x,
                &y,
                3,
                &GbdtConfig {
                    rounds,
                    ..Default::default()
                },
            );
            calloc_nn::loss::cross_entropy(&model.scores(&x), &y).0
        };
        assert!(loss_of(30) < loss_of(2));
    }

    #[test]
    fn depth_zero_trees_are_single_leaves() {
        let (x, y) = blobs(10, 5);
        let model = GbdtClassifier::fit(
            &x,
            &y,
            3,
            &GbdtConfig {
                max_depth: 0,
                rounds: 3,
                ..Default::default()
            },
        );
        // With stumps of depth 0, scores are row-independent.
        let s = model.scores(&x);
        for r in 1..s.rows() {
            assert_eq!(s.row(r), s.row(0));
        }
    }

    #[test]
    fn tree_count_matches_config() {
        let (x, y) = blobs(10, 6);
        let model = GbdtClassifier::fit(
            &x,
            &y,
            3,
            &GbdtConfig {
                rounds: 7,
                ..Default::default()
            },
        );
        assert_eq!(model.tree_count(), 7 * 3);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let (x, y) = blobs(20, 7);
        // With a huge min leaf size no split is admissible → all leaves.
        let model = GbdtClassifier::fit(
            &x,
            &y,
            3,
            &GbdtConfig {
                min_samples_leaf: 1000,
                rounds: 2,
                ..Default::default()
            },
        );
        let s = model.scores(&x);
        for r in 1..s.rows() {
            assert_eq!(s.row(r), s.row(0));
        }
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        GbdtClassifier::fit(&Matrix::zeros(1, 1), &[9], 3, &GbdtConfig::default());
    }
}
