//! WiDeep — denoising autoencoder + Gaussian-process classifier
//! (Abbas et al., IEEE PerCom 2019).
//!
//! WiDeep denoises fingerprints with an autoencoder and classifies the
//! latent code with a GPC. The full pipeline *is* differentiable (encoder
//! chain rule + the GPC's analytic RBF gradient), so WiDeep is attacked
//! white-box — and, as the paper stresses, its GPC head makes it extremely
//! sensitive to residual noise and perturbations.

use calloc_nn::state::{self, StateError, StateReader, StateWriter};
use calloc_nn::{
    Adam, Dense, DifferentiableModel, Layer, Localizer, Mode, Sequential, TrainConfig, Trainer,
};
use calloc_tensor::{Matrix, Rng, TensorError};
use serde::{Deserialize, Serialize};

use crate::gpc::{GpcConfig, GpcLocalizer};

/// WiDeep hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WiDeepConfig {
    /// Latent width of the denoising autoencoder.
    pub latent: usize,
    /// Epochs of denoising pre-training.
    pub pretrain_epochs: usize,
    /// Adam learning rate for pre-training.
    pub learning_rate: f64,
    /// Gaussian corruption std during denoising training.
    pub corruption_std: f64,
    /// GPC head configuration.
    pub gpc: GpcConfig,
    /// Seed.
    pub seed: u64,
}

impl Default for WiDeepConfig {
    fn default() -> Self {
        WiDeepConfig {
            latent: 32,
            pretrain_epochs: 40,
            learning_rate: 1e-3,
            corruption_std: 0.08,
            gpc: GpcConfig::default(),
            seed: 0,
        }
    }
}

/// The WiDeep framework.
#[derive(Debug, Clone)]
pub struct WiDeepLocalizer {
    encoder: Sequential,
    gpc: GpcLocalizer,
}

impl WiDeepLocalizer {
    /// Trains WiDeep: denoising-autoencoder pre-training, then GPC on the
    /// latent codes.
    ///
    /// # Errors
    ///
    /// Returns an error if the GPC kernel matrix is not positive definite.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or empty data.
    pub fn fit(
        x: &Matrix,
        y: &[usize],
        num_classes: usize,
        config: &WiDeepConfig,
    ) -> Result<Self, TensorError> {
        assert_eq!(x.rows(), y.len(), "sample/label mismatch");
        assert!(!y.is_empty(), "empty training set");
        let mut rng = Rng::new(config.seed);
        let in_dim = x.cols();
        let mut dae = Sequential::new(vec![
            Layer::GaussianNoise {
                std: config.corruption_std,
            },
            Layer::Dense(Dense::he(in_dim, config.latent, &mut rng)),
            Layer::Relu,
            Layer::Dense(Dense::xavier(config.latent, in_dim, &mut rng)),
        ]);
        let mut trainer = Trainer::new(
            Adam::new(config.learning_rate),
            TrainConfig {
                epochs: config.pretrain_epochs,
                batch_size: 32,
                seed: config.seed,
                ..Default::default()
            },
        );
        trainer.fit_regression(&mut dae, x, x);
        let encoder = Sequential::new(vec![dae.layers()[1].clone(), Layer::Relu]);
        let latent = encoder.infer(x);
        let gpc = GpcLocalizer::fit(latent, y.to_vec(), num_classes, config.gpc)?;
        Ok(WiDeepLocalizer { encoder, gpc })
    }

    /// Latent codes for a batch of fingerprints.
    pub fn encode(&self, x: &Matrix) -> Matrix {
        self.encoder.infer(x)
    }

    /// The denoising encoder.
    pub fn encoder(&self) -> &Sequential {
        &self.encoder
    }

    /// Bit-exact encoding of the trained framework for the model cache
    /// (see [`calloc_nn::state`]).
    pub fn state_bytes(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        state::write_sequential(&mut w, &self.encoder);
        self.gpc.encode_into(&mut w);
        w.into_bytes()
    }

    /// Decodes a model written by [`Self::state_bytes`]; malformed input
    /// errors, never panics.
    pub fn from_state(bytes: &[u8]) -> Result<Self, StateError> {
        let mut r = StateReader::new(bytes);
        let encoder = state::read_sequential(&mut r)?;
        let gpc = GpcLocalizer::decode_from(&mut r)?;
        r.finish()?;
        Ok(WiDeepLocalizer { encoder, gpc })
    }
}

impl DifferentiableModel for WiDeepLocalizer {
    fn num_classes(&self) -> usize {
        self.gpc.num_classes()
    }

    fn logits(&self, x: &Matrix) -> Matrix {
        self.gpc.logits(&self.encode(x))
    }

    fn loss_and_input_grad(&self, x: &Matrix, targets: &[usize]) -> (f64, Matrix) {
        // Chain rule: dL/dx = dL/dz · dz/dx, where z = encoder(x).
        let mut rng = Rng::new(0);
        let (z, caches) = self.encoder.forward(x, Mode::Eval, &mut rng);
        let (loss, grad_z) = self.gpc.loss_and_input_grad(&z, targets);
        let (grad_x, _) = self.encoder.backward(&caches, &grad_z);
        (loss, grad_x)
    }
}

impl Localizer for WiDeepLocalizer {
    fn name(&self) -> &str {
        "WiDeep"
    }

    fn predict_classes(&self, x: &Matrix) -> Vec<usize> {
        self.gpc.predict_classes(&self.encode(x))
    }

    fn as_differentiable(&self) -> Option<&dyn DifferentiableModel> {
        Some(self)
    }

    fn state(&self) -> Option<Vec<u8>> {
        Some(self.state_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calloc_nn::metrics::accuracy;

    fn blobs(n_per: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = Rng::new(seed);
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        let centers = [(0.25, 0.25), (0.75, 0.3), (0.5, 0.8)];
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..n_per {
                rows.push(vec![
                    (cx + rng.normal(0.0, 0.04)).clamp(0.0, 1.0),
                    (cy + rng.normal(0.0, 0.04)).clamp(0.0, 1.0),
                    rng.uniform(0.0, 1.0),
                ]);
                ys.push(c);
            }
        }
        (Matrix::from_rows(&rows), ys)
    }

    fn small_config() -> WiDeepConfig {
        WiDeepConfig {
            latent: 8,
            pretrain_epochs: 30,
            ..Default::default()
        }
    }

    #[test]
    fn trains_to_high_accuracy() {
        let (x, y) = blobs(20, 1);
        let model = WiDeepLocalizer::fit(&x, &y, 3, &small_config()).expect("fit");
        let acc = accuracy(&model.predict_classes(&x), &y);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn input_gradient_matches_finite_diff() {
        let (x, y) = blobs(10, 2);
        let model = WiDeepLocalizer::fit(&x, &y, 3, &small_config()).expect("fit");
        let mut rng = Rng::new(3);
        let q = Matrix::from_fn(2, 3, |_, _| rng.uniform(0.2, 0.8));
        let targets = vec![0usize, 2];
        let (_, grad) = model.loss_and_input_grad(&q, &targets);
        let eps = 1e-6;
        for r in 0..2 {
            for c in 0..3 {
                let mut qp = q.clone();
                qp.set(r, c, q.get(r, c) + eps);
                let mut qm = q.clone();
                qm.set(r, c, q.get(r, c) - eps);
                let fd = (model.loss_and_input_grad(&qp, &targets).0
                    - model.loss_and_input_grad(&qm, &targets).0)
                    / (2.0 * eps);
                assert!(
                    (grad.get(r, c) - fd).abs() < 1e-4,
                    "grad[{r}][{c}] {} vs {fd}",
                    grad.get(r, c)
                );
            }
        }
    }

    #[test]
    fn white_box_attack_is_devastating() {
        use calloc_attack::{craft, AttackConfig};
        let (x, y) = blobs(15, 4);
        let model = WiDeepLocalizer::fit(&x, &y, 3, &small_config()).expect("fit");
        let clean = accuracy(&model.predict_classes(&x), &y);
        let adv = craft(&model, &x, &y, &AttackConfig::fgsm(0.3, 100.0));
        let attacked = accuracy(&model.predict_classes(&adv), &y);
        assert!(
            attacked < clean,
            "attack ineffective: {clean} -> {attacked}"
        );
    }

    #[test]
    fn latent_width_matches_config() {
        let (x, y) = blobs(5, 5);
        let model = WiDeepLocalizer::fit(&x, &y, 3, &small_config()).expect("fit");
        assert_eq!(model.encode(&x).cols(), 8);
    }
}
