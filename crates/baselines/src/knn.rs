//! K-nearest-neighbours localization (Fig. 1 baseline) and its
//! differentiable soft surrogate.

use calloc_nn::state::{StateError, StateReader, StateWriter};
use calloc_nn::{DifferentiableModel, Localizer};
use calloc_tensor::{kernel, par, Matrix};

/// Distance-weighted k-nearest-neighbours fingerprint matcher.
///
/// The classical fingerprinting baseline: at query time the `k` closest
/// training fingerprints vote for their RP class, weighted by inverse
/// distance.
///
/// # Example
///
/// ```
/// use calloc_baselines::KnnLocalizer;
/// use calloc_nn::Localizer;
/// use calloc_tensor::Matrix;
///
/// let x = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]);
/// let knn = KnnLocalizer::fit(x.clone(), vec![0, 1], 2, 1);
/// assert_eq!(knn.predict_classes(&x), vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct KnnLocalizer {
    x_train: Matrix,
    y_train: Vec<usize>,
    num_classes: usize,
    k: usize,
}

impl KnnLocalizer {
    /// Stores the training fingerprints. `k` is clamped to the training
    /// set size.
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch, `k == 0`, or the set is empty.
    pub fn fit(x_train: Matrix, y_train: Vec<usize>, num_classes: usize, k: usize) -> Self {
        assert_eq!(x_train.rows(), y_train.len(), "sample/label mismatch");
        assert!(!y_train.is_empty(), "empty training set");
        assert!(k > 0, "k must be positive");
        assert!(
            y_train.iter().all(|&y| y < num_classes),
            "label out of range"
        );
        KnnLocalizer {
            k: k.min(y_train.len()),
            x_train,
            y_train,
            num_classes,
        }
    }

    /// The `k` hyper-parameter.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Bit-exact encoding of the fitted matcher for the model cache
    /// (see [`calloc_nn::state`]).
    pub fn state_bytes(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.matrix(&self.x_train);
        w.usize_slice(&self.y_train);
        w.usize(self.num_classes);
        w.usize(self.k);
        w.into_bytes()
    }

    /// Decodes a model written by [`Self::state_bytes`]; malformed input
    /// errors, never panics.
    pub fn from_state(bytes: &[u8]) -> Result<Self, StateError> {
        let mut r = StateReader::new(bytes);
        let x_train = r.matrix()?;
        let y_train = r.usize_vec()?;
        let num_classes = r.usize()?;
        let k = r.usize()?;
        r.finish()?;
        if y_train.len() != x_train.rows() {
            return Err("knn state: sample/label count mismatch".to_string());
        }
        if y_train.is_empty() {
            return Err("knn state: empty training set".to_string());
        }
        if y_train.iter().any(|&y| y >= num_classes) {
            return Err("knn state: label out of range".to_string());
        }
        if k == 0 || k > y_train.len() {
            return Err("knn state: k out of range".to_string());
        }
        Ok(KnnLocalizer {
            x_train,
            y_train,
            num_classes,
            k,
        })
    }

    /// Builds the matching differentiable surrogate (see [`SoftKnn`]),
    /// sharing this model's training memory.
    pub fn to_soft(&self, temperature: f64) -> SoftKnn {
        SoftKnn::fit(
            self.x_train.clone(),
            self.y_train.clone(),
            self.num_classes,
            temperature,
        )
    }
}

impl Localizer for KnnLocalizer {
    fn name(&self) -> &str {
        "KNN"
    }

    fn predict_classes(&self, x: &Matrix) -> Vec<usize> {
        // One batched pairwise-distance pass, then a cheap per-row vote.
        // `sq_dists` accumulates each distance in the same ascending-column
        // order as the former per-query loop, and the stable sort on
        // identical keys yields the identical neighbour order, so the
        // predictions are unchanged bit-for-bit.
        let sq = kernel::sq_dists(x, &self.x_train);
        let n_train = self.x_train.rows();
        // Roughly sort-dominated; weight a training row as ~32 work units.
        let min_rows = par::min_rows_for(n_train.saturating_mul(32));
        let chunks = par::par_chunks(x.rows(), min_rows, |range| {
            range
                .map(|r| {
                    // (distance², train index) for all training rows
                    let mut dists: Vec<(f64, usize)> =
                        sq.row(r).iter().copied().zip(0..n_train).collect();
                    dists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
                    let mut votes = vec![0.0f64; self.num_classes];
                    for &(d, i) in dists.iter().take(self.k) {
                        votes[self.y_train[i]] += 1.0 / (d.sqrt() + 1e-6);
                    }
                    votes
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite votes"))
                        .map(|(c, _)| c)
                        .unwrap_or(0)
                })
                .collect::<Vec<usize>>()
        });
        chunks.into_iter().flatten().collect()
    }

    fn state(&self) -> Option<Vec<u8>> {
        Some(self.state_bytes())
    }
}

/// Differentiable soft-KNN: class scores are kernel-density sums over the
/// training memory,
/// `s_c(x) = log Σ_{i: y_i = c} exp(-‖x − x_i‖² / τ)`.
///
/// As `τ → 0` the arg-max of the scores converges to 1-NN. White-box
/// attacks against the non-differentiable [`KnnLocalizer`] are crafted on
/// this surrogate — the standard practice for attacking non-parametric
/// models.
#[derive(Debug, Clone)]
pub struct SoftKnn {
    x_train: Matrix,
    y_train: Vec<usize>,
    num_classes: usize,
    temperature: f64,
}

impl SoftKnn {
    /// Stores the training memory.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, empty data, or non-positive temperature.
    pub fn fit(x_train: Matrix, y_train: Vec<usize>, num_classes: usize, temperature: f64) -> Self {
        assert_eq!(x_train.rows(), y_train.len(), "sample/label mismatch");
        assert!(!y_train.is_empty(), "empty training set");
        assert!(temperature > 0.0, "temperature must be positive");
        SoftKnn {
            x_train,
            y_train,
            num_classes,
            temperature,
        }
    }

    /// Batch × train squared distances to the training memory — one
    /// batched pass over the shared pairwise primitive, bit-identical to
    /// the former per-query scalar loop.
    fn sq_dists(&self, x: &Matrix) -> Matrix {
        kernel::sq_dists(x, &self.x_train)
    }

    /// Logits from a precomputed squared-distance matrix (see
    /// [`SoftKnn::sq_dists`]): per row, a per-class log-sum-exp over the
    /// training memory, stabilized by the global max exponent.
    ///
    /// Rows are independent and fan out on the row-parallel runtime; the
    /// per-row arithmetic order is exactly the serial loop's.
    fn logits_from_sq_dists(&self, sq: &Matrix) -> Matrix {
        let mut logits = Matrix::zeros(sq.rows(), self.num_classes);
        if sq.rows() == 0 {
            return logits;
        }
        let nc = self.num_classes;
        let n_train = self.x_train.rows();
        let (dd, yt, tau) = (sq.as_slice(), &self.y_train, self.temperature);
        // exp dominates; weight a training row as ~20 work units.
        let min_rows = par::min_rows_for(n_train.saturating_mul(20));
        par::par_row_chunks_mut(logits.as_mut_slice(), nc, min_rows, |first_row, chunk| {
            for (rr, lrow) in chunk.chunks_exact_mut(nc).enumerate() {
                let drow = &dd[(first_row + rr) * n_train..(first_row + rr + 1) * n_train];
                // log-sum-exp per class, stabilized by the global max exponent
                let m = drow
                    .iter()
                    .map(|&v| -v / tau)
                    .fold(f64::NEG_INFINITY, f64::max);
                let mut sums = vec![0.0f64; nc];
                for (&di, &c) in drow.iter().zip(yt) {
                    sums[c] += (-di / tau - m).exp();
                }
                for (l, &sum) in lrow.iter_mut().zip(&sums) {
                    // classes with no training samples get a very low score
                    *l = if sum > 0.0 { m + sum.ln() } else { -1e9 };
                }
            }
        });
        logits
    }
}

impl DifferentiableModel for SoftKnn {
    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn logits(&self, x: &Matrix) -> Matrix {
        self.logits_from_sq_dists(&self.sq_dists(x))
    }

    fn loss_and_input_grad(&self, x: &Matrix, targets: &[usize]) -> (f64, Matrix) {
        assert_eq!(targets.len(), x.rows(), "label count mismatch");
        // One batched distance pass shared between the logits and the
        // gradient (the seed path recomputed every distance row twice).
        let sq = self.sq_dists(x);
        let logits = self.logits_from_sq_dists(&sq);
        let (loss, grad_logits) = calloc_nn::loss::cross_entropy(&logits, targets);

        let (rows, cols) = x.shape();
        let mut grad_x = Matrix::zeros(rows, cols);
        if rows == 0 || cols == 0 {
            return (loss, grad_x);
        }
        let nc = self.num_classes;
        let n_train = self.x_train.rows();
        let (dd, gld) = (sq.as_slice(), grad_logits.as_slice());
        let (xtd, xd) = (self.x_train.as_slice(), x.as_slice());
        let (yt, tau) = (&self.y_train, self.temperature);
        // Rows are independent; exp + the delta loop dominate per row.
        let min_rows = par::min_rows_for(n_train.saturating_mul(2 * cols + 20));
        par::par_row_chunks_mut(grad_x.as_mut_slice(), cols, min_rows, |first_row, chunk| {
            for (rr, grow) in chunk.chunks_exact_mut(cols).enumerate() {
                let r = first_row + rr;
                let drow = &dd[r * n_train..(r + 1) * n_train];
                let glrow = &gld[r * nc..(r + 1) * nc];
                let qrow = &xd[r * cols..(r + 1) * cols];
                let m = drow
                    .iter()
                    .map(|&v| -v / tau)
                    .fold(f64::NEG_INFINITY, f64::max);
                // per-class normalizers
                let mut sums = vec![0.0f64; nc];
                let mut exps = vec![0.0f64; n_train];
                for ((e, &di), &c) in exps.iter_mut().zip(drow).zip(yt) {
                    *e = (-di / tau - m).exp();
                    sums[c] += *e;
                }
                // ds_c/dx = Σ_{i∈c} (exp_i / sum_c) · (−2(x − x_i)/τ)
                for (i, &ei) in exps.iter().enumerate() {
                    let c = yt[i];
                    if sums[c] <= 0.0 {
                        continue;
                    }
                    let w = glrow[c] * ei / sums[c] * (-2.0 / tau);
                    let xtrow = &xtd[i * cols..(i + 1) * cols];
                    for ((gv, &qv), &xt) in grow.iter_mut().zip(qrow).zip(xtrow) {
                        *gv += w * (qv - xt);
                    }
                }
            }
        });
        (loss, grad_x)
    }
}

impl Localizer for SoftKnn {
    fn name(&self) -> &str {
        "SoftKNN"
    }

    fn predict_classes(&self, x: &Matrix) -> Vec<usize> {
        self.logits(x).argmax_rows()
    }

    fn as_differentiable(&self) -> Option<&dyn DifferentiableModel> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calloc_tensor::Rng;

    fn blobs() -> (Matrix, Vec<usize>) {
        let mut rng = Rng::new(1);
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for c in 0..3usize {
            let cx = 0.2 + 0.3 * c as f64;
            for _ in 0..15 {
                rows.push(vec![
                    (cx + rng.normal(0.0, 0.03)).clamp(0.0, 1.0),
                    (0.8 - 0.3 * c as f64 + rng.normal(0.0, 0.03)).clamp(0.0, 1.0),
                ]);
                ys.push(c);
            }
        }
        (Matrix::from_rows(&rows), ys)
    }

    #[test]
    fn knn_classifies_blobs() {
        let (x, y) = blobs();
        let knn = KnnLocalizer::fit(x.clone(), y.clone(), 3, 5);
        let acc = calloc_nn::metrics::accuracy(&knn.predict_classes(&x), &y);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn knn_k_is_clamped() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let knn = KnnLocalizer::fit(x, vec![0, 1], 2, 99);
        assert_eq!(knn.k(), 2);
    }

    #[test]
    fn soft_knn_agrees_with_knn_at_low_temperature() {
        let (x, y) = blobs();
        let knn = KnnLocalizer::fit(x.clone(), y.clone(), 3, 1);
        let soft = knn.to_soft(1e-3);
        let mut rng = Rng::new(2);
        let queries = Matrix::from_fn(20, 2, |_, _| rng.uniform(0.0, 1.0));
        let hard = knn.predict_classes(&queries);
        let softp = soft.predict_classes(&queries);
        let agree = hard.iter().zip(&softp).filter(|(a, b)| a == b).count();
        assert!(agree >= 18, "only {agree}/20 agree");
    }

    #[test]
    fn soft_knn_gradient_matches_finite_diff() {
        let (x, y) = blobs();
        let soft = SoftKnn::fit(x.clone(), y.clone(), 3, 0.05);
        let mut rng = Rng::new(3);
        let q = Matrix::from_fn(2, 2, |_, _| rng.uniform(0.2, 0.8));
        let targets = vec![0usize, 2];
        let (_, grad) = soft.loss_and_input_grad(&q, &targets);
        let eps = 1e-6;
        for r in 0..2 {
            for c in 0..2 {
                let mut qp = q.clone();
                qp.set(r, c, q.get(r, c) + eps);
                let mut qm = q.clone();
                qm.set(r, c, q.get(r, c) - eps);
                let fd = (soft.loss_and_input_grad(&qp, &targets).0
                    - soft.loss_and_input_grad(&qm, &targets).0)
                    / (2.0 * eps);
                assert!(
                    (grad.get(r, c) - fd).abs() < 1e-4,
                    "grad[{r}][{c}] {} vs {fd}",
                    grad.get(r, c)
                );
            }
        }
    }

    #[test]
    fn soft_knn_is_attackable() {
        use calloc_attack::{craft, AttackConfig};
        let (x, y) = blobs();
        let soft = SoftKnn::fit(x.clone(), y.clone(), 3, 0.05);
        let clean_acc = calloc_nn::metrics::accuracy(&soft.predict_classes(&x), &y);
        let adv = craft(&soft, &x, &y, &AttackConfig::fgsm(0.3, 100.0));
        let adv_acc = calloc_nn::metrics::accuracy(&soft.predict_classes(&adv), &y);
        assert!(
            adv_acc < clean_acc,
            "attack had no effect: {clean_acc} -> {adv_acc}"
        );
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn knn_rejects_bad_labels() {
        KnnLocalizer::fit(Matrix::zeros(1, 2), vec![5], 3, 1);
    }
}
