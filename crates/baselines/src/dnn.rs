//! Plain deep-neural-network localization (Fig. 1 "DNN" baseline,
//! Echizenya et al.).

use calloc_nn::state::{self, StateError, StateReader, StateWriter};
use calloc_nn::{
    Adam, Dense, DifferentiableModel, Layer, Localizer, Sequential, TrainConfig, TrainReport,
    Trainer,
};
use calloc_tensor::{Matrix, Rng};
use serde::{Deserialize, Serialize};

/// DNN baseline hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DnnConfig {
    /// Hidden layer widths (ReLU between them).
    pub hidden: Vec<usize>,
    /// Dropout after each hidden activation (0 disables).
    pub dropout: f64,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Training schedule.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initialization / shuffling seed.
    pub seed: u64,
}

impl Default for DnnConfig {
    fn default() -> Self {
        DnnConfig {
            hidden: vec![128, 64],
            dropout: 0.1,
            learning_rate: 1e-3,
            epochs: 80,
            batch_size: 32,
            seed: 0,
        }
    }
}

/// A standard MLP classifier over RSS fingerprints.
///
/// # Example
///
/// ```
/// use calloc_baselines::{DnnConfig, DnnLocalizer};
/// use calloc_nn::Localizer;
/// use calloc_tensor::{Matrix, Rng};
///
/// let mut rng = Rng::new(0);
/// let x = Matrix::from_fn(30, 4, |r, _| if r < 15 { rng.uniform(0.0, 0.4) } else { rng.uniform(0.6, 1.0) });
/// let y: Vec<usize> = (0..30).map(|r| usize::from(r >= 15)).collect();
/// let config = DnnConfig { epochs: 80, learning_rate: 5e-3, ..Default::default() };
/// let dnn = DnnLocalizer::fit(&x, &y, 2, &config);
/// let acc = calloc_nn::metrics::accuracy(&dnn.predict_classes(&x), &y);
/// assert!(acc > 0.9);
/// ```
#[derive(Debug, Clone)]
pub struct DnnLocalizer {
    net: Sequential,
    report: TrainReport,
}

impl DnnLocalizer {
    /// Builds the MLP architecture for the given dimensions (untrained).
    pub fn architecture(
        num_aps: usize,
        num_classes: usize,
        config: &DnnConfig,
        rng: &mut Rng,
    ) -> Sequential {
        let mut layers = Vec::new();
        let mut in_dim = num_aps;
        for &h in &config.hidden {
            layers.push(Layer::Dense(Dense::he(in_dim, h, rng)));
            layers.push(Layer::Relu);
            if config.dropout > 0.0 {
                layers.push(Layer::Dropout {
                    rate: config.dropout,
                });
            }
            in_dim = h;
        }
        layers.push(Layer::Dense(Dense::xavier(in_dim, num_classes, rng)));
        Sequential::new(layers)
    }

    /// Trains the baseline on `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or empty data (see
    /// [`calloc_nn::Trainer::fit`]).
    pub fn fit(x: &Matrix, y: &[usize], num_classes: usize, config: &DnnConfig) -> Self {
        let mut rng = Rng::new(config.seed);
        let mut net = Self::architecture(x.cols(), num_classes, config, &mut rng);
        let mut trainer = Trainer::new(
            Adam::new(config.learning_rate),
            TrainConfig {
                epochs: config.epochs,
                batch_size: config.batch_size,
                seed: config.seed,
                ..Default::default()
            },
        );
        let report = trainer.fit(&mut net, x, y, None);
        DnnLocalizer { net, report }
    }

    /// The underlying network.
    pub fn network(&self) -> &Sequential {
        &self.net
    }

    /// The training report.
    pub fn report(&self) -> &TrainReport {
        &self.report
    }

    /// Bit-exact encoding of the trained model for the model cache
    /// (see [`calloc_nn::state`]).
    pub fn state_bytes(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        state::write_sequential(&mut w, &self.net);
        state::write_train_report(&mut w, &self.report);
        w.into_bytes()
    }

    /// Decodes a model written by [`Self::state_bytes`]; malformed input
    /// errors, never panics.
    pub fn from_state(bytes: &[u8]) -> Result<Self, StateError> {
        let mut r = StateReader::new(bytes);
        let net = state::read_sequential(&mut r)?;
        let report = state::read_train_report(&mut r)?;
        r.finish()?;
        Ok(DnnLocalizer { net, report })
    }
}

impl Localizer for DnnLocalizer {
    fn name(&self) -> &str {
        "DNN"
    }

    fn predict_classes(&self, x: &Matrix) -> Vec<usize> {
        self.net.predict(x)
    }

    fn as_differentiable(&self) -> Option<&dyn DifferentiableModel> {
        Some(&self.net)
    }

    fn state(&self) -> Option<Vec<u8>> {
        Some(self.state_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> (Matrix, Vec<usize>) {
        let mut rng = Rng::new(9);
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for c in 0..3usize {
            for _ in 0..20 {
                rows.push(vec![
                    (0.2 + 0.3 * c as f64 + rng.normal(0.0, 0.04)).clamp(0.0, 1.0),
                    (0.8 - 0.3 * c as f64 + rng.normal(0.0, 0.04)).clamp(0.0, 1.0),
                    rng.uniform(0.0, 1.0),
                ]);
                ys.push(c);
            }
        }
        (Matrix::from_rows(&rows), ys)
    }

    #[test]
    fn trains_to_high_accuracy() {
        let (x, y) = blobs();
        let dnn = DnnLocalizer::fit(
            &x,
            &y,
            3,
            &DnnConfig {
                epochs: 60,
                ..Default::default()
            },
        );
        let acc = calloc_nn::metrics::accuracy(&dnn.predict_classes(&x), &y);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn exposes_gradients() {
        let (x, y) = blobs();
        let dnn = DnnLocalizer::fit(
            &x,
            &y,
            3,
            &DnnConfig {
                epochs: 5,
                ..Default::default()
            },
        );
        let model = dnn.as_differentiable().expect("DNN is differentiable");
        let (loss, grad) = model.loss_and_input_grad(&x, &y);
        assert!(loss.is_finite());
        assert_eq!(grad.shape(), x.shape());
    }

    #[test]
    fn architecture_layer_count() {
        let mut rng = Rng::new(0);
        let config = DnnConfig::default(); // two hidden layers with dropout
        let net = DnnLocalizer::architecture(10, 4, &config, &mut rng);
        // 2 × (Dense + Relu + Dropout) + final Dense
        assert_eq!(net.layers().len(), 7);
        assert_eq!(
            net.parameter_count(),
            10 * 128 + 128 + 128 * 64 + 64 + 64 * 4 + 4
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (x, y) = blobs();
        let config = DnnConfig {
            epochs: 5,
            ..Default::default()
        };
        let a = DnnLocalizer::fit(&x, &y, 3, &config);
        let b = DnnLocalizer::fit(&x, &y, 3, &config);
        assert_eq!(a.network(), b.network());
    }
}
