//! AdvLoc — DNN with adversarial training (Patil et al., WiseML 2021).
//!
//! AdvLoc hardens a plain DNN by mixing a fixed ratio of FGSM adversarial
//! samples into the offline training phase. Unlike CALLOC there is **no
//! curriculum**: the adversarial ratio, ε and targeted-AP fraction are
//! constant throughout training, which is exactly the weakness the paper's
//! Fig. 7 exposes (error rising from ø ≈ 60).

use calloc_attack::{craft, AttackConfig};
use calloc_nn::state::{self, StateError, StateReader, StateWriter};
use calloc_nn::{
    loss, Adam, DifferentiableModel, Localizer, Mode, Optimizer, Sequential, TrainReport,
};
use calloc_tensor::{Matrix, Rng};
use serde::{Deserialize, Serialize};

use crate::dnn::{DnnConfig, DnnLocalizer};

/// AdvLoc hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdvLocConfig {
    /// Base network configuration.
    pub dnn: DnnConfig,
    /// Fraction of each batch replaced by adversarial samples (paper-style
    /// "a few adversarial samples": 0.3).
    pub adversarial_ratio: f64,
    /// FGSM ε used for the training-time adversarial samples.
    pub epsilon: f64,
    /// Percentage of APs perturbed in the training-time samples.
    pub phi_percent: f64,
    /// Epochs of clean warm-up before adversarial mixing starts.
    pub warmup_epochs: usize,
}

impl Default for AdvLocConfig {
    fn default() -> Self {
        AdvLocConfig {
            dnn: DnnConfig::default(),
            adversarial_ratio: 0.3,
            epsilon: 0.1,
            phi_percent: 50.0,
            warmup_epochs: 5,
        }
    }
}

/// The AdvLoc framework: adversarially trained MLP.
#[derive(Debug, Clone)]
pub struct AdvLocLocalizer {
    net: Sequential,
    report: TrainReport,
}

impl AdvLocLocalizer {
    /// Trains AdvLoc on `(x, y)`.
    ///
    /// Each post-warm-up epoch crafts FGSM samples against the *current*
    /// network for a random subset of the batch and trains on the mix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or empty data.
    pub fn fit(x: &Matrix, y: &[usize], num_classes: usize, config: &AdvLocConfig) -> Self {
        assert_eq!(x.rows(), y.len(), "sample/label mismatch");
        assert!(!y.is_empty(), "empty training set");
        assert!(
            (0.0..=1.0).contains(&config.adversarial_ratio),
            "ratio out of range"
        );
        let mut rng = Rng::new(config.dnn.seed);
        let mut net = DnnLocalizer::architecture(x.cols(), num_classes, &config.dnn, &mut rng);
        let mut opt = Adam::new(config.dnn.learning_rate);
        let attack = AttackConfig::fgsm(config.epsilon, config.phi_percent);

        let mut history = Vec::new();
        let mut best_loss = f64::INFINITY;
        let mut best_epoch = 0;
        let mut best = net.clone();

        for epoch in 0..config.dnn.epochs {
            let order = rng.permutation(x.rows());
            let mut epoch_loss = 0.0;
            let mut batches = 0.0f64;
            for chunk in order.chunks(config.dnn.batch_size.max(1)) {
                let mut bx = x.select_rows(chunk);
                let by: Vec<usize> = chunk.iter().map(|&i| y[i]).collect();
                if epoch >= config.warmup_epochs && config.adversarial_ratio > 0.0 {
                    // Replace a random prefix of the (already shuffled)
                    // batch with adversarial versions of itself.
                    let k = ((chunk.len() as f64) * config.adversarial_ratio).round() as usize;
                    if k > 0 {
                        let idx: Vec<usize> = (0..k).collect();
                        let sub = bx.select_rows(&idx);
                        let sub_y: Vec<usize> = by[..k].to_vec();
                        let adv = craft(&net, &sub, &sub_y, &attack);
                        for (i, row) in idx.iter().enumerate() {
                            bx.set_row(*row, adv.row(i));
                        }
                    }
                }
                let (logits, caches) = net.forward(&bx, Mode::Train, &mut rng);
                let (l, grad) = loss::cross_entropy(&logits, &by);
                let (_, grads) = net.backward(&caches, &grad);
                opt.step(&mut net, &grads);
                epoch_loss += l;
                batches += 1.0;
            }
            epoch_loss /= batches.max(1.0);
            history.push(epoch_loss);
            if epoch_loss < best_loss {
                best_loss = epoch_loss;
                best_epoch = epoch;
                best = net.clone();
            }
        }
        AdvLocLocalizer {
            net: best,
            report: TrainReport {
                loss_history: history,
                best_loss,
                best_epoch,
                stopped_early: false,
            },
        }
    }

    /// The underlying network.
    pub fn network(&self) -> &Sequential {
        &self.net
    }

    /// The training report.
    pub fn report(&self) -> &TrainReport {
        &self.report
    }

    /// Bit-exact encoding of the trained model for the model cache
    /// (see [`calloc_nn::state`]).
    pub fn state_bytes(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        state::write_sequential(&mut w, &self.net);
        state::write_train_report(&mut w, &self.report);
        w.into_bytes()
    }

    /// Decodes a model written by [`Self::state_bytes`]; malformed input
    /// errors, never panics.
    pub fn from_state(bytes: &[u8]) -> Result<Self, StateError> {
        let mut r = StateReader::new(bytes);
        let net = state::read_sequential(&mut r)?;
        let report = state::read_train_report(&mut r)?;
        r.finish()?;
        Ok(AdvLocLocalizer { net, report })
    }
}

impl Localizer for AdvLocLocalizer {
    fn name(&self) -> &str {
        "AdvLoc"
    }

    fn predict_classes(&self, x: &Matrix) -> Vec<usize> {
        self.net.predict(x)
    }

    fn as_differentiable(&self) -> Option<&dyn DifferentiableModel> {
        Some(&self.net)
    }

    fn state(&self) -> Option<Vec<u8>> {
        Some(self.state_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calloc_nn::metrics::accuracy;

    fn blobs() -> (Matrix, Vec<usize>) {
        let mut rng = Rng::new(21);
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for c in 0..3usize {
            for _ in 0..20 {
                rows.push(vec![
                    (0.15 + 0.35 * c as f64 + rng.normal(0.0, 0.04)).clamp(0.0, 1.0),
                    (0.85 - 0.35 * c as f64 + rng.normal(0.0, 0.04)).clamp(0.0, 1.0),
                    rng.uniform(0.0, 1.0),
                    rng.uniform(0.0, 1.0),
                ]);
                ys.push(c);
            }
        }
        (Matrix::from_rows(&rows), ys)
    }

    fn small_config(epochs: usize) -> AdvLocConfig {
        AdvLocConfig {
            dnn: DnnConfig {
                hidden: vec![32],
                epochs,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn trains_to_high_clean_accuracy() {
        let (x, y) = blobs();
        let advloc = AdvLocLocalizer::fit(&x, &y, 3, &small_config(50));
        let acc = accuracy(&advloc.predict_classes(&x), &y);
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn adversarial_training_improves_robustness() {
        let (x, y) = blobs();
        let plain = DnnLocalizer::fit(
            &x,
            &y,
            3,
            &DnnConfig {
                hidden: vec![32],
                epochs: 50,
                ..Default::default()
            },
        );
        let advloc = AdvLocLocalizer::fit(&x, &y, 3, &small_config(50));

        let attack = AttackConfig::fgsm(0.15, 100.0);
        let adv_for = |m: &dyn DifferentiableModel| craft(m, &x, &y, &attack);

        let plain_net = plain.as_differentiable().expect("dnn differentiable");
        let advloc_net = advloc.as_differentiable().expect("advloc differentiable");
        let plain_acc = accuracy(&plain.predict_classes(&adv_for(plain_net)), &y);
        let advloc_acc = accuracy(&advloc.predict_classes(&adv_for(advloc_net)), &y);
        assert!(
            advloc_acc >= plain_acc,
            "adversarial training did not help: plain {plain_acc}, advloc {advloc_acc}"
        );
    }

    #[test]
    fn zero_ratio_matches_plain_training_shape() {
        let (x, y) = blobs();
        let mut config = small_config(5);
        config.adversarial_ratio = 0.0;
        let advloc = AdvLocLocalizer::fit(&x, &y, 3, &config);
        assert_eq!(advloc.report().loss_history.len(), 5);
    }

    #[test]
    #[should_panic(expected = "ratio out of range")]
    fn rejects_bad_ratio() {
        let (x, y) = blobs();
        let mut config = small_config(1);
        config.adversarial_ratio = 1.5;
        AdvLocLocalizer::fit(&x, &y, 3, &config);
    }
}
