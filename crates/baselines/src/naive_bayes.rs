//! Gaussian Naive Bayes localization (classical baseline, §II).

use calloc_nn::Localizer;
use calloc_tensor::Matrix;

/// Gaussian Naive Bayes over RSS features.
///
/// Each (class, AP) pair gets an independent Gaussian fitted on the
/// training fingerprints; prediction is the maximum-posterior class with a
/// uniform prior over RPs (the survey visits each RP equally often).
///
/// # Example
///
/// ```
/// use calloc_baselines::NaiveBayesLocalizer;
/// use calloc_nn::Localizer;
/// use calloc_tensor::Matrix;
///
/// let x = Matrix::from_rows(&[vec![0.1], vec![0.12], vec![0.9], vec![0.88]]);
/// let nb = NaiveBayesLocalizer::fit(&x, &[0, 0, 1, 1], 2);
/// assert_eq!(nb.predict_classes(&Matrix::from_rows(&[vec![0.11]])), vec![0]);
/// ```
#[derive(Debug, Clone)]
pub struct NaiveBayesLocalizer {
    /// Per-class feature means (`num_classes` x `num_aps`).
    means: Matrix,
    /// Per-class feature variances, floored for stability.
    variances: Matrix,
    /// Log prior per class.
    log_priors: Vec<f64>,
}

/// Variance floor: RSS quantization means many (class, AP) cells have zero
/// empirical variance.
const VARIANCE_FLOOR: f64 = 1e-4;

impl NaiveBayesLocalizer {
    /// Fits per-class Gaussians.
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch, the set is empty, or a label is out of
    /// range.
    pub fn fit(x: &Matrix, y: &[usize], num_classes: usize) -> Self {
        assert_eq!(x.rows(), y.len(), "sample/label mismatch");
        assert!(!y.is_empty(), "empty training set");
        assert!(y.iter().all(|&c| c < num_classes), "label out of range");

        let d = x.cols();
        let mut means = Matrix::zeros(num_classes, d);
        let mut variances = Matrix::zeros(num_classes, d);
        let mut counts = vec![0usize; num_classes];
        for (r, &c) in y.iter().enumerate() {
            counts[c] += 1;
            for col in 0..d {
                means.set(c, col, means.get(c, col) + x.get(r, col));
            }
        }
        for (c, &count) in counts.iter().enumerate() {
            if count > 0 {
                for col in 0..d {
                    means.set(c, col, means.get(c, col) / count as f64);
                }
            }
        }
        for (r, &c) in y.iter().enumerate() {
            for col in 0..d {
                let diff = x.get(r, col) - means.get(c, col);
                variances.set(c, col, variances.get(c, col) + diff * diff);
            }
        }
        for (c, &count) in counts.iter().enumerate() {
            for col in 0..d {
                let v = if count > 0 {
                    variances.get(c, col) / count as f64
                } else {
                    1.0
                };
                variances.set(c, col, v.max(VARIANCE_FLOOR));
            }
        }
        let n = y.len() as f64;
        let log_priors = counts
            .iter()
            .map(|&k| {
                if k == 0 {
                    f64::NEG_INFINITY
                } else {
                    (k as f64 / n).ln()
                }
            })
            .collect();
        NaiveBayesLocalizer {
            means,
            variances,
            log_priors,
        }
    }

    /// Log-posterior (up to a constant) of each class for each row.
    pub fn log_posteriors(&self, x: &Matrix) -> Matrix {
        let num_classes = self.means.rows();
        let mut out = Matrix::zeros(x.rows(), num_classes);
        for r in 0..x.rows() {
            for c in 0..num_classes {
                let mut lp = self.log_priors[c];
                for col in 0..x.cols() {
                    let m = self.means.get(c, col);
                    let v = self.variances.get(c, col);
                    let diff = x.get(r, col) - m;
                    lp += -0.5 * ((2.0 * std::f64::consts::PI * v).ln() + diff * diff / v);
                }
                out.set(r, c, lp);
            }
        }
        out
    }
}

impl Localizer for NaiveBayesLocalizer {
    fn name(&self) -> &str {
        "NaiveBayes"
    }

    fn predict_classes(&self, x: &Matrix) -> Vec<usize> {
        self.log_posteriors(x).argmax_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calloc_tensor::Rng;

    #[test]
    fn separable_classes_are_learned() {
        let mut rng = Rng::new(1);
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for c in 0..4usize {
            for _ in 0..10 {
                rows.push(vec![
                    0.2 * c as f64 + rng.normal(0.0, 0.02),
                    1.0 - 0.2 * c as f64 + rng.normal(0.0, 0.02),
                ]);
                ys.push(c);
            }
        }
        let x = Matrix::from_rows(&rows);
        let nb = NaiveBayesLocalizer::fit(&x, &ys, 4);
        let acc = calloc_nn::metrics::accuracy(&nb.predict_classes(&x), &ys);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn variance_floor_prevents_degeneracy() {
        // All samples of class 0 identical → zero variance without floor.
        let x = Matrix::from_rows(&[vec![0.5], vec![0.5], vec![0.9]]);
        let nb = NaiveBayesLocalizer::fit(&x, &[0, 0, 1], 2);
        let lp = nb.log_posteriors(&x);
        assert!(!lp.has_non_finite());
    }

    #[test]
    fn unseen_class_never_predicted() {
        let x = Matrix::from_rows(&[vec![0.1], vec![0.9]]);
        let nb = NaiveBayesLocalizer::fit(&x, &[0, 2], 3); // class 1 unseen
        let preds = nb.predict_classes(&Matrix::from_rows(&[vec![0.5]]));
        assert_ne!(preds[0], 1);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        NaiveBayesLocalizer::fit(&Matrix::zeros(1, 1), &[3], 2);
    }
}
