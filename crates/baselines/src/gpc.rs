//! Gaussian-process classification (the WiDeep/Fig. 1 "GPC" baseline).
//!
//! Exact GP classification needs an iterative Laplace/EP approximation; as
//! documented in DESIGN.md we use the standard shortcut of **GP regression
//! on one-hot labels** with an RBF kernel — a well-behaved classifier whose
//! key property for this paper (extreme sensitivity to input noise) is
//! identical. The predictive scores are differentiable in closed form,
//! giving white-box attack gradients.

use calloc_nn::state::{StateError, StateReader, StateWriter};
use calloc_nn::{DifferentiableModel, Localizer};
use calloc_tensor::{kernel, linalg, par, Matrix};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the GPC baseline.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GpcConfig {
    /// RBF kernel length scale ℓ (in normalized RSS units).
    pub length_scale: f64,
    /// Observation noise σ² added to the kernel diagonal.
    pub noise: f64,
    /// Score sharpening applied before the softmax used for attack
    /// gradients (GP regression scores live near [0, 1]).
    pub sharpness: f64,
}

impl Default for GpcConfig {
    fn default() -> Self {
        GpcConfig {
            length_scale: 0.5,
            noise: 1e-2,
            sharpness: 10.0,
        }
    }
}

/// RBF-kernel Gaussian-process localization.
///
/// # Example
///
/// ```
/// use calloc_baselines::{GpcConfig, GpcLocalizer};
/// use calloc_nn::Localizer;
/// use calloc_tensor::Matrix;
///
/// let x = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]);
/// let gpc = GpcLocalizer::fit(x.clone(), vec![0, 1], 2, GpcConfig::default())?;
/// assert_eq!(gpc.predict_classes(&x), vec![0, 1]);
/// # Ok::<(), calloc_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GpcLocalizer {
    x_train: Matrix,
    /// `alpha = (K + σ²I)⁻¹ Y_onehot`, shape `n_train` x `num_classes`.
    alpha: Matrix,
    config: GpcConfig,
    num_classes: usize,
}

impl GpcLocalizer {
    /// Fits GP regression on one-hot labels.
    ///
    /// # Errors
    ///
    /// Returns a [`calloc_tensor::TensorError`] if the kernel matrix is not
    /// positive definite (raise `config.noise`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or an out-of-range label.
    pub fn fit(
        x_train: Matrix,
        y_train: Vec<usize>,
        num_classes: usize,
        config: GpcConfig,
    ) -> Result<Self, calloc_tensor::TensorError> {
        assert_eq!(x_train.rows(), y_train.len(), "sample/label mismatch");
        assert!(!y_train.is_empty(), "empty training set");
        assert!(
            y_train.iter().all(|&y| y < num_classes),
            "label out of range"
        );
        // The symmetric Gram matrix, one triangle computed and mirrored —
        // each element is the same ascending-column RBF the scalar loop
        // computed, so the factorization input is unchanged bit-for-bit.
        let gram = kernel::rbf_gram(&x_train, config.length_scale);
        let kernel = linalg::add_diagonal(&gram, config.noise);
        let mut onehot = Matrix::zeros(x_train.rows(), num_classes);
        for (i, &y) in y_train.iter().enumerate() {
            onehot.set(i, y, 1.0);
        }
        let alpha = linalg::solve_spd(&kernel, &onehot)?;
        Ok(GpcLocalizer {
            x_train,
            alpha,
            config,
            num_classes,
        })
    }

    /// Raw GP regression scores (`batch` x `num_classes`), before
    /// sharpening: `k(x, X_train) · α`, computed as one batched
    /// cross-kernel followed by a matrix product.
    ///
    /// The blocked matmul accumulates each output element over ascending
    /// training indices exactly like the former scalar loop, so scores are
    /// bit-identical to the seed path (enforced by `perf_baseline`).
    pub fn scores(&self, x: &Matrix) -> Matrix {
        self.cross_kernel(x).matmul(&self.alpha)
    }

    /// The batch × train RBF cross-kernel `k(x, X_train)`.
    ///
    /// This is the single most expensive piece of GPC inference; callers
    /// that need both scores and gradients (see
    /// [`DifferentiableModel::loss_and_input_grad`]) compute it **once**
    /// and share it.
    fn cross_kernel(&self, x: &Matrix) -> Matrix {
        kernel::rbf_cross(x, &self.x_train, self.config.length_scale)
    }

    /// The stored training fingerprints.
    pub fn x_train(&self) -> &Matrix {
        &self.x_train
    }

    /// The fitted regression weights `α = (K + σ²I)⁻¹ Y_onehot`
    /// (`n_train` × `num_classes`).
    pub fn alpha(&self) -> &Matrix {
        &self.alpha
    }

    /// The hyper-parameters this model was fitted with.
    pub fn config(&self) -> GpcConfig {
        self.config
    }

    /// Encodes the fitted model into an open writer (used standalone and
    /// nested inside WiDeep's state).
    pub(crate) fn encode_into(&self, w: &mut StateWriter) {
        w.matrix(&self.x_train);
        w.matrix(&self.alpha);
        w.f64(self.config.length_scale);
        w.f64(self.config.noise);
        w.f64(self.config.sharpness);
        w.usize(self.num_classes);
    }

    /// Decodes a model written by [`Self::encode_into`].
    pub(crate) fn decode_from(r: &mut StateReader) -> Result<Self, StateError> {
        let x_train = r.matrix()?;
        let alpha = r.matrix()?;
        let config = GpcConfig {
            length_scale: r.f64()?,
            noise: r.f64()?,
            sharpness: r.f64()?,
        };
        let num_classes = r.usize()?;
        if alpha.rows() != x_train.rows() || alpha.cols() != num_classes {
            return Err(format!(
                "alpha shape {:?} inconsistent with {} train rows / {num_classes} classes",
                alpha.shape(),
                x_train.rows()
            ));
        }
        Ok(GpcLocalizer {
            x_train,
            alpha,
            config,
            num_classes,
        })
    }

    /// Bit-exact encoding of the fitted model for the model cache
    /// (see [`calloc_nn::state`]).
    pub fn state_bytes(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Decodes a model written by [`Self::state_bytes`]; malformed input
    /// errors, never panics.
    pub fn from_state(bytes: &[u8]) -> Result<Self, StateError> {
        let mut r = StateReader::new(bytes);
        let model = Self::decode_from(&mut r)?;
        r.finish()?;
        Ok(model)
    }
}

impl DifferentiableModel for GpcLocalizer {
    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn logits(&self, x: &Matrix) -> Matrix {
        self.scores(x).scale(self.config.sharpness)
    }

    fn loss_and_input_grad(&self, x: &Matrix, targets: &[usize]) -> (f64, Matrix) {
        assert_eq!(targets.len(), x.rows(), "label count mismatch");
        // The cross-kernel is computed ONCE and shared between the logits
        // and the gradient — the seed path evaluated every RBF row twice
        // per attack step.
        let cross = self.cross_kernel(x);
        let logits = cross.matmul(&self.alpha).scale(self.config.sharpness);
        let (loss, grad_logits) = calloc_nn::loss::cross_entropy(&logits, targets);

        // d logits_c / dx = sharpness · Σ_i α_ic · dk_i/dx,
        // dk_i/dx = k_i · (x_i − x) / ℓ²
        let ls2 = self.config.length_scale * self.config.length_scale;
        let sharpness = self.config.sharpness;
        let (rows, cols) = x.shape();
        let mut grad_x = Matrix::zeros(rows, cols);
        if rows == 0 || cols == 0 {
            return (loss, grad_x);
        }
        // weights[r][i] = Σ_c grad_logits_rc · α_ic — the blocked `A·Bᵀ`
        // kernel accumulates over ascending classes exactly like the former
        // per-pair scalar dot.
        let weights = grad_logits.matmul_transposed(&self.alpha);
        let n_train = self.x_train.rows();
        let (kd, wd) = (cross.as_slice(), weights.as_slice());
        let (xtd, xd) = (self.x_train.as_slice(), x.as_slice());
        // Rows are independent; per-row cost is train × dim.
        let min_rows = par::min_rows_for(n_train.saturating_mul(2 * cols + 8));
        par::par_row_chunks_mut(grad_x.as_mut_slice(), cols, min_rows, |first_row, chunk| {
            for (rr, grow) in chunk.chunks_exact_mut(cols).enumerate() {
                let r = first_row + rr;
                let krow = &kd[r * n_train..(r + 1) * n_train];
                let wrow = &wd[r * n_train..(r + 1) * n_train];
                let xrow = &xd[r * cols..(r + 1) * cols];
                // The training loop is unrolled four wide to cut `grow`
                // load/store traffic; the per-element left-associated
                // chain keeps the additions in exact ascending-i order, so
                // the result bits match adding one row at a time.
                let mut i = 0;
                while i + 4 <= n_train {
                    let w0 = wrow[i] * (sharpness * krow[i] / ls2);
                    let w1 = wrow[i + 1] * (sharpness * krow[i + 1] / ls2);
                    let w2 = wrow[i + 2] * (sharpness * krow[i + 2] / ls2);
                    let w3 = wrow[i + 3] * (sharpness * krow[i + 3] / ls2);
                    let t0 = &xtd[i * cols..(i + 1) * cols];
                    let t1 = &xtd[(i + 1) * cols..(i + 2) * cols];
                    let t2 = &xtd[(i + 2) * cols..(i + 3) * cols];
                    let t3 = &xtd[(i + 3) * cols..(i + 4) * cols];
                    for (c, (gv, &xv)) in grow.iter_mut().zip(xrow).enumerate() {
                        #[allow(clippy::assign_op_pattern)]
                        {
                            *gv = *gv
                                + w0 * (t0[c] - xv)
                                + w1 * (t1[c] - xv)
                                + w2 * (t2[c] - xv)
                                + w3 * (t3[c] - xv);
                        }
                    }
                    i += 4;
                }
                while i < n_train {
                    let w = wrow[i] * (sharpness * krow[i] / ls2);
                    let xtrow = &xtd[i * cols..(i + 1) * cols];
                    for ((gv, &xt), &xv) in grow.iter_mut().zip(xtrow).zip(xrow) {
                        *gv += w * (xt - xv);
                    }
                    i += 1;
                }
            }
        });
        (loss, grad_x)
    }
}

impl Localizer for GpcLocalizer {
    fn name(&self) -> &str {
        "GPC"
    }

    fn predict_classes(&self, x: &Matrix) -> Vec<usize> {
        self.scores(x).argmax_rows()
    }

    fn as_differentiable(&self) -> Option<&dyn DifferentiableModel> {
        Some(self)
    }

    fn state(&self) -> Option<Vec<u8>> {
        Some(self.state_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calloc_tensor::Rng;

    fn blobs(noise: f64, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = Rng::new(seed);
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        let centers = [(0.2, 0.2), (0.8, 0.3), (0.5, 0.9)];
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..12 {
                rows.push(vec![
                    (cx + rng.normal(0.0, noise)).clamp(0.0, 1.0),
                    (cy + rng.normal(0.0, noise)).clamp(0.0, 1.0),
                ]);
                ys.push(c);
            }
        }
        (Matrix::from_rows(&rows), ys)
    }

    #[test]
    fn fits_and_classifies_blobs() {
        let (x, y) = blobs(0.03, 1);
        let gpc = GpcLocalizer::fit(x.clone(), y.clone(), 3, GpcConfig::default()).expect("fit");
        let acc = calloc_nn::metrics::accuracy(&gpc.predict_classes(&x), &y);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn training_scores_interpolate_labels() {
        let (x, y) = blobs(0.03, 2);
        let gpc = GpcLocalizer::fit(x.clone(), y.clone(), 3, GpcConfig::default()).expect("fit");
        let s = gpc.scores(&x);
        // On training points the regression should be close to the one-hot.
        for (r, &c) in y.iter().enumerate() {
            assert!(
                s.get(r, c) > 0.5,
                "score at train point {r}: {}",
                s.get(r, c)
            );
        }
    }

    #[test]
    fn input_gradient_matches_finite_diff() {
        let (x, y) = blobs(0.05, 3);
        let gpc = GpcLocalizer::fit(x.clone(), y.clone(), 3, GpcConfig::default()).expect("fit");
        let mut rng = Rng::new(4);
        let q = Matrix::from_fn(2, 2, |_, _| rng.uniform(0.1, 0.9));
        let targets = vec![1usize, 2];
        let (_, grad) = gpc.loss_and_input_grad(&q, &targets);
        let eps = 1e-6;
        for r in 0..2 {
            for c in 0..2 {
                let mut qp = q.clone();
                qp.set(r, c, q.get(r, c) + eps);
                let mut qm = q.clone();
                qm.set(r, c, q.get(r, c) - eps);
                let fd = (gpc.loss_and_input_grad(&qp, &targets).0
                    - gpc.loss_and_input_grad(&qm, &targets).0)
                    / (2.0 * eps);
                assert!(
                    (grad.get(r, c) - fd).abs() < 1e-5,
                    "grad[{r}][{c}] {} vs {fd}",
                    grad.get(r, c)
                );
            }
        }
    }

    #[test]
    fn gpc_is_noise_sensitive() {
        // The paper's rationale for WiDeep's weakness: GPC accuracy
        // collapses under feature noise much faster than it degrades on
        // clean data.
        let (x, y) = blobs(0.02, 5);
        let gpc = GpcLocalizer::fit(
            x.clone(),
            y.clone(),
            3,
            GpcConfig {
                length_scale: 0.1,
                ..Default::default()
            },
        )
        .expect("fit");
        let clean_acc = calloc_nn::metrics::accuracy(&gpc.predict_classes(&x), &y);
        let mut rng = Rng::new(6);
        let noisy = Matrix::from_fn(x.rows(), x.cols(), |r, c| {
            (x.get(r, c) + rng.normal(0.0, 0.25)).clamp(0.0, 1.0)
        });
        let noisy_acc = calloc_nn::metrics::accuracy(&gpc.predict_classes(&noisy), &y);
        assert!(
            noisy_acc < clean_acc * 0.8,
            "clean {clean_acc}, noisy {noisy_acc}"
        );
    }

    #[test]
    fn white_box_attack_reduces_accuracy() {
        use calloc_attack::{craft, AttackConfig};
        let (x, y) = blobs(0.04, 7);
        let gpc = GpcLocalizer::fit(x.clone(), y.clone(), 3, GpcConfig::default()).expect("fit");
        let clean = calloc_nn::metrics::accuracy(&gpc.predict_classes(&x), &y);
        let adv = craft(&gpc, &x, &y, &AttackConfig::fgsm(0.3, 100.0));
        let attacked = calloc_nn::metrics::accuracy(&gpc.predict_classes(&adv), &y);
        assert!(
            attacked < clean,
            "attack ineffective: {clean} -> {attacked}"
        );
    }
}
