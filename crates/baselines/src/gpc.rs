//! Gaussian-process classification (the WiDeep/Fig. 1 "GPC" baseline).
//!
//! Exact GP classification needs an iterative Laplace/EP approximation; as
//! documented in DESIGN.md we use the standard shortcut of **GP regression
//! on one-hot labels** with an RBF kernel — a well-behaved classifier whose
//! key property for this paper (extreme sensitivity to input noise) is
//! identical. The predictive scores are differentiable in closed form,
//! giving white-box attack gradients.

use calloc_nn::state::{StateError, StateReader, StateWriter};
use calloc_nn::{DifferentiableModel, Localizer};
use calloc_tensor::{kernel, linalg, par, Matrix};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the GPC baseline.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GpcConfig {
    /// RBF kernel length scale ℓ (in normalized RSS units).
    pub length_scale: f64,
    /// Observation noise σ² added to the kernel diagonal.
    pub noise: f64,
    /// Score sharpening applied before the softmax used for attack
    /// gradients (GP regression scores live near [0, 1]).
    pub sharpness: f64,
}

impl Default for GpcConfig {
    fn default() -> Self {
        GpcConfig {
            length_scale: 0.5,
            noise: 1e-2,
            sharpness: 10.0,
        }
    }
}

/// RBF-kernel Gaussian-process localization.
///
/// # Example
///
/// ```
/// use calloc_baselines::{GpcConfig, GpcLocalizer};
/// use calloc_nn::Localizer;
/// use calloc_tensor::Matrix;
///
/// let x = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]);
/// let gpc = GpcLocalizer::fit(x.clone(), vec![0, 1], 2, GpcConfig::default())?;
/// assert_eq!(gpc.predict_classes(&x), vec![0, 1]);
/// # Ok::<(), calloc_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GpcLocalizer {
    x_train: Matrix,
    /// `alpha = (K + σ²I)⁻¹ Y_onehot`, shape `n_train` x `num_classes`.
    alpha: Matrix,
    /// Lower-triangular Cholesky factor of `K + σ²I`, kept from
    /// [`GpcLocalizer::fit`] so [`GpcLocalizer::absorb`] can fold new
    /// fingerprints in without refactoring. `None` on models restored
    /// from serialized state (the wire format predates the factor and
    /// stays unchanged); `absorb` rebuilds it lazily on first use.
    factor: Option<Matrix>,
    /// Forward-solve state `Z = L⁻¹·Y_onehot` carried with the factor:
    /// each absorbed point appends one row to it in `O(n·C)`, so a batch
    /// absorb needs only a single backward substitution at the end.
    /// Rebuilt lazily (as `Lᵀ·α`) together with `factor`.
    fwd: Option<Matrix>,
    config: GpcConfig,
    num_classes: usize,
}

impl GpcLocalizer {
    /// Fits GP regression on one-hot labels.
    ///
    /// # Errors
    ///
    /// Returns a [`calloc_tensor::TensorError`] if the kernel matrix is not
    /// positive definite (raise `config.noise`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or an out-of-range label.
    pub fn fit(
        x_train: Matrix,
        y_train: Vec<usize>,
        num_classes: usize,
        config: GpcConfig,
    ) -> Result<Self, calloc_tensor::TensorError> {
        assert_eq!(x_train.rows(), y_train.len(), "sample/label mismatch");
        assert!(!y_train.is_empty(), "empty training set");
        assert!(
            y_train.iter().all(|&y| y < num_classes),
            "label out of range"
        );
        // The symmetric Gram matrix, one triangle computed and mirrored —
        // each element is the same ascending-column RBF the scalar loop
        // computed, so the factorization input is unchanged bit-for-bit.
        let gram = kernel::rbf_gram(&x_train, config.length_scale);
        let kernel = linalg::add_diagonal(&gram, config.noise);
        let mut onehot = Matrix::zeros(x_train.rows(), num_classes);
        for (i, &y) in y_train.iter().enumerate() {
            onehot.set(i, y, 1.0);
        }
        // Factor once and keep L for `absorb`; the two triangular solves
        // are exactly what `linalg::solve_spd` does internally, so alpha
        // is bit-identical to the historical `solve_spd` call.
        let l = linalg::cholesky(&kernel)?;
        let fwd = linalg::solve_lower_triangular(&l, &onehot)?;
        let alpha = linalg::solve_upper_from_lower(&l, &fwd)?;
        Ok(GpcLocalizer {
            x_train,
            alpha,
            factor: Some(l),
            fwd: Some(fwd),
            config,
            num_classes,
        })
    }

    /// Folds newly surveyed fingerprints into the fitted model **without
    /// a full refit** — the streaming counterpart of environment drift:
    /// fingerprint databases age, and production surveys arrive
    /// continuously.
    ///
    /// For each new point the kernel factor is grown by one bordered
    /// row (`L' = [[L, 0], [mᵀ, d]]` with `m = L⁻¹k`,
    /// `d = √(κ − ‖m‖²)`) and the carried forward-solve state
    /// `Z = L⁻¹·Y_onehot` by one row (`z = (y − mᵀZ)/d`); the
    /// regression weights are then re-solved **once** per batch by a
    /// single backward substitution against the grown factor —
    /// `O(n²)` per point plus `O(n²·C)` per batch, against the
    /// `O(n³/3)` of refactoring, which `perf_baseline`'s
    /// `recalibration` section measures.
    ///
    /// **Tolerance tier:** in exact arithmetic the absorbed model equals
    /// a full [`GpcLocalizer::fit`] on the concatenated training set; in
    /// floating point it agrees to rounding, not bit-exactly. The pinned
    /// tolerance (`scores` within `1e-6` absolute of the refit) is
    /// enforced by `crates/baselines/tests/proptest_recalibration.rs`;
    /// batch fitting and inference stay bit-pinned and are untouched by
    /// this path.
    ///
    /// Models restored from serialized state carry no factor (the wire
    /// format is unchanged); the first `absorb` refactors once, then
    /// increments.
    ///
    /// # Errors
    ///
    /// Returns a [`calloc_tensor::TensorError`] if the grown kernel
    /// loses positive definiteness to working precision (e.g. a new
    /// fingerprint duplicates an existing one more closely than the
    /// noise floor can absorb — raise `config.noise`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or an out-of-range label, mirroring
    /// [`GpcLocalizer::fit`].
    pub fn absorb(
        &mut self,
        x_new: &Matrix,
        y_new: &[usize],
    ) -> Result<(), calloc_tensor::TensorError> {
        assert_eq!(x_new.rows(), y_new.len(), "sample/label mismatch");
        assert_eq!(
            x_new.cols(),
            self.x_train.cols(),
            "fingerprint width mismatch"
        );
        assert!(
            y_new.iter().all(|&y| y < self.num_classes),
            "label out of range"
        );
        self.ensure_recalibration_state()?;
        for (row, &label) in y_new.iter().enumerate() {
            let point = Matrix::from_fn(1, x_new.cols(), |_, c| x_new.get(row, c));
            self.border_one(&point, label)?;
        }
        // One backward substitution re-solves the weights against the
        // grown factor; sequential single-point absorbs reach the same
        // (factor, Z) state, so their final alpha is bit-identical to
        // the batch path.
        let l = self.factor.as_ref().expect("factor ensured above");
        let fwd = self.fwd.as_ref().expect("fwd ensured above");
        self.alpha = linalg::solve_upper_from_lower(l, fwd)?;
        Ok(())
    }

    /// Rebuilds the `(factor, Z)` recalibration state if this model came
    /// off the wire without it: refactor once, recover `Z` as `Lᵀ·α`
    /// (which equals `L⁻¹·Y_onehot` in exact arithmetic).
    fn ensure_recalibration_state(&mut self) -> Result<(), calloc_tensor::TensorError> {
        if self.factor.is_none() {
            let gram = kernel::rbf_gram(&self.x_train, self.config.length_scale);
            self.factor = Some(linalg::cholesky(&linalg::add_diagonal(
                &gram,
                self.config.noise,
            ))?);
            self.fwd = None;
        }
        if self.fwd.is_none() {
            let l = self.factor.as_ref().expect("factor ensured above");
            let n = self.x_train.rows();
            let classes = self.num_classes;
            let mut z = Matrix::zeros(n, classes);
            for i in 0..n {
                for c in 0..classes {
                    let mut sum = 0.0;
                    for k in i..n {
                        sum += l.get(k, i) * self.alpha.get(k, c);
                    }
                    z.set(i, c, sum);
                }
            }
            self.fwd = Some(z);
        }
        Ok(())
    }

    /// Grows the factor, forward-solve state and training bank by one
    /// fingerprint (the weights are re-solved once per batch in
    /// [`GpcLocalizer::absorb`]).
    fn border_one(
        &mut self,
        point: &Matrix,
        label: usize,
    ) -> Result<(), calloc_tensor::TensorError> {
        let l = self.factor.as_ref().expect("factor ensured by absorb");
        let z = self.fwd.as_ref().expect("fwd ensured by absorb");
        let n = self.x_train.rows();
        let classes = self.num_classes;

        // Cross-kernel column against the current bank and its forward
        // solve m = L⁻¹ k.
        let k_row = kernel::rbf_cross(point, &self.x_train, self.config.length_scale);
        let k_col = Matrix::from_fn(n, 1, |i, _| k_row.get(0, i));
        let m = linalg::solve_lower_triangular(l, &k_col)?;
        // RBF self-similarity is 1, plus the diagonal noise.
        let kappa = 1.0 + self.config.noise;
        let d2 = kappa - m.as_slice().iter().map(|v| v * v).sum::<f64>();
        if d2 <= 0.0 {
            return Err(calloc_tensor::TensorError::Numeric(format!(
                "absorb: bordered pivot {d2:.3e} not positive; \
                 kernel lost definiteness (raise noise)"
            )));
        }
        let d = d2.sqrt();

        // The forward-solve state gains one row: z = (y_onehot − mᵀZ) / d.
        let mut z_new = vec![0.0; classes];
        for (c, zv) in z_new.iter_mut().enumerate() {
            let y = if c == label { 1.0 } else { 0.0 };
            let dot: f64 = (0..n).map(|i| m.get(i, 0) * z.get(i, c)).sum();
            *zv = (y - dot) / d;
        }

        // Commit the grown state: bordered factor, extended forward
        // solve, appended fingerprint.
        let grown = Matrix::from_fn(n + 1, n + 1, |i, j| {
            if i < n && j < n {
                l.get(i, j)
            } else if i == n && j < n {
                m.get(j, 0)
            } else if i == n && j == n {
                d
            } else {
                0.0
            }
        });
        let grown_fwd = Matrix::from_fn(
            n + 1,
            classes,
            |i, c| {
                if i < n {
                    z.get(i, c)
                } else {
                    z_new[c]
                }
            },
        );
        self.x_train = Matrix::from_fn(n + 1, self.x_train.cols(), |i, c| {
            if i < n {
                self.x_train.get(i, c)
            } else {
                point.get(0, c)
            }
        });
        self.factor = Some(grown);
        self.fwd = Some(grown_fwd);
        Ok(())
    }

    /// Raw GP regression scores (`batch` x `num_classes`), before
    /// sharpening: `k(x, X_train) · α`, computed as one batched
    /// cross-kernel followed by a matrix product.
    ///
    /// The blocked matmul accumulates each output element over ascending
    /// training indices exactly like the former scalar loop, so scores are
    /// bit-identical to the seed path (enforced by `perf_baseline`).
    pub fn scores(&self, x: &Matrix) -> Matrix {
        self.cross_kernel(x).matmul(&self.alpha)
    }

    /// The batch × train RBF cross-kernel `k(x, X_train)`.
    ///
    /// This is the single most expensive piece of GPC inference; callers
    /// that need both scores and gradients (see
    /// [`DifferentiableModel::loss_and_input_grad`]) compute it **once**
    /// and share it.
    fn cross_kernel(&self, x: &Matrix) -> Matrix {
        kernel::rbf_cross(x, &self.x_train, self.config.length_scale)
    }

    /// The stored training fingerprints.
    pub fn x_train(&self) -> &Matrix {
        &self.x_train
    }

    /// The fitted regression weights `α = (K + σ²I)⁻¹ Y_onehot`
    /// (`n_train` × `num_classes`).
    pub fn alpha(&self) -> &Matrix {
        &self.alpha
    }

    /// The hyper-parameters this model was fitted with.
    pub fn config(&self) -> GpcConfig {
        self.config
    }

    /// The retained Cholesky factor of `K + σ²I`, if this model still
    /// carries one (`None` after a state-bytes round trip — the wire
    /// format is factor-free and unchanged).
    pub fn factor(&self) -> Option<&Matrix> {
        self.factor.as_ref()
    }

    /// Encodes the fitted model into an open writer (used standalone and
    /// nested inside WiDeep's state).
    pub(crate) fn encode_into(&self, w: &mut StateWriter) {
        w.matrix(&self.x_train);
        w.matrix(&self.alpha);
        w.f64(self.config.length_scale);
        w.f64(self.config.noise);
        w.f64(self.config.sharpness);
        w.usize(self.num_classes);
    }

    /// Decodes a model written by [`Self::encode_into`].
    pub(crate) fn decode_from(r: &mut StateReader) -> Result<Self, StateError> {
        let x_train = r.matrix()?;
        let alpha = r.matrix()?;
        let config = GpcConfig {
            length_scale: r.f64()?,
            noise: r.f64()?,
            sharpness: r.f64()?,
        };
        let num_classes = r.usize()?;
        if alpha.rows() != x_train.rows() || alpha.cols() != num_classes {
            return Err(format!(
                "alpha shape {:?} inconsistent with {} train rows / {num_classes} classes",
                alpha.shape(),
                x_train.rows()
            ));
        }
        Ok(GpcLocalizer {
            x_train,
            alpha,
            factor: None,
            fwd: None,
            config,
            num_classes,
        })
    }

    /// Bit-exact encoding of the fitted model for the model cache
    /// (see [`calloc_nn::state`]).
    pub fn state_bytes(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Decodes a model written by [`Self::state_bytes`]; malformed input
    /// errors, never panics.
    pub fn from_state(bytes: &[u8]) -> Result<Self, StateError> {
        let mut r = StateReader::new(bytes);
        let model = Self::decode_from(&mut r)?;
        r.finish()?;
        Ok(model)
    }
}

impl DifferentiableModel for GpcLocalizer {
    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn logits(&self, x: &Matrix) -> Matrix {
        self.scores(x).scale(self.config.sharpness)
    }

    fn loss_and_input_grad(&self, x: &Matrix, targets: &[usize]) -> (f64, Matrix) {
        assert_eq!(targets.len(), x.rows(), "label count mismatch");
        // The cross-kernel is computed ONCE and shared between the logits
        // and the gradient — the seed path evaluated every RBF row twice
        // per attack step.
        let cross = self.cross_kernel(x);
        let logits = cross.matmul(&self.alpha).scale(self.config.sharpness);
        let (loss, grad_logits) = calloc_nn::loss::cross_entropy(&logits, targets);

        // d logits_c / dx = sharpness · Σ_i α_ic · dk_i/dx,
        // dk_i/dx = k_i · (x_i − x) / ℓ²
        let ls2 = self.config.length_scale * self.config.length_scale;
        let sharpness = self.config.sharpness;
        let (rows, cols) = x.shape();
        let mut grad_x = Matrix::zeros(rows, cols);
        if rows == 0 || cols == 0 {
            return (loss, grad_x);
        }
        // weights[r][i] = Σ_c grad_logits_rc · α_ic — the blocked `A·Bᵀ`
        // kernel accumulates over ascending classes exactly like the former
        // per-pair scalar dot.
        let weights = grad_logits.matmul_transposed(&self.alpha);
        let n_train = self.x_train.rows();
        let (kd, wd) = (cross.as_slice(), weights.as_slice());
        let (xtd, xd) = (self.x_train.as_slice(), x.as_slice());
        // Rows are independent; per-row cost is train × dim.
        let min_rows = par::min_rows_for(n_train.saturating_mul(2 * cols + 8));
        par::par_row_chunks_mut(grad_x.as_mut_slice(), cols, min_rows, |first_row, chunk| {
            for (rr, grow) in chunk.chunks_exact_mut(cols).enumerate() {
                let r = first_row + rr;
                let krow = &kd[r * n_train..(r + 1) * n_train];
                let wrow = &wd[r * n_train..(r + 1) * n_train];
                let xrow = &xd[r * cols..(r + 1) * cols];
                // The training loop is unrolled four wide to cut `grow`
                // load/store traffic; the per-element left-associated
                // chain keeps the additions in exact ascending-i order, so
                // the result bits match adding one row at a time.
                let mut i = 0;
                while i + 4 <= n_train {
                    let w0 = wrow[i] * (sharpness * krow[i] / ls2);
                    let w1 = wrow[i + 1] * (sharpness * krow[i + 1] / ls2);
                    let w2 = wrow[i + 2] * (sharpness * krow[i + 2] / ls2);
                    let w3 = wrow[i + 3] * (sharpness * krow[i + 3] / ls2);
                    let t0 = &xtd[i * cols..(i + 1) * cols];
                    let t1 = &xtd[(i + 1) * cols..(i + 2) * cols];
                    let t2 = &xtd[(i + 2) * cols..(i + 3) * cols];
                    let t3 = &xtd[(i + 3) * cols..(i + 4) * cols];
                    for (c, (gv, &xv)) in grow.iter_mut().zip(xrow).enumerate() {
                        #[allow(clippy::assign_op_pattern)]
                        {
                            *gv = *gv
                                + w0 * (t0[c] - xv)
                                + w1 * (t1[c] - xv)
                                + w2 * (t2[c] - xv)
                                + w3 * (t3[c] - xv);
                        }
                    }
                    i += 4;
                }
                while i < n_train {
                    let w = wrow[i] * (sharpness * krow[i] / ls2);
                    let xtrow = &xtd[i * cols..(i + 1) * cols];
                    for ((gv, &xt), &xv) in grow.iter_mut().zip(xtrow).zip(xrow) {
                        *gv += w * (xt - xv);
                    }
                    i += 1;
                }
            }
        });
        (loss, grad_x)
    }
}

impl Localizer for GpcLocalizer {
    fn name(&self) -> &str {
        "GPC"
    }

    fn predict_classes(&self, x: &Matrix) -> Vec<usize> {
        self.scores(x).argmax_rows()
    }

    fn as_differentiable(&self) -> Option<&dyn DifferentiableModel> {
        Some(self)
    }

    fn state(&self) -> Option<Vec<u8>> {
        Some(self.state_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calloc_tensor::Rng;

    fn blobs(noise: f64, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = Rng::new(seed);
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        let centers = [(0.2, 0.2), (0.8, 0.3), (0.5, 0.9)];
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..12 {
                rows.push(vec![
                    (cx + rng.normal(0.0, noise)).clamp(0.0, 1.0),
                    (cy + rng.normal(0.0, noise)).clamp(0.0, 1.0),
                ]);
                ys.push(c);
            }
        }
        (Matrix::from_rows(&rows), ys)
    }

    #[test]
    fn fits_and_classifies_blobs() {
        let (x, y) = blobs(0.03, 1);
        let gpc = GpcLocalizer::fit(x.clone(), y.clone(), 3, GpcConfig::default()).expect("fit");
        let acc = calloc_nn::metrics::accuracy(&gpc.predict_classes(&x), &y);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn training_scores_interpolate_labels() {
        let (x, y) = blobs(0.03, 2);
        let gpc = GpcLocalizer::fit(x.clone(), y.clone(), 3, GpcConfig::default()).expect("fit");
        let s = gpc.scores(&x);
        // On training points the regression should be close to the one-hot.
        for (r, &c) in y.iter().enumerate() {
            assert!(
                s.get(r, c) > 0.5,
                "score at train point {r}: {}",
                s.get(r, c)
            );
        }
    }

    #[test]
    fn input_gradient_matches_finite_diff() {
        let (x, y) = blobs(0.05, 3);
        let gpc = GpcLocalizer::fit(x.clone(), y.clone(), 3, GpcConfig::default()).expect("fit");
        let mut rng = Rng::new(4);
        let q = Matrix::from_fn(2, 2, |_, _| rng.uniform(0.1, 0.9));
        let targets = vec![1usize, 2];
        let (_, grad) = gpc.loss_and_input_grad(&q, &targets);
        let eps = 1e-6;
        for r in 0..2 {
            for c in 0..2 {
                let mut qp = q.clone();
                qp.set(r, c, q.get(r, c) + eps);
                let mut qm = q.clone();
                qm.set(r, c, q.get(r, c) - eps);
                let fd = (gpc.loss_and_input_grad(&qp, &targets).0
                    - gpc.loss_and_input_grad(&qm, &targets).0)
                    / (2.0 * eps);
                assert!(
                    (grad.get(r, c) - fd).abs() < 1e-5,
                    "grad[{r}][{c}] {} vs {fd}",
                    grad.get(r, c)
                );
            }
        }
    }

    #[test]
    fn gpc_is_noise_sensitive() {
        // The paper's rationale for WiDeep's weakness: GPC accuracy
        // collapses under feature noise much faster than it degrades on
        // clean data.
        let (x, y) = blobs(0.02, 5);
        let gpc = GpcLocalizer::fit(
            x.clone(),
            y.clone(),
            3,
            GpcConfig {
                length_scale: 0.1,
                ..Default::default()
            },
        )
        .expect("fit");
        let clean_acc = calloc_nn::metrics::accuracy(&gpc.predict_classes(&x), &y);
        let mut rng = Rng::new(6);
        let noisy = Matrix::from_fn(x.rows(), x.cols(), |r, c| {
            (x.get(r, c) + rng.normal(0.0, 0.25)).clamp(0.0, 1.0)
        });
        let noisy_acc = calloc_nn::metrics::accuracy(&gpc.predict_classes(&noisy), &y);
        assert!(
            noisy_acc < clean_acc * 0.8,
            "clean {clean_acc}, noisy {noisy_acc}"
        );
    }

    #[test]
    fn fit_alpha_matches_the_historical_solve_spd_path() {
        // The factor-retaining fit must be bit-identical to the old
        // `solve_spd` composition — batch fitting stays bit-pinned.
        let (x, y) = blobs(0.03, 11);
        let config = GpcConfig::default();
        let gpc = GpcLocalizer::fit(x.clone(), y.clone(), 3, config).expect("fit");
        let kernel = calloc_tensor::linalg::add_diagonal(
            &calloc_tensor::kernel::rbf_gram(&x, config.length_scale),
            config.noise,
        );
        let mut onehot = Matrix::zeros(x.rows(), 3);
        for (i, &c) in y.iter().enumerate() {
            onehot.set(i, c, 1.0);
        }
        let reference = calloc_tensor::linalg::solve_spd(&kernel, &onehot).expect("spd");
        for (i, (a, b)) in gpc
            .alpha()
            .as_slice()
            .iter()
            .zip(reference.as_slice())
            .enumerate()
        {
            assert_eq!(a.to_bits(), b.to_bits(), "alpha element {i}");
        }
        let l = gpc.factor().expect("fit retains the factor");
        assert!(l.matmul(&l.transpose()).approx_eq(&kernel, 1e-9));
    }

    #[test]
    fn absorb_matches_full_refit_within_tolerance() {
        let (x, y) = blobs(0.05, 12);
        let split = x.rows() - 5;
        let head = Matrix::from_fn(split, x.cols(), |r, c| x.get(r, c));
        let tail = Matrix::from_fn(5, x.cols(), |r, c| x.get(split + r, c));
        let mut absorbed =
            GpcLocalizer::fit(head, y[..split].to_vec(), 3, GpcConfig::default()).expect("fit");
        absorbed.absorb(&tail, &y[split..]).expect("absorb");
        let refit = GpcLocalizer::fit(x.clone(), y.clone(), 3, GpcConfig::default()).expect("fit");

        assert_eq!(absorbed.x_train().shape(), refit.x_train().shape());
        let mut rng = Rng::new(13);
        let queries = Matrix::from_fn(8, 2, |_, _| rng.uniform(0.0, 1.0));
        let (sa, sr) = (absorbed.scores(&queries), refit.scores(&queries));
        for (i, (a, b)) in sa.as_slice().iter().zip(sr.as_slice()).enumerate() {
            assert!((a - b).abs() < 1e-6, "score {i}: absorbed {a} vs refit {b}");
        }
        assert_eq!(
            absorbed.predict_classes(&queries),
            refit.predict_classes(&queries)
        );
    }

    #[test]
    fn absorb_after_state_round_trip_rebuilds_the_factor() {
        let (x, y) = blobs(0.05, 14);
        let split = x.rows() - 3;
        let head = Matrix::from_fn(split, x.cols(), |r, c| x.get(r, c));
        let tail = Matrix::from_fn(3, x.cols(), |r, c| x.get(split + r, c));
        let fitted =
            GpcLocalizer::fit(head, y[..split].to_vec(), 3, GpcConfig::default()).expect("fit");
        let mut restored = GpcLocalizer::from_state(&fitted.state_bytes()).expect("decode");
        assert!(restored.factor().is_none(), "wire format is factor-free");
        restored.absorb(&tail, &y[split..]).expect("absorb");
        let refit = GpcLocalizer::fit(x.clone(), y.clone(), 3, GpcConfig::default()).expect("fit");
        let mut rng = Rng::new(15);
        let queries = Matrix::from_fn(6, 2, |_, _| rng.uniform(0.0, 1.0));
        for (i, (a, b)) in restored
            .scores(&queries)
            .as_slice()
            .iter()
            .zip(refit.scores(&queries).as_slice())
            .enumerate()
        {
            assert!((a - b).abs() < 1e-6, "score {i}: {a} vs {b}");
        }
    }

    #[test]
    fn white_box_attack_reduces_accuracy() {
        use calloc_attack::{craft, AttackConfig};
        let (x, y) = blobs(0.04, 7);
        let gpc = GpcLocalizer::fit(x.clone(), y.clone(), 3, GpcConfig::default()).expect("fit");
        let clean = calloc_nn::metrics::accuracy(&gpc.predict_classes(&x), &y);
        let adv = craft(&gpc, &x, &y, &AttackConfig::fgsm(0.3, 100.0));
        let attacked = calloc_nn::metrics::accuracy(&gpc.predict_classes(&adv), &y);
        assert!(
            attacked < clean,
            "attack ineffective: {clean} -> {attacked}"
        );
    }
}
