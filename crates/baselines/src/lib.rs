//! # calloc-baselines
//!
//! Every comparison framework of the CALLOC paper, implemented from
//! scratch:
//!
//! * **Fig. 1 baselines** — [`KnnLocalizer`] (k-nearest neighbours),
//!   [`NaiveBayesLocalizer`], [`GpcLocalizer`] (Gaussian-process
//!   classifier) and [`DnnLocalizer`] (MLP).
//! * **Fig. 6/7 state-of-the-art frameworks** —
//!   [`AdvLocLocalizer`] (DNN + adversarial training, Patil et al.),
//!   [`SangriaLocalizer`] (stacked autoencoder + gradient-boosted trees,
//!   Gufran et al.), [`AnvilLocalizer`] (multi-head attention network,
//!   Tiku et al.) and [`WiDeepLocalizer`] (denoising autoencoder + GPC,
//!   Abbas et al.).
//!
//! Supporting substrates built here because the originals depend on them:
//! a full gradient-boosted decision-tree learner ([`gbdt`]) and a
//! differentiable soft-KNN surrogate ([`SoftKnn`]) used to craft white-box
//! attacks against the non-parametric KNN.
//!
//! All models implement [`calloc_nn::Localizer`]; the differentiable ones
//! also implement [`calloc_nn::DifferentiableModel`] so the attack crate
//! can craft white-box adversarial examples against them. SANGRIA's tree
//! ensemble is non-differentiable and is attacked by transfer from a
//! surrogate (see `calloc-eval`).

#![deny(missing_docs)]

mod advloc;
mod anvil;
mod dnn;
pub mod gbdt;
mod gpc;
mod knn;
mod naive_bayes;
mod sangria;
mod wideep;

pub use advloc::{AdvLocConfig, AdvLocLocalizer};
pub use anvil::{AnvilConfig, AnvilLocalizer};
pub use dnn::{DnnConfig, DnnLocalizer};
pub use gpc::{GpcConfig, GpcLocalizer};
pub use knn::{KnnLocalizer, SoftKnn};
pub use naive_bayes::NaiveBayesLocalizer;
pub use sangria::{SangriaConfig, SangriaLocalizer};
pub use wideep::{WiDeepConfig, WiDeepLocalizer};

// Re-export the shared model contracts.
pub use calloc_nn::{DifferentiableModel, Localizer};
