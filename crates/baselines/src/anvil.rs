//! ANVIL — multi-head attention neural network for smartphone-invariant
//! indoor localization (Tiku et al., IPIN 2022).
//!
//! ANVIL embeds the fingerprint into a short sequence of feature tokens and
//! runs multi-head **self**-attention over them before classifying; the
//! attention mixing is what gives it its strong device-heterogeneity
//! resilience. It has no adversarial defence, which is why it trails under
//! attack in the paper's Fig. 6/7.
//!
//! The architecture here (embed → `T` tokens × `D` dims → `H`-head
//! self-attention → projection → classifier) follows the published design
//! at reduced scale; every gradient is hand-derived and finite-difference
//! tested.

use calloc_nn::attention::{attention_backward, attention_forward, AttentionCache};
use calloc_nn::state::{self, StateError, StateReader, StateWriter};
use calloc_nn::{loss, Dense, DifferentiableModel, Localizer, ParamAdam};
use calloc_tensor::{Matrix, Rng};
use serde::{Deserialize, Serialize};

/// ANVIL hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AnvilConfig {
    /// Number of feature tokens the embedding is reshaped into.
    pub tokens: usize,
    /// Token dimensionality (must be divisible by `heads`).
    pub dim: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for AnvilConfig {
    fn default() -> Self {
        AnvilConfig {
            tokens: 4,
            dim: 16,
            heads: 2,
            learning_rate: 1e-3,
            epochs: 80,
            batch_size: 32,
            seed: 0,
        }
    }
}

/// The ANVIL framework: multi-head attention classifier.
#[derive(Debug, Clone)]
pub struct AnvilLocalizer {
    config: AnvilConfig,
    num_classes: usize,
    embed: Dense,
    /// Per-head query/key/value projections (`dim` → `dim / heads`).
    wq: Vec<Dense>,
    wk: Vec<Dense>,
    wv: Vec<Dense>,
    /// Output projection over concatenated heads.
    wo: Dense,
    out: Dense,
}

/// Forward-pass cache for one batch.
struct Caches {
    x: Matrix,
    embed_pre: Matrix,
    tokens_all: Matrix,
    head_inputs: Vec<(Matrix, Matrix, Matrix)>,
    attn: Vec<Vec<AttentionCache>>,
    heads_all: Matrix,
    o_pre: Matrix,
    flat: Matrix,
}

impl AnvilLocalizer {
    /// Creates an untrained ANVIL model.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `heads`.
    pub fn new(num_aps: usize, num_classes: usize, config: AnvilConfig, rng: &mut Rng) -> Self {
        assert_eq!(
            config.dim % config.heads,
            0,
            "dim {} must be divisible by heads {}",
            config.dim,
            config.heads
        );
        let dh = config.dim / config.heads;
        AnvilLocalizer {
            embed: Dense::he(num_aps, config.tokens * config.dim, rng),
            wq: (0..config.heads)
                .map(|_| Dense::xavier(config.dim, dh, rng))
                .collect(),
            wk: (0..config.heads)
                .map(|_| Dense::xavier(config.dim, dh, rng))
                .collect(),
            wv: (0..config.heads)
                .map(|_| Dense::xavier(config.dim, dh, rng))
                .collect(),
            wo: Dense::xavier(config.dim, config.dim, rng),
            out: Dense::xavier(config.tokens * config.dim, num_classes, rng),
            config,
            num_classes,
        }
    }

    /// Trains ANVIL on `(x, y)` and returns the fitted model.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or empty data.
    pub fn fit(x: &Matrix, y: &[usize], num_classes: usize, config: &AnvilConfig) -> Self {
        assert_eq!(x.rows(), y.len(), "sample/label mismatch");
        assert!(!y.is_empty(), "empty training set");
        let mut rng = Rng::new(config.seed);
        let mut model = AnvilLocalizer::new(x.cols(), num_classes, *config, &mut rng);
        let mut opt = model.make_optimizer();

        for _ in 0..config.epochs {
            let order = rng.permutation(x.rows());
            for chunk in order.chunks(config.batch_size.max(1)) {
                let bx = x.select_rows(chunk);
                let by: Vec<usize> = chunk.iter().map(|&i| y[i]).collect();
                let (logits, caches) = model.forward(&bx);
                let (_, grad_logits) = loss::cross_entropy(&logits, &by);
                let grads = model.backward(&caches, &grad_logits);
                model.apply(&mut opt, &grads, config.learning_rate);
            }
        }
        model
    }

    /// Total trainable parameter count.
    pub fn parameter_count(&self) -> usize {
        let head_params: usize = self
            .wq
            .iter()
            .chain(&self.wk)
            .chain(&self.wv)
            .map(Dense::parameter_count)
            .sum();
        self.embed.parameter_count()
            + head_params
            + self.wo.parameter_count()
            + self.out.parameter_count()
    }

    fn forward(&self, x: &Matrix) -> (Matrix, Caches) {
        let b = x.rows();
        let t = self.config.tokens;
        let d = self.config.dim;

        let embed_pre = self.embed.forward(x);
        let embed_act = embed_pre.map(|v| v.max(0.0));
        // Row-major (B, T·D) reinterprets as (B·T, D) without copying order.
        let tokens_all = Matrix::from_vec(b * t, d, embed_act.into_vec());

        let mut head_inputs = Vec::with_capacity(self.config.heads);
        let mut attn = vec![Vec::with_capacity(b); self.config.heads];
        let mut head_outputs: Vec<Matrix> = Vec::with_capacity(self.config.heads);
        for (h, attn_h) in attn.iter_mut().enumerate() {
            let q_all = self.wq[h].forward(&tokens_all);
            let k_all = self.wk[h].forward(&tokens_all);
            let v_all = self.wv[h].forward(&tokens_all);
            let dh = q_all.cols();
            let mut out_all = Matrix::zeros(b * t, dh);
            for s in 0..b {
                let rows: Vec<usize> = (s * t..(s + 1) * t).collect();
                let (o, cache) = attention_forward(
                    &q_all.select_rows(&rows),
                    &k_all.select_rows(&rows),
                    &v_all.select_rows(&rows),
                );
                for (i, &r) in rows.iter().enumerate() {
                    out_all.set_row(r, o.row(i));
                }
                attn_h.push(cache);
            }
            head_inputs.push((q_all, k_all, v_all));
            head_outputs.push(out_all);
        }
        // Concatenate heads along the feature axis → (B·T, D).
        let mut heads_all = head_outputs[0].clone();
        for ho in &head_outputs[1..] {
            heads_all = heads_all.hstack(ho);
        }
        let o_pre = self.wo.forward(&heads_all);
        let o_act = o_pre.map(|v| v.max(0.0));
        let flat = Matrix::from_vec(b, t * d, o_act.into_vec());
        let logits = self.out.forward(&flat);
        (
            logits,
            Caches {
                x: x.clone(),
                embed_pre,
                tokens_all,
                head_inputs,
                attn,
                heads_all,
                o_pre,
                flat,
            },
        )
    }

    /// Backward pass: returns `(input_grad, parameter_grads)`.
    fn backward(&self, c: &Caches, grad_logits: &Matrix) -> Grads {
        let b = c.x.rows();
        let t = self.config.tokens;
        let d = self.config.dim;
        let dh = d / self.config.heads;

        let (g_flat, g_out_w, g_out_b) = self.out.backward(&c.flat, grad_logits);
        let g_o_act = Matrix::from_vec(b * t, d, g_flat.into_vec());
        let g_o_pre = g_o_act.zip_map(&c.o_pre, |g, p| if p > 0.0 { g } else { 0.0 });
        let (g_heads_all, g_wo_w, g_wo_b) = self.wo.backward(&c.heads_all, &g_o_pre);

        let mut g_tokens = Matrix::zeros(b * t, d);
        let mut g_wq = Vec::with_capacity(self.config.heads);
        let mut g_wk = Vec::with_capacity(self.config.heads);
        let mut g_wv = Vec::with_capacity(self.config.heads);
        for h in 0..self.config.heads {
            let cols: Vec<usize> = (h * dh..(h + 1) * dh).collect();
            let g_head_out = g_heads_all.select_cols(&cols);
            let (q_all, k_all, v_all) = &c.head_inputs[h];
            let mut g_q_all = Matrix::zeros(b * t, dh);
            let mut g_k_all = Matrix::zeros(b * t, dh);
            let mut g_v_all = Matrix::zeros(b * t, dh);
            for s in 0..b {
                let rows: Vec<usize> = (s * t..(s + 1) * t).collect();
                let (gq, gk, gv) =
                    attention_backward(&c.attn[h][s], &g_head_out.select_rows(&rows));
                for (i, &r) in rows.iter().enumerate() {
                    g_q_all.set_row(r, gq.row(i));
                    g_k_all.set_row(r, gk.row(i));
                    g_v_all.set_row(r, gv.row(i));
                }
            }
            let _ = (q_all, k_all, v_all);
            let (g_tok_q, gw_q, gb_q) = self.wq[h].backward(&c.tokens_all, &g_q_all);
            let (g_tok_k, gw_k, gb_k) = self.wk[h].backward(&c.tokens_all, &g_k_all);
            let (g_tok_v, gw_v, gb_v) = self.wv[h].backward(&c.tokens_all, &g_v_all);
            g_tokens = g_tokens.add(&g_tok_q).add(&g_tok_k).add(&g_tok_v);
            g_wq.push((gw_q, gb_q));
            g_wk.push((gw_k, gb_k));
            g_wv.push((gw_v, gb_v));
        }

        let g_embed_act = Matrix::from_vec(b, t * d, g_tokens.into_vec());
        let g_embed_pre = g_embed_act.zip_map(&c.embed_pre, |g, p| if p > 0.0 { g } else { 0.0 });
        let (g_x, g_embed_w, g_embed_b) = self.embed.backward(&c.x, &g_embed_pre);

        Grads {
            input: g_x,
            embed: (g_embed_w, g_embed_b),
            wq: g_wq,
            wk: g_wk,
            wv: g_wv,
            wo: (g_wo_w, g_wo_b),
            out: (g_out_w, g_out_b),
        }
    }

    /// Bit-exact encoding of the trained model for the model cache
    /// (see [`calloc_nn::state`]).
    pub fn state_bytes(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        let c = &self.config;
        w.usize(c.tokens);
        w.usize(c.dim);
        w.usize(c.heads);
        w.f64(c.learning_rate);
        w.usize(c.epochs);
        w.usize(c.batch_size);
        w.u64(c.seed);
        w.usize(self.num_classes);
        state::write_dense(&mut w, &self.embed);
        for head in self.wq.iter().chain(&self.wk).chain(&self.wv) {
            state::write_dense(&mut w, head);
        }
        state::write_dense(&mut w, &self.wo);
        state::write_dense(&mut w, &self.out);
        w.into_bytes()
    }

    /// Decodes a model written by [`Self::state_bytes`]; malformed input
    /// errors, never panics.
    pub fn from_state(bytes: &[u8]) -> Result<Self, StateError> {
        let mut r = StateReader::new(bytes);
        let config = AnvilConfig {
            tokens: r.usize()?,
            dim: r.usize()?,
            heads: r.usize()?,
            learning_rate: r.f64()?,
            epochs: r.usize()?,
            batch_size: r.usize()?,
            seed: r.u64()?,
        };
        if config.heads == 0 || config.dim % config.heads != 0 {
            return Err(format!(
                "dim {} not divisible by heads {}",
                config.dim, config.heads
            ));
        }
        // One head costs well over a byte; bound the allocations.
        if config.heads > r.remaining() {
            return Err(format!(
                "head count {} exceeds {} remaining bytes",
                config.heads,
                r.remaining()
            ));
        }
        let num_classes = r.usize()?;
        let embed = state::read_dense(&mut r)?;
        let heads = |r: &mut StateReader| -> Result<Vec<Dense>, StateError> {
            (0..config.heads).map(|_| state::read_dense(r)).collect()
        };
        let wq = heads(&mut r)?;
        let wk = heads(&mut r)?;
        let wv = heads(&mut r)?;
        let wo = state::read_dense(&mut r)?;
        let out = state::read_dense(&mut r)?;
        r.finish()?;
        Ok(AnvilLocalizer {
            config,
            num_classes,
            embed,
            wq,
            wk,
            wv,
            wo,
            out,
        })
    }

    fn make_optimizer(&self) -> Vec<ParamAdam> {
        let mut opts = Vec::new();
        let mut push = |d: &Dense| {
            opts.push(ParamAdam::new(d.w.rows(), d.w.cols()));
            opts.push(ParamAdam::new(1, d.b.cols()));
        };
        push(&self.embed);
        for h in 0..self.config.heads {
            push(&self.wq[h]);
            push(&self.wk[h]);
            push(&self.wv[h]);
        }
        push(&self.wo);
        push(&self.out);
        opts
    }

    fn apply(&mut self, opts: &mut [ParamAdam], grads: &Grads, lr: f64) {
        let mut i = 0;
        let mut step = |opts: &mut [ParamAdam], d: &mut Dense, g: &(Matrix, Matrix)| {
            opts[i].update(&mut d.w, &g.0, lr);
            opts[i + 1].update(&mut d.b, &g.1, lr);
            i += 2;
        };
        step(opts, &mut self.embed, &grads.embed);
        for h in 0..self.config.heads {
            step(opts, &mut self.wq[h], &grads.wq[h]);
            step(opts, &mut self.wk[h], &grads.wk[h]);
            step(opts, &mut self.wv[h], &grads.wv[h]);
        }
        step(opts, &mut self.wo, &grads.wo);
        step(opts, &mut self.out, &grads.out);
    }
}

/// All parameter gradients of one backward pass.
struct Grads {
    input: Matrix,
    embed: (Matrix, Matrix),
    wq: Vec<(Matrix, Matrix)>,
    wk: Vec<(Matrix, Matrix)>,
    wv: Vec<(Matrix, Matrix)>,
    wo: (Matrix, Matrix),
    out: (Matrix, Matrix),
}

impl DifferentiableModel for AnvilLocalizer {
    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn logits(&self, x: &Matrix) -> Matrix {
        self.forward(x).0
    }

    fn loss_and_input_grad(&self, x: &Matrix, targets: &[usize]) -> (f64, Matrix) {
        let (logits, caches) = self.forward(x);
        let (loss_value, grad_logits) = loss::cross_entropy(&logits, targets);
        let grads = self.backward(&caches, &grad_logits);
        (loss_value, grads.input)
    }
}

impl Localizer for AnvilLocalizer {
    fn name(&self) -> &str {
        "ANVIL"
    }

    fn predict_classes(&self, x: &Matrix) -> Vec<usize> {
        self.logits(x).argmax_rows()
    }

    fn as_differentiable(&self) -> Option<&dyn DifferentiableModel> {
        Some(self)
    }

    fn state(&self) -> Option<Vec<u8>> {
        Some(self.state_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calloc_nn::metrics::accuracy;

    fn blobs(n_per: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = Rng::new(seed);
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        let centers = [(0.2, 0.25), (0.75, 0.25), (0.5, 0.8)];
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..n_per {
                rows.push(vec![
                    (cx + rng.normal(0.0, 0.04)).clamp(0.0, 1.0),
                    (cy + rng.normal(0.0, 0.04)).clamp(0.0, 1.0),
                    rng.uniform(0.0, 1.0),
                    rng.uniform(0.0, 1.0),
                ]);
                ys.push(c);
            }
        }
        (Matrix::from_rows(&rows), ys)
    }

    fn small_config() -> AnvilConfig {
        AnvilConfig {
            tokens: 2,
            dim: 8,
            heads: 2,
            epochs: 120,
            learning_rate: 5e-3,
            ..Default::default()
        }
    }

    #[test]
    fn trains_to_high_accuracy() {
        let (x, y) = blobs(20, 1);
        let model = AnvilLocalizer::fit(&x, &y, 3, &small_config());
        let acc = accuracy(&model.predict_classes(&x), &y);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn input_gradient_matches_finite_diff() {
        let mut rng = Rng::new(2);
        let model = AnvilLocalizer::new(4, 3, small_config(), &mut rng);
        let q = Matrix::from_fn(2, 4, |_, _| rng.uniform(0.2, 0.8));
        let targets = vec![0usize, 2];
        let (_, grad) = model.loss_and_input_grad(&q, &targets);
        let eps = 1e-6;
        for r in 0..2 {
            for c in 0..4 {
                let mut qp = q.clone();
                qp.set(r, c, q.get(r, c) + eps);
                let mut qm = q.clone();
                qm.set(r, c, q.get(r, c) - eps);
                let fd = (model.loss_and_input_grad(&qp, &targets).0
                    - model.loss_and_input_grad(&qm, &targets).0)
                    / (2.0 * eps);
                assert!(
                    (grad.get(r, c) - fd).abs() < 1e-5,
                    "grad[{r}][{c}] {} vs {fd}",
                    grad.get(r, c)
                );
            }
        }
    }

    #[test]
    fn parameter_count_formula() {
        let mut rng = Rng::new(3);
        let config = small_config(); // T=2, D=8, H=2, dh=4
        let model = AnvilLocalizer::new(10, 5, config, &mut rng);
        let embed = 10 * 16 + 16;
        let heads = 6 * (8 * 4 + 4); // 3 projections × 2 heads
        let wo = 8 * 8 + 8;
        let out = 16 * 5 + 5;
        assert_eq!(model.parameter_count(), embed + heads + wo + out);
    }

    #[test]
    fn training_reduces_loss() {
        let (x, y) = blobs(15, 4);
        let mut rng = Rng::new(5);
        let untrained = AnvilLocalizer::new(x.cols(), 3, small_config(), &mut rng);
        let (loss_before, _) = untrained.loss_and_input_grad(&x, &y);
        let trained = AnvilLocalizer::fit(&x, &y, 3, &small_config());
        let (loss_after, _) = trained.loss_and_input_grad(&x, &y);
        assert!(
            loss_after < loss_before * 0.5,
            "{loss_before} -> {loss_after}"
        );
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn rejects_indivisible_heads() {
        let mut rng = Rng::new(6);
        AnvilLocalizer::new(
            4,
            2,
            AnvilConfig {
                dim: 9,
                heads: 2,
                ..Default::default()
            },
            &mut rng,
        );
    }
}
