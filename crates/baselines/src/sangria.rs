//! SANGRIA — stacked autoencoder + gradient-boosted trees
//! (Gufran et al., IEEE ESL 2023).
//!
//! SANGRIA first learns a compact latent representation of the fingerprint
//! space with a greedily pre-trained stacked autoencoder (which is what
//! gives it strong noise/heterogeneity augmentation resilience), then
//! classifies latents with a categorical gradient-boosted tree ensemble.
//! The tree ensemble is **not differentiable**, so
//! [`calloc_nn::Localizer::as_differentiable`] returns `None` and the
//! evaluation harness attacks SANGRIA by transfer from a surrogate — the
//! realistic scenario for this architecture.

use calloc_nn::state::{self, StateError, StateReader, StateWriter};
use calloc_nn::{Adam, Dense, Layer, Localizer, Sequential, TrainConfig, Trainer};
use calloc_tensor::{Matrix, Rng};
use serde::{Deserialize, Serialize};

use crate::gbdt::{GbdtClassifier, GbdtConfig};

/// SANGRIA hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SangriaConfig {
    /// Widths of the stacked encoder layers (input → ... → latent).
    pub encoder: Vec<usize>,
    /// Epochs per greedy autoencoder stage.
    pub pretrain_epochs: usize,
    /// Adam learning rate for pre-training.
    pub learning_rate: f64,
    /// Gaussian corruption added to inputs during pre-training (denoising
    /// flavour that provides the augmentation resilience).
    pub corruption_std: f64,
    /// Tree ensemble configuration.
    pub gbdt: GbdtConfig,
    /// Seed.
    pub seed: u64,
}

impl Default for SangriaConfig {
    fn default() -> Self {
        SangriaConfig {
            encoder: vec![128, 32],
            pretrain_epochs: 40,
            learning_rate: 1e-3,
            corruption_std: 0.05,
            gbdt: GbdtConfig::default(),
            seed: 0,
        }
    }
}

/// The SANGRIA framework.
#[derive(Debug, Clone)]
pub struct SangriaLocalizer {
    encoder: Sequential,
    classifier: GbdtClassifier,
}

impl SangriaLocalizer {
    /// Trains SANGRIA: greedy stacked-autoencoder pre-training followed by
    /// GBDT fitting on the latent codes.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or empty data.
    pub fn fit(x: &Matrix, y: &[usize], num_classes: usize, config: &SangriaConfig) -> Self {
        assert_eq!(x.rows(), y.len(), "sample/label mismatch");
        assert!(!y.is_empty(), "empty training set");
        let mut rng = Rng::new(config.seed);

        // Greedy stage-wise pre-training: each stage learns to reconstruct
        // the previous stage's (corrupted) activations.
        let mut encoder_layers: Vec<Layer> = Vec::new();
        let mut current = x.clone();
        for (stage, &width) in config.encoder.iter().enumerate() {
            let in_dim = current.cols();
            let mut stage_net = Sequential::new(vec![
                Layer::GaussianNoise {
                    std: config.corruption_std,
                },
                Layer::Dense(Dense::he(in_dim, width, &mut rng)),
                Layer::Relu,
                Layer::Dense(Dense::xavier(width, in_dim, &mut rng)),
            ]);
            let mut trainer = Trainer::new(
                Adam::new(config.learning_rate),
                TrainConfig {
                    epochs: config.pretrain_epochs,
                    batch_size: 32,
                    seed: config.seed ^ (stage as u64 + 1),
                    ..Default::default()
                },
            );
            trainer.fit_regression(&mut stage_net, &current, &current);
            // Keep the trained encoder half (Dense + Relu).
            let dense = stage_net.layers()[1].clone();
            encoder_layers.push(dense);
            encoder_layers.push(Layer::Relu);
            let partial = Sequential::new(encoder_layers.clone());
            current = partial.infer(x);
        }
        let encoder = Sequential::new(encoder_layers);
        let latent = encoder.infer(x);
        let classifier = GbdtClassifier::fit(&latent, y, num_classes, &config.gbdt);
        SangriaLocalizer {
            encoder,
            classifier,
        }
    }

    /// Latent codes for a batch of fingerprints.
    pub fn encode(&self, x: &Matrix) -> Matrix {
        self.encoder.infer(x)
    }

    /// The trained encoder.
    pub fn encoder(&self) -> &Sequential {
        &self.encoder
    }

    /// The trained tree ensemble.
    pub fn classifier(&self) -> &GbdtClassifier {
        &self.classifier
    }

    /// Bit-exact encoding of the trained framework for the model cache
    /// (see [`calloc_nn::state`]).
    pub fn state_bytes(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        state::write_sequential(&mut w, &self.encoder);
        self.classifier.encode_into(&mut w);
        w.into_bytes()
    }

    /// Decodes a model written by [`Self::state_bytes`]; malformed input
    /// errors, never panics.
    pub fn from_state(bytes: &[u8]) -> Result<Self, StateError> {
        let mut r = StateReader::new(bytes);
        let encoder = state::read_sequential(&mut r)?;
        let classifier = GbdtClassifier::decode_from(&mut r)?;
        r.finish()?;
        Ok(SangriaLocalizer {
            encoder,
            classifier,
        })
    }
}

impl Localizer for SangriaLocalizer {
    fn name(&self) -> &str {
        "SANGRIA"
    }

    fn predict_classes(&self, x: &Matrix) -> Vec<usize> {
        self.classifier.predict(&self.encode(x))
    }

    // No `as_differentiable`: the GBDT head blocks analytic gradients, so
    // attacks are transferred from a surrogate (see calloc-eval).

    fn state(&self) -> Option<Vec<u8>> {
        Some(self.state_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calloc_nn::metrics::accuracy;

    fn blobs(n_per: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = Rng::new(seed);
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        let centers = [(0.2, 0.3), (0.8, 0.2), (0.5, 0.85)];
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..n_per {
                rows.push(vec![
                    (cx + rng.normal(0.0, 0.04)).clamp(0.0, 1.0),
                    (cy + rng.normal(0.0, 0.04)).clamp(0.0, 1.0),
                    rng.uniform(0.0, 1.0),
                    rng.uniform(0.0, 1.0),
                ]);
                ys.push(c);
            }
        }
        (Matrix::from_rows(&rows), ys)
    }

    fn small_config() -> SangriaConfig {
        SangriaConfig {
            encoder: vec![16, 8],
            pretrain_epochs: 30,
            gbdt: GbdtConfig {
                rounds: 25,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn trains_to_high_accuracy() {
        let (x, y) = blobs(20, 1);
        let model = SangriaLocalizer::fit(&x, &y, 3, &small_config());
        let acc = accuracy(&model.predict_classes(&x), &y);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn latent_has_configured_width() {
        let (x, y) = blobs(10, 2);
        let model = SangriaLocalizer::fit(&x, &y, 3, &small_config());
        assert_eq!(model.encode(&x).cols(), 8);
    }

    #[test]
    fn is_not_differentiable() {
        let (x, y) = blobs(5, 3);
        let model = SangriaLocalizer::fit(&x, &y, 3, &small_config());
        assert!(model.as_differentiable().is_none());
    }

    #[test]
    fn noise_resilience_from_denoising_pretraining() {
        // SANGRIA's selling point: modest feature noise should not destroy
        // accuracy.
        let (x, y) = blobs(20, 4);
        let model = SangriaLocalizer::fit(&x, &y, 3, &small_config());
        let mut rng = Rng::new(5);
        let noisy = Matrix::from_fn(x.rows(), x.cols(), |r, c| {
            (x.get(r, c) + rng.normal(0.0, 0.03)).clamp(0.0, 1.0)
        });
        let acc = accuracy(&model.predict_classes(&noisy), &y);
        assert!(acc > 0.8, "noisy accuracy {acc}");
    }
}
