//! The TCP front end: a long-lived listener, one session thread per
//! connection, and the small blocking [`Client`] used by the load
//! generator and the robustness tests.
//!
//! Session discipline: frames are read with a short socket timeout so
//! every session polls the drain flag between frames; a frame that
//! *starts* but stalls past the timeout is a torn frame (slow-loris
//! protection) and answers `BadFrame` before the session closes. Frame
//! corruption replies the typed error and closes (the stream may be
//! desynchronized); message-level trouble replies and keeps the session
//! — framing is still synchronized. A `Drain` request stops the accept
//! loop and intake, lets the engine finish every admitted query, then
//! acknowledges with `Drained` and [`Server::run`] returns.

use std::io::{self, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::engine::{Engine, ServeConfig};
use crate::frame::{
    read_frame, write_frame, FrameRead, HealthReport, Request, Response, ServeError,
};
use crate::registry::Registry;

/// Socket read timeout: the cadence at which idle sessions poll the
/// drain flag, and the budget a started frame has to finish arriving.
const SESSION_POLL: Duration = Duration::from_millis(50);

/// The accept loop's poll cadence for the drain flag.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// A bound, not-yet-running localization server.
pub struct Server {
    listener: TcpListener,
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds `addr` and starts the serving engine over `registry`
    /// (queries dispatch as soon as [`Server::run`] is called).
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: Registry,
        config: ServeConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            engine: Arc::new(Engine::start(registry, config)),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a client sends `Drain`, then finishes all admitted
    /// work, joins every session, and returns the final statistics.
    pub fn run(self) -> HealthReport {
        self.listener
            .set_nonblocking(true)
            .expect("listener nonblocking");
        let mut sessions = Vec::new();
        while !self.stop.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let engine = Arc::clone(&self.engine);
                    let stop = Arc::clone(&self.stop);
                    sessions.push(std::thread::spawn(move || session(stream, &engine, &stop)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                // Transient accept errors (peer reset mid-handshake, …)
                // must not kill the server.
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }
        // Intake is closed; let the engine finish everything admitted,
        // then collect the sessions (they observe the stop flag on
        // their next poll tick).
        self.engine.begin_drain();
        self.engine.await_drained();
        for handle in sessions {
            let _ = handle.join();
        }
        self.engine.health()
    }
}

/// One connection's request/response loop.
fn session(stream: TcpStream, engine: &Engine, stop: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(SESSION_POLL));
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(frame) => frame,
            Err(_) => return, // hard transport error
        };
        let payload = match frame {
            FrameRead::Payload(payload) => payload,
            FrameRead::Eof => return,
            FrameRead::Idle => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            FrameRead::Corrupt(error) => {
                // The stream may be desynchronized: reply, then close.
                let _ = reply(&mut stream, &Response::Error(error));
                return;
            }
        };
        let request = match Request::decode(&payload) {
            Ok(request) => request,
            Err(error) => {
                // Framing is still synchronized; the session survives.
                if reply(&mut stream, &Response::Error(error)).is_err() {
                    return;
                }
                continue;
            }
        };
        let response = match request {
            Request::Locate {
                model,
                deadline_ms,
                fingerprint,
            } => match engine.submit(&model, fingerprint, deadline_ms) {
                // The batcher sends exactly one response per admitted
                // query, so this recv only fails if the engine died —
                // answer Internal rather than hanging the client.
                Ok(receiver) => receiver
                    .recv()
                    .unwrap_or(Response::Error(ServeError::Internal {
                        detail: "engine stopped before answering".to_string(),
                    })),
                Err(error) => Response::Error(error),
            },
            Request::Health => Response::Health(engine.health()),
            Request::Drain => {
                stop.store(true, Ordering::SeqCst);
                engine.begin_drain();
                engine.await_drained();
                let served = engine.health().served;
                let _ = reply(&mut stream, &Response::Drained { served });
                return;
            }
        };
        if reply(&mut stream, &response).is_err() {
            return;
        }
    }
}

/// Writes one response frame.
fn reply(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    write_frame(stream, &response.encode())?;
    stream.flush()
}

/// Client-side failure: transport trouble or an unparseable reply.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server's reply was not a valid frame/message, or the
    /// connection closed before one arrived.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(detail) => write!(f, "protocol: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A minimal blocking protocol client (one request in flight at a
/// time), used by the load generator and the robustness tests.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // Generous bound so a wedged server fails a test instead of
        // hanging it; the protocol never legitimately takes this long.
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(Client { stream })
    }

    /// Sends one request and reads one response.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.send_raw(&crate::frame::encode_frame(&request.encode()))?;
        self.read_response()
    }

    /// Locates one fingerprint (`deadline_ms == 0` = no deadline).
    pub fn locate(
        &mut self,
        model: &str,
        fingerprint: Vec<f64>,
        deadline_ms: u32,
    ) -> Result<Response, ClientError> {
        self.call(&Request::Locate {
            model: model.to_string(),
            deadline_ms,
            fingerprint,
        })
    }

    /// Asks for a statistics snapshot.
    pub fn health(&mut self) -> Result<HealthReport, ClientError> {
        match self.call(&Request::Health)? {
            Response::Health(report) => Ok(report),
            other => Err(ClientError::Protocol(format!(
                "expected Health reply, got {other:?}"
            ))),
        }
    }

    /// Requests a drain and waits for the acknowledgement.
    pub fn drain(&mut self) -> Result<u64, ClientError> {
        match self.call(&Request::Drain)? {
            Response::Drained { served } => Ok(served),
            other => Err(ClientError::Protocol(format!(
                "expected Drained reply, got {other:?}"
            ))),
        }
    }

    /// Writes raw bytes to the server — the fuzz tests use this to send
    /// deliberately broken frames.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads one response frame (after [`Client::send_raw`]).
    pub fn read_response(&mut self) -> Result<Response, ClientError> {
        match read_frame(&mut self.stream)? {
            FrameRead::Payload(payload) => {
                Response::decode(&payload).map_err(|e| ClientError::Protocol(e.to_string()))
            }
            FrameRead::Eof => Err(ClientError::Protocol(
                "connection closed before a response".to_string(),
            )),
            // The client's read timeout is a liveness bound: a server
            // silent for that long is treated as wedged so a test
            // fails instead of hanging.
            FrameRead::Idle => Err(ClientError::Protocol(
                "timed out waiting for a response".to_string(),
            )),
            FrameRead::Corrupt(error) => Err(ClientError::Protocol(error.to_string())),
        }
    }
}
