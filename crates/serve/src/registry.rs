//! The served-model registry: named, trained localizers plus the
//! geometry needed to turn a predicted reference-point class back into
//! meters.
//!
//! A [`ServeMember`] optionally carries a **fallback** model — a cheaper
//! member (e.g. KNN next to CALLOC) that the engine switches to while
//! the admission queue is saturated, so sustained overload degrades
//! answer quality gracefully instead of latency catastrophically. The
//! response's `degraded` flag tells the client which model answered.
//!
//! Registries are typically populated from the trained-model cache via
//! `calloc_eval::Suite::train_member_cached`, so a serving process
//! restores models bit-identically instead of retraining them.

use std::collections::BTreeMap;

use calloc_nn::Localizer;
use calloc_tensor::Matrix;

use crate::frame::Location;

/// One servable model: the primary localizer, an optional cheaper
/// fallback, and the RP-class → meters mapping of its building.
pub struct ServeMember {
    /// The primary trained model.
    model: Box<dyn Localizer>,
    /// Cheaper model used while the server degrades under overload.
    fallback: Option<Box<dyn Localizer>>,
    /// RP coordinates in meters, indexed by predicted class.
    rp_positions: Vec<(f64, f64)>,
    /// Fingerprint arity (AP count) the model expects.
    num_aps: usize,
}

impl ServeMember {
    /// Packages a trained model for serving.
    pub fn new(
        model: Box<dyn Localizer>,
        fallback: Option<Box<dyn Localizer>>,
        rp_positions: Vec<(f64, f64)>,
        num_aps: usize,
    ) -> Self {
        ServeMember {
            model,
            fallback,
            rp_positions,
            num_aps,
        }
    }

    /// Fingerprint arity (AP count) this member expects.
    pub fn num_aps(&self) -> usize {
        self.num_aps
    }

    /// Whether this member can degrade to a cheaper fallback.
    pub fn has_fallback(&self) -> bool {
        self.fallback.is_some()
    }

    /// Runs one micro-batch of fingerprints (rows of `x`) through the
    /// primary model — or the fallback when `degraded` is set and one is
    /// configured — and maps the predicted classes to meters. A class
    /// outside the RP table maps to the last RP rather than panicking
    /// (models are trained on the table, so this is belt-and-braces).
    pub fn locate_batch(&self, x: &Matrix, degraded: bool) -> Vec<Location> {
        let (model, used_fallback) = match (&self.fallback, degraded) {
            (Some(fallback), true) => (fallback.as_ref(), true),
            _ => (self.model.as_ref(), false),
        };
        let classes = model.predict_classes(x);
        classes
            .into_iter()
            .map(|class| {
                let clamped = class.min(self.rp_positions.len().saturating_sub(1));
                let (x_m, y_m) = self.rp_positions[clamped];
                Location {
                    rp_class: class as u64,
                    x: x_m,
                    y: y_m,
                    degraded: used_fallback,
                }
            })
            .collect()
    }
}

/// Name → trained member map behind the serving engine.
#[derive(Default)]
pub struct Registry {
    members: BTreeMap<String, ServeMember>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or replaces) a member under `name`.
    pub fn insert(&mut self, name: impl Into<String>, member: ServeMember) {
        self.members.insert(name.into(), member);
    }

    /// Looks a member up by name.
    pub fn get(&self, name: &str) -> Option<&ServeMember> {
        self.members.get(name)
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.members.keys().map(String::as_str).collect()
    }

    /// Number of registered members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the registry holds no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}
