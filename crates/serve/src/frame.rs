//! The serving protocol's length-prefixed, checksum-guarded frame codec.
//!
//! Every message travels inside one **frame**, mirroring the persistence
//! discipline of `calloc_eval::store`: magic bytes, a format version, an
//! explicit payload length, and an FNV-1a checksum over the payload. The
//! decoding law is the store truncation law transplanted to the wire:
//! **any** truncated, corrupt, oversized or bit-flipped frame decodes as
//! a typed [`ServeError`] — never a panic, never a hang, never silently
//! wrong bytes. Floating-point fingerprint values are carried as raw
//! IEEE-754 bits, so `-0.0`, subnormals and NaN payloads round-trip
//! bit-exactly and replayed logs can be compared byte-for-byte.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! magic    8 bytes   b"CALLOCSF"
//! version  u32       protocol version (2)
//! length   u32       payload length in bytes (<= MAX_PAYLOAD)
//! checksum u64       FNV-1a over the payload bytes
//! payload  length bytes
//! ```
//!
//! Payload grammar (tag byte first; `str` = u32 length + UTF-8 bytes):
//!
//! ```text
//! request  = locate | health | drain
//! locate   = 0x01 model:str deadline_ms:u32 n:u32 n*f64bits:u64
//! health   = 0x02
//! drain    = 0x03
//! response = located | error | healthrep | drained
//! located  = 0x10 rp_class:u64 x:u64 y:u64 degraded:u8
//! error    = 0x11 code:u8 fields...          (see ServeError::code)
//! healthrep= 0x12 admitted served shed quarantined expired degraded
//!                 queue_depth queue_peak batches:u64*9 draining:u8
//! drained  = 0x13 served:u64
//! ```

use std::fmt;
use std::io::{self, ErrorKind, Read, Write};

/// Magic bytes opening every frame.
pub const MAGIC: &[u8; 8] = b"CALLOCSF";

/// Protocol version carried in every frame header. Version 2 widened
/// the health report with the admission-queue high-water mark and the
/// cumulative dispatched-batch count; a version-1 peer's frames are
/// refused with a typed [`ServeError::BadFrame`] rather than misread.
pub const VERSION: u32 = 2;

/// Hard cap on a frame payload, enforced **before** any allocation so a
/// corrupt or hostile length field cannot balloon server memory.
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// Frame header size in bytes: magic + version + length + checksum.
pub const HEADER_LEN: usize = 8 + 4 + 4 + 8;

/// FNV-1a over `bytes` — the same checksum family the persistence
/// layers guard their records with.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Every way the service refuses or fails a request, as carried on the
/// wire inside an error response. The variants are the protocol's whole
/// failure vocabulary: decode trouble, admission control, deadlines,
/// drain, and quarantined panics all reply with one of these instead of
/// closing the connection or killing the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The byte stream is not a valid frame: bad magic, unknown version,
    /// oversized or mismatched length, checksum failure, or truncation
    /// (including a frame that stalls mid-way past the session's read
    /// timeout — slow-loris protection).
    BadFrame {
        /// What exactly was wrong with the frame.
        detail: String,
    },
    /// The frame was intact but its payload is not a valid protocol
    /// message (unknown tag, truncated fields, trailing bytes, bad
    /// UTF-8).
    BadMessage {
        /// What exactly was wrong with the payload.
        detail: String,
    },
    /// The request named a model the registry does not hold.
    UnknownModel {
        /// The model name as requested.
        model: String,
    },
    /// The fingerprint arity does not match the model's AP count.
    BadArity {
        /// The model the request addressed.
        model: String,
        /// The AP count the model expects.
        expected: u32,
        /// The fingerprint length the request carried.
        got: u32,
    },
    /// The request's deadline elapsed before its micro-batch was
    /// dispatched; the query was dropped without running inference.
    DeadlineExceeded {
        /// The deadline the request asked for, in milliseconds.
        deadline_ms: u32,
    },
    /// The bounded admission queue was full; the query was shed at the
    /// door instead of growing memory without bound.
    Overloaded {
        /// Hint: retry after this many milliseconds.
        retry_after_ms: u32,
    },
    /// The server is draining and admits no new queries.
    Draining,
    /// Inference panicked; the query was quarantined (the panic was
    /// caught at the request boundary) and the server keeps serving.
    Internal {
        /// The quarantined panic's payload.
        detail: String,
    },
}

impl ServeError {
    /// Stable wire code of the variant (1–8).
    pub fn code(&self) -> u8 {
        match self {
            ServeError::BadFrame { .. } => 1,
            ServeError::BadMessage { .. } => 2,
            ServeError::UnknownModel { .. } => 3,
            ServeError::BadArity { .. } => 4,
            ServeError::DeadlineExceeded { .. } => 5,
            ServeError::Overloaded { .. } => 6,
            ServeError::Draining => 7,
            ServeError::Internal { .. } => 8,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadFrame { detail } => write!(f, "bad frame: {detail}"),
            ServeError::BadMessage { detail } => write!(f, "bad message: {detail}"),
            ServeError::UnknownModel { model } => write!(f, "unknown model {model:?}"),
            ServeError::BadArity {
                model,
                expected,
                got,
            } => write!(
                f,
                "bad arity for {model:?}: expected {expected} APs, got {got}"
            ),
            ServeError::DeadlineExceeded { deadline_ms } => {
                write!(f, "deadline of {deadline_ms} ms exceeded before dispatch")
            }
            ServeError::Overloaded { retry_after_ms } => {
                write!(f, "overloaded: retry after {retry_after_ms} ms")
            }
            ServeError::Draining => write!(f, "server is draining"),
            ServeError::Internal { detail } => write!(f, "internal: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Shorthand for a [`ServeError::BadFrame`].
fn bad_frame(detail: impl Into<String>) -> ServeError {
    ServeError::BadFrame {
        detail: detail.into(),
    }
}

/// Shorthand for a [`ServeError::BadMessage`].
fn bad_message(detail: impl Into<String>) -> ServeError {
    ServeError::BadMessage {
        detail: detail.into(),
    }
}

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Locate one fingerprint with the named model. `deadline_ms == 0`
    /// means no deadline.
    Locate {
        /// Registry name of the model to query.
        model: String,
        /// Per-request deadline in milliseconds (0 = none): if the
        /// query is still queued when the deadline elapses, it is
        /// answered with [`ServeError::DeadlineExceeded`] instead of
        /// running late inference nobody is waiting for.
        deadline_ms: u32,
        /// The RSS fingerprint, one value per AP.
        fingerprint: Vec<f64>,
    },
    /// Ask for a server statistics snapshot.
    Health,
    /// Stop intake, finish all in-flight work, then shut the server
    /// down; acknowledged with [`Response::Drained`].
    Drain,
}

/// The final position answer for one fingerprint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Location {
    /// Predicted reference-point class.
    pub rp_class: u64,
    /// Predicted x coordinate in meters.
    pub x: f64,
    /// Predicted y coordinate in meters.
    pub y: f64,
    /// True when the query was answered by the cheaper fallback member
    /// because the server was degrading under sustained load.
    pub degraded: bool,
}

/// A server statistics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HealthReport {
    /// Queries accepted into the admission queue.
    pub admitted: u64,
    /// Queries answered with a location.
    pub served: u64,
    /// Queries shed with [`ServeError::Overloaded`].
    pub shed: u64,
    /// Queries whose inference panicked and was quarantined.
    pub quarantined: u64,
    /// Queries dropped because their deadline expired in the queue.
    pub deadline_expired: u64,
    /// Queries answered by the degraded (fallback) member.
    pub degraded: u64,
    /// Admission-queue depth at snapshot time.
    pub queue_depth: u64,
    /// Highest admission-queue depth ever observed (high-water mark),
    /// recorded at admission time so capacity tuning can see how close
    /// the queue came to shedding even between snapshots.
    pub queue_peak: u64,
    /// Micro-batches dispatched so far; `served / batches` is the
    /// realized batching factor the engine's latency window bought.
    pub batches: u64,
    /// True once a drain has begun.
    pub draining: bool,
}

/// One server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The located position.
    Located(Location),
    /// A typed refusal or failure.
    Error(ServeError),
    /// A statistics snapshot.
    Health(HealthReport),
    /// Drain acknowledged; `served` is the lifetime served count at
    /// drain completion.
    Drained {
        /// Lifetime served count when the drain finished.
        served: u64,
    },
}

// --- byte-level helpers ----------------------------------------------------

/// Bounds-checked little-endian reader over a payload slice. Every
/// failure is a `String` detail that callers wrap into a typed error;
/// nothing here panics on any input.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let remaining = self.bytes.len() - self.pos;
        if n > remaining {
            return Err(format!("needed {n} bytes, {remaining} left"));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "string is not UTF-8".to_string())
    }

    /// Asserts the payload is fully consumed — trailing bytes mean the
    /// message is malformed, not ignorable.
    fn done(&self) -> Result<(), String> {
        let left = self.bytes.len() - self.pos;
        if left != 0 {
            return Err(format!("{left} trailing bytes after message"));
        }
        Ok(())
    }
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

// --- frame layer -----------------------------------------------------------

/// Encodes `payload` into one complete frame (header + payload).
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_PAYLOAD`] — encoders build payloads
/// from bounded messages, so an oversized payload is a programming
/// error, not an input condition.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_PAYLOAD as usize,
        "frame payload exceeds MAX_PAYLOAD"
    );
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(MAGIC);
    push_u32(&mut out, VERSION);
    push_u32(&mut out, payload.len() as u32);
    push_u64(&mut out, fnv1a(payload));
    out.extend_from_slice(payload);
    out
}

/// Decodes exactly one frame from `bytes` and returns its payload.
///
/// This is the codec law's entry point: `bytes` must be the frame and
/// nothing but the frame. Any prefix, extension, or bit flip of a valid
/// frame returns a typed [`ServeError::BadFrame`]; no input panics.
pub fn decode_frame(bytes: &[u8]) -> Result<Vec<u8>, ServeError> {
    if bytes.len() < HEADER_LEN {
        return Err(bad_frame(format!(
            "truncated header: {} of {HEADER_LEN} bytes",
            bytes.len()
        )));
    }
    let (header, body) = bytes.split_at(HEADER_LEN);
    let mut cursor = Cursor::new(header);
    let magic = cursor.take(8).expect("header length checked");
    if magic != MAGIC {
        return Err(bad_frame("bad magic"));
    }
    let version = cursor.u32().expect("header length checked");
    if version != VERSION {
        return Err(bad_frame(format!("unsupported version {version}")));
    }
    let length = cursor.u32().expect("header length checked");
    if length > MAX_PAYLOAD {
        return Err(bad_frame(format!(
            "payload length {length} exceeds cap {MAX_PAYLOAD}"
        )));
    }
    let checksum = cursor.u64().expect("header length checked");
    if body.len() != length as usize {
        return Err(bad_frame(format!(
            "payload length mismatch: header says {length}, got {}",
            body.len()
        )));
    }
    if fnv1a(body) != checksum {
        return Err(bad_frame("payload checksum mismatch"));
    }
    Ok(body.to_vec())
}

/// Outcome of one blocking [`read_frame`] attempt.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete, checksum-verified payload.
    Payload(Vec<u8>),
    /// The peer closed the connection cleanly at a frame boundary.
    Eof,
    /// The read timed out at a frame boundary with no bytes consumed —
    /// the session loop uses this to poll the drain flag.
    Idle,
    /// The stream carried a corrupt, truncated or stalled frame; reply
    /// with the error and close (the stream may be desynchronized).
    Corrupt(ServeError),
}

/// How far a [`fill`] call got.
enum Fill {
    /// The buffer was filled completely.
    Full,
    /// EOF before the first byte.
    EofAtStart,
    /// Read timeout before the first byte.
    IdleAtStart,
    /// EOF or timeout after at least one byte — a torn read.
    Short,
}

/// Reads until `buf` is full, distinguishing a clean boundary (no bytes
/// yet) from a torn mid-object read. A read timeout after the first
/// byte is deliberately *torn*, not retried: a frame must arrive within
/// the session's read timeout once started, so a slow-loris peer cannot
/// pin a session thread.
fn fill(reader: &mut impl Read, buf: &mut [u8]) -> io::Result<Fill> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    Fill::EofAtStart
                } else {
                    Fill::Short
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Ok(if filled == 0 {
                    Fill::IdleAtStart
                } else {
                    Fill::Short
                })
            }
            Err(e) => return Err(e),
        }
    }
    Ok(Fill::Full)
}

/// Reads one frame from a blocking stream (typically with a read
/// timeout set, so the session loop can poll for drain).
///
/// Hard transport errors (connection reset, …) surface as `Err`; every
/// *content* problem — truncation, corruption, a frame stalling past
/// the read timeout — is `Ok(FrameRead::Corrupt(..))` so the caller can
/// send the typed reply before closing.
pub fn read_frame(reader: &mut impl Read) -> io::Result<FrameRead> {
    let mut header = [0u8; HEADER_LEN];
    match fill(reader, &mut header)? {
        Fill::EofAtStart => return Ok(FrameRead::Eof),
        Fill::IdleAtStart => return Ok(FrameRead::Idle),
        Fill::Short => {
            return Ok(FrameRead::Corrupt(bad_frame(
                "truncated or stalled frame header",
            )))
        }
        Fill::Full => {}
    }
    let mut cursor = Cursor::new(&header);
    let magic = cursor.take(8).expect("header buffer is HEADER_LEN");
    if magic != MAGIC {
        return Ok(FrameRead::Corrupt(bad_frame("bad magic")));
    }
    let version = cursor.u32().expect("header buffer is HEADER_LEN");
    if version != VERSION {
        return Ok(FrameRead::Corrupt(bad_frame(format!(
            "unsupported version {version}"
        ))));
    }
    let length = cursor.u32().expect("header buffer is HEADER_LEN");
    if length > MAX_PAYLOAD {
        return Ok(FrameRead::Corrupt(bad_frame(format!(
            "payload length {length} exceeds cap {MAX_PAYLOAD}"
        ))));
    }
    let checksum = cursor.u64().expect("header buffer is HEADER_LEN");
    let mut payload = vec![0u8; length as usize];
    match fill(reader, &mut payload)? {
        Fill::Full => {}
        _ => {
            return Ok(FrameRead::Corrupt(bad_frame(
                "truncated or stalled frame payload",
            )))
        }
    }
    if fnv1a(&payload) != checksum {
        return Ok(FrameRead::Corrupt(bad_frame("payload checksum mismatch")));
    }
    Ok(FrameRead::Payload(payload))
}

/// Writes one framed payload to the stream.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    writer.write_all(&encode_frame(payload))
}

// --- message layer ---------------------------------------------------------

impl Request {
    /// Encodes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Locate {
                model,
                deadline_ms,
                fingerprint,
            } => {
                out.push(0x01);
                push_str(&mut out, model);
                push_u32(&mut out, *deadline_ms);
                push_u32(&mut out, fingerprint.len() as u32);
                for &v in fingerprint {
                    push_u64(&mut out, v.to_bits());
                }
            }
            Request::Health => out.push(0x02),
            Request::Drain => out.push(0x03),
        }
        out
    }

    /// Decodes a frame payload into a request; any structural problem is
    /// a [`ServeError::BadMessage`].
    pub fn decode(payload: &[u8]) -> Result<Request, ServeError> {
        let mut cursor = Cursor::new(payload);
        let request = match cursor.u8().map_err(bad_message)? {
            0x01 => {
                let model = cursor.string().map_err(bad_message)?;
                let deadline_ms = cursor.u32().map_err(bad_message)?;
                let n = cursor.u32().map_err(bad_message)? as usize;
                // Bound the allocation by the bytes actually present.
                let remaining = payload.len() - cursor.pos;
                if n.checked_mul(8).is_none_or(|bytes| bytes > remaining) {
                    return Err(bad_message(format!(
                        "fingerprint count {n} exceeds payload"
                    )));
                }
                let mut fingerprint = Vec::with_capacity(n);
                for _ in 0..n {
                    fingerprint.push(cursor.f64().map_err(bad_message)?);
                }
                Request::Locate {
                    model,
                    deadline_ms,
                    fingerprint,
                }
            }
            0x02 => Request::Health,
            0x03 => Request::Drain,
            tag => return Err(bad_message(format!("unknown request tag {tag:#04x}"))),
        };
        cursor.done().map_err(bad_message)?;
        Ok(request)
    }
}

impl Response {
    /// Encodes the response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Located(location) => {
                out.push(0x10);
                push_u64(&mut out, location.rp_class);
                push_u64(&mut out, location.x.to_bits());
                push_u64(&mut out, location.y.to_bits());
                out.push(u8::from(location.degraded));
            }
            Response::Error(error) => {
                out.push(0x11);
                out.push(error.code());
                match error {
                    ServeError::BadFrame { detail }
                    | ServeError::BadMessage { detail }
                    | ServeError::Internal { detail } => push_str(&mut out, detail),
                    ServeError::UnknownModel { model } => push_str(&mut out, model),
                    ServeError::BadArity {
                        model,
                        expected,
                        got,
                    } => {
                        push_str(&mut out, model);
                        push_u32(&mut out, *expected);
                        push_u32(&mut out, *got);
                    }
                    ServeError::DeadlineExceeded { deadline_ms } => {
                        push_u32(&mut out, *deadline_ms)
                    }
                    ServeError::Overloaded { retry_after_ms } => {
                        push_u32(&mut out, *retry_after_ms)
                    }
                    ServeError::Draining => {}
                }
            }
            Response::Health(report) => {
                out.push(0x12);
                push_u64(&mut out, report.admitted);
                push_u64(&mut out, report.served);
                push_u64(&mut out, report.shed);
                push_u64(&mut out, report.quarantined);
                push_u64(&mut out, report.deadline_expired);
                push_u64(&mut out, report.degraded);
                push_u64(&mut out, report.queue_depth);
                push_u64(&mut out, report.queue_peak);
                push_u64(&mut out, report.batches);
                out.push(u8::from(report.draining));
            }
            Response::Drained { served } => {
                out.push(0x13);
                push_u64(&mut out, *served);
            }
        }
        out
    }

    /// Decodes a frame payload into a response; any structural problem
    /// is a [`ServeError::BadMessage`].
    pub fn decode(payload: &[u8]) -> Result<Response, ServeError> {
        let mut cursor = Cursor::new(payload);
        let response = match cursor.u8().map_err(bad_message)? {
            0x10 => {
                let rp_class = cursor.u64().map_err(bad_message)?;
                let x = cursor.f64().map_err(bad_message)?;
                let y = cursor.f64().map_err(bad_message)?;
                let degraded = match cursor.u8().map_err(bad_message)? {
                    0 => false,
                    1 => true,
                    other => return Err(bad_message(format!("bad degraded flag {other}"))),
                };
                Response::Located(Location {
                    rp_class,
                    x,
                    y,
                    degraded,
                })
            }
            0x11 => {
                let error = match cursor.u8().map_err(bad_message)? {
                    1 => ServeError::BadFrame {
                        detail: cursor.string().map_err(bad_message)?,
                    },
                    2 => ServeError::BadMessage {
                        detail: cursor.string().map_err(bad_message)?,
                    },
                    3 => ServeError::UnknownModel {
                        model: cursor.string().map_err(bad_message)?,
                    },
                    4 => ServeError::BadArity {
                        model: cursor.string().map_err(bad_message)?,
                        expected: cursor.u32().map_err(bad_message)?,
                        got: cursor.u32().map_err(bad_message)?,
                    },
                    5 => ServeError::DeadlineExceeded {
                        deadline_ms: cursor.u32().map_err(bad_message)?,
                    },
                    6 => ServeError::Overloaded {
                        retry_after_ms: cursor.u32().map_err(bad_message)?,
                    },
                    7 => ServeError::Draining,
                    8 => ServeError::Internal {
                        detail: cursor.string().map_err(bad_message)?,
                    },
                    code => return Err(bad_message(format!("unknown error code {code}"))),
                };
                Response::Error(error)
            }
            0x12 => {
                let report = HealthReport {
                    admitted: cursor.u64().map_err(bad_message)?,
                    served: cursor.u64().map_err(bad_message)?,
                    shed: cursor.u64().map_err(bad_message)?,
                    quarantined: cursor.u64().map_err(bad_message)?,
                    deadline_expired: cursor.u64().map_err(bad_message)?,
                    degraded: cursor.u64().map_err(bad_message)?,
                    queue_depth: cursor.u64().map_err(bad_message)?,
                    queue_peak: cursor.u64().map_err(bad_message)?,
                    batches: cursor.u64().map_err(bad_message)?,
                    draining: match cursor.u8().map_err(bad_message)? {
                        0 => false,
                        1 => true,
                        other => return Err(bad_message(format!("bad draining flag {other}"))),
                    },
                };
                Response::Health(report)
            }
            0x13 => Response::Drained {
                served: cursor.u64().map_err(bad_message)?,
            },
            tag => return Err(bad_message(format!("unknown response tag {tag:#04x}"))),
        };
        cursor.done().map_err(bad_message)?;
        Ok(response)
    }
}
