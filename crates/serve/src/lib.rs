//! Online localization serving for the CALLOC reproduction: a
//! long-lived TCP service answering RSS-fingerprint queries from the
//! trained members, built robustness-first.
//!
//! The crate is organized as three layers:
//!
//! * [`frame`] — the length-prefixed, FNV-1a-guarded wire codec whose
//!   decoding law mirrors the persistence layers: any corrupt input is
//!   a typed [`ServeError`], never a panic or a hang.
//! * [`registry`] + [`engine`] — named trained models (with optional
//!   cheaper degradation fallbacks) behind a bounded admission queue
//!   and a micro-batching dispatcher with deadlines, load shedding,
//!   and per-request panic quarantine.
//! * [`server`] — the `std::net::TcpListener` front end with per-
//!   session slow-client protection and a drain/health protocol.
//!
//! Determinism extends to serving: [`engine::replay`] re-runs a request
//! log at fixed batch boundaries and produces bit-identical response
//! bytes at every `CALLOC_THREADS`, warm or cold model cache.

pub mod boot;
pub mod engine;
pub mod frame;
pub mod registry;
pub mod server;

pub use engine::{replay, replay_frames, Engine, LogEntry, ServeConfig, ServeFaults};
pub use frame::{
    decode_frame, encode_frame, read_frame, write_frame, FrameRead, HealthReport, Location,
    Request, Response, ServeError,
};
pub use registry::{Registry, ServeMember};
pub use server::{Client, ClientError, Server};
