//! Registry bootstrap shared by the `serve` and `serve_load` binaries:
//! one pinned demo building, a quick training profile, and a
//! cache-backed registry (CALLOC primary with a KNN degradation
//! fallback, plus KNN standalone).
//!
//! The binaries honor `CALLOC_MODEL_CACHE=<dir>`: the first run trains
//! and records the members in `<dir>/serve_models.bin`, later runs
//! restore them bit-identically — the same discipline as the figure
//! binaries.

use calloc_eval::{ModelCache, StoreError, Suite, SuiteProfile};
use calloc_sim::{BuildingId, BuildingSpec, CollectionConfig, Scenario, ScenarioSet, ScenarioSpec};

use crate::engine::LogEntry;
use crate::registry::{Registry, ServeMember};

/// Registry name of the primary (full-quality) member.
pub const PRIMARY_MODEL: &str = "CALLOC";

/// Registry name of the cheap member (also CALLOC's degradation
/// fallback).
pub const FALLBACK_MODEL: &str = "KNN";

/// Building salt pinning the demo realization.
const DEMO_SALT: u64 = 7;

/// Collection seed pinning the demo scenario.
const DEMO_SEED: u64 = 21;

/// The pinned demo building: Building 1 shrunk to a 12 m path and 16
/// APs, so the binaries start in seconds.
pub fn demo_building_spec() -> BuildingSpec {
    BuildingSpec {
        path_length_m: 12,
        num_aps: 16,
        ..BuildingId::B1.spec()
    }
}

/// The demo training profile: quick CALLOC (3 lessons) plus the
/// classical members, so the registry has a cheap fallback.
pub fn demo_profile() -> SuiteProfile {
    SuiteProfile {
        lessons: 3,
        include_sota: false,
        include_classical: true,
        baseline_epochs: 10,
        ..SuiteProfile::quick()
    }
}

/// Opens the binaries' model cache: `<dir>/serve_models.bin` when
/// `CALLOC_MODEL_CACHE` names a directory, otherwise in-memory.
///
/// # Panics
///
/// Panics when the cache file exists but cannot be read — the message
/// names the file so the fix (delete it) is obvious.
pub fn demo_cache() -> ModelCache {
    match std::env::var_os("CALLOC_MODEL_CACHE") {
        Some(dir) => {
            let path = std::path::Path::new(&dir).join("serve_models.bin");
            match ModelCache::open(&path) {
                Ok(cache) => cache,
                Err(e) => panic!(
                    "CALLOC_MODEL_CACHE: cannot use {}: {e} (delete the file to rebuild it)",
                    path.display()
                ),
            }
        }
        None => ModelCache::in_memory(),
    }
}

/// The demo scenario grid: a one-cell [`ScenarioSet`] whose single
/// scenario is bit-identical to generating the pinned building
/// directly — the test points the load generator replays.
pub fn demo_scenarios() -> ScenarioSet {
    ScenarioSpec::single(
        demo_building_spec(),
        DEMO_SALT,
        CollectionConfig::small(),
        DEMO_SEED,
    )
    .generate()
}

/// Trains (or restores through `cache`) the demo registry and returns
/// it with the scenario set it was trained on.
pub fn demo_registry(cache: &mut ModelCache) -> Result<(Registry, ScenarioSet), StoreError> {
    let set = demo_scenarios();
    let scenario = set.scenario(0);
    let cell = set.cell_identity(0);
    let profile = demo_profile();
    let calloc = Suite::train_member_cached(scenario, &profile, PRIMARY_MODEL, &cell, cache)?
        .expect("every profile trains CALLOC");
    let knn_fallback =
        Suite::train_member_cached(scenario, &profile, FALLBACK_MODEL, &cell, cache)?
            .expect("the demo profile includes the classical members");
    let knn = Suite::train_member_cached(scenario, &profile, FALLBACK_MODEL, &cell, cache)?
        .expect("the demo profile includes the classical members");

    let positions = scenario.train.rp_positions.clone();
    let num_aps = scenario.train.num_aps();
    let mut registry = Registry::new();
    registry.insert(
        PRIMARY_MODEL,
        ServeMember::new(calloc, Some(knn_fallback), positions.clone(), num_aps),
    );
    registry.insert(
        FALLBACK_MODEL,
        ServeMember::new(knn, None, positions, num_aps),
    );
    Ok((registry, set))
}

/// Flattens the scenario's per-device test fingerprints into a request
/// log targeting `model`, at most `limit` entries (0 = no limit) — the
/// load the generator replays over the wire.
pub fn request_log(scenario: &Scenario, model: &str, limit: usize) -> Vec<LogEntry> {
    let mut log = Vec::new();
    for (_, dataset) in &scenario.test_per_device {
        for r in 0..dataset.x.rows() {
            if limit > 0 && log.len() >= limit {
                return log;
            }
            log.push((model.to_string(), dataset.x.row(r).to_vec()));
        }
    }
    log
}
