//! The serving engine: a bounded admission queue feeding a micro-batch
//! dispatcher, with every robustness rule enforced at one of two doors.
//!
//! **Admission** (on the session thread, inside [`Engine::submit`]):
//! unknown model and arity mismatches are refused before touching the
//! queue; a full queue sheds the query with a typed
//! [`ServeError::Overloaded`] reply carrying a retry-after hint — the
//! queue is the only buffer, so memory stays bounded no matter the
//! offered load. A draining engine refuses all new work.
//!
//! **Dispatch** (on the single batcher thread): queued queries are taken
//! FIFO up to `max_batch` — after a short accumulation window so
//! concurrent clients actually share a batch — grouped by model, and run
//! through the batched kernels in one `predict_classes` call per group.
//! Expired deadlines are answered without running inference. Each group
//! runs inside [`par::caught`]; if a batch panics, the group re-runs
//! query-by-query so only the poisoned query gets an
//! [`ServeError::Internal`] reply and the server keeps serving. When the
//! queue left behind is still at or above the degradation watermark, the
//! batch runs on each member's cheaper fallback model (flagged in the
//! response) — quality degrades before latency does.
//!
//! **Determinism:** [`replay`] re-runs a request log at fixed batch
//! boundaries with no deadlines, faults or degradation; its response
//! bytes are bit-identical at every `CALLOC_THREADS` and across
//! cold/warm model caches, which is what `tests/serve_robustness.rs`
//! pins. Fault injection is a [`ServeFaults`] plan keyed on admission
//! sequence numbers — never ambient randomness — mirroring
//! `calloc_eval::FaultPlan`.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use calloc_tensor::{par, Matrix};

use crate::frame::{HealthReport, Response, ServeError};
use crate::registry::Registry;

/// Deterministic fault plan for the serving path: the admission
/// sequence numbers whose inference must panic (payload marked
/// `"injected fault"` so `par::silence_injected_panics` applies). The
/// serving analogue of `calloc_eval::FaultPlan` — tests inject faults
/// by plan, never by ambient randomness.
#[derive(Debug, Clone, Default)]
pub struct ServeFaults {
    panics: BTreeSet<u64>,
}

impl ServeFaults {
    /// The empty plan: no injected faults.
    pub fn none() -> Self {
        ServeFaults::default()
    }

    /// A plan that panics the queries with the given admission sequence
    /// numbers (the first admitted query is 0).
    pub fn panic_on(ids: impl IntoIterator<Item = u64>) -> Self {
        ServeFaults {
            panics: ids.into_iter().collect(),
        }
    }

    /// Whether the plan injects a fault for admission number `id`.
    pub fn should_panic(&self, id: u64) -> bool {
        self.panics.contains(&id)
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.panics.is_empty()
    }

    /// Panics iff the plan names `id`.
    pub fn maybe_panic(&self, id: u64) {
        if self.should_panic(id) {
            panic!("injected fault: serve request {id}");
        }
    }
}

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Largest micro-batch handed to the kernels in one dispatch.
    pub max_batch: usize,
    /// Admission-queue bound; queries beyond it are shed with
    /// [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// How long the batcher waits for more queries before dispatching a
    /// partial batch — the latency the engine trades for batching.
    pub batch_window: Duration,
    /// When the queue depth *left behind* after taking a batch is still
    /// at or above this, the batch runs on the members' fallback models
    /// (where configured). `usize::MAX` disables degradation.
    pub degrade_watermark: usize,
    /// Deterministic fault-injection plan (tests only; defaults empty).
    pub faults: ServeFaults,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 32,
            queue_capacity: 256,
            batch_window: Duration::from_millis(1),
            degrade_watermark: 128,
            faults: ServeFaults::none(),
        }
    }
}

/// One admitted, not-yet-dispatched query.
struct PendingQuery {
    /// Admission sequence number (fault-plan key).
    id: u64,
    /// Registry name of the model to run.
    model: String,
    /// The fingerprint row.
    fingerprint: Vec<f64>,
    /// Absolute dispatch deadline, if the request set one.
    deadline: Option<Instant>,
    /// Deadline as requested, for the error reply.
    deadline_ms: u32,
    /// Where the session thread waits for the answer.
    reply: Sender<Response>,
}

/// Lifetime counters behind [`HealthReport`].
#[derive(Default)]
struct Stats {
    admitted: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    quarantined: AtomicU64,
    deadline_expired: AtomicU64,
    degraded: AtomicU64,
    /// Admission-queue high-water mark; updated under the queue lock in
    /// [`Engine::submit`] so it is exact, not racy.
    queue_peak: AtomicU64,
    /// Micro-batches dispatched by the batcher thread.
    batches: AtomicU64,
}

/// State shared between session threads and the batcher.
struct Shared {
    config: ServeConfig,
    queue: Mutex<VecDeque<PendingQuery>>,
    wake: Condvar,
    drained: Mutex<bool>,
    drained_cv: Condvar,
    stats: Stats,
    draining: AtomicBool,
    next_id: AtomicU64,
}

/// The serving engine. Construction spawns the batcher thread;
/// [`Engine::begin_drain`] + [`Engine::await_drained`] (or `Drop`) shut
/// it down after finishing all admitted work.
pub struct Engine {
    shared: Arc<Shared>,
    registry: Arc<Registry>,
    batcher: Mutex<Option<JoinHandle<()>>>,
}

impl Engine {
    /// Starts the engine over a registry.
    pub fn start(registry: Registry, config: ServeConfig) -> Engine {
        let registry = Arc::new(registry);
        let shared = Arc::new(Shared {
            config,
            queue: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            drained: Mutex::new(false),
            drained_cv: Condvar::new(),
            stats: Stats::default(),
            draining: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
        });
        let batcher = {
            let shared = Arc::clone(&shared);
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || run_batcher(&shared, &registry))
        };
        Engine {
            shared,
            registry,
            batcher: Mutex::new(Some(batcher)),
        }
    }

    /// The registry this engine serves from.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Validates and enqueues one query. `Ok` carries the channel the
    /// single response will arrive on; every refusal is the typed error
    /// to reply with instead. Never blocks on a full queue — a full
    /// queue **sheds**.
    pub fn submit(
        &self,
        model: &str,
        fingerprint: Vec<f64>,
        deadline_ms: u32,
    ) -> Result<Receiver<Response>, ServeError> {
        if self.shared.draining.load(Ordering::SeqCst) {
            return Err(ServeError::Draining);
        }
        let member = self
            .registry
            .get(model)
            .ok_or_else(|| ServeError::UnknownModel {
                model: model.to_string(),
            })?;
        if fingerprint.len() != member.num_aps() {
            return Err(ServeError::BadArity {
                model: model.to_string(),
                expected: member.num_aps() as u32,
                got: fingerprint.len() as u32,
            });
        }
        let deadline = (deadline_ms > 0)
            .then(|| Instant::now() + Duration::from_millis(u64::from(deadline_ms)));
        let (tx, rx) = channel();
        {
            let mut queue = self.shared.queue.lock().expect("queue lock");
            if queue.len() >= self.shared.config.queue_capacity {
                self.shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded {
                    retry_after_ms: self.retry_hint(queue.len()),
                });
            }
            let id = self.shared.next_id.fetch_add(1, Ordering::SeqCst);
            queue.push_back(PendingQuery {
                id,
                model: model.to_string(),
                fingerprint,
                deadline,
                deadline_ms,
                reply: tx,
            });
            let depth = queue.len() as u64;
            // Exact (not a CAS loop): the queue lock is held, so no
            // other admission can interleave a competing peak.
            if depth > self.shared.stats.queue_peak.load(Ordering::Relaxed) {
                self.shared.stats.queue_peak.store(depth, Ordering::Relaxed);
            }
        }
        self.shared.stats.admitted.fetch_add(1, Ordering::Relaxed);
        self.shared.wake.notify_all();
        Ok(rx)
    }

    /// Retry-after hint for a shed reply: how long the current backlog
    /// needs to dispatch, assuming full batches per window.
    fn retry_hint(&self, depth: usize) -> u32 {
        let window_ms = self.shared.config.batch_window.as_millis().max(1) as u64;
        let batches = (depth / self.shared.config.max_batch.max(1)) as u64 + 1;
        (batches * window_ms).min(u64::from(u32::MAX)) as u32
    }

    /// Stops intake. Already-admitted queries still dispatch; the
    /// batcher exits once the queue is empty.
    pub fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
    }

    /// Whether a drain has begun.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Blocks until the batcher has finished all admitted work and
    /// exited (requires [`Engine::begin_drain`] to have been called, by
    /// this thread or any other).
    pub fn await_drained(&self) {
        let mut drained = self.shared.drained.lock().expect("drained lock");
        while !*drained {
            drained = self.shared.drained_cv.wait(drained).expect("drained lock");
        }
        if let Some(handle) = self.batcher.lock().expect("batcher lock").take() {
            let _ = handle.join();
        }
    }

    /// Current statistics snapshot.
    pub fn health(&self) -> HealthReport {
        let queue_depth = self.shared.queue.lock().expect("queue lock").len() as u64;
        let stats = &self.shared.stats;
        HealthReport {
            admitted: stats.admitted.load(Ordering::Relaxed),
            served: stats.served.load(Ordering::Relaxed),
            shed: stats.shed.load(Ordering::Relaxed),
            quarantined: stats.quarantined.load(Ordering::Relaxed),
            deadline_expired: stats.deadline_expired.load(Ordering::Relaxed),
            degraded: stats.degraded.load(Ordering::Relaxed),
            queue_depth,
            queue_peak: stats.queue_peak.load(Ordering::Relaxed),
            batches: stats.batches.load(Ordering::Relaxed),
            draining: self.is_draining(),
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.begin_drain();
        self.await_drained();
    }
}

/// The batcher thread: waits for work, accumulates a micro-batch,
/// dispatches it, and exits only when draining with an empty queue.
fn run_batcher(shared: &Shared, registry: &Registry) {
    loop {
        let (batch, depth_after) = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if !queue.is_empty() {
                    break;
                }
                if shared.draining.load(Ordering::SeqCst) {
                    drop(queue);
                    *shared.drained.lock().expect("drained lock") = true;
                    shared.drained_cv.notify_all();
                    return;
                }
                queue = shared.wake.wait(queue).expect("queue lock");
            }
            // Give concurrent submitters one window to fill the batch;
            // a drain skips the wait so shutdown is prompt.
            if queue.len() < shared.config.max_batch
                && !shared.config.batch_window.is_zero()
                && !shared.draining.load(Ordering::SeqCst)
            {
                let (q, _) = shared
                    .wake
                    .wait_timeout(queue, shared.config.batch_window)
                    .expect("queue lock");
                queue = q;
            }
            let take = queue.len().min(shared.config.max_batch.max(1));
            let batch: Vec<PendingQuery> = queue.drain(..take).collect();
            (batch, queue.len())
        };
        let degraded = depth_after >= shared.config.degrade_watermark;
        shared.stats.batches.fetch_add(1, Ordering::Relaxed);
        dispatch(shared, registry, batch, degraded);
    }
}

/// Answers one taken batch: expired deadlines first, then per-model
/// grouped inference with panic quarantine.
fn dispatch(shared: &Shared, registry: &Registry, batch: Vec<PendingQuery>, degraded: bool) {
    let now = Instant::now();
    let mut live: Vec<PendingQuery> = Vec::with_capacity(batch.len());
    for query in batch {
        match query.deadline {
            Some(deadline) if now > deadline => {
                shared
                    .stats
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed);
                let _ = query
                    .reply
                    .send(Response::Error(ServeError::DeadlineExceeded {
                        deadline_ms: query.deadline_ms,
                    }));
            }
            _ => live.push(query),
        }
    }
    // Group by model name (sorted, deterministic) without reordering
    // queries within a group.
    let mut groups: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (slot, query) in live.iter().enumerate() {
        groups.entry(query.model.as_str()).or_default().push(slot);
    }
    for (model, slots) in groups {
        let queries: Vec<(u64, &[f64])> = slots
            .iter()
            .map(|&slot| (live[slot].id, live[slot].fingerprint.as_slice()))
            .collect();
        let responses = infer_group(registry, model, &queries, degraded, &shared.config.faults);
        for (&slot, response) in slots.iter().zip(responses) {
            match &response {
                Response::Located(location) => {
                    shared.stats.served.fetch_add(1, Ordering::Relaxed);
                    if location.degraded {
                        shared.stats.degraded.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Response::Error(ServeError::Internal { .. }) => {
                    shared.stats.quarantined.fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            }
            let _ = live[slot].reply.send(response);
        }
    }
}

/// Runs one model's share of a batch, panic-quarantined: the whole
/// group runs in one batched `predict_classes` call inside
/// [`par::caught`]; if that unwinds, the group re-runs query-by-query
/// so only the poisoned query answers [`ServeError::Internal`]. Shared
/// verbatim by live dispatch and [`replay`], which is what makes a
/// replayed log bit-identical to what the wire saw.
fn infer_group(
    registry: &Registry,
    model: &str,
    queries: &[(u64, &[f64])],
    degraded: bool,
    faults: &ServeFaults,
) -> Vec<Response> {
    let Some(member) = registry.get(model) else {
        return queries
            .iter()
            .map(|_| {
                Response::Error(ServeError::UnknownModel {
                    model: model.to_string(),
                })
            })
            .collect();
    };
    let matrix_of =
        |rows: &[&[f64]]| Matrix::from_fn(rows.len(), member.num_aps(), |r, c| rows[r][c]);
    let rows: Vec<&[f64]> = queries.iter().map(|&(_, row)| row).collect();
    let batch = par::caught(|| {
        for &(id, _) in queries {
            faults.maybe_panic(id);
        }
        member.locate_batch(&matrix_of(&rows), degraded)
    });
    match batch {
        Ok(locations) => locations.into_iter().map(Response::Located).collect(),
        Err(_) => queries
            .iter()
            .map(|&(id, row)| {
                par::caught(|| {
                    faults.maybe_panic(id);
                    member.locate_batch(&matrix_of(&[row]), degraded)[0]
                })
                .map(Response::Located)
                .unwrap_or_else(|panic| {
                    Response::Error(ServeError::Internal {
                        detail: panic.message().to_string(),
                    })
                })
            })
            .collect(),
    }
}

/// One replayable request-log entry: registry model name + fingerprint.
pub type LogEntry = (String, Vec<f64>);

/// Replays a request log at **fixed batch boundaries** — every
/// `batch_size` consecutive entries form one micro-batch, with no
/// deadlines, no degradation and no faults — and returns the responses
/// in log order. Invalid entries (unknown model, wrong arity) answer
/// their typed error in place, exactly as the live path would.
///
/// This is the serving determinism law's subject: for a fixed log and
/// `batch_size`, the returned responses are bit-identical at every
/// `CALLOC_THREADS` setting and across cold/warm model caches.
pub fn replay(registry: &Registry, log: &[LogEntry], batch_size: usize) -> Vec<Response> {
    let faults = ServeFaults::none();
    let mut responses: Vec<Option<Response>> = (0..log.len()).map(|_| None).collect();
    for (chunk_index, chunk) in log.chunks(batch_size.max(1)).enumerate() {
        let base = chunk_index * batch_size.max(1);
        let mut groups: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (offset, (model, fingerprint)) in chunk.iter().enumerate() {
            let slot = base + offset;
            match registry.get(model) {
                None => {
                    responses[slot] = Some(Response::Error(ServeError::UnknownModel {
                        model: model.clone(),
                    }));
                }
                Some(member) if fingerprint.len() != member.num_aps() => {
                    responses[slot] = Some(Response::Error(ServeError::BadArity {
                        model: model.clone(),
                        expected: member.num_aps() as u32,
                        got: fingerprint.len() as u32,
                    }));
                }
                Some(_) => groups.entry(model.as_str()).or_default().push(slot),
            }
        }
        for (model, slots) in groups {
            let queries: Vec<(u64, &[f64])> = slots
                .iter()
                .map(|&slot| (slot as u64, log[slot].1.as_slice()))
                .collect();
            let group = infer_group(registry, model, &queries, false, &faults);
            for (&slot, response) in slots.iter().zip(group) {
                responses[slot] = Some(response);
            }
        }
    }
    responses
        .into_iter()
        .map(|r| r.expect("every log slot answered"))
        .collect()
}

/// [`replay`], with each response encoded into its complete wire frame
/// — the exact bytes the determinism tests pin.
pub fn replay_frames(registry: &Registry, log: &[LogEntry], batch_size: usize) -> Vec<Vec<u8>> {
    replay(registry, log, batch_size)
        .into_iter()
        .map(|response| crate::frame::encode_frame(&response.encode()))
        .collect()
}
