//! Load generator for the serving layer: replays the demo
//! `ScenarioSet`'s test fingerprints against a server at a configurable
//! QPS over real sockets, then writes latency percentiles, throughput
//! and shed-rate to `BENCH_serve.json` (crash-safe via `write_atomic`).
//!
//! By default the server is **self-hosted**: bound on an ephemeral
//! loopback port inside this process, loaded, then drained — exactly
//! the smoke CI runs. Point `CALLOC_SERVE_ADDR` at a running server to
//! load that instead (it is *not* drained afterwards).
//!
//! Environment:
//!
//! * `CALLOC_SERVE_ADDR` — target server (default: self-host).
//! * `CALLOC_SERVE_QPS` — offered load, requests/second (default 400).
//! * `CALLOC_SERVE_REQUESTS` — total requests (default 400).
//! * `CALLOC_SERVE_CLIENTS` — concurrent connections (default 4).
//! * `CALLOC_SERVE_MODEL` — registry member to query (default CALLOC).
//! * `CALLOC_MODEL_CACHE` — trained-model cache dir (self-host only).

use std::time::{Duration, Instant};

use calloc_serve::boot::{demo_cache, demo_registry, demo_scenarios, request_log, PRIMARY_MODEL};
use calloc_serve::{Client, LogEntry, Response, ServeConfig, ServeError, Server};

/// Reads a numeric env knob with a default.
fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One client's tally: successful latencies and failure counts.
#[derive(Default)]
struct Tally {
    latencies: Vec<f64>,
    shed: u64,
    errors: u64,
}

/// Sorted-latency percentile in milliseconds (nearest-rank on the
/// sorted slice; empty input reports 0 so the JSON stays well-formed).
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

fn main() {
    let qps = env_usize("CALLOC_SERVE_QPS", 400).max(1);
    let total = env_usize("CALLOC_SERVE_REQUESTS", 400).max(1);
    let clients = env_usize("CALLOC_SERVE_CLIENTS", 4).max(1);
    let model = std::env::var("CALLOC_SERVE_MODEL").unwrap_or_else(|_| PRIMARY_MODEL.to_string());

    // The request log: every per-device test fingerprint of the demo
    // scenario set, cycled until `total` entries.
    let set = demo_scenarios();
    let points = request_log(set.scenario(0), &model, 0);
    assert!(!points.is_empty(), "demo scenario has test points");
    let log: Vec<LogEntry> = (0..total)
        .map(|i| points[i % points.len()].clone())
        .collect();

    // Self-host unless an external target is named.
    let external = std::env::var("CALLOC_SERVE_ADDR").ok();
    let (addr, server_thread) = match &external {
        Some(addr) => (addr.clone(), None),
        None => {
            let mut cache = demo_cache();
            eprintln!("self-hosting: training/restoring registry…");
            let (registry, _) = demo_registry(&mut cache).expect("model cache");
            let server =
                Server::bind("127.0.0.1:0", registry, ServeConfig::default()).expect("bind");
            let addr = server.local_addr().expect("local addr").to_string();
            eprintln!("self-hosted server on {addr}");
            (addr, Some(std::thread::spawn(move || server.run())))
        }
    };

    // Fan the log out round-robin over the client connections; each
    // client paces its own share so the aggregate offered load is
    // `qps`.
    let interval = Duration::from_secs_f64(clients as f64 / qps as f64);
    let started = Instant::now();
    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..clients {
            let share: Vec<&LogEntry> = log.iter().skip(c).step_by(clients).collect();
            let addr = addr.clone();
            handles.push(scope.spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let mut tally = Tally::default();
                let mut next = Instant::now();
                for (model, fingerprint) in share.iter().map(|e| (&e.0, &e.1)) {
                    let now = Instant::now();
                    if now < next {
                        std::thread::sleep(next - now);
                    }
                    next += interval;
                    let sent = Instant::now();
                    match client.locate(model, fingerprint.clone(), 0) {
                        Ok(Response::Located(_)) => {
                            tally.latencies.push(sent.elapsed().as_secs_f64() * 1e3);
                        }
                        Ok(Response::Error(ServeError::Overloaded { .. })) => tally.shed += 1,
                        Ok(_) => tally.errors += 1,
                        Err(e) => {
                            eprintln!("client {c}: {e}");
                            tally.errors += 1;
                        }
                    }
                }
                tally
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall_s = started.elapsed().as_secs_f64();

    let mut latencies: Vec<f64> = Vec::new();
    let (mut shed, mut errors) = (0u64, 0u64);
    for tally in tallies {
        latencies.extend(tally.latencies);
        shed += tally.shed;
        errors += tally.errors;
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let served = latencies.len();
    let (p50, p95, p99) = (
        percentile(&latencies, 50.0),
        percentile(&latencies, 95.0),
        percentile(&latencies, 99.0),
    );
    let throughput = served as f64 / wall_s.max(1e-9);
    let shed_rate = shed as f64 / total as f64;

    // Drain the self-hosted server so its stats make it into the log.
    if let Some(handle) = server_thread {
        let mut client = Client::connect(&addr).expect("connect for drain");
        let drained = client.drain().expect("drain");
        let report = handle.join().expect("server thread");
        eprintln!(
            "server drained: served={drained} shed={} quarantined={} degraded={}",
            report.shed, report.quarantined, report.degraded
        );
    }

    let threads = calloc_tensor::par::threads();
    let json = format!(
        "{{\n  \"bench\": \"serve_load\",\n  \"model\": \"{model}\",\n  \"threads\": {threads},\n  \
         \"qps_target\": {qps},\n  \"clients\": {clients},\n  \"requests\": {total},\n  \
         \"served\": {served},\n  \"shed\": {shed},\n  \"errors\": {errors},\n  \
         \"shed_rate\": {shed_rate:.6},\n  \"throughput_rps\": {throughput:.3},\n  \
         \"latency_ms\": {{\"p50\": {p50:.4}, \"p95\": {p95:.4}, \"p99\": {p99:.4}}},\n  \
         \"wall_s\": {wall_s:.3}\n}}\n"
    );
    // Crash-safe, typed-error write: a killed run can't leave a
    // truncated snapshot that looks like results.
    calloc_eval::write_atomic(std::path::Path::new("BENCH_serve.json"), json.as_bytes())
        .expect("write BENCH_serve.json");
    println!(
        "wrote BENCH_serve.json: served={served}/{total} shed={shed} \
         p50={p50:.2}ms p95={p95:.2}ms p99={p99:.2}ms throughput={throughput:.0} rps"
    );
}
