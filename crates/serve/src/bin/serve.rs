//! Standalone localization server: trains (or restores from the model
//! cache) the demo registry and serves it over TCP until a client
//! sends the `Drain` verb.
//!
//! Environment:
//!
//! * `CALLOC_SERVE_ADDR` — listen address (default `127.0.0.1:7411`).
//! * `CALLOC_MODEL_CACHE` — directory for the trained-model cache; the
//!   second start is a pure restore.
//! * `CALLOC_THREADS` — kernel thread budget (inference batches).

use calloc_serve::boot::{demo_cache, demo_registry, FALLBACK_MODEL, PRIMARY_MODEL};
use calloc_serve::{ServeConfig, Server};

fn main() {
    let addr = std::env::var("CALLOC_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:7411".to_string());
    let mut cache = demo_cache();
    eprintln!("training/restoring registry ({PRIMARY_MODEL} + {FALLBACK_MODEL} fallback)…");
    let (registry, _scenario) = demo_registry(&mut cache).expect("model cache");
    eprintln!(
        "registry ready ({} cache hits, {} misses)",
        cache.hits(),
        cache.misses()
    );
    let server = Server::bind(&addr, registry, ServeConfig::default()).expect("bind");
    let bound = server.local_addr().expect("local addr");
    println!("serving on {bound} — send the Drain verb to stop");
    let report = server.run();
    println!(
        "drained: served={} shed={} quarantined={} deadline_expired={} degraded={}",
        report.served, report.shed, report.quarantined, report.deadline_expired, report.degraded
    );
}
