//! Property-based laws of the serving frame codec, mirroring the store
//! truncation law in `calloc_eval`'s proptest tier: no input bytes —
//! truncated, extended, bit-flipped, or pure noise — may ever panic the
//! decoder or slip through undetected, and fingerprint payloads round
//! trip **bit-exactly** through the wire, including the awkward f64
//! encodings value-level equality would miss.

use calloc_serve::{
    decode_frame, encode_frame, HealthReport, Location, Request, Response, ServeError,
};
use proptest::prelude::*;

/// Awkward `f64` bit patterns the wire must preserve: negative zero,
/// subnormals, infinities, and NaNs with payload bits.
const TRICKY_BITS: [u64; 7] = [
    0x8000_0000_0000_0000, // -0.0
    0x0000_0000_0000_0001, // smallest positive subnormal
    0x800F_FFFF_FFFF_FFFF, // negative subnormal
    0x7FF0_0000_0000_0000, // +inf
    0xFFF0_0000_0000_0000, // -inf
    0x7FF8_0000_DEAD_BEEF, // quiet NaN with payload
    0x7FF0_0000_0000_0001, // signalling NaN bit pattern
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// **Any** strict byte prefix of a valid frame decodes as a typed
    /// [`ServeError::BadFrame`] — never a panic, never an accidental
    /// success — and the full frame decodes back to its payload.
    #[test]
    fn any_frame_prefix_is_a_typed_error(
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        cut in 0.0..1.0f64,
    ) {
        let frame = encode_frame(&payload);
        prop_assert_eq!(decode_frame(&frame).expect("full frame decodes"), payload);
        for len in [
            (frame.len() as f64 * cut) as usize,
            0, 1, 7, 8, 11, 12, 15, 16, 23,
            frame.len().saturating_sub(1),
        ] {
            let len = len.min(frame.len().saturating_sub(1));
            match decode_frame(&frame[..len]) {
                Err(ServeError::BadFrame { .. }) => {}
                other => prop_assert!(
                    false,
                    "prefix of {} bytes: expected BadFrame, got {:?}",
                    len, other
                ),
            }
        }
    }

    /// Flipping **any single bit** of a valid frame is detected as a
    /// typed [`ServeError::BadFrame`]: header flips trip the magic /
    /// version / length checks, payload flips trip the FNV-1a checksum
    /// (multiplication by an odd prime is invertible, so one changed
    /// byte always changes the hash).
    #[test]
    fn single_bit_corruption_is_a_typed_error(
        payload in proptest::collection::vec(any::<u8>(), 0..96),
        flip in any::<u64>(),
    ) {
        let mut frame = encode_frame(&payload);
        let bit = (flip % (frame.len() as u64 * 8)) as usize;
        frame[bit / 8] ^= 1 << (bit % 8);
        match decode_frame(&frame) {
            Err(ServeError::BadFrame { .. }) => {}
            other => prop_assert!(
                false,
                "bit {} flipped: expected BadFrame, got {:?}",
                bit, other
            ),
        }
    }

    /// Pure byte noise never panics any decoder layer; it either
    /// decodes (vacuously possible for the message layer) or fails
    /// typed.
    #[test]
    fn arbitrary_bytes_never_panic_the_decoders(
        bytes in proptest::collection::vec(any::<u8>(), 0..160),
    ) {
        let _ = decode_frame(&bytes);
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    /// A locate request round trips through frame + message encode /
    /// decode **bit-exactly**, including -0.0, subnormal and
    /// NaN-payload fingerprints.
    #[test]
    fn locate_round_trips_bit_exactly(
        model_salt in 0u64..100_000,
        deadline_ms in any::<u32>(),
        draws in proptest::collection::vec(any::<u64>(), 0..24),
    ) {
        let model = format!("member_{model_salt}");
        let mut bits = draws;
        bits.extend_from_slice(&TRICKY_BITS);
        let fingerprint: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        let request = Request::Locate {
            model: model.clone(),
            deadline_ms,
            fingerprint,
        };
        let payload = decode_frame(&encode_frame(&request.encode())).expect("frame round trip");
        let Request::Locate {
            model: model2,
            deadline_ms: deadline2,
            fingerprint: fingerprint2,
        } = Request::decode(&payload).expect("message round trip")
        else {
            return Err(TestCaseError::fail("decoded to a different verb"));
        };
        prop_assert_eq!(model2, model);
        prop_assert_eq!(deadline2, deadline_ms);
        let bits2: Vec<u64> = fingerprint2.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(bits2, bits, "fingerprint bits altered in transit");
    }

    /// A located response round trips bit-exactly too — the replay
    /// determinism law compares these very bytes.
    #[test]
    fn located_round_trips_bit_exactly(
        rp_class in any::<u64>(),
        x_bits in any::<u64>(),
        y_pick in 0usize..7,
        degraded in any::<bool>(),
    ) {
        let y_bits = TRICKY_BITS[y_pick];
        let response = Response::Located(Location {
            rp_class,
            x: f64::from_bits(x_bits),
            y: f64::from_bits(y_bits),
            degraded,
        });
        let payload = decode_frame(&encode_frame(&response.encode())).expect("frame round trip");
        let Response::Located(location) = Response::decode(&payload).expect("message round trip")
        else {
            return Err(TestCaseError::fail("decoded to a different response"));
        };
        prop_assert_eq!(location.rp_class, rp_class);
        prop_assert_eq!(location.x.to_bits(), x_bits);
        prop_assert_eq!(location.y.to_bits(), y_bits);
        prop_assert_eq!(location.degraded, degraded);
    }

    /// A health report — all nine u64 counters plus the draining flag —
    /// round trips exactly, and truncating the encoded payload anywhere
    /// fails typed rather than decoding a report with silently zeroed
    /// tail fields.
    #[test]
    fn health_report_round_trips_exactly(
        counters in proptest::collection::vec(any::<u64>(), 9..10),
        draining in any::<bool>(),
        cut in 0.0..1.0f64,
    ) {
        let report = HealthReport {
            admitted: counters[0],
            served: counters[1],
            shed: counters[2],
            quarantined: counters[3],
            deadline_expired: counters[4],
            degraded: counters[5],
            queue_depth: counters[6],
            queue_peak: counters[7],
            batches: counters[8],
            draining,
        };
        let response = Response::Health(report);
        let encoded = response.encode();
        let payload = decode_frame(&encode_frame(&encoded)).expect("frame round trip");
        let Response::Health(report2) = Response::decode(&payload).expect("message round trip")
        else {
            return Err(TestCaseError::fail("decoded to a different response"));
        };
        prop_assert_eq!(report2, report);
        let len = ((encoded.len() as f64 * cut) as usize).min(encoded.len() - 1);
        match Response::decode(&encoded[..len]) {
            Err(ServeError::BadMessage { .. }) => {}
            other => prop_assert!(
                false,
                "truncated health report ({} of {} bytes): expected BadMessage, got {:?}",
                len, encoded.len(), other
            ),
        }
    }
}
