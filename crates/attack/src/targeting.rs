//! Adversarial AP target selection (the ø parameter).

use calloc_tensor::{Matrix, Rng};
use serde::{Deserialize, Serialize};

/// How the adversary picks which APs to attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Targeting {
    /// Attack the APs with the strongest mean signal in the observed batch
    /// — the most informative ones. This is the paper's implicit choice
    /// (a rational white-box adversary) and the default.
    Strongest,
    /// Attack a uniformly random subset (seeded).
    Random,
    /// Attack the weakest APs — a deliberately poor strategy, used as an
    /// ablation of attacker knowledge.
    Weakest,
}

impl Targeting {
    /// All targeting strategies, default (paper) one first.
    pub const ALL: [Targeting; 3] = [Targeting::Strongest, Targeting::Random, Targeting::Weakest];

    /// Display name used in result tables.
    pub fn name(self) -> &'static str {
        match self {
            Targeting::Strongest => "strongest",
            Targeting::Random => "random",
            Targeting::Weakest => "weakest",
        }
    }
}

/// Selects the indices of the APs to attack.
///
/// `phi_percent` is the paper's ø: the percentage (0–100) of APs targeted.
/// The count is `round(ø/100 · num_aps)`, clamped to at least 1 whenever
/// `phi_percent > 0`.
///
/// # Panics
///
/// Panics if `phi_percent` is outside `[0, 100]` or `x` has no columns.
///
/// # Example
///
/// ```
/// use calloc_attack::{select_targets, Targeting};
/// use calloc_tensor::Matrix;
///
/// let x = Matrix::from_rows(&[vec![0.9, 0.1, 0.5, 0.2]]);
/// let t = select_targets(&x, 25.0, Targeting::Strongest, 0);
/// assert_eq!(t, vec![0]); // the strongest AP
/// ```
pub fn select_targets(x: &Matrix, phi_percent: f64, targeting: Targeting, seed: u64) -> Vec<usize> {
    assert!(
        (0.0..=100.0).contains(&phi_percent),
        "phi {phi_percent} out of [0, 100]"
    );
    assert!(x.cols() > 0, "fingerprints have no AP columns");
    let n = x.cols();
    if phi_percent == 0.0 {
        return Vec::new();
    }
    let k = ((phi_percent / 100.0 * n as f64).round() as usize).clamp(1, n);

    match targeting {
        Targeting::Random => {
            let mut rng = Rng::new(seed);
            let mut idx = rng.sample_indices(n, k);
            idx.sort_unstable();
            idx
        }
        Targeting::Strongest | Targeting::Weakest => {
            let means = x.sum_rows().scale(1.0 / x.rows().max(1) as f64);
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                means
                    .get(0, b)
                    .partial_cmp(&means.get(0, a))
                    .expect("finite means")
            });
            if targeting == Targeting::Weakest {
                order.reverse();
            }
            let mut idx: Vec<usize> = order.into_iter().take(k).collect();
            idx.sort_unstable();
            idx
        }
    }
}

/// Builds a `rows`-by-`cols` 0/1 mask matrix that is 1 on the targeted AP
/// columns and 0 elsewhere.
pub(crate) fn target_mask(rows: usize, cols: usize, targets: &[usize]) -> Matrix {
    let mut mask = Matrix::zeros(rows, cols);
    for &c in targets {
        for r in 0..rows {
            mask.set(r, c, 1.0);
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> Matrix {
        Matrix::from_rows(&[vec![0.9, 0.1, 0.5, 0.3, 0.7], vec![0.8, 0.2, 0.6, 0.2, 0.6]])
    }

    #[test]
    fn strongest_picks_high_mean_columns() {
        let t = select_targets(&batch(), 40.0, Targeting::Strongest, 0);
        assert_eq!(t, vec![0, 4]);
    }

    #[test]
    fn weakest_picks_low_mean_columns() {
        let t = select_targets(&batch(), 40.0, Targeting::Weakest, 0);
        assert_eq!(t, vec![1, 3]);
    }

    #[test]
    fn zero_phi_selects_nothing() {
        assert!(select_targets(&batch(), 0.0, Targeting::Strongest, 0).is_empty());
    }

    #[test]
    fn full_phi_selects_everything() {
        let t = select_targets(&batch(), 100.0, Targeting::Random, 3);
        assert_eq!(t, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn small_phi_selects_at_least_one() {
        let t = select_targets(&batch(), 1.0, Targeting::Strongest, 0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn random_is_seed_deterministic() {
        let a = select_targets(&batch(), 60.0, Targeting::Random, 9);
        let b = select_targets(&batch(), 60.0, Targeting::Random, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn mask_covers_exactly_targets() {
        let mask = target_mask(2, 5, &[1, 3]);
        assert_eq!(mask.col(1), vec![1.0, 1.0]);
        assert_eq!(mask.col(3), vec![1.0, 1.0]);
        assert_eq!(mask.sum(), 4.0);
    }

    #[test]
    #[should_panic(expected = "out of [0, 100]")]
    fn rejects_bad_phi() {
        select_targets(&batch(), 150.0, Targeting::Strongest, 0);
    }
}
