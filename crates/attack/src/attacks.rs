//! FGSM, PGD and MIM crafting (§III.B of the paper).

use calloc_nn::DifferentiableModel;
use calloc_tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::targeting::{select_targets, target_mask, Targeting};

/// The three white-box crafting algorithms evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackKind {
    /// Fast gradient sign method (one step).
    Fgsm,
    /// Projected gradient descent (iterative).
    Pgd,
    /// Momentum iterative method (iterative, accumulated gradient).
    Mim,
}

impl AttackKind {
    /// All three attacks, in paper order.
    pub const ALL: [AttackKind; 3] = [AttackKind::Fgsm, AttackKind::Pgd, AttackKind::Mim];

    /// Display name used in figures.
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::Fgsm => "FGSM",
            AttackKind::Pgd => "PGD",
            AttackKind::Mim => "MIM",
        }
    }
}

/// Full specification of an attack instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttackConfig {
    /// Crafting algorithm.
    pub kind: AttackKind,
    /// Perturbation budget ε in normalized RSS units (paper: 0.1–0.5).
    pub epsilon: f64,
    /// Percentage ø of APs targeted (paper: 1–100).
    pub phi_percent: f64,
    /// Iterations for PGD/MIM (ignored by FGSM).
    pub steps: usize,
    /// Per-step size α for PGD/MIM; a good default is `2.5·ε/steps`.
    pub alpha: f64,
    /// Momentum decay µ for MIM (typically 1.0).
    pub momentum: f64,
    /// How the targeted AP subset is chosen.
    pub targeting: Targeting,
    /// Seed for random targeting.
    pub seed: u64,
}

impl AttackConfig {
    /// A standard FGSM attack with the given ε and ø.
    pub fn fgsm(epsilon: f64, phi_percent: f64) -> Self {
        AttackConfig {
            kind: AttackKind::Fgsm,
            epsilon,
            phi_percent,
            steps: 1,
            alpha: epsilon,
            momentum: 0.0,
            targeting: Targeting::Strongest,
            seed: 0,
        }
    }

    /// A standard 10-step PGD attack with the given ε and ø.
    pub fn pgd(epsilon: f64, phi_percent: f64) -> Self {
        AttackConfig {
            kind: AttackKind::Pgd,
            epsilon,
            phi_percent,
            steps: 10,
            alpha: 2.5 * epsilon / 10.0,
            momentum: 0.0,
            targeting: Targeting::Strongest,
            seed: 0,
        }
    }

    /// A standard 10-step MIM attack (µ = 1.0) with the given ε and ø.
    pub fn mim(epsilon: f64, phi_percent: f64) -> Self {
        AttackConfig {
            kind: AttackKind::Mim,
            epsilon,
            phi_percent,
            steps: 10,
            alpha: 2.5 * epsilon / 10.0,
            momentum: 1.0,
            targeting: Targeting::Strongest,
            seed: 0,
        }
    }

    /// Builds a config of the given kind with its standard parameters.
    pub fn standard(kind: AttackKind, epsilon: f64, phi_percent: f64) -> Self {
        match kind {
            AttackKind::Fgsm => AttackConfig::fgsm(epsilon, phi_percent),
            AttackKind::Pgd => AttackConfig::pgd(epsilon, phi_percent),
            AttackKind::Mim => AttackConfig::mim(epsilon, phi_percent),
        }
    }

    /// Returns a copy with a different targeting strategy.
    pub fn with_targeting(mut self, targeting: Targeting) -> Self {
        self.targeting = targeting;
        self
    }

    /// Returns a copy with a different RNG seed (random targeting).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Crafts adversarial examples for `(x, y)` against `model`.
///
/// The returned matrix satisfies, element-wise on targeted AP columns,
/// `|x_adv - x| ≤ ε`, and equals `x` exactly on non-targeted columns.
/// All values stay inside the valid normalized RSS range `[0, 1]`.
///
/// # Panics
///
/// Panics if `y.len() != x.rows()`, ε is negative, or the config's ø is out
/// of range.
///
/// # Example
///
/// ```
/// use calloc_attack::{craft, AttackConfig};
/// use calloc_nn::{Dense, Layer, Sequential};
/// use calloc_tensor::{Matrix, Rng};
///
/// let mut rng = Rng::new(1);
/// let net = Sequential::new(vec![Layer::Dense(Dense::xavier(4, 2, &mut rng))]);
/// let x = Matrix::from_fn(3, 4, |_, _| 0.5);
/// let adv = craft(&net, &x, &[0, 1, 0], &AttackConfig::pgd(0.2, 50.0));
/// assert_eq!(adv.shape(), x.shape());
/// ```
pub fn craft(
    model: &dyn DifferentiableModel,
    x: &Matrix,
    y: &[usize],
    config: &AttackConfig,
) -> Matrix {
    assert_eq!(y.len(), x.rows(), "label count mismatch");
    assert!(config.epsilon >= 0.0, "negative epsilon {}", config.epsilon);
    if config.epsilon == 0.0 || config.phi_percent == 0.0 {
        return x.clone();
    }
    let targets = select_targets(x, config.phi_percent, config.targeting, config.seed);
    craft_with_targets(model, x, y, config, &targets)
}

/// Crafts adversarial examples against a *fixed* set of targeted AP
/// columns. [`craft`] selects targets from the batch itself; this variant
/// lets callers (e.g. the spoofing MITM) pin the target set chosen from a
/// different reference batch.
///
/// # Panics
///
/// Same conditions as [`craft`].
pub fn craft_with_targets(
    model: &dyn DifferentiableModel,
    x: &Matrix,
    y: &[usize],
    config: &AttackConfig,
    targets: &[usize],
) -> Matrix {
    assert_eq!(y.len(), x.rows(), "label count mismatch");
    assert!(config.epsilon >= 0.0, "negative epsilon {}", config.epsilon);
    if config.epsilon == 0.0 || targets.is_empty() {
        return x.clone();
    }
    let mask = target_mask(x.rows(), x.cols(), targets);

    match config.kind {
        AttackKind::Fgsm => {
            let (_, grad) = model.loss_and_input_grad(x, y);
            let step = grad.map(f64::signum).hadamard(&mask).scale(config.epsilon);
            x.add(&step).clamp(0.0, 1.0)
        }
        AttackKind::Pgd => iterate(model, x, y, config, &mask, false),
        AttackKind::Mim => iterate(model, x, y, config, &mask, true),
    }
}

/// Shared PGD/MIM loop; `use_momentum` selects MIM's accumulated gradient.
fn iterate(
    model: &dyn DifferentiableModel,
    x0: &Matrix,
    y: &[usize],
    config: &AttackConfig,
    mask: &Matrix,
    use_momentum: bool,
) -> Matrix {
    let mut x = x0.clone();
    let mut g_acc = Matrix::zeros(x0.rows(), x0.cols());
    for _ in 0..config.steps.max(1) {
        let (_, grad) = model.loss_and_input_grad(&x, y);
        let direction = if use_momentum {
            // MIM: g ← µ·g + grad / ||grad||₁ (per sample)
            let mut normalized = grad.clone();
            for r in 0..normalized.rows() {
                let l1: f64 = normalized.row(r).iter().map(|v| v.abs()).sum();
                if l1 > 0.0 {
                    for v in normalized.row_mut(r) {
                        *v /= l1;
                    }
                }
            }
            g_acc = g_acc.scale(config.momentum).add(&normalized);
            g_acc.clone()
        } else {
            grad
        };
        let step = direction
            .map(f64::signum)
            .hadamard(mask)
            .scale(config.alpha);
        x = x.add(&step);
        // Project back into the ε-ball around x0 and the valid range.
        x = x
            .zip_map(x0, |xi, x0i| {
                xi.clamp(x0i - config.epsilon, x0i + config.epsilon)
            })
            .clamp(0.0, 1.0);
    }
    // Non-targeted columns never receive a step, and the projections are
    // identity on unchanged in-range values, so they are already
    // bit-identical to the original.
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use calloc_nn::{Adam, Dense, Layer, Sequential, TrainConfig, Trainer};
    use calloc_tensor::Rng;

    /// A trained 3-class model on separable blobs plus its training data.
    fn trained_model() -> (Sequential, Matrix, Vec<usize>) {
        let mut rng = Rng::new(5);
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        let centers = [(0.2, 0.2), (0.8, 0.2), (0.5, 0.8)];
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..30 {
                rows.push(vec![
                    (cx + rng.normal(0.0, 0.05)).clamp(0.0, 1.0),
                    (cy + rng.normal(0.0, 0.05)).clamp(0.0, 1.0),
                    rng.uniform(0.0, 1.0), // uninformative AP
                    rng.uniform(0.0, 1.0), // uninformative AP
                ]);
                ys.push(c);
            }
        }
        let x = Matrix::from_rows(&rows);
        let mut net = Sequential::new(vec![
            Layer::Dense(Dense::he(4, 16, &mut rng)),
            Layer::Relu,
            Layer::Dense(Dense::xavier(16, 3, &mut rng)),
        ]);
        let mut trainer = Trainer::new(
            Adam::new(0.02),
            TrainConfig {
                epochs: 60,
                batch_size: 16,
                ..Default::default()
            },
        );
        trainer.fit(&mut net, &x, &ys, None);
        (net, x, ys)
    }

    #[test]
    fn fgsm_respects_epsilon_bound() {
        let (net, x, y) = trained_model();
        for eps in [0.05, 0.1, 0.3] {
            let adv = craft(&net, &x, &y, &AttackConfig::fgsm(eps, 100.0));
            let max_delta = adv.sub(&x).map(f64::abs).max();
            assert!(max_delta <= eps + 1e-12, "eps {eps}: delta {max_delta}");
        }
    }

    #[test]
    fn pgd_and_mim_respect_epsilon_bound() {
        let (net, x, y) = trained_model();
        for config in [AttackConfig::pgd(0.2, 100.0), AttackConfig::mim(0.2, 100.0)] {
            let adv = craft(&net, &x, &y, &config);
            let max_delta = adv.sub(&x).map(f64::abs).max();
            assert!(max_delta <= 0.2 + 1e-12, "{:?}: {max_delta}", config.kind);
        }
    }

    #[test]
    fn attacks_increase_loss() {
        let (net, x, y) = trained_model();
        let (clean_loss, _) = net.loss_and_input_grad(&x, &y);
        for kind in AttackKind::ALL {
            let adv = craft(&net, &x, &y, &AttackConfig::standard(kind, 0.3, 100.0));
            let (adv_loss, _) = net.loss_and_input_grad(&adv, &y);
            assert!(
                adv_loss > clean_loss * 2.0,
                "{}: clean {clean_loss}, adv {adv_loss}",
                kind.name()
            );
        }
    }

    #[test]
    fn iterative_attacks_are_at_least_as_strong_as_fgsm() {
        let (net, x, y) = trained_model();
        let loss_of = |cfg: &AttackConfig| {
            let adv = craft(&net, &x, &y, cfg);
            net.loss_and_input_grad(&adv, &y).0
        };
        let fgsm = loss_of(&AttackConfig::fgsm(0.2, 100.0));
        let pgd = loss_of(&AttackConfig::pgd(0.2, 100.0));
        let mim = loss_of(&AttackConfig::mim(0.2, 100.0));
        // PGD/MIM refine the same budget iteratively; allow 5% slack.
        assert!(pgd >= fgsm * 0.95, "pgd {pgd} vs fgsm {fgsm}");
        assert!(mim >= fgsm * 0.95, "mim {mim} vs fgsm {fgsm}");
    }

    #[test]
    fn untargeted_columns_are_untouched() {
        let (net, x, y) = trained_model();
        for kind in AttackKind::ALL {
            let config = AttackConfig::standard(kind, 0.3, 50.0); // 2 of 4 APs
            let targets = select_targets(&x, 50.0, config.targeting, config.seed);
            let adv = craft(&net, &x, &y, &config);
            for c in 0..x.cols() {
                if !targets.contains(&c) {
                    assert_eq!(adv.col(c), x.col(c), "{}: col {c} changed", kind.name());
                }
            }
        }
    }

    #[test]
    fn adversarial_values_stay_in_valid_range() {
        let (net, x, y) = trained_model();
        let adv = craft(&net, &x, &y, &AttackConfig::fgsm(0.5, 100.0));
        assert!(adv.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn zero_epsilon_is_identity() {
        let (net, x, y) = trained_model();
        let adv = craft(&net, &x, &y, &AttackConfig::fgsm(0.0, 100.0));
        assert_eq!(adv, x);
    }

    #[test]
    fn zero_phi_is_identity() {
        let (net, x, y) = trained_model();
        let adv = craft(&net, &x, &y, &AttackConfig::pgd(0.3, 0.0));
        assert_eq!(adv, x);
    }

    #[test]
    fn crafting_is_deterministic() {
        let (net, x, y) = trained_model();
        let config = AttackConfig::mim(0.2, 60.0)
            .with_targeting(Targeting::Random)
            .with_seed(4);
        let a = craft(&net, &x, &y, &config);
        let b = craft(&net, &x, &y, &config);
        assert_eq!(a, b);
    }

    #[test]
    fn higher_epsilon_hurts_more() {
        let (net, x, y) = trained_model();
        let acc_of = |eps: f64| {
            let adv = craft(&net, &x, &y, &AttackConfig::fgsm(eps, 100.0));
            calloc_nn::metrics::accuracy(&net.predict(&adv), &y)
        };
        let weak = acc_of(0.05);
        let strong = acc_of(0.5);
        assert!(strong <= weak, "acc 0.5 ({strong}) > acc 0.05 ({weak})");
    }
}
