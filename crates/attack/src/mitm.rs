//! Man-in-the-middle attack semantics (§III.A of the paper).
//!
//! The crafting algorithms in [`crate::attacks`] compute *what* perturbation
//! to apply; this module models *how* a channel-side MITM adversary injects
//! it:
//!
//! * **Signal manipulation** — the genuine RSS of the targeted APs is
//!   tampered with in flight: the adversarial delta is added to the real
//!   observation (Fig. 2, A:1).
//! * **Signal spoofing** — the adversary stands up counterfeit APs that
//!   clone the MAC/channel of legitimate ones and broadcast fabricated
//!   signals: the targeted APs' readings are *replaced* by values crafted
//!   from a decoy location's fingerprint plus the adversarial perturbation
//!   (Fig. 2, A:2).
//!
//! Both reduce to an ε/ø-parameterized perturbation of the observed
//! fingerprint, which is why the paper (and this reproduction) evaluates
//! them through FGSM/PGD/MIM crafting; spoofing is the more disruptive
//! variant because the starting point is not the victim's true signal.

use calloc_nn::DifferentiableModel;
use calloc_tensor::{Matrix, Rng};
use serde::{Deserialize, Serialize};

use crate::attacks::{craft, craft_with_targets, AttackConfig};
use crate::targeting::{select_targets, target_mask};

/// Which MITM injection mechanism the adversary uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MitmVariant {
    /// Perturb the genuine signal in flight (bounded by ε).
    Manipulation,
    /// Replace targeted APs' readings with counterfeit ones seeded from a
    /// decoy fingerprint, then perturb (still ε-bounded around the decoy).
    Spoofing,
}

impl MitmVariant {
    /// Both injection mechanisms, manipulation (the weaker one) first.
    pub const ALL: [MitmVariant; 2] = [MitmVariant::Manipulation, MitmVariant::Spoofing];

    /// Display name used in result tables.
    pub fn name(self) -> &'static str {
        match self {
            MitmVariant::Manipulation => "manipulation",
            MitmVariant::Spoofing => "spoofing",
        }
    }
}

/// A channel-side MITM attack: a crafting configuration plus an injection
/// mechanism.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MitmAttack {
    /// The perturbation crafting configuration (ε, ø, algorithm).
    pub config: AttackConfig,
    /// Injection mechanism.
    pub variant: MitmVariant,
    /// Seed for decoy selection in spoofing mode.
    pub decoy_seed: u64,
}

impl MitmAttack {
    /// A manipulation-style MITM with the given crafting config.
    pub fn manipulation(config: AttackConfig) -> Self {
        MitmAttack {
            config,
            variant: MitmVariant::Manipulation,
            decoy_seed: 0,
        }
    }

    /// A spoofing-style MITM with the given crafting config.
    pub fn spoofing(config: AttackConfig, decoy_seed: u64) -> Self {
        MitmAttack {
            config,
            variant: MitmVariant::Spoofing,
            decoy_seed,
        }
    }

    /// Applies the attack to a batch of observed fingerprints.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != x.rows()`.
    pub fn apply(&self, model: &dyn DifferentiableModel, x: &Matrix, y: &[usize]) -> Matrix {
        match self.variant {
            MitmVariant::Manipulation => craft(model, x, y, &self.config),
            MitmVariant::Spoofing => {
                assert_eq!(y.len(), x.rows(), "label count mismatch");
                if x.rows() < 2 || self.config.phi_percent == 0.0 {
                    return craft(model, x, y, &self.config);
                }
                // Counterfeit baseline: targeted AP columns are overwritten
                // with the readings another victim row would see (a decoy
                // location), emulating a fake AP broadcasting a legitimate-
                // looking but wrong signature.
                let targets = select_targets(
                    x,
                    self.config.phi_percent,
                    self.config.targeting,
                    self.config.seed,
                );
                let mask = target_mask(x.rows(), x.cols(), &targets);
                let mut rng = Rng::new(self.decoy_seed);
                let mut spoofed = x.clone();
                for r in 0..x.rows() {
                    // pick a decoy row other than r
                    let mut d = rng.index(x.rows());
                    if d == r {
                        d = (d + 1) % x.rows();
                    }
                    for &c in &targets {
                        spoofed.set(r, c, x.get(d, c));
                    }
                }
                debug_assert!(spoofed
                    .zip_map(&mask, |v, m| if m == 0.0 { v } else { 0.0 })
                    .approx_eq(
                        &x.zip_map(&mask, |v, m| if m == 0.0 { v } else { 0.0 }),
                        0.0
                    ));
                // Perturb the counterfeit baseline on the same AP subset it
                // was spoofed on.
                craft_with_targets(model, &spoofed, y, &self.config, &targets)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks::AttackKind;
    use calloc_nn::{Dense, Layer, Sequential};
    use calloc_tensor::Rng;

    fn model_and_data() -> (Sequential, Matrix, Vec<usize>) {
        let mut rng = Rng::new(3);
        let net = Sequential::new(vec![
            Layer::Dense(Dense::he(6, 12, &mut rng)),
            Layer::Relu,
            Layer::Dense(Dense::xavier(12, 4, &mut rng)),
        ]);
        let x = Matrix::from_fn(8, 6, |_, _| rng.uniform(0.1, 0.9));
        let y = vec![0, 1, 2, 3, 0, 1, 2, 3];
        (net, x, y)
    }

    #[test]
    fn manipulation_matches_plain_crafting() {
        let (net, x, y) = model_and_data();
        let config = AttackConfig::fgsm(0.2, 50.0);
        let mitm = MitmAttack::manipulation(config.clone());
        assert_eq!(mitm.apply(&net, &x, &y), craft(&net, &x, &y, &config));
    }

    #[test]
    fn spoofing_changes_targeted_columns_beyond_epsilon() {
        let (net, x, y) = model_and_data();
        let config = AttackConfig::fgsm(0.05, 50.0);
        let mitm = MitmAttack::spoofing(config.clone(), 11);
        let adv = mitm.apply(&net, &x, &y);
        // Spoofed readings come from decoy rows, so deltas can exceed ε.
        let max_delta = adv.sub(&x).map(f64::abs).max();
        assert!(
            max_delta > 0.05,
            "spoofing looks like manipulation: {max_delta}"
        );
    }

    #[test]
    fn spoofing_preserves_untargeted_columns() {
        let (net, x, y) = model_and_data();
        let config = AttackConfig::standard(AttackKind::Pgd, 0.1, 33.0);
        let targets = select_targets(&x, 33.0, config.targeting, config.seed);
        let mitm = MitmAttack::spoofing(config, 7);
        let adv = mitm.apply(&net, &x, &y);
        for c in 0..x.cols() {
            if !targets.contains(&c) {
                assert_eq!(adv.col(c), x.col(c), "untargeted col {c} changed");
            }
        }
    }

    #[test]
    fn spoofing_is_deterministic() {
        let (net, x, y) = model_and_data();
        let mitm = MitmAttack::spoofing(AttackConfig::fgsm(0.1, 50.0), 5);
        assert_eq!(mitm.apply(&net, &x, &y), mitm.apply(&net, &x, &y));
    }

    #[test]
    fn spoofing_single_row_degrades_to_manipulation() {
        let (net, x, y) = model_and_data();
        let one = x.select_rows(&[0]);
        let mitm = MitmAttack::spoofing(AttackConfig::fgsm(0.1, 50.0), 5);
        let adv = mitm.apply(&net, &one, &y[..1]);
        let max_delta = adv.sub(&one).map(f64::abs).max();
        assert!(max_delta <= 0.1 + 1e-12);
    }
}
