//! # calloc-attack
//!
//! White-box adversarial attacks on indoor-localization models, following
//! §III of the CALLOC paper.
//!
//! The threat model is a **channel-side man-in-the-middle** with white-box
//! access: the adversary knows the victim model's parameters and crafts
//! perturbations of the RSS vector observed by the mobile device. Two knobs
//! parameterize every attack, exactly as in the paper:
//!
//! * `ε` (epsilon) — the perturbation magnitude, in normalized RSS units
//!   (the paper sweeps 0.1–0.5);
//! * `ø` (phi) — the percentage of visible APs the adversary targets (the
//!   paper sweeps 1–100%); non-targeted APs are never perturbed.
//!
//! Three crafting algorithms are provided:
//!
//! * [`AttackKind::Fgsm`] — single-step fast gradient sign method;
//! * [`AttackKind::Pgd`] — iterative projected gradient descent;
//! * [`AttackKind::Mim`] — momentum iterative method.
//!
//! All three operate on any [`DifferentiableModel`], the input-gradient
//! contract exported by `calloc-nn`.
//!
//! # Example
//!
//! ```
//! use calloc_attack::{craft, AttackConfig, AttackKind};
//! use calloc_nn::{Dense, Layer, Sequential, DifferentiableModel};
//! use calloc_tensor::{Matrix, Rng};
//!
//! let mut rng = Rng::new(0);
//! let net = Sequential::new(vec![Layer::Dense(Dense::xavier(6, 3, &mut rng))]);
//! let x = Matrix::from_fn(4, 6, |_, _| rng.uniform(0.2, 0.8));
//! let y = vec![0, 1, 2, 0];
//! let config = AttackConfig::fgsm(0.1, 100.0);
//! let x_adv = craft(&net, &x, &y, &config);
//! // Perturbation is ε-bounded.
//! let max_delta = x_adv.sub(&x).map(f64::abs).max();
//! assert!(max_delta <= 0.1 + 1e-12);
//! ```

#![deny(missing_docs)]

mod attacks;
mod mitm;
mod targeting;

pub use attacks::{craft, craft_with_targets, AttackConfig, AttackKind};
pub use mitm::{MitmAttack, MitmVariant};
pub use targeting::{select_targets, Targeting};

// Re-export the model contract so downstream crates need only this crate.
pub use calloc_nn::DifferentiableModel;
