//! Property-based tests of the attack invariants over random victims,
//! inputs and configurations.

use calloc_attack::{craft, select_targets, AttackConfig, AttackKind, Targeting};
use calloc_nn::{Dense, Layer, Sequential};
use calloc_tensor::{Matrix, Rng};
use proptest::prelude::*;

fn victim(seed: u64, in_dim: usize, classes: usize) -> Sequential {
    let mut rng = Rng::new(seed);
    Sequential::new(vec![
        Layer::Dense(Dense::he(in_dim, 12, &mut rng)),
        Layer::Relu,
        Layer::Dense(Dense::xavier(12, classes, &mut rng)),
    ])
}

fn inputs(seed: u64, rows: usize, cols: usize) -> (Matrix, Vec<usize>) {
    let mut rng = Rng::new(seed ^ 0xABCD);
    let x = Matrix::from_fn(rows, cols, |_, _| rng.uniform(0.0, 1.0));
    let y = (0..rows).map(|i| i % 3).collect();
    (x, y)
}

proptest! {
    /// Every attack respects the ε-ball and the valid feature range, for
    /// every algorithm, ε and ø.
    #[test]
    fn epsilon_ball_and_range_hold(
        seed in 0u64..200,
        kind_idx in 0usize..3,
        eps in 0.0..0.4f64,
        phi in 0.0..100.0f64,
    ) {
        let net = victim(seed, 6, 3);
        let (x, y) = inputs(seed, 5, 6);
        let cfg = AttackConfig::standard(AttackKind::ALL[kind_idx], eps, phi);
        let adv = craft(&net, &x, &y, &cfg);
        prop_assert_eq!(adv.shape(), x.shape());
        let max_delta = adv.sub(&x).map(f64::abs).max();
        prop_assert!(max_delta <= eps + 1e-12, "delta {max_delta} > eps {eps}");
        prop_assert!(adv.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// Attacks never *decrease* the victim's loss (they maximize it from
    /// the clean starting point; FGSM/PGD/MIM steps are ascent moves).
    #[test]
    fn attacks_do_not_decrease_loss(seed in 0u64..200, eps in 0.01..0.3f64) {
        use calloc_nn::DifferentiableModel;
        let net = victim(seed, 6, 3);
        let (x, y) = inputs(seed, 5, 6);
        let (clean, _) = net.loss_and_input_grad(&x, &y);
        for kind in AttackKind::ALL {
            let adv = craft(&net, &x, &y, &AttackConfig::standard(kind, eps, 100.0));
            let (attacked, _) = net.loss_and_input_grad(&adv, &y);
            // FGSM can overshoot on curved losses; allow tiny slack.
            prop_assert!(attacked >= clean - 0.05, "{}: {clean} -> {attacked}", kind.name());
        }
    }

    /// Target selection returns sorted, unique, in-range indices of the
    /// correct count for every strategy.
    #[test]
    fn target_selection_is_well_formed(
        seed in 0u64..200,
        phi in 0.5..100.0f64,
        cols in 2usize..30,
    ) {
        let mut rng = Rng::new(seed);
        let x = Matrix::from_fn(4, cols, |_, _| rng.uniform(0.0, 1.0));
        for targeting in [Targeting::Strongest, Targeting::Random, Targeting::Weakest] {
            let t = select_targets(&x, phi, targeting, seed);
            let expect = ((phi / 100.0 * cols as f64).round() as usize).clamp(1, cols);
            prop_assert_eq!(t.len(), expect);
            prop_assert!(t.windows(2).all(|w| w[0] < w[1]), "not sorted/unique");
            prop_assert!(t.iter().all(|&i| i < cols));
        }
    }

    /// Growing ø only adds targets for deterministic strategies
    /// (monotone attacker knowledge).
    #[test]
    fn strongest_targets_are_monotone_in_phi(seed in 0u64..200, cols in 4usize..20) {
        let mut rng = Rng::new(seed);
        let x = Matrix::from_fn(3, cols, |_, _| rng.uniform(0.0, 1.0));
        let small = select_targets(&x, 25.0, Targeting::Strongest, 0);
        let large = select_targets(&x, 75.0, Targeting::Strongest, 0);
        prop_assert!(small.iter().all(|i| large.contains(i)));
    }

    /// Crafting commutes with row order: attacking a reordered batch gives
    /// the reordered attacks (rows are independent given a fixed target
    /// set, which `Strongest` computes from column means — so we fix the
    /// target set via ø=100).
    #[test]
    fn rows_are_attacked_independently(seed in 0u64..100) {
        let net = victim(seed, 5, 3);
        let (x, y) = inputs(seed, 4, 5);
        let cfg = AttackConfig::fgsm(0.2, 100.0);
        let adv = craft(&net, &x, &y, &cfg);
        let order = [3usize, 0, 2, 1];
        let xr = x.select_rows(&order);
        let yr: Vec<usize> = order.iter().map(|&i| y[i]).collect();
        let advr = craft(&net, &xr, &yr, &cfg);
        prop_assert!(advr.approx_eq(&adv.select_rows(&order), 1e-12));
    }
}
