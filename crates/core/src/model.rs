//! The CALLOC hyperspace-attention network (§IV.B–C of the paper).

use calloc_nn::attention::{attention_backward, attention_forward};
use calloc_nn::state::{self, StateError, StateReader, StateWriter};
use calloc_nn::{
    loss, Cache, Dense, DifferentiableModel, Layer, LayerGrad, Localizer, Mode, Sequential,
};
use calloc_sim::Dataset;
use calloc_tensor::{Matrix, Rng};
use serde::{Deserialize, Serialize};

/// Architecture hyper-parameters (§V.A of the paper).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CallocConfig {
    /// Hyperspace width of both embedding networks (paper: 128 neurons).
    pub embedding_dim: usize,
    /// Attention projection width for Q/K.
    pub attention_dim: usize,
    /// Dropout rate on the `H^O` branch (paper: 0.2).
    pub dropout: f64,
    /// Gaussian noise std on the `H^O` branch (paper: 0.32).
    pub gaussian_noise: f64,
    /// Weight λ of the hyperspace-alignment MSE loss next to the location
    /// cross-entropy.
    pub mse_weight: f64,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Epochs per curriculum lesson.
    pub epochs_per_lesson: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Seed for initialization, shuffling and stochastic layers.
    pub seed: u64,
}

impl Default for CallocConfig {
    fn default() -> Self {
        CallocConfig {
            embedding_dim: 128,
            attention_dim: 64,
            dropout: 0.2,
            gaussian_noise: 0.32,
            mse_weight: 0.5,
            learning_rate: 5e-3,
            epochs_per_lesson: 15,
            batch_size: 32,
            seed: 0,
        }
    }
}

impl CallocConfig {
    /// A reduced configuration for tests and doctests: smaller hyperspaces
    /// and fewer epochs. Semantics are unchanged.
    pub fn fast() -> Self {
        CallocConfig {
            embedding_dim: 32,
            attention_dim: 16,
            epochs_per_lesson: 8,
            ..Default::default()
        }
    }
}

/// The trained CALLOC model.
///
/// Holds the two embedding networks, the attention projections, the final
/// classifier, and the *reference memory*: one prototype fingerprint per RP
/// (the mean of that RP's offline fingerprints) together with the RP
/// locations that act as the attention values `V`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CallocModel {
    config: CallocConfig,
    /// Curriculum-branch embedding: `Dense → ReLU` (produces `H^C`).
    embed_c: Sequential,
    /// Original-branch embedding: `Dense → ReLU → Dropout → GaussianNoise`
    /// (produces `H^O`).
    embed_o: Sequential,
    /// Query projection applied to `H^C`.
    wq: Dense,
    /// Key projection applied to `H^O` of the reference memory.
    wk: Dense,
    /// Final fully connected classifier over the attention-retrieved
    /// context (the weighted combination of clean memory embeddings).
    fc: Dense,
    /// Prototype fingerprint per RP (`num_rps` × `num_aps`).
    memory_x: Matrix,
    /// RP locations, normalized to `[0, 1]²` (`num_rps` × 2).
    memory_v: Matrix,
    /// Scale used to normalize RP coordinates (for reporting).
    location_scale: f64,
    num_classes: usize,
}

/// Everything the training step needs from a forward pass.
pub(crate) struct ForwardCaches {
    pub h_c: Matrix,
    caches_c: Vec<Cache>,
    h_o_mem: Matrix,
    caches_o_mem: Vec<Cache>,
    attn: calloc_nn::attention::AttentionCache,
    context: Matrix,
    pub logits: Matrix,
}

/// Parameter gradients of one training step.
pub(crate) struct ModelGrads {
    pub input: Matrix,
    grads_c: Vec<LayerGrad>,
    grads_o: Vec<LayerGrad>,
    wq: (Matrix, Matrix),
    wk: (Matrix, Matrix),
    fc: (Matrix, Matrix),
}

impl CallocModel {
    /// Creates an untrained model for a building with `num_aps` visible APs
    /// and the given RP prototypes.
    ///
    /// `memory_x` must hold one clean prototype fingerprint per RP (row
    /// order = class label order) and `rp_positions` the matching
    /// coordinates in meters.
    ///
    /// # Panics
    ///
    /// Panics if `memory_x.rows() != rp_positions.len()` or either is
    /// empty.
    pub fn new(
        memory_x: Matrix,
        rp_positions: &[(f64, f64)],
        config: CallocConfig,
        rng: &mut Rng,
    ) -> Self {
        assert_eq!(
            memory_x.rows(),
            rp_positions.len(),
            "memory rows must match RP count"
        );
        assert!(!rp_positions.is_empty(), "empty reference memory");
        let num_aps = memory_x.cols();
        let num_classes = rp_positions.len();
        let d = config.embedding_dim;

        let location_scale = rp_positions
            .iter()
            .flat_map(|&(x, y)| [x, y])
            .fold(1.0f64, f64::max);
        let memory_v = Matrix::from_fn(num_classes, 2, |r, c| {
            let (x, y) = rp_positions[r];
            (if c == 0 { x } else { y }) / location_scale
        });

        CallocModel {
            embed_c: Sequential::new(vec![Layer::Dense(Dense::he(num_aps, d, rng)), Layer::Relu]),
            embed_o: Sequential::new(vec![
                Layer::Dense(Dense::he(num_aps, d, rng)),
                Layer::Relu,
                Layer::Dropout {
                    rate: config.dropout,
                },
                Layer::GaussianNoise {
                    std: config.gaussian_noise,
                },
            ]),
            wq: Dense::xavier(d, config.attention_dim, rng),
            wk: Dense::xavier(d, config.attention_dim, rng),
            fc: Dense::xavier(d, num_classes, rng),
            memory_x,
            memory_v,
            location_scale,
            num_classes,
            config,
        }
    }

    /// Builds the reference memory from an offline dataset: the prototype
    /// of each RP class is the mean of its fingerprints.
    ///
    /// # Panics
    ///
    /// Panics if some RP class has no fingerprints.
    pub fn prototypes_from(dataset: &Dataset) -> Matrix {
        let k = dataset.num_classes();
        let mut proto = Matrix::zeros(k, dataset.num_aps());
        let mut counts = vec![0usize; k];
        for (r, &label) in dataset.labels.iter().enumerate() {
            counts[label] += 1;
            for c in 0..dataset.num_aps() {
                proto.set(label, c, proto.get(label, c) + dataset.x.get(r, c));
            }
        }
        for (class, &count) in counts.iter().enumerate() {
            assert!(count > 0, "RP class {class} has no fingerprints");
            for c in 0..dataset.num_aps() {
                proto.set(class, c, proto.get(class, c) / count as f64);
            }
        }
        proto
    }

    /// The architecture configuration.
    pub fn config(&self) -> &CallocConfig {
        &self.config
    }

    /// Fingerprint dimensionality.
    pub fn num_aps(&self) -> usize {
        self.memory_x.cols()
    }

    /// Total trainable parameters: both embeddings, the attention
    /// projections and the final classifier (the paper reports 65,239 for
    /// its building dimensions).
    pub fn parameter_count(&self) -> usize {
        self.embed_c.parameter_count()
            + self.embed_o.parameter_count()
            + self.wq.parameter_count()
            + self.wk.parameter_count()
            + self.fc.parameter_count()
    }

    /// Model size in kB assuming f32 storage (paper: 254.84 kB).
    pub fn size_kb_f32(&self) -> f64 {
        self.parameter_count() as f64 * 4.0 / 1000.0
    }

    /// Full forward pass. `mode` controls the stochastic layers of the
    /// `H^O` branch; the reference memory is always embedded in eval mode
    /// so that the keys stay stable.
    ///
    /// The attention performs a *soft fingerprint lookup*: the (possibly
    /// attacked) query `H^C` is matched against the clean memory keys
    /// `H^O`, and the retrieved context is a convex combination of clean
    /// memory embeddings — the values are anchored to the RP map, which is
    /// what bounds the damage a bounded input perturbation can do.
    pub(crate) fn forward(&self, x: &Matrix, mode: Mode, rng: &mut Rng) -> ForwardCaches {
        let (h_c, caches_c) = self.embed_c.forward(x, mode, rng);
        let (h_o_mem, caches_o_mem) = self.embed_o.forward(&self.memory_x, Mode::Eval, rng);
        let q_proj = self.wq.forward(&h_c);
        let k_proj = self.wk.forward(&h_o_mem);
        let (retrieved, attn) = attention_forward(&q_proj, &k_proj, &h_o_mem);
        // Residual fusion: the classifier sees the retrieved clean context
        // plus the query hyperspace itself. The retrieval anchors the
        // prediction to the clean memory; the residual keeps training
        // well-conditioned.
        let context = retrieved.add(&h_c);
        let logits = self.fc.forward(&context);
        ForwardCaches {
            h_c,
            caches_c,
            h_o_mem,
            caches_o_mem,
            attn,
            context,
            logits,
        }
    }

    /// Embeds a batch through the `H^O` branch (used for the alignment
    /// loss during training).
    pub(crate) fn embed_original(
        &self,
        x: &Matrix,
        mode: Mode,
        rng: &mut Rng,
    ) -> (Matrix, Vec<Cache>) {
        self.embed_o.forward(x, mode, rng)
    }

    /// Backward pass for the classification path. `grad_logits` is
    /// `dL/dlogits`; `extra_grad_hc` (e.g. from the alignment MSE) is added
    /// to the gradient flowing into `H^C`. Returns all parameter gradients
    /// plus the input gradient.
    pub(crate) fn backward(
        &self,
        c: &ForwardCaches,
        grad_logits: &Matrix,
        extra_grad_hc: Option<&Matrix>,
    ) -> ModelGrads {
        let (g_context, g_fc_w, g_fc_b) = self.fc.backward(&c.context, grad_logits);

        // The memory embeddings appear twice: as keys (through Wk) and as
        // values; both gradient paths flow into the H^O branch. The
        // residual adds a direct path from the classifier into H^C.
        let (g_q_proj, g_k_proj, g_v) = attention_backward(&c.attn, &g_context);
        let (g_hc_from_q, g_wq_w, g_wq_b) = self.wq.backward(&c.h_c, &g_q_proj);
        let (g_ho_from_k, g_wk_w, g_wk_b) = self.wk.backward(&c.h_o_mem, &g_k_proj);
        let g_ho_mem = g_ho_from_k.add(&g_v);

        let mut g_hc = g_hc_from_q.add(&g_context);
        if let Some(extra) = extra_grad_hc {
            g_hc = g_hc.add(extra);
        }
        let (g_input, grads_c) = self.embed_c.backward(&c.caches_c, &g_hc);
        let (_, grads_o) = self.embed_o.backward(&c.caches_o_mem, &g_ho_mem);

        ModelGrads {
            input: g_input,
            grads_c,
            grads_o,
            wq: (g_wq_w, g_wq_b),
            wk: (g_wk_w, g_wk_b),
            fc: (g_fc_w, g_fc_b),
        }
    }

    /// Gradient of the `H^O` branch for a pair batch (alignment loss).
    pub(crate) fn backward_original(&self, caches: &[Cache], grad_h_o: &Matrix) -> Vec<LayerGrad> {
        let (_, grads) = self.embed_o.backward(caches, grad_h_o);
        grads
    }

    /// Attention weights over the reference RPs for a batch — which parts
    /// of the fingerprint map the model consulted (rows sum to 1).
    pub fn attention_map(&self, x: &Matrix) -> Matrix {
        let mut rng = Rng::new(0);
        let fwd = self.forward(x, Mode::Eval, &mut rng);
        fwd.attn.weights().clone()
    }

    /// Soft location estimate in meters from the attention output alone
    /// (before the classifier) — useful for diagnostics.
    pub fn soft_locations(&self, x: &Matrix) -> Vec<(f64, f64)> {
        let mut rng = Rng::new(0);
        let fwd = self.forward(x, Mode::Eval, &mut rng);
        let w = fwd.attn.weights();
        let soft = w.matmul(&self.memory_v).scale(self.location_scale);
        (0..soft.rows())
            .map(|r| (soft.get(r, 0), soft.get(r, 1)))
            .collect()
    }

    pub(crate) fn parts_mut(
        &mut self,
    ) -> (
        &mut Sequential,
        &mut Sequential,
        &mut Dense,
        &mut Dense,
        &mut Dense,
    ) {
        (
            &mut self.embed_c,
            &mut self.embed_o,
            &mut self.wq,
            &mut self.wk,
            &mut self.fc,
        )
    }

    /// Bit-exact encoding of the trained model for the model cache
    /// (see [`calloc_nn::state`]): the config, all network parameters as
    /// raw f64 bits, and the reference memory. [`Self::from_state`]
    /// restores a model whose every prediction is bit-identical.
    pub fn state_bytes(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        let c = &self.config;
        w.usize(c.embedding_dim);
        w.usize(c.attention_dim);
        w.f64(c.dropout);
        w.f64(c.gaussian_noise);
        w.f64(c.mse_weight);
        w.f64(c.learning_rate);
        w.usize(c.epochs_per_lesson);
        w.usize(c.batch_size);
        w.u64(c.seed);
        state::write_sequential(&mut w, &self.embed_c);
        state::write_sequential(&mut w, &self.embed_o);
        state::write_dense(&mut w, &self.wq);
        state::write_dense(&mut w, &self.wk);
        state::write_dense(&mut w, &self.fc);
        w.matrix(&self.memory_x);
        w.matrix(&self.memory_v);
        w.f64(self.location_scale);
        w.usize(self.num_classes);
        w.into_bytes()
    }

    /// Decodes a model written by [`Self::state_bytes`]. Malformed input
    /// errors; it never panics and never yields a partial model.
    pub fn from_state(bytes: &[u8]) -> Result<CallocModel, StateError> {
        let mut r = StateReader::new(bytes);
        let config = CallocConfig {
            embedding_dim: r.usize()?,
            attention_dim: r.usize()?,
            dropout: r.f64()?,
            gaussian_noise: r.f64()?,
            mse_weight: r.f64()?,
            learning_rate: r.f64()?,
            epochs_per_lesson: r.usize()?,
            batch_size: r.usize()?,
            seed: r.u64()?,
        };
        let embed_c = state::read_sequential(&mut r)?;
        let embed_o = state::read_sequential(&mut r)?;
        let wq = state::read_dense(&mut r)?;
        let wk = state::read_dense(&mut r)?;
        let fc = state::read_dense(&mut r)?;
        let memory_x = r.matrix()?;
        let memory_v = r.matrix()?;
        let location_scale = r.f64()?;
        let num_classes = r.usize()?;
        r.finish()?;
        if memory_v.rows() != memory_x.rows() || memory_x.rows() != num_classes {
            return Err(format!(
                "reference memory shape {:?}/{:?} inconsistent with {num_classes} classes",
                memory_x.shape(),
                memory_v.shape()
            ));
        }
        Ok(CallocModel {
            config,
            embed_c,
            embed_o,
            wq,
            wk,
            fc,
            memory_x,
            memory_v,
            location_scale,
            num_classes,
        })
    }
}

/// Weight/bias gradient pair of one dense layer.
pub(crate) type DenseGrad = (Matrix, Matrix);

/// `ModelGrads` decomposed for the optimizer: input gradient, the two
/// embedding-network gradients, then the Wq / Wk / fc dense grads.
pub(crate) type GradParts = (
    Matrix,
    Vec<LayerGrad>,
    Vec<LayerGrad>,
    DenseGrad,
    DenseGrad,
    DenseGrad,
);

impl ModelGrads {
    pub(crate) fn into_parts(self) -> GradParts {
        (
            self.input,
            self.grads_c,
            self.grads_o,
            self.wq,
            self.wk,
            self.fc,
        )
    }

    pub(crate) fn grads_o_mut(&mut self) -> &mut Vec<LayerGrad> {
        &mut self.grads_o
    }
}

#[doc(hidden)]
impl CallocModel {
    /// Debug access for gradient checking (hidden from docs; used by the
    /// gradient-check example and tests).
    pub fn debug_param_grads(&self, x: &Matrix, y: &[usize]) -> (Matrix, Matrix, Matrix, Matrix) {
        let mut rng = Rng::new(0);
        let fwd = self.forward(x, Mode::Eval, &mut rng);
        let (_, grad_logits) = loss::cross_entropy(&fwd.logits, y);
        let grads = self.backward(&fwd, &grad_logits, None);
        let first_dense = |branch: &str, grads: &[LayerGrad]| -> Matrix {
            for g in grads {
                if let LayerGrad::Dense { w, .. } = g {
                    return w.clone();
                }
            }
            // Name the branch and what the backward pass actually
            // produced, so a quarantined-cell payload is actionable.
            let kinds: Vec<&str> = grads
                .iter()
                .map(|g| match g {
                    LayerGrad::Dense { .. } => "Dense",
                    LayerGrad::None => "None",
                })
                .collect();
            panic!(
                "CallocModel::debug_param_grads: no dense-layer gradient in the {branch} branch \
                 ({} layer grads: {kinds:?})",
                grads.len()
            );
        };
        (
            grads.fc.0.clone(),
            grads.wq.0.clone(),
            first_dense("H^C embedding", &grads.grads_c),
            first_dense("H^O embedding", &grads.grads_o),
        )
    }

    /// Debug access to the final classifier.
    pub fn debug_fc_mut(&mut self) -> &mut Dense {
        &mut self.fc
    }

    /// Debug access to the query projection.
    pub fn debug_wq_mut(&mut self) -> &mut Dense {
        &mut self.wq
    }

    /// Debug access to the first dense layer of the `H^C` branch.
    pub fn debug_embed_c_first_mut(&mut self) -> &mut Dense {
        match &mut self.embed_c.layers_mut()[0] {
            Layer::Dense(d) => d,
            _ => unreachable!("embed_c starts with a dense layer"),
        }
    }

    /// Debug access to the first dense layer of the `H^O` branch.
    pub fn debug_embed_o_first_mut(&mut self) -> &mut Dense {
        match &mut self.embed_o.layers_mut()[0] {
            Layer::Dense(d) => d,
            _ => unreachable!("embed_o starts with a dense layer"),
        }
    }
}

impl DifferentiableModel for CallocModel {
    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn logits(&self, x: &Matrix) -> Matrix {
        let mut rng = Rng::new(0);
        self.forward(x, Mode::Eval, &mut rng).logits
    }

    fn loss_and_input_grad(&self, x: &Matrix, targets: &[usize]) -> (f64, Matrix) {
        let mut rng = Rng::new(0);
        let fwd = self.forward(x, Mode::Eval, &mut rng);
        let (loss_value, grad_logits) = loss::cross_entropy(&fwd.logits, targets);
        let grads = self.backward(&fwd, &grad_logits, None);
        (loss_value, grads.input)
    }
}

impl Localizer for CallocModel {
    fn name(&self) -> &str {
        "CALLOC"
    }

    fn predict_classes(&self, x: &Matrix) -> Vec<usize> {
        self.logits(x).argmax_rows()
    }

    fn as_differentiable(&self) -> Option<&dyn DifferentiableModel> {
        Some(self)
    }

    fn state(&self) -> Option<Vec<u8>> {
        Some(self.state_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_model(seed: u64) -> CallocModel {
        let mut rng = Rng::new(seed);
        let memory = Matrix::from_fn(5, 6, |_, _| rng.uniform(0.0, 1.0));
        let rps: Vec<(f64, f64)> = (0..5).map(|i| (i as f64, 2.0 * i as f64)).collect();
        CallocModel::new(memory, &rps, CallocConfig::fast(), &mut rng)
    }

    #[test]
    fn logits_shape_is_batch_by_classes() {
        let model = toy_model(1);
        let x = Matrix::zeros(3, 6);
        assert_eq!(model.logits(&x).shape(), (3, 5));
    }

    #[test]
    fn parameter_count_formula() {
        let model = toy_model(2);
        let d = model.config().embedding_dim;
        let a = model.config().attention_dim;
        let expected = 2 * (6 * d + d) + 2 * (d * a + a) + d * 5 + 5;
        assert_eq!(model.parameter_count(), expected);
    }

    #[test]
    fn paper_scale_parameter_count_is_close() {
        // With the paper's dimensions (165 visible APs after filtering,
        // 128-d hyperspaces) the count should land in the right regime
        // (the paper reports 65,239).
        let mut rng = Rng::new(3);
        let memory = Matrix::zeros(29, 165);
        let rps: Vec<(f64, f64)> = (0..29).map(|i| (i as f64, 0.0)).collect();
        let model = CallocModel::new(memory, &rps, CallocConfig::default(), &mut rng);
        let count = model.parameter_count();
        assert!(
            (55_000..75_000).contains(&count),
            "parameter count {count} far from the paper's 65,239"
        );
    }

    #[test]
    fn prototypes_are_class_means() {
        let x = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0], vec![0.4, 0.4]]);
        let ds = Dataset::new(x, vec![0, 0, 1], vec![(0.0, 0.0), (1.0, 0.0)]);
        let proto = CallocModel::prototypes_from(&ds);
        assert_eq!(proto.row(0), &[0.5, 0.5]);
        assert_eq!(proto.row(1), &[0.4, 0.4]);
    }

    #[test]
    fn input_gradient_matches_finite_diff() {
        let model = toy_model(4);
        let mut rng = Rng::new(5);
        let x = Matrix::from_fn(2, 6, |_, _| rng.uniform(0.1, 0.9));
        let targets = vec![1usize, 3];
        let (_, grad) = model.loss_and_input_grad(&x, &targets);
        let eps = 1e-6;
        for r in 0..2 {
            for c in 0..6 {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let fd = (model.loss_and_input_grad(&xp, &targets).0
                    - model.loss_and_input_grad(&xm, &targets).0)
                    / (2.0 * eps);
                assert!(
                    (grad.get(r, c) - fd).abs() < 1e-5,
                    "grad[{r}][{c}] {} vs {fd}",
                    grad.get(r, c)
                );
            }
        }
    }

    #[test]
    fn attention_map_rows_are_distributions() {
        let model = toy_model(6);
        let x = Matrix::from_fn(4, 6, |r, c| ((r + c) as f64 * 0.1) % 1.0);
        let w = model.attention_map(&x);
        assert_eq!(w.shape(), (4, 5));
        for r in 0..4 {
            let s: f64 = w.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn soft_locations_are_inside_rp_hull() {
        let model = toy_model(7);
        let x = Matrix::from_fn(3, 6, |_, c| c as f64 * 0.15);
        for (lx, ly) in model.soft_locations(&x) {
            assert!((0.0..=4.0).contains(&lx));
            assert!((0.0..=8.0).contains(&ly));
        }
    }

    #[test]
    fn eval_is_deterministic_despite_stochastic_layers() {
        let model = toy_model(8);
        let x = Matrix::from_fn(2, 6, |_, c| c as f64 * 0.1);
        assert_eq!(model.logits(&x), model.logits(&x));
    }

    #[test]
    fn state_round_trips_bit_exactly() {
        let model = toy_model(10);
        let bytes = model.state_bytes();
        let restored = CallocModel::from_state(&bytes).expect("decode");
        let x = Matrix::from_fn(3, 6, |r, c| (r * 6 + c) as f64 * 0.07);
        let (a, b) = (model.logits(&x), restored.logits(&x));
        assert_eq!(a.shape(), b.shape());
        for (va, vb) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(va.to_bits(), vb.to_bits());
        }
        assert_eq!(restored.state_bytes(), bytes, "re-encode is stable");
        // Strict prefixes never decode (strided to keep the test fast).
        for end in (0..bytes.len()).step_by(97).chain([0, 1, bytes.len() - 1]) {
            assert!(
                CallocModel::from_state(&bytes[..end]).is_err(),
                "prefix {end} decoded"
            );
        }
    }

    #[test]
    #[should_panic(expected = "memory rows must match")]
    fn rejects_mismatched_memory() {
        let mut rng = Rng::new(9);
        CallocModel::new(
            Matrix::zeros(3, 4),
            &[(0.0, 0.0)],
            CallocConfig::fast(),
            &mut rng,
        );
    }
}
