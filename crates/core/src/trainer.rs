//! The CALLOC offline phase: curriculum-driven adversarial training with
//! the adaptive controller (§IV of the paper).

use calloc_attack::{craft, AttackConfig};
use calloc_nn::{loss, Adam, LayerGrad, Mode, Optimizer, ParamAdam};
use calloc_sim::Dataset;
use calloc_tensor::{Matrix, Rng};

use crate::curriculum::{AdaptiveConfig, Curriculum, Lesson, LessonReport};
use crate::model::{CallocConfig, CallocModel};

/// Result of the offline phase: the trained model and the per-lesson
/// training history.
#[derive(Debug)]
pub struct TrainOutcome {
    /// The trained CALLOC model (best weights).
    pub model: CallocModel,
    /// One report per curriculum lesson, in training order.
    pub lesson_reports: Vec<LessonReport>,
}

/// Trains [`CallocModel`]s through the adaptive curriculum.
///
/// See the crate-level docs for a quickstart. The trainer owns all
/// schedule-related knobs; the architecture knobs live in
/// [`CallocConfig`].
#[derive(Debug, Clone)]
pub struct CallocTrainer {
    config: CallocConfig,
    curriculum: Curriculum,
    adaptive: AdaptiveConfig,
}

impl CallocTrainer {
    /// Creates a trainer with the paper's 10-lesson curriculum and the
    /// default adaptive controller.
    pub fn new(config: CallocConfig) -> Self {
        CallocTrainer {
            config,
            curriculum: Curriculum::paper(),
            adaptive: AdaptiveConfig::default(),
        }
    }

    /// Replaces the curriculum.
    pub fn with_curriculum(mut self, curriculum: Curriculum) -> Self {
        self.curriculum = curriculum;
        self
    }

    /// Replaces the adaptive-controller configuration.
    pub fn with_adaptive(mut self, adaptive: AdaptiveConfig) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Runs the full offline phase on an attack-free training dataset.
    ///
    /// Adversarial lesson data is crafted **against the model being
    /// trained** (white-box self-attack with FGSM, fixed ε), exactly as in
    /// the paper.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty.
    pub fn fit(&self, train: &Dataset) -> TrainOutcome {
        assert!(!train.is_empty(), "cannot train on an empty dataset");
        let mut rng = Rng::new(self.config.seed);
        let prototypes = CallocModel::prototypes_from(train);
        let mut model = CallocModel::new(prototypes, &train.rp_positions, self.config, &mut rng);
        let mut opt = Opt::new(&model, self.config.learning_rate);

        let mut reports = Vec::with_capacity(self.curriculum.len());
        let mut best_loss_so_far = f64::INFINITY;
        for lesson in self.curriculum.lessons() {
            let report = self.run_lesson(
                &mut model,
                &mut opt,
                train,
                *lesson,
                &mut best_loss_so_far,
                &mut rng,
            );
            reports.push(report);
        }
        TrainOutcome {
            model,
            lesson_reports: reports,
        }
    }

    /// The "NC" ablation of Fig. 5: curriculum learning is not applied.
    ///
    /// The curriculum is the mechanism that stages adversarial lessons into
    /// training, so disabling it means the model trains on attack-free
    /// data only, for the same total number of epochs, with the adaptive
    /// controller off — the standard (non-adversarial) training the paper
    /// contrasts against.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty.
    pub fn fit_no_curriculum(&self, train: &Dataset) -> TrainOutcome {
        let lessons: Vec<Lesson> = (1..=self.curriculum.len())
            .map(|index| Lesson {
                index,
                phi_percent: 0.0,
                epsilon: 0.0,
                clean_fraction: 1.0,
            })
            .collect();
        let trainer = CallocTrainer {
            config: self.config,
            curriculum: CurriculumFromLessons::build(lessons),
            adaptive: AdaptiveConfig {
                enabled: false,
                ..self.adaptive
            },
        };
        TrainOutcome {
            lesson_reports: Vec::new(),
            ..trainer.fit(train)
        }
    }

    /// Trains one lesson with the adaptive revert/reduce-ø/retry loop.
    #[allow(clippy::too_many_arguments)]
    fn run_lesson(
        &self,
        model: &mut CallocModel,
        opt: &mut Opt,
        train: &Dataset,
        lesson: Lesson,
        best_loss_so_far: &mut f64,
        rng: &mut Rng,
    ) -> LessonReport {
        let mut effective_phi = lesson.phi_percent;
        let mut retries = 0;
        let mut attempt_losses = Vec::new();

        loop {
            let snapshot = model.clone();
            let opt_snapshot = opt.clone();
            let perm = rng.permutation(train.len());
            let x_clean = train.x.select_rows(&perm);
            let y: Vec<usize> = perm.iter().map(|&i| train.labels[i]).collect();
            // Divergence is judged *within* the lesson (§IV.D): if the loss
            // at the end of the lesson is higher than where the lesson
            // started, the model failed to adapt to this data complexity.
            let x_initial = self.lesson_inputs(model, &x_clean, &y, &lesson, effective_phi);
            let initial_loss = self.eval_loss(model, &x_initial, &x_clean, &y);
            let final_loss =
                self.train_epochs(model, opt, &x_clean, &y, &lesson, effective_phi, rng);
            attempt_losses.push(final_loss);

            let diverged = self.adaptive.enabled
                && final_loss > initial_loss * (1.0 + self.adaptive.divergence_tolerance)
                && retries < self.adaptive.max_retries
                && effective_phi > 0.0;
            if diverged {
                // Revert to the best-performing weights and soften the
                // lesson by two percentage points of ø (§IV.D).
                *model = snapshot;
                *opt = opt_snapshot;
                effective_phi = (effective_phi - self.adaptive.phi_step_down).max(0.0);
                retries += 1;
                continue;
            }
            if final_loss < *best_loss_so_far {
                *best_loss_so_far = final_loss;
            }
            return LessonReport {
                lesson,
                effective_phi,
                retries,
                attempt_losses: attempt_losses.clone(),
                best_loss: *best_loss_so_far,
            };
        }
    }

    /// Builds a lesson's inputs against the *current* model:
    /// `clean_fraction` of the rows stay original, the rest are
    /// FGSM-perturbed (white-box self-attack, §IV.A). Re-crafted every
    /// epoch so the adversarial examples never go stale as the weights
    /// move.
    fn lesson_inputs(
        &self,
        model: &CallocModel,
        x_clean: &Matrix,
        y: &[usize],
        lesson: &Lesson,
        effective_phi: f64,
    ) -> Matrix {
        let n = x_clean.rows();
        let clean_count = (n as f64 * lesson.clean_fraction).round() as usize;
        let mut x_lesson = x_clean.clone();
        if clean_count < n && effective_phi > 0.0 && lesson.epsilon > 0.0 {
            let adv_rows: Vec<usize> = (clean_count..n).collect();
            let sub = x_clean.select_rows(&adv_rows);
            let sub_y: Vec<usize> = adv_rows.iter().map(|&i| y[i]).collect();
            let attack = AttackConfig::fgsm(lesson.epsilon, effective_phi);
            let adv = craft(model, &sub, &sub_y, &attack);
            for (i, &row) in adv_rows.iter().enumerate() {
                x_lesson.set_row(row, adv.row(i));
            }
        }
        x_lesson
    }

    /// Composite loss (CE + λ·MSE) of the current model on a lesson's
    /// data, evaluated without updates (used as the divergence reference).
    fn eval_loss(
        &self,
        model: &CallocModel,
        x_lesson: &Matrix,
        x_clean: &Matrix,
        y: &[usize],
    ) -> f64 {
        let mut rng = Rng::new(0);
        let fwd = model.forward(x_lesson, Mode::Eval, &mut rng);
        let (h_o, _) = model.embed_original(x_clean, Mode::Eval, &mut rng);
        let (ce, _) = loss::cross_entropy(&fwd.logits, y);
        let (mse_loss, _) = loss::mse(&fwd.h_c, &h_o);
        ce + self.config.mse_weight * mse_loss
    }

    /// Runs the lesson's epochs, re-crafting the adversarial rows against
    /// the current weights each epoch; returns the final epoch's mean
    /// training loss (the monitored quantity of §IV.D).
    #[allow(clippy::too_many_arguments)]
    fn train_epochs(
        &self,
        model: &mut CallocModel,
        opt: &mut Opt,
        x_clean: &Matrix,
        y: &[usize],
        lesson: &Lesson,
        effective_phi: f64,
        rng: &mut Rng,
    ) -> f64 {
        let mut final_loss = f64::INFINITY;
        for _ in 0..self.config.epochs_per_lesson.max(1) {
            let x_lesson = self.lesson_inputs(model, x_clean, y, lesson, effective_phi);
            let order = rng.permutation(x_lesson.rows());
            let mut epoch_loss = 0.0;
            let mut batches = 0.0f64;
            for chunk in order.chunks(self.config.batch_size.max(1)) {
                let bx = x_lesson.select_rows(chunk);
                let bclean = x_clean.select_rows(chunk);
                let by: Vec<usize> = chunk.iter().map(|&i| y[i]).collect();
                epoch_loss += self.train_step(model, opt, &bx, &bclean, &by, rng);
                batches += 1.0;
            }
            final_loss = epoch_loss / batches.max(1.0);
        }
        final_loss
    }

    /// One optimization step of the composite objective
    /// `CE(location) + λ · MSE(H^C, H^O)`.
    fn train_step(
        &self,
        model: &mut CallocModel,
        opt: &mut Opt,
        bx: &Matrix,
        bclean: &Matrix,
        by: &[usize],
        rng: &mut Rng,
    ) -> f64 {
        let fwd = model.forward(bx, Mode::Train, rng);
        let (h_o_pair, caches_pair) = model.embed_original(bclean, Mode::Train, rng);

        let (ce, grad_logits) = loss::cross_entropy(&fwd.logits, by);
        let (mse_loss, grad_hc_mse) = loss::mse(&fwd.h_c, &h_o_pair);
        let lambda = self.config.mse_weight;

        let extra_hc = grad_hc_mse.scale(lambda);
        let mut grads = model.backward(&fwd, &grad_logits, Some(&extra_hc));
        // Alignment gradient into the H^O branch (target side of the MSE).
        let grad_ho_pair = grad_hc_mse.scale(-lambda);
        let grads_o_pair = model.backward_original(&caches_pair, &grad_ho_pair);
        add_layer_grads(grads.grads_o_mut(), grads_o_pair);

        opt.step(model, grads);
        ce + lambda * mse_loss
    }
}

/// Element-wise accumulation of two gradient lists over the same network.
fn add_layer_grads(acc: &mut [LayerGrad], extra: Vec<LayerGrad>) {
    assert_eq!(acc.len(), extra.len(), "gradient list length mismatch");
    for (a, e) in acc.iter_mut().zip(extra) {
        match (a, e) {
            (LayerGrad::Dense { w, b }, LayerGrad::Dense { w: w2, b: b2 }) => {
                *w = w.add(&w2);
                *b = b.add(&b2);
            }
            (LayerGrad::None, LayerGrad::None) => {}
            _ => panic!("gradient variant mismatch"),
        }
    }
}

/// All optimizer state for a [`CallocModel`].
#[derive(Debug, Clone)]
struct Opt {
    lr: f64,
    adam_c: Adam,
    adam_o: Adam,
    wq_w: ParamAdam,
    wq_b: ParamAdam,
    wk_w: ParamAdam,
    wk_b: ParamAdam,
    fc_w: ParamAdam,
    fc_b: ParamAdam,
}

impl Opt {
    fn new(model: &CallocModel, lr: f64) -> Self {
        let d = model.config().embedding_dim;
        let a = model.config().attention_dim;
        let c = {
            use calloc_nn::DifferentiableModel;
            model.num_classes()
        };
        Opt {
            lr,
            adam_c: Adam::new(lr),
            adam_o: Adam::new(lr),
            wq_w: ParamAdam::new(d, a),
            wq_b: ParamAdam::new(1, a),
            wk_w: ParamAdam::new(d, a),
            wk_b: ParamAdam::new(1, a),
            fc_w: ParamAdam::new(d, c),
            fc_b: ParamAdam::new(1, c),
        }
    }

    fn step(&mut self, model: &mut CallocModel, grads: crate::model::ModelGrads) {
        let (_input, grads_c, grads_o, gwq, gwk, gfc) = grads.into_parts();
        let (embed_c, embed_o, wq, wk, fc) = model.parts_mut();
        self.adam_c.step(embed_c, &grads_c);
        self.adam_o.step(embed_o, &grads_o);
        self.wq_w.update(&mut wq.w, &gwq.0, self.lr);
        self.wq_b.update(&mut wq.b, &gwq.1, self.lr);
        self.wk_w.update(&mut wk.w, &gwk.0, self.lr);
        self.wk_b.update(&mut wk.b, &gwk.1, self.lr);
        self.fc_w.update(&mut fc.w, &gfc.0, self.lr);
        self.fc_b.update(&mut fc.b, &gfc.1, self.lr);
    }
}

/// Internal helper to build a curriculum from explicit lessons (used by the
/// NC ablation).
struct CurriculumFromLessons;

impl CurriculumFromLessons {
    fn build(lessons: Vec<Lesson>) -> Curriculum {
        // Reuse the public constructor path: build a linear curriculum of
        // the right size, then overwrite its lessons through serde
        // round-tripping is overkill — expose a crate-private setter
        // instead.
        Curriculum::from_lessons(lessons)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calloc_nn::Localizer;
    use calloc_sim::{Building, BuildingId, CollectionConfig, Scenario};

    fn small_scenario() -> Scenario {
        let spec = calloc_sim::BuildingSpec {
            path_length_m: 20,
            num_aps: 24,
            ..BuildingId::B1.spec()
        };
        let building = Building::generate(spec, 3);
        Scenario::generate(&building, &CollectionConfig::small(), 11)
    }

    fn fast_trainer() -> CallocTrainer {
        CallocTrainer::new(CallocConfig {
            epochs_per_lesson: 15,
            ..CallocConfig::fast()
        })
        .with_curriculum(Curriculum::linear(4, 0.1))
    }

    #[test]
    fn fit_produces_working_model() {
        let scenario = small_scenario();
        let outcome = fast_trainer().fit(&scenario.train);
        // RPs sit 1 m apart; classification accuracy is the wrong metric —
        // assert the paper's metric, mean localization error in meters.
        let errs = scenario
            .train
            .errors_meters(&outcome.model.predict_classes(&scenario.train.x));
        let mean_err = calloc_tensor::stats::mean(&errs);
        assert!(mean_err < 4.5, "train mean error {mean_err:.2} m");
        assert_eq!(outcome.lesson_reports.len(), 4);
    }

    #[test]
    fn lesson_reports_follow_curriculum_order() {
        let scenario = small_scenario();
        let outcome = fast_trainer().fit(&scenario.train);
        for (i, r) in outcome.lesson_reports.iter().enumerate() {
            assert_eq!(r.lesson.index, i + 1);
            assert!(r.effective_phi <= r.lesson.phi_percent);
        }
    }

    #[test]
    fn adaptive_controller_reduces_phi_on_divergence() {
        // Force divergence with an absurd tolerance of 0 and tiny epochs:
        // any non-monotone loss triggers a retry, which must lower ø.
        let scenario = small_scenario();
        let trainer = fast_trainer().with_adaptive(AdaptiveConfig {
            divergence_tolerance: -0.9, // every attempt "diverges"
            max_retries: 2,
            ..Default::default()
        });
        let outcome = trainer.fit(&scenario.train);
        let retried: usize = outcome.lesson_reports.iter().map(|r| r.retries).sum();
        assert!(retried > 0, "controller never engaged");
        for r in &outcome.lesson_reports {
            if r.retries > 0 && r.lesson.phi_percent > 0.0 {
                assert!(r.effective_phi < r.lesson.phi_percent);
            }
        }
    }

    #[test]
    fn nc_ablation_trains_without_reports() {
        let scenario = small_scenario();
        let outcome = fast_trainer().fit_no_curriculum(&scenario.train);
        assert!(outcome.lesson_reports.is_empty());
        let errs = scenario
            .train
            .errors_meters(&outcome.model.predict_classes(&scenario.train.x));
        let mean_err = calloc_tensor::stats::mean(&errs);
        assert!(
            mean_err < 9.0,
            "NC mean error {mean_err:.2} m collapsed entirely"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let scenario = small_scenario();
        let a = fast_trainer().fit(&scenario.train);
        let b = fast_trainer().fit(&scenario.train);
        let x = &scenario.train.x;
        assert_eq!(a.model.predict_classes(x), b.model.predict_classes(x));
    }

    #[test]
    fn curriculum_model_resists_attacks_better_than_nc() {
        use calloc_attack::{craft, AttackConfig};
        let scenario = small_scenario();
        let trainer = CallocTrainer::new(CallocConfig {
            epochs_per_lesson: 6,
            ..CallocConfig::fast()
        })
        .with_curriculum(Curriculum::linear(6, 0.1));
        let cur = trainer.fit(&scenario.train);
        let nc = trainer.fit_no_curriculum(&scenario.train);

        let test = &scenario.test_per_device[0].1;
        let attack = AttackConfig::fgsm(0.2, 100.0);
        let err_of = |m: &CallocModel| {
            let adv = craft(m, &test.x, &test.labels, &attack);
            let errs = test.errors_meters(&m.predict_classes(&adv));
            calloc_tensor::stats::mean(&errs)
        };
        let cur_err = err_of(&cur.model);
        let nc_err = err_of(&nc.model);
        // The curriculum model should not be clearly worse under attack.
        assert!(
            cur_err <= nc_err * 1.25 + 0.5,
            "curriculum {cur_err:.2} m vs NC {nc_err:.2} m"
        );
    }
}
