//! # calloc
//!
//! CALLOC: **C**urriculum **A**dversarial **L**earning for secure and
//! robust indoor **LOC**alization — a from-scratch Rust implementation of
//! the DATE 2024 paper by Gufran & Pasricha.
//!
//! CALLOC combines two ideas to make RSS-fingerprint localization robust to
//! adversarial attacks, environmental noise and device heterogeneity:
//!
//! 1. **An adaptive curriculum** (§IV.A/§IV.D): training proceeds through
//!    10 lessons of increasing difficulty. Lesson 1 is clean data; each
//!    later lesson raises the fraction ø of adversarially perturbed APs
//!    (FGSM, fixed ε = 0.1). A controller watches the loss: on divergence
//!    it reverts the model to its best weights, reduces the lesson's ø by
//!    two percentage points and retries before advancing.
//! 2. **A hyperspace-attention model** (§IV.B/§IV.C): two embedding
//!    networks map the (possibly attacked) input and the clean reference
//!    data into low-dimensional hyperspaces `H^C` and `H^O`; a scaled
//!    dot-product attention layer with `Q = H^C`, `K = H^O` and
//!    `V = reference-point locations` performs a differentiable soft
//!    fingerprint lookup whose output feeds the final classifier. The `H^O`
//!    branch carries dropout (0.2) and Gaussian-noise (0.32) layers to bake
//!    in environmental/device variation resilience.
//!
//! # Quickstart
//!
//! ```
//! use calloc::{CallocConfig, CallocTrainer};
//! use calloc_nn::Localizer;
//! use calloc_sim::{Building, BuildingId, CollectionConfig, Scenario};
//!
//! // Simulate a small survey of paper Building 3.
//! let building = Building::generate(BuildingId::B3.spec(), 1);
//! let scenario = Scenario::generate(&building, &CollectionConfig::small(), 42);
//!
//! // Train CALLOC with a reduced schedule (fast enough for a doctest).
//! let config = CallocConfig::fast();
//! let outcome = CallocTrainer::new(config).fit(&scenario.train);
//! let model = outcome.model;
//!
//! // Localize the heterogeneous-device test fingerprints.
//! let test = &scenario.test_per_device[0].1;
//! let predictions = model.predict_classes(&test.x);
//! assert_eq!(predictions.len(), test.len());
//! ```

#![deny(missing_docs)]

mod curriculum;
mod model;
mod trainer;

pub use curriculum::{AdaptiveConfig, Curriculum, Lesson, LessonReport};
pub use model::{CallocConfig, CallocModel};
pub use trainer::{CallocTrainer, TrainOutcome};

// Re-export the contracts users need alongside the model.
pub use calloc_nn::{DifferentiableModel, Localizer};
