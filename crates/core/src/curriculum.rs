//! The 10-lesson curriculum and its adaptive controller (§IV.A and §IV.D).

use serde::{Deserialize, Serialize};

/// One curriculum lesson: how much of the training data is adversarial and
/// how aggressively APs are targeted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lesson {
    /// 1-based lesson number.
    pub index: usize,
    /// Percentage ø of APs attacked in this lesson's adversarial samples.
    pub phi_percent: f64,
    /// FGSM ε used to craft this lesson's adversarial samples (the paper
    /// keeps this fixed at 0.1 for all lessons).
    pub epsilon: f64,
    /// Fraction of the lesson batch kept as original (attack-free) data;
    /// the rest is adversarial.
    pub clean_fraction: f64,
}

/// An ordered sequence of lessons.
///
/// # Example
///
/// ```
/// use calloc::Curriculum;
///
/// let c = Curriculum::paper();
/// assert_eq!(c.lessons().len(), 10);
/// assert_eq!(c.lessons()[0].phi_percent, 0.0);   // baseline lesson
/// assert_eq!(c.lessons()[9].phi_percent, 100.0); // toughest lesson
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Curriculum {
    lessons: Vec<Lesson>,
}

impl Curriculum {
    /// The paper's 10-lesson schedule: lesson 1 is 0% attacked APs / 100%
    /// original data; lesson 2 starts at ø = 10; ø then rises linearly to
    /// 100 at lesson 10. ε is fixed at 0.1 and the clean fraction decays
    /// from 1.0 to 0.7 (tuned so adversarial exposure does not erode clean
    /// accuracy; see DESIGN.md §4).
    pub fn paper() -> Self {
        Curriculum::linear(10, 0.1)
    }

    /// A linear schedule with `n` lessons and fixed ε.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn linear(n: usize, epsilon: f64) -> Self {
        assert!(n >= 2, "a curriculum needs at least 2 lessons");
        let lessons = (1..=n)
            .map(|i| {
                let phi = if i == 1 {
                    0.0
                } else {
                    // lesson 2 → 10, lesson n → 100
                    10.0 + 90.0 * (i - 2) as f64 / (n - 2).max(1) as f64
                };
                Lesson {
                    index: i,
                    phi_percent: phi,
                    epsilon,
                    clean_fraction: 1.0 - 0.3 * (i - 1) as f64 / (n - 1) as f64,
                }
            })
            .collect();
        Curriculum { lessons }
    }

    /// Builds a curriculum from explicit lessons (used for ablations such
    /// as the no-curriculum variant and custom schedules).
    ///
    /// # Panics
    ///
    /// Panics if `lessons` is empty.
    pub fn from_lessons(lessons: Vec<Lesson>) -> Self {
        assert!(
            !lessons.is_empty(),
            "a curriculum needs at least one lesson"
        );
        Curriculum { lessons }
    }

    /// Borrow the lessons.
    pub fn lessons(&self) -> &[Lesson] {
        &self.lessons
    }

    /// Number of lessons.
    pub fn len(&self) -> usize {
        self.lessons.len()
    }

    /// Whether there are no lessons.
    pub fn is_empty(&self) -> bool {
        self.lessons.is_empty()
    }
}

/// Adaptive-controller parameters (§IV.D).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// ø reduction (percentage points) applied on divergence — the paper
    /// reduces "by steps of two".
    pub phi_step_down: f64,
    /// Maximum retries per lesson before advancing anyway.
    pub max_retries: usize,
    /// Loss increase (relative) that counts as divergence.
    pub divergence_tolerance: f64,
    /// Whether the controller is active at all (`false` reproduces the
    /// static-curriculum ablation).
    pub enabled: bool,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            phi_step_down: 2.0,
            max_retries: 3,
            divergence_tolerance: 0.02,
            enabled: true,
        }
    }
}

/// What happened while training one lesson.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LessonReport {
    /// The lesson as scheduled.
    pub lesson: Lesson,
    /// The ø actually used after adaptive reductions.
    pub effective_phi: f64,
    /// How many times the controller reverted and retried.
    pub retries: usize,
    /// Monitored loss at the end of each attempt.
    pub attempt_losses: Vec<f64>,
    /// Best monitored loss after the lesson.
    pub best_loss: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_curriculum_shape() {
        let c = Curriculum::paper();
        assert_eq!(c.len(), 10);
        let l = c.lessons();
        assert_eq!(l[0].phi_percent, 0.0);
        assert_eq!(l[0].clean_fraction, 1.0);
        assert!((l[1].phi_percent - 10.0).abs() < 1e-9);
        assert_eq!(l[9].phi_percent, 100.0);
        assert!((l[9].clean_fraction - 0.7).abs() < 1e-9);
        // ε fixed at 0.1 throughout (paper §V.A)
        assert!(l.iter().all(|lesson| lesson.epsilon == 0.1));
    }

    #[test]
    fn phi_is_monotonically_increasing() {
        let c = Curriculum::paper();
        for w in c.lessons().windows(2) {
            assert!(w[1].phi_percent >= w[0].phi_percent);
        }
    }

    #[test]
    fn clean_fraction_is_monotonically_decreasing() {
        let c = Curriculum::paper();
        for w in c.lessons().windows(2) {
            assert!(w[1].clean_fraction <= w[0].clean_fraction);
        }
    }

    #[test]
    fn linear_respects_lesson_count() {
        for n in [2, 5, 20] {
            assert_eq!(Curriculum::linear(n, 0.1).len(), n);
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_tiny_curriculum() {
        Curriculum::linear(1, 0.1);
    }

    #[test]
    fn adaptive_defaults_match_paper() {
        let a = AdaptiveConfig::default();
        assert_eq!(a.phi_step_down, 2.0); // "reducing ø by steps of two"
        assert!(a.enabled);
    }
}
