//! Property-based tests of the neural-network stack: gradient linearity,
//! softmax/loss invariants and attention algebra over random inputs.

use calloc_nn::attention::attention_forward;
use calloc_nn::{loss, Dense, Layer, Mode, Sequential};
use calloc_tensor::{Matrix, Rng};
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize, lo: f64, hi: f64) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(lo..hi, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    /// Dense layers are affine: f(x+y) - f(y) == f(x) - f(0).
    #[test]
    fn dense_is_affine(seed in 0u64..500, x in matrix(2, 4, -3.0, 3.0), y in matrix(2, 4, -3.0, 3.0)) {
        let mut rng = Rng::new(seed);
        let d = Dense::xavier(4, 3, &mut rng);
        let zero = Matrix::zeros(2, 4);
        let lhs = d.forward(&x.add(&y)).sub(&d.forward(&y));
        let rhs = d.forward(&x).sub(&d.forward(&zero));
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    /// ReLU is idempotent and non-negative.
    #[test]
    fn relu_is_idempotent(x in matrix(3, 5, -10.0, 10.0)) {
        let relu = Layer::Relu;
        let mut rng = Rng::new(0);
        let (once, _) = relu.forward(&x, Mode::Eval, &mut rng);
        let (twice, _) = relu.forward(&once, Mode::Eval, &mut rng);
        prop_assert_eq!(&once, &twice);
        prop_assert!(once.min() >= 0.0);
    }

    /// Cross-entropy is non-negative and shift-invariant in the logits.
    #[test]
    fn cross_entropy_invariants(logits in matrix(4, 6, -5.0, 5.0), shift in -10.0..10.0f64) {
        let targets = vec![0usize, 2, 4, 5];
        let (l, _) = loss::cross_entropy(&logits, &targets);
        prop_assert!(l >= 0.0);
        let (l2, _) = loss::cross_entropy(&logits.map(|v| v + shift), &targets);
        prop_assert!((l - l2).abs() < 1e-9);
    }

    /// The cross-entropy gradient of the true class is always negative
    /// (pushing its logit up) and each row's gradient sums to zero.
    #[test]
    fn cross_entropy_gradient_structure(logits in matrix(3, 4, -4.0, 4.0)) {
        let targets = vec![1usize, 0, 3];
        let (_, g) = loss::cross_entropy(&logits, &targets);
        for (r, &t) in targets.iter().enumerate() {
            prop_assert!(g.get(r, t) <= 0.0);
            let s: f64 = g.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-12);
        }
    }

    /// MSE is symmetric and zero iff inputs are equal.
    #[test]
    fn mse_symmetry(a in matrix(2, 5, -3.0, 3.0), b in matrix(2, 5, -3.0, 3.0)) {
        let (lab, _) = loss::mse(&a, &b);
        let (lba, _) = loss::mse(&b, &a);
        prop_assert!((lab - lba).abs() < 1e-12);
        prop_assert!(lab >= 0.0);
        let (zero, _) = loss::mse(&a, &a);
        prop_assert_eq!(zero, 0.0);
    }

    /// Attention output stays inside the convex hull of the values
    /// (component-wise bounds).
    #[test]
    fn attention_output_in_value_hull(seed in 0u64..500) {
        let mut rng = Rng::new(seed);
        let q = Matrix::from_fn(3, 4, |_, _| rng.normal(0.0, 1.0));
        let k = Matrix::from_fn(6, 4, |_, _| rng.normal(0.0, 1.0));
        let v = Matrix::from_fn(6, 2, |_, _| rng.uniform(-5.0, 5.0));
        let (out, _) = attention_forward(&q, &k, &v);
        for c in 0..v.cols() {
            let col = v.col(c);
            let lo = col.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = col.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for r in 0..out.rows() {
                prop_assert!(out.get(r, c) >= lo - 1e-9 && out.get(r, c) <= hi + 1e-9);
            }
        }
    }

    /// A Sequential's eval-mode forward is a pure function (no hidden
    /// state): repeated calls agree.
    #[test]
    fn sequential_eval_is_pure(seed in 0u64..500, x in matrix(2, 6, 0.0, 1.0)) {
        let mut rng = Rng::new(seed);
        let net = Sequential::new(vec![
            Layer::Dense(Dense::he(6, 8, &mut rng)),
            Layer::Relu,
            Layer::Dropout { rate: 0.5 },
            Layer::GaussianNoise { std: 0.3 },
            Layer::Dense(Dense::xavier(8, 3, &mut rng)),
        ]);
        prop_assert_eq!(net.infer(&x), net.infer(&x));
    }

    /// Input gradients scale linearly with the loss: scaling grad_out by c
    /// scales every parameter gradient by c (backward is linear).
    #[test]
    fn backward_is_linear_in_upstream_gradient(seed in 0u64..300, c in 0.1..5.0f64) {
        let mut rng = Rng::new(seed);
        let net = Sequential::new(vec![
            Layer::Dense(Dense::he(4, 6, &mut rng)),
            Layer::Relu,
            Layer::Dense(Dense::xavier(6, 2, &mut rng)),
        ]);
        let x = Matrix::from_fn(3, 4, |_, _| rng.normal(0.0, 1.0));
        let (y, caches) = net.forward(&x, Mode::Eval, &mut rng);
        let g = Matrix::from_fn(y.rows(), y.cols(), |_, _| rng.normal(0.0, 1.0));
        let (gx1, _) = net.backward(&caches, &g);
        let (gx2, _) = net.backward(&caches, &g.scale(c));
        prop_assert!(gx2.approx_eq(&gx1.scale(c), 1e-9));
    }
}
