//! Bit-exact binary encoding of trained model state.
//!
//! The trained-model cache (`calloc_eval::cache`) persists every suite
//! member to disk and must restore it **bit-identically** — a cache hit
//! has to be indistinguishable from a fresh train under the determinism
//! contract. These helpers give each model crate a tiny, dependency-free
//! codec with the same discipline as the result store: all `f64`
//! parameters travel as raw IEEE-754 bits (so `-0.0`, subnormals and NaN
//! payloads survive), all lengths are u64 on the wire and checked on
//! decode, and any malformed input surfaces as an error string — never a
//! panic, never a partial model.
//!
//! Model structs own their field layout, so each crate implements its own
//! `state_bytes` / `from_state` pair on top of [`StateWriter`] /
//! [`StateReader`]; this module only ships the primitives plus codecs for
//! the types owned by `calloc_nn` itself ([`Sequential`], [`Layer`],
//! [`Dense`], [`TrainReport`]).

use calloc_tensor::Matrix;

use crate::layer::{Dense, Layer};
use crate::model::Sequential;
use crate::train::TrainReport;

/// Decode failure: a human-readable description of what was malformed.
/// Callers wrap this in their own typed error (the cache maps it to
/// `StoreError::Corrupt`).
pub type StateError = String;

/// Append-only encoder for model state. Scalars are little-endian;
/// `f64` values are written as raw bits.
#[derive(Debug, Default)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// An empty writer.
    pub fn new() -> Self {
        StateWriter::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a usize as a u64 (usize never exceeds u64 on supported
    /// targets).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes an f64 as its raw bit pattern — bit-exact for every value
    /// including `-0.0`, subnormals and NaN payloads.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a matrix as `rows, cols` then row-major raw f64 bits.
    pub fn matrix(&mut self, m: &Matrix) {
        self.usize(m.rows());
        self.usize(m.cols());
        for &v in m.as_slice() {
            self.f64(v);
        }
    }

    /// Writes a length-prefixed slice of raw f64 bits.
    pub fn f64_slice(&mut self, vs: &[f64]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.f64(v);
        }
    }

    /// Writes a length-prefixed slice of usizes (as u64s).
    pub fn usize_slice(&mut self, vs: &[usize]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.usize(v);
        }
    }
}

/// Bounded decoder over an encoded byte slice. Every read checks the
/// remaining length; every length field is validated before allocation,
/// so truncated or corrupt input yields `Err`, never a panic.
#[derive(Debug)]
pub struct StateReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// A reader positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        StateReader { bytes, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Errors unless every byte has been consumed — trailing garbage is
    /// corruption, not padding.
    pub fn finish(self) -> Result<(), StateError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after model state",
                self.bytes.len() - self.pos
            ))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StateError> {
        if self.remaining() < n {
            return Err(format!(
                "state truncated: wanted {n} bytes, {} remain",
                self.remaining()
            ));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, StateError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, StateError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, StateError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a u64 and converts it to usize with an overflow check (on
    /// 32-bit targets an oversized value errors instead of wrapping).
    pub fn usize(&mut self) -> Result<usize, StateError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| format!("length {v} overflows usize on this target"))
    }

    /// Reads a bool byte, rejecting values other than 0 and 1.
    pub fn bool(&mut self) -> Result<bool, StateError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(format!("invalid bool byte {b}")),
        }
    }

    /// Reads an f64 from its raw bit pattern.
    pub fn f64(&mut self) -> Result<f64, StateError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, StateError> {
        let len = self.usize()?;
        if len > self.remaining() {
            return Err(format!(
                "string length {len} exceeds {} remaining bytes",
                self.remaining()
            ));
        }
        String::from_utf8(self.take(len)?.to_vec()).map_err(|e| format!("invalid UTF-8: {e}"))
    }

    /// Reads a matrix written by [`StateWriter::matrix`].
    pub fn matrix(&mut self) -> Result<Matrix, StateError> {
        let rows = self.usize()?;
        let cols = self.usize()?;
        let cells = rows
            .checked_mul(cols)
            .ok_or_else(|| format!("matrix shape {rows}x{cols} overflows"))?;
        if cells.checked_mul(8).is_none_or(|b| b > self.remaining()) {
            return Err(format!(
                "matrix shape {rows}x{cols} exceeds {} remaining bytes",
                self.remaining()
            ));
        }
        let mut data = Vec::with_capacity(cells);
        for _ in 0..cells {
            data.push(self.f64()?);
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }

    /// Reads a length-prefixed usize vector written by
    /// [`StateWriter::usize_slice`].
    pub fn usize_vec(&mut self) -> Result<Vec<usize>, StateError> {
        let len = self.usize()?;
        if len.checked_mul(8).is_none_or(|b| b > self.remaining()) {
            return Err(format!(
                "usize vec length {len} exceeds {} remaining bytes",
                self.remaining()
            ));
        }
        let mut vs = Vec::with_capacity(len);
        for _ in 0..len {
            vs.push(self.usize()?);
        }
        Ok(vs)
    }

    /// Reads a length-prefixed f64 vector written by
    /// [`StateWriter::f64_slice`].
    pub fn f64_vec(&mut self) -> Result<Vec<f64>, StateError> {
        let len = self.usize()?;
        if len.checked_mul(8).is_none_or(|b| b > self.remaining()) {
            return Err(format!(
                "f64 vec length {len} exceeds {} remaining bytes",
                self.remaining()
            ));
        }
        let mut vs = Vec::with_capacity(len);
        for _ in 0..len {
            vs.push(self.f64()?);
        }
        Ok(vs)
    }
}

// Layer tag bytes. The layer set is closed (enum in layer.rs); adding a
// variant means adding a tag here and bumping the cache format version.
const TAG_DENSE: u8 = 0;
const TAG_RELU: u8 = 1;
const TAG_SIGMOID: u8 = 2;
const TAG_TANH: u8 = 3;
const TAG_DROPOUT: u8 = 4;
const TAG_GAUSSIAN_NOISE: u8 = 5;

/// Encodes a [`Dense`] layer (weights then bias).
pub fn write_dense(w: &mut StateWriter, d: &Dense) {
    w.matrix(&d.w);
    w.matrix(&d.b);
}

/// Decodes a [`Dense`] layer written by [`write_dense`].
pub fn read_dense(r: &mut StateReader) -> Result<Dense, StateError> {
    let w = r.matrix()?;
    let b = r.matrix()?;
    if b.rows() != 1 || b.cols() != w.cols() {
        return Err(format!(
            "dense bias shape {:?} does not match weight shape {:?}",
            b.shape(),
            w.shape()
        ));
    }
    Ok(Dense { w, b })
}

/// Encodes one [`Layer`] as a tag byte plus its parameters.
pub fn write_layer(w: &mut StateWriter, layer: &Layer) {
    match layer {
        Layer::Dense(d) => {
            w.u8(TAG_DENSE);
            write_dense(w, d);
        }
        Layer::Relu => w.u8(TAG_RELU),
        Layer::Sigmoid => w.u8(TAG_SIGMOID),
        Layer::Tanh => w.u8(TAG_TANH),
        Layer::Dropout { rate } => {
            w.u8(TAG_DROPOUT);
            w.f64(*rate);
        }
        Layer::GaussianNoise { std } => {
            w.u8(TAG_GAUSSIAN_NOISE);
            w.f64(*std);
        }
    }
}

/// Decodes one [`Layer`] written by [`write_layer`].
pub fn read_layer(r: &mut StateReader) -> Result<Layer, StateError> {
    match r.u8()? {
        TAG_DENSE => Ok(Layer::Dense(read_dense(r)?)),
        TAG_RELU => Ok(Layer::Relu),
        TAG_SIGMOID => Ok(Layer::Sigmoid),
        TAG_TANH => Ok(Layer::Tanh),
        TAG_DROPOUT => Ok(Layer::Dropout { rate: r.f64()? }),
        TAG_GAUSSIAN_NOISE => Ok(Layer::GaussianNoise { std: r.f64()? }),
        tag => Err(format!("unknown layer tag {tag}")),
    }
}

/// Encodes a [`Sequential`] network (layer count then each layer).
pub fn write_sequential(w: &mut StateWriter, net: &Sequential) {
    w.usize(net.layers().len());
    for layer in net.layers() {
        write_layer(w, layer);
    }
}

/// Decodes a [`Sequential`] written by [`write_sequential`].
pub fn read_sequential(r: &mut StateReader) -> Result<Sequential, StateError> {
    let n = r.usize()?;
    // Each layer costs at least one tag byte, so a length beyond the
    // remaining bytes is corrupt — checked before the allocation.
    if n > r.remaining() {
        return Err(format!(
            "layer count {n} exceeds {} remaining bytes",
            r.remaining()
        ));
    }
    let mut layers = Vec::with_capacity(n);
    for _ in 0..n {
        layers.push(read_layer(r)?);
    }
    Ok(Sequential::new(layers))
}

/// Encodes a [`TrainReport`] (loss history plus early-stop summary).
pub fn write_train_report(w: &mut StateWriter, report: &TrainReport) {
    w.f64_slice(&report.loss_history);
    w.f64(report.best_loss);
    w.usize(report.best_epoch);
    w.bool(report.stopped_early);
}

/// Decodes a [`TrainReport`] written by [`write_train_report`].
pub fn read_train_report(r: &mut StateReader) -> Result<TrainReport, StateError> {
    Ok(TrainReport {
        loss_history: r.f64_vec()?,
        best_loss: r.f64()?,
        best_epoch: r.usize()?,
        stopped_early: r.bool()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use calloc_tensor::Rng;

    fn tricky_values() -> Vec<f64> {
        vec![
            0.0,
            -0.0,
            1.5,
            -3.25,
            f64::MIN_POSITIVE / 4.0, // subnormal
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::from_bits(0x7ff8_0000_dead_beef), // NaN with payload
        ]
    }

    #[test]
    fn scalars_round_trip() {
        let mut w = StateWriter::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX);
        w.usize(42);
        w.bool(true);
        w.bool(false);
        w.string("héllo");
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.usize().unwrap(), 42);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.string().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn f64_bits_round_trip_exactly() {
        let mut w = StateWriter::new();
        for &v in &tricky_values() {
            w.f64(v);
        }
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        for &v in &tricky_values() {
            assert_eq!(r.f64().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn matrix_round_trips_tricky_values() {
        let vals = tricky_values();
        let m = Matrix::from_fn(2, 4, |r, c| vals[r * 4 + c]);
        let mut w = StateWriter::new();
        w.matrix(&m);
        let bytes = w.into_bytes();
        let got = StateReader::new(&bytes).matrix().unwrap();
        assert_eq!(got.shape(), (2, 4));
        for (a, b) in got.as_slice().iter().zip(m.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn sequential_round_trips() {
        let mut rng = Rng::new(11);
        let net = Sequential::new(vec![
            Layer::Dense(Dense::he(5, 9, &mut rng)),
            Layer::Relu,
            Layer::Dropout { rate: 0.25 },
            Layer::GaussianNoise { std: 0.1 },
            Layer::Dense(Dense::xavier(9, 3, &mut rng)),
            Layer::Sigmoid,
            Layer::Tanh,
        ]);
        let mut w = StateWriter::new();
        write_sequential(&mut w, &net);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        let got = read_sequential(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(got, net);
    }

    #[test]
    fn train_report_round_trips() {
        let report = TrainReport {
            loss_history: tricky_values(),
            best_loss: -0.0,
            best_epoch: 3,
            stopped_early: true,
        };
        let mut w = StateWriter::new();
        write_train_report(&mut w, &report);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        let got = read_train_report(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(got.best_epoch, report.best_epoch);
        assert_eq!(got.stopped_early, report.stopped_early);
        assert_eq!(got.best_loss.to_bits(), report.best_loss.to_bits());
        assert_eq!(got.loss_history.len(), report.loss_history.len());
        for (a, b) in got.loss_history.iter().zip(&report.loss_history) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn truncation_and_garbage_error_not_panic() {
        let mut w = StateWriter::new();
        let mut rng = Rng::new(2);
        write_sequential(
            &mut w,
            &Sequential::new(vec![Layer::Dense(Dense::he(3, 4, &mut rng)), Layer::Relu]),
        );
        let bytes = w.into_bytes();
        for end in 0..bytes.len() {
            let mut r = StateReader::new(&bytes[..end]);
            assert!(read_sequential(&mut r).is_err(), "prefix {end} decoded");
        }
        // Unknown layer tag.
        let mut w = StateWriter::new();
        w.usize(1);
        w.u8(99);
        let bytes = w.into_bytes();
        assert!(read_sequential(&mut StateReader::new(&bytes)).is_err());
        // Oversized length fields error instead of allocating or wrapping.
        let mut w = StateWriter::new();
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        assert!(StateReader::new(&bytes).string().is_err());
        assert!(StateReader::new(&bytes).f64_vec().is_err());
        // Bad bool byte.
        assert!(StateReader::new(&[2]).bool().is_err());
        // Trailing garbage fails finish().
        let r = StateReader::new(&[0]);
        assert!(r.finish().is_err());
    }

    #[test]
    fn dense_bias_shape_is_validated() {
        let mut w = StateWriter::new();
        w.matrix(&Matrix::zeros(3, 4)); // weights 3x4
        w.matrix(&Matrix::zeros(2, 4)); // bias must be 1x4
        let bytes = w.into_bytes();
        assert!(read_dense(&mut StateReader::new(&bytes)).is_err());
    }
}
