//! Loss functions with analytic gradients.

use calloc_tensor::Matrix;

/// Softmax cross-entropy over integer class targets.
///
/// Returns the mean loss over the batch and `dL/dlogits` (already divided by
/// the batch size, so it can be fed straight into backward).
///
/// # Panics
///
/// Panics if `targets.len() != logits.rows()` or a target index is out of
/// range.
///
/// # Example
///
/// ```
/// use calloc_nn::loss::cross_entropy;
/// use calloc_tensor::Matrix;
///
/// // Perfectly confident, correct prediction → loss near zero.
/// let logits = Matrix::from_rows(&[vec![20.0, 0.0]]);
/// let (l, _) = cross_entropy(&logits, &[0]);
/// assert!(l < 1e-6);
/// ```
pub fn cross_entropy(logits: &Matrix, targets: &[usize]) -> (f64, Matrix) {
    assert_eq!(
        targets.len(),
        logits.rows(),
        "targets length {} vs batch size {}",
        targets.len(),
        logits.rows()
    );
    let n = logits.rows() as f64;
    let log_probs = logits.log_softmax_rows();
    let mut loss = 0.0;
    for (r, &t) in targets.iter().enumerate() {
        assert!(
            t < logits.cols(),
            "target {t} out of range for {} classes",
            logits.cols()
        );
        loss -= log_probs.get(r, t);
    }
    loss /= n;

    // dL/dlogits = (softmax - onehot) / n
    let mut grad = log_probs.map(f64::exp);
    for (r, &t) in targets.iter().enumerate() {
        grad.set(r, t, grad.get(r, t) - 1.0);
    }
    (loss, grad.scale(1.0 / n))
}

/// Mean squared error between a prediction and a target matrix.
///
/// Returns the mean-over-all-elements loss and `dL/dpred`.
///
/// # Panics
///
/// Panics on shape mismatch.
///
/// # Example
///
/// ```
/// use calloc_nn::loss::mse;
/// use calloc_tensor::Matrix;
///
/// let pred = Matrix::row_vector(&[1.0, 2.0]);
/// let target = Matrix::row_vector(&[1.0, 4.0]);
/// let (l, g) = mse(&pred, &target);
/// assert!((l - 2.0).abs() < 1e-12); // ((0)^2 + (2)^2) / 2
/// assert_eq!(g.get(0, 0), 0.0);
/// ```
pub fn mse(pred: &Matrix, target: &Matrix) -> (f64, Matrix) {
    assert_eq!(
        pred.shape(),
        target.shape(),
        "mse shape mismatch {:?} vs {:?}",
        pred.shape(),
        target.shape()
    );
    let n = pred.len().max(1) as f64;
    let diff = pred.sub(target);
    let loss = diff.as_slice().iter().map(|d| d * d).sum::<f64>() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

/// Negative log-likelihood of already-log-softmaxed probabilities. Used by
/// models that keep log-probabilities around (e.g. the GPC baseline).
///
/// # Panics
///
/// Panics if lengths mismatch or a target is out of range.
pub fn nll_from_log_probs(log_probs: &Matrix, targets: &[usize]) -> f64 {
    assert_eq!(targets.len(), log_probs.rows());
    let mut loss = 0.0;
    for (r, &t) in targets.iter().enumerate() {
        assert!(t < log_probs.cols());
        loss -= log_probs.get(r, t);
    }
    loss / targets.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use calloc_tensor::Rng;

    #[test]
    fn cross_entropy_uniform_logits() {
        // Uniform logits over k classes → loss = ln(k).
        let logits = Matrix::zeros(4, 8);
        let (l, _) = cross_entropy(&logits, &[0, 1, 2, 3]);
        assert!((l - (8.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_diff() {
        let mut rng = Rng::new(1);
        let logits = Matrix::from_fn(3, 5, |_, _| rng.normal(0.0, 2.0));
        let targets = vec![2usize, 0, 4];
        let (_, grad) = cross_entropy(&logits, &targets);
        let eps = 1e-6;
        for r in 0..3 {
            for c in 0..5 {
                let mut lp = logits.clone();
                lp.set(r, c, logits.get(r, c) + eps);
                let mut lm = logits.clone();
                lm.set(r, c, logits.get(r, c) - eps);
                let (fp, _) = cross_entropy(&lp, &targets);
                let (fm, _) = cross_entropy(&lm, &targets);
                let fd = (fp - fm) / (2.0 * eps);
                assert!(
                    (grad.get(r, c) - fd).abs() < 1e-6,
                    "grad[{r}][{c}] {} vs {fd}",
                    grad.get(r, c)
                );
            }
        }
    }

    #[test]
    fn cross_entropy_grad_rows_sum_to_zero() {
        let mut rng = Rng::new(2);
        let logits = Matrix::from_fn(6, 10, |_, _| rng.normal(0.0, 1.0));
        let targets: Vec<usize> = (0..6).collect();
        let (_, grad) = cross_entropy(&logits, &targets);
        for r in 0..6 {
            let s: f64 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-12);
        }
    }

    #[test]
    fn mse_gradient_matches_finite_diff() {
        let mut rng = Rng::new(3);
        let pred = Matrix::from_fn(2, 4, |_, _| rng.normal(0.0, 1.0));
        let target = Matrix::from_fn(2, 4, |_, _| rng.normal(0.0, 1.0));
        let (_, grad) = mse(&pred, &target);
        let eps = 1e-6;
        for r in 0..2 {
            for c in 0..4 {
                let mut pp = pred.clone();
                pp.set(r, c, pred.get(r, c) + eps);
                let mut pm = pred.clone();
                pm.set(r, c, pred.get(r, c) - eps);
                let fd = (mse(&pp, &target).0 - mse(&pm, &target).0) / (2.0 * eps);
                assert!((grad.get(r, c) - fd).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn mse_of_identical_is_zero() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0, 3.0]]);
        let (l, g) = mse(&a, &a);
        assert_eq!(l, 0.0);
        assert!(g.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn nll_matches_cross_entropy() {
        let mut rng = Rng::new(4);
        let logits = Matrix::from_fn(3, 4, |_, _| rng.normal(0.0, 1.0));
        let targets = vec![1usize, 3, 0];
        let (ce, _) = cross_entropy(&logits, &targets);
        let nll = nll_from_log_probs(&logits.log_softmax_rows(), &targets);
        assert!((ce - nll).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cross_entropy_target_out_of_range_panics() {
        cross_entropy(&Matrix::zeros(1, 3), &[3]);
    }
}
