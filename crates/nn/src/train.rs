//! Mini-batch training loop with early stopping and best-weight snapshots.
//!
//! The adaptive curriculum of CALLOC (crate `calloc`) layers its own control
//! logic on top of this trainer; the baselines use it directly.

use calloc_tensor::{Matrix, Rng};

use crate::layer::Mode;
use crate::loss;
use crate::model::Sequential;
use crate::optim::Optimizer;

/// Early-stopping policy: stop after `patience` epochs without at least
/// `min_delta` improvement of the monitored loss, and restore the best
/// weights seen.
#[derive(Debug, Clone, Copy)]
pub struct EarlyStopping {
    /// Number of non-improving epochs tolerated before stopping.
    pub patience: usize,
    /// Minimum loss decrease that counts as an improvement.
    pub min_delta: f64,
}

impl Default for EarlyStopping {
    fn default() -> Self {
        EarlyStopping {
            patience: 8,
            min_delta: 1e-5,
        }
    }
}

/// Hyper-parameters of a training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Maximum number of epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Optional early stopping on the validation (or training) loss.
    pub early_stopping: Option<EarlyStopping>,
    /// Seed for shuffling and stochastic layers.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 60,
            batch_size: 32,
            early_stopping: Some(EarlyStopping::default()),
            seed: 0,
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Monitored loss per epoch (validation if provided, else training).
    pub loss_history: Vec<f64>,
    /// Best monitored loss.
    pub best_loss: f64,
    /// Epoch index (0-based) of the best loss.
    pub best_epoch: usize,
    /// Whether early stopping triggered before `epochs` elapsed.
    pub stopped_early: bool,
}

/// Classification trainer for [`Sequential`] networks.
///
/// # Example
///
/// ```
/// use calloc_nn::{Dense, Layer, Sequential, Trainer, TrainConfig, Adam};
/// use calloc_tensor::{Matrix, Rng};
///
/// // Learn a trivially separable 2-class problem.
/// let mut rng = Rng::new(1);
/// let x = Matrix::from_fn(40, 2, |r, _| if r < 20 { rng.normal(-2.0, 0.3) } else { rng.normal(2.0, 0.3) });
/// let y: Vec<usize> = (0..40).map(|r| usize::from(r >= 20)).collect();
/// let mut net = Sequential::new(vec![
///     Layer::Dense(Dense::xavier(2, 8, &mut rng)),
///     Layer::Relu,
///     Layer::Dense(Dense::xavier(8, 2, &mut rng)),
/// ]);
/// let mut trainer = Trainer::new(Adam::new(0.01), TrainConfig { epochs: 30, ..Default::default() });
/// let report = trainer.fit(&mut net, &x, &y, None);
/// assert!(report.best_loss < 0.2);
/// ```
#[derive(Debug)]
pub struct Trainer<O: Optimizer> {
    optimizer: O,
    config: TrainConfig,
}

impl<O: Optimizer> Trainer<O> {
    /// Creates a trainer from an optimizer and a configuration.
    pub fn new(optimizer: O, config: TrainConfig) -> Self {
        Trainer { optimizer, config }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `net` on `(x, targets)` with cross-entropy loss.
    ///
    /// If `validation` is provided, the validation loss is monitored for
    /// early stopping and best-weight selection, otherwise the training
    /// loss is used. On return, `net` holds the best weights seen.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != targets.len()` or `x` is empty.
    pub fn fit(
        &mut self,
        net: &mut Sequential,
        x: &Matrix,
        targets: &[usize],
        validation: Option<(&Matrix, &[usize])>,
    ) -> TrainReport {
        assert_eq!(x.rows(), targets.len(), "sample/target count mismatch");
        assert!(x.rows() > 0, "cannot train on an empty dataset");
        let mut rng = Rng::new(self.config.seed);
        self.optimizer.reset();

        let mut history = Vec::with_capacity(self.config.epochs);
        let mut best_loss = f64::INFINITY;
        let mut best_epoch = 0;
        let mut best_weights = net.clone();
        let mut bad_epochs = 0;
        let mut stopped_early = false;

        for epoch in 0..self.config.epochs {
            let order = rng.permutation(x.rows());
            let mut train_loss = 0.0;
            let mut batches = 0.0f64;
            for chunk in order.chunks(self.config.batch_size.max(1)) {
                let bx = x.select_rows(chunk);
                let by: Vec<usize> = chunk.iter().map(|&i| targets[i]).collect();
                let (logits, caches) = net.forward(&bx, Mode::Train, &mut rng);
                let (l, grad_logits) = loss::cross_entropy(&logits, &by);
                let (_, grads) = net.backward(&caches, &grad_logits);
                self.optimizer.step(net, &grads);
                train_loss += l;
                batches += 1.0;
            }
            train_loss /= batches.max(1.0);

            let monitored = match validation {
                Some((vx, vy)) => {
                    let logits = net.infer(vx);
                    loss::cross_entropy(&logits, vy).0
                }
                None => train_loss,
            };
            history.push(monitored);

            let es = self.config.early_stopping;
            let improved = monitored < best_loss - es.map_or(0.0, |e| e.min_delta);
            if monitored < best_loss {
                best_loss = monitored;
                best_epoch = epoch;
                best_weights = net.clone();
            }
            if let Some(es) = es {
                if improved {
                    bad_epochs = 0;
                } else {
                    bad_epochs += 1;
                    if bad_epochs > es.patience {
                        stopped_early = true;
                        break;
                    }
                }
            }
        }

        *net = best_weights;
        TrainReport {
            loss_history: history,
            best_loss,
            best_epoch,
            stopped_early,
        }
    }

    /// Trains `net` as a regressor / autoencoder on `(x, target)` with MSE
    /// loss (used by the SANGRIA and WiDeep autoencoder pre-training).
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ or `x` is empty.
    pub fn fit_regression(
        &mut self,
        net: &mut Sequential,
        x: &Matrix,
        target: &Matrix,
    ) -> TrainReport {
        assert_eq!(x.rows(), target.rows(), "sample/target count mismatch");
        assert!(x.rows() > 0, "cannot train on an empty dataset");
        let mut rng = Rng::new(self.config.seed);
        self.optimizer.reset();

        let mut history = Vec::with_capacity(self.config.epochs);
        let mut best_loss = f64::INFINITY;
        let mut best_epoch = 0;
        let mut best_weights = net.clone();
        let mut bad_epochs = 0;
        let mut stopped_early = false;

        for epoch in 0..self.config.epochs {
            let order = rng.permutation(x.rows());
            let mut train_loss = 0.0;
            let mut batches = 0.0f64;
            for chunk in order.chunks(self.config.batch_size.max(1)) {
                let bx = x.select_rows(chunk);
                let bt = target.select_rows(chunk);
                let (pred, caches) = net.forward(&bx, Mode::Train, &mut rng);
                let (l, grad) = loss::mse(&pred, &bt);
                let (_, grads) = net.backward(&caches, &grad);
                self.optimizer.step(net, &grads);
                train_loss += l;
                batches += 1.0;
            }
            train_loss /= batches.max(1.0);
            history.push(train_loss);

            let es = self.config.early_stopping;
            let improved = train_loss < best_loss - es.map_or(0.0, |e| e.min_delta);
            if train_loss < best_loss {
                best_loss = train_loss;
                best_epoch = epoch;
                best_weights = net.clone();
            }
            if let Some(es) = es {
                if improved {
                    bad_epochs = 0;
                } else {
                    bad_epochs += 1;
                    if bad_epochs > es.patience {
                        stopped_early = true;
                        break;
                    }
                }
            }
        }

        *net = best_weights;
        TrainReport {
            loss_history: history,
            best_loss,
            best_epoch,
            stopped_early,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Dense, Layer};
    use crate::metrics::accuracy;
    use crate::model::DifferentiableModel;
    use crate::optim::Adam;

    /// Two well-separated Gaussian blobs.
    fn blobs(n_per: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = Rng::new(seed);
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for class in 0..2usize {
            let center = if class == 0 { -2.0 } else { 2.0 };
            for _ in 0..n_per {
                rows.push(vec![rng.normal(center, 0.4), rng.normal(-center, 0.4)]);
                ys.push(class);
            }
        }
        (Matrix::from_rows(&rows), ys)
    }

    fn two_layer_net(seed: u64) -> Sequential {
        let mut rng = Rng::new(seed);
        Sequential::new(vec![
            Layer::Dense(Dense::he(2, 16, &mut rng)),
            Layer::Relu,
            Layer::Dense(Dense::xavier(16, 2, &mut rng)),
        ])
    }

    #[test]
    fn fit_separates_blobs() {
        let (x, y) = blobs(30, 1);
        let mut net = two_layer_net(2);
        let mut trainer = Trainer::new(
            Adam::new(0.01),
            TrainConfig {
                epochs: 40,
                batch_size: 16,
                ..Default::default()
            },
        );
        let report = trainer.fit(&mut net, &x, &y, None);
        assert!(report.best_loss < 0.1, "best loss {}", report.best_loss);
        let acc = accuracy(&net.predict(&x), &y);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn early_stopping_restores_best_weights() {
        let (x, y) = blobs(20, 3);
        let mut net = two_layer_net(4);
        let mut trainer = Trainer::new(
            Adam::new(0.05),
            TrainConfig {
                epochs: 200,
                batch_size: 8,
                early_stopping: Some(EarlyStopping {
                    patience: 3,
                    min_delta: 1e-9,
                }),
                seed: 1,
            },
        );
        let report = trainer.fit(&mut net, &x, &y, Some((&x, &y)));
        // Monitored loss of the returned network must equal the best loss.
        let logits = net.infer(&x);
        let (l, _) = loss::cross_entropy(&logits, &y);
        assert!((l - report.best_loss).abs() < 1e-9);
    }

    #[test]
    fn validation_monitoring_is_used() {
        let (x, y) = blobs(20, 5);
        let (vx, vy) = blobs(10, 6);
        let mut net = two_layer_net(7);
        let mut trainer = Trainer::new(Adam::new(0.01), TrainConfig::default());
        let report = trainer.fit(&mut net, &x, &y, Some((&vx, &vy)));
        assert!(!report.loss_history.is_empty());
        // history records validation loss, which is achievable < ln(2)
        assert!(report.best_loss < (2.0f64).ln());
    }

    #[test]
    fn fit_regression_learns_identity() {
        let mut rng = Rng::new(8);
        let x = Matrix::from_fn(64, 4, |_, _| rng.uniform(0.0, 1.0));
        let mut net = Sequential::new(vec![
            Layer::Dense(Dense::xavier(4, 8, &mut rng)),
            Layer::Tanh,
            Layer::Dense(Dense::xavier(8, 4, &mut rng)),
        ]);
        let mut trainer = Trainer::new(
            Adam::new(0.02),
            TrainConfig {
                epochs: 150,
                batch_size: 16,
                early_stopping: None,
                seed: 2,
            },
        );
        let report = trainer.fit_regression(&mut net, &x, &x);
        assert!(report.best_loss < 0.01, "best {}", report.best_loss);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn fit_rejects_mismatched_targets() {
        let mut net = two_layer_net(9);
        let mut trainer = Trainer::new(Adam::new(0.01), TrainConfig::default());
        trainer.fit(&mut net, &Matrix::zeros(4, 2), &[0, 1], None);
    }

    #[test]
    fn training_is_deterministic_for_fixed_seed() {
        let (x, y) = blobs(10, 10);
        let run = |seed: u64| {
            let mut net = two_layer_net(11);
            let mut trainer = Trainer::new(
                Adam::new(0.01),
                TrainConfig {
                    epochs: 5,
                    seed,
                    ..Default::default()
                },
            );
            trainer.fit(&mut net, &x, &y, None);
            net
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
