//! Sequential container and the differentiable-model abstraction used by
//! the attack crate.

use calloc_tensor::{Matrix, Rng};
use serde::{Deserialize, Serialize};

use crate::layer::{Cache, Layer, LayerGrad, Mode};
use crate::loss;

/// A feed-forward stack of [`Layer`]s.
///
/// # Example
///
/// ```
/// use calloc_nn::{Dense, Layer, Sequential, Mode};
/// use calloc_tensor::{Matrix, Rng};
///
/// let mut rng = Rng::new(3);
/// let net = Sequential::new(vec![
///     Layer::Dense(Dense::he(8, 32, &mut rng)),
///     Layer::Relu,
///     Layer::Dense(Dense::xavier(32, 5, &mut rng)),
/// ]);
/// assert_eq!(net.parameter_count(), 8 * 32 + 32 + 32 * 5 + 5);
/// let x = Matrix::zeros(1, 8);
/// let (y, _) = net.forward(&x, Mode::Eval, &mut rng);
/// assert_eq!(y.shape(), (1, 5));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sequential {
    layers: Vec<Layer>,
}

impl Sequential {
    /// Creates a network from an ordered list of layers.
    pub fn new(layers: Vec<Layer>) -> Self {
        Sequential { layers }
    }

    /// Borrow the layer list.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutably borrow the layer list (used by optimizers).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(Layer::parameter_count).sum()
    }

    /// Approximate serialized size in kilobytes assuming 4-byte (f32)
    /// storage, matching how the paper reports its 254.84 kB model.
    pub fn size_kb_f32(&self) -> f64 {
        self.parameter_count() as f64 * 4.0 / 1000.0
    }

    /// Forward pass through all layers; returns the output and the caches
    /// needed for [`Sequential::backward`].
    pub fn forward(&self, x: &Matrix, mode: Mode, rng: &mut Rng) -> (Matrix, Vec<Cache>) {
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut h = x.clone();
        for layer in &self.layers {
            let (out, cache) = layer.forward(&h, mode, rng);
            caches.push(cache);
            h = out;
        }
        (h, caches)
    }

    /// Convenience eval-mode forward that discards caches.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        // Eval mode never consults the RNG; any seed works.
        let mut rng = Rng::new(0);
        self.forward(x, Mode::Eval, &mut rng).0
    }

    /// Backward pass. Consumes the caches from a prior forward call and the
    /// gradient of the loss with respect to the network output; returns the
    /// gradient with respect to the network **input** plus per-layer
    /// parameter gradients (aligned with the layer order).
    ///
    /// # Panics
    ///
    /// Panics if `caches.len()` does not match the number of layers.
    pub fn backward(&self, caches: &[Cache], grad_out: &Matrix) -> (Matrix, Vec<LayerGrad>) {
        assert_eq!(
            caches.len(),
            self.layers.len(),
            "cache count {} does not match layer count {}",
            caches.len(),
            self.layers.len()
        );
        let mut grad = grad_out.clone();
        let mut grads = vec![LayerGrad::None; self.layers.len()];
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let (gx, g) = layer.backward(&caches[i], &grad);
            grads[i] = g;
            grad = gx;
        }
        (grad, grads)
    }
}

/// A classifier that exposes the gradient of its training loss with respect
/// to its **input** — the contract required by white-box adversarial attacks
/// (FGSM, PGD, MIM all consume exactly this).
///
/// Implementations must be deterministic in evaluation mode so that attack
/// crafting is reproducible, and (like [`Localizer`]) thread-safe so the
/// sweep engine can share one gradient source across evaluation workers.
pub trait DifferentiableModel: Send + Sync {
    /// Number of output classes.
    fn num_classes(&self) -> usize;

    /// Class scores (higher = more likely); shape `batch` x `num_classes`.
    fn logits(&self, x: &Matrix) -> Matrix;

    /// Mean cross-entropy loss over the batch and its gradient with respect
    /// to `x`.
    fn loss_and_input_grad(&self, x: &Matrix, targets: &[usize]) -> (f64, Matrix);

    /// Predicted class per row.
    fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.logits(x).argmax_rows()
    }
}

/// A trained indoor-localization model: anything that maps a batch of
/// normalized RSS fingerprints to RP class predictions.
///
/// This is the contract the evaluation harness runs experiments against.
/// Models that expose white-box gradients (for first-party adversarial
/// attacks) return themselves from
/// [`Localizer::as_differentiable`]; models that are not differentiable
/// (e.g. tree ensembles) return `None` and are attacked by *transfer* from
/// a surrogate model.
///
/// `Send + Sync` is a supertrait so trained models can be produced on
/// worker threads and evaluated from parallel harnesses (all implementors
/// are plain owned data). Prediction takes `&self`, so sharing across
/// threads is safe by construction.
pub trait Localizer: Send + Sync {
    /// Framework name as used in the paper's figures (e.g. `"CALLOC"`).
    fn name(&self) -> &str;

    /// Predicted RP class per fingerprint row.
    fn predict_classes(&self, x: &Matrix) -> Vec<usize>;

    /// White-box gradient access, when the model is differentiable.
    fn as_differentiable(&self) -> Option<&dyn DifferentiableModel> {
        None
    }

    /// Bit-exact encoding of this model's trained state (see
    /// [`crate::state`]), or `None` if the model is not persistable. The
    /// trained-model cache skips models that return `None`; models that
    /// return `Some` must restore **bit-identically** through their
    /// crate's `from_state` counterpart, so a cache hit is
    /// indistinguishable from a fresh train.
    fn state(&self) -> Option<Vec<u8>> {
        None
    }
}

impl DifferentiableModel for Sequential {
    fn num_classes(&self) -> usize {
        self.layers
            .iter()
            .rev()
            .find_map(|l| match l {
                Layer::Dense(d) => Some(d.out_dim()),
                _ => None,
            })
            .unwrap_or(0)
    }

    fn logits(&self, x: &Matrix) -> Matrix {
        self.infer(x)
    }

    fn loss_and_input_grad(&self, x: &Matrix, targets: &[usize]) -> (f64, Matrix) {
        let mut rng = Rng::new(0);
        let (logits, caches) = self.forward(x, Mode::Eval, &mut rng);
        let (loss_value, grad_logits) = loss::cross_entropy(&logits, targets);
        let (grad_x, _) = self.backward(&caches, &grad_logits);
        (loss_value, grad_x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Dense;

    fn small_net(seed: u64) -> Sequential {
        let mut rng = Rng::new(seed);
        Sequential::new(vec![
            Layer::Dense(Dense::he(6, 12, &mut rng)),
            Layer::Relu,
            Layer::Dense(Dense::xavier(12, 4, &mut rng)),
        ])
    }

    #[test]
    fn forward_output_shape() {
        let net = small_net(1);
        let x = Matrix::zeros(7, 6);
        assert_eq!(net.infer(&x).shape(), (7, 4));
    }

    #[test]
    fn parameter_count_sums_layers() {
        let net = small_net(2);
        assert_eq!(net.parameter_count(), 6 * 12 + 12 + 12 * 4 + 4);
    }

    #[test]
    fn num_classes_reads_last_dense() {
        assert_eq!(small_net(3).num_classes(), 4);
    }

    #[test]
    fn input_gradient_matches_finite_diff() {
        let net = small_net(4);
        let mut rng = Rng::new(5);
        let x = Matrix::from_fn(3, 6, |_, _| rng.normal(0.0, 1.0));
        let targets = vec![0usize, 2, 3];
        let (_, grad) = net.loss_and_input_grad(&x, &targets);
        let eps = 1e-5;
        for r in 0..3 {
            for c in 0..6 {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let fp = net.loss_and_input_grad(&xp, &targets).0;
                let fm = net.loss_and_input_grad(&xm, &targets).0;
                let fd = (fp - fm) / (2.0 * eps);
                assert!(
                    (grad.get(r, c) - fd).abs() < 1e-5,
                    "grad[{r}][{c}] {} vs {fd}",
                    grad.get(r, c)
                );
            }
        }
    }

    #[test]
    fn eval_forward_is_deterministic() {
        let net = Sequential::new(vec![
            Layer::Dropout { rate: 0.5 },
            Layer::GaussianNoise { std: 0.3 },
        ]);
        let x = Matrix::filled(2, 3, 1.0);
        assert_eq!(net.infer(&x), x);
        assert_eq!(net.infer(&x), net.infer(&x));
    }

    #[test]
    fn backward_rejects_wrong_cache_count() {
        let net = small_net(6);
        let x = Matrix::zeros(1, 6);
        let mut rng = Rng::new(0);
        let (y, mut caches) = net.forward(&x, Mode::Eval, &mut rng);
        caches.pop();
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| net.backward(&caches, &y)));
        assert!(result.is_err());
    }

    #[test]
    fn predict_matches_argmax_of_logits() {
        let net = small_net(7);
        let mut rng = Rng::new(8);
        let x = Matrix::from_fn(5, 6, |_, _| rng.normal(0.0, 1.0));
        assert_eq!(net.predict(&x), net.logits(&x).argmax_rows());
    }
}
