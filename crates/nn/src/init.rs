//! Weight initialization schemes.

use calloc_tensor::{Matrix, Rng};

/// Xavier/Glorot uniform initialization for a `fan_in`-by-`fan_out` weight
/// matrix. Appropriate for sigmoid/tanh/linear layers and the attention
/// projections.
///
/// # Example
///
/// ```
/// use calloc_nn::xavier_init;
/// use calloc_tensor::Rng;
///
/// let w = xavier_init(64, 32, &mut Rng::new(1));
/// assert_eq!(w.shape(), (64, 32));
/// let limit = (6.0f64 / (64.0 + 32.0)).sqrt();
/// assert!(w.as_slice().iter().all(|&x| x.abs() <= limit));
/// ```
pub fn xavier_init(fan_in: usize, fan_out: usize, rng: &mut Rng) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.uniform(-limit, limit))
}

/// He/Kaiming normal initialization, appropriate for ReLU layers.
///
/// # Example
///
/// ```
/// use calloc_nn::he_init;
/// use calloc_tensor::Rng;
///
/// let w = he_init(100, 50, &mut Rng::new(2));
/// assert_eq!(w.shape(), (100, 50));
/// ```
pub fn he_init(fan_in: usize, fan_out: usize, rng: &mut Rng) -> Matrix {
    let std = (2.0 / fan_in as f64).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.normal(0.0, std))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_respects_limit() {
        let mut rng = Rng::new(0);
        let w = xavier_init(10, 20, &mut rng);
        let limit = (6.0f64 / 30.0).sqrt();
        assert!(w.as_slice().iter().all(|&x| x.abs() <= limit));
    }

    #[test]
    fn he_std_is_plausible() {
        let mut rng = Rng::new(1);
        let w = he_init(400, 100, &mut rng);
        let std = calloc_tensor::stats::std_dev(w.as_slice());
        let expect = (2.0f64 / 400.0).sqrt();
        assert!((std - expect).abs() / expect < 0.1, "std {std} vs {expect}");
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let a = xavier_init(5, 5, &mut Rng::new(7));
        let b = xavier_init(5, 5, &mut Rng::new(7));
        assert_eq!(a, b);
    }
}
