//! Gradient-descent optimizers.

use calloc_tensor::Matrix;

use crate::layer::{Layer, LayerGrad};
use crate::model::Sequential;

/// One SGD-with-momentum update over contiguous parameter slices:
/// per element `v = v·μ − g·lr`, then `p = p + v` — the exact expressions
/// (and evaluation order) of the former `Matrix`-temporary formulation,
/// without allocating the four intermediates per step.
fn sgd_momentum_step(
    param: &mut [f64],
    velocity: &mut [f64],
    grad: &[f64],
    momentum: f64,
    lr: f64,
) {
    for ((p, v), &g) in param.iter_mut().zip(velocity.iter_mut()).zip(grad) {
        *v = *v * momentum - g * lr;
        *p += *v;
    }
}

/// One Adam update over contiguous parameter slices, bit-identical per
/// element to the former `Matrix`-temporary formulation:
/// `m = m·β₁ + g·(1−β₁)`, `v = v·β₂ + (g·g)·(1−β₂)`,
/// `p −= lr·(m/bc₁) / (√(v/bc₂) + ε)`.
#[allow(clippy::too_many_arguments)]
fn adam_step(
    param: &mut [f64],
    m: &mut [f64],
    v: &mut [f64],
    grad: &[f64],
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    lr: f64,
    bc1: f64,
    bc2: f64,
) {
    for (((p, mv), vv), &g) in param
        .iter_mut()
        .zip(m.iter_mut())
        .zip(v.iter_mut())
        .zip(grad)
    {
        *mv = *mv * beta1 + g * (1.0 - beta1);
        *vv = *vv * beta2 + (g * g) * (1.0 - beta2);
        *p -= lr * (*mv / bc1) / ((*vv / bc2).sqrt() + epsilon);
    }
}

/// An optimizer updates a [`Sequential`] network in place from per-layer
/// gradients (the output of [`Sequential::backward`]).
///
/// State (momentum buffers, Adam moments) is keyed by layer index, so an
/// optimizer instance must be used with a single network whose layer
/// structure does not change between steps.
pub trait Optimizer {
    /// Applies one update step.
    ///
    /// # Panics
    ///
    /// Panics if `grads.len()` does not match the layer count.
    fn step(&mut self, net: &mut Sequential, grads: &[LayerGrad]);

    /// Resets internal state (e.g. when restarting training on new data).
    fn reset(&mut self);
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient in `[0, 1)`; 0 disables momentum.
    pub momentum: f64,
    velocity: Vec<Option<(Matrix, Matrix)>>,
}

impl Sgd {
    /// Creates SGD with the given learning rate and momentum.
    pub fn new(learning_rate: f64, momentum: f64) -> Self {
        Sgd {
            learning_rate,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut Sequential, grads: &[LayerGrad]) {
        let layers = net.layers_mut();
        assert_eq!(grads.len(), layers.len(), "gradient/layer count mismatch");
        if self.velocity.len() != layers.len() {
            self.velocity = vec![None; layers.len()];
        }
        for (i, (layer, grad)) in layers.iter_mut().zip(grads).enumerate() {
            let (Layer::Dense(d), LayerGrad::Dense { w: gw, b: gb }) = (layer, grad) else {
                continue;
            };
            if self.momentum > 0.0 {
                let (vw, vb) = self.velocity[i].get_or_insert_with(|| {
                    (
                        Matrix::zeros(gw.rows(), gw.cols()),
                        Matrix::zeros(gb.rows(), gb.cols()),
                    )
                });
                sgd_momentum_step(
                    d.w.as_mut_slice(),
                    vw.as_mut_slice(),
                    gw.as_slice(),
                    self.momentum,
                    self.learning_rate,
                );
                sgd_momentum_step(
                    d.b.as_mut_slice(),
                    vb.as_mut_slice(),
                    gb.as_slice(),
                    self.momentum,
                    self.learning_rate,
                );
            } else {
                d.w.axpy(-self.learning_rate, gw);
                d.b.axpy(-self.learning_rate, gb);
            }
        }
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }
}

/// Adam optimizer (Kingma & Ba, 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate (paper default 1e-3).
    pub learning_rate: f64,
    /// First-moment decay (default 0.9).
    pub beta1: f64,
    /// Second-moment decay (default 0.999).
    pub beta2: f64,
    /// Numerical stabilizer (default 1e-8).
    pub epsilon: f64,
    t: u64,
    moments: Vec<Option<AdamState>>,
}

#[derive(Debug, Clone)]
struct AdamState {
    mw: Matrix,
    vw: Matrix,
    mb: Matrix,
    vb: Matrix,
}

impl Adam {
    /// Creates Adam with the given learning rate and standard betas.
    pub fn new(learning_rate: f64) -> Self {
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            t: 0,
            moments: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut Sequential, grads: &[LayerGrad]) {
        let layers = net.layers_mut();
        assert_eq!(grads.len(), layers.len(), "gradient/layer count mismatch");
        if self.moments.len() != layers.len() {
            self.moments = vec![None; layers.len()];
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);

        for (i, (layer, grad)) in layers.iter_mut().zip(grads).enumerate() {
            let (Layer::Dense(d), LayerGrad::Dense { w: gw, b: gb }) = (layer, grad) else {
                continue;
            };
            let st = self.moments[i].get_or_insert_with(|| AdamState {
                mw: Matrix::zeros(gw.rows(), gw.cols()),
                vw: Matrix::zeros(gw.rows(), gw.cols()),
                mb: Matrix::zeros(gb.rows(), gb.cols()),
                vb: Matrix::zeros(gb.rows(), gb.cols()),
            });

            adam_step(
                d.w.as_mut_slice(),
                st.mw.as_mut_slice(),
                st.vw.as_mut_slice(),
                gw.as_slice(),
                self.beta1,
                self.beta2,
                self.epsilon,
                self.learning_rate,
                bc1,
                bc2,
            );
            adam_step(
                d.b.as_mut_slice(),
                st.mb.as_mut_slice(),
                st.vb.as_mut_slice(),
                gb.as_slice(),
                self.beta1,
                self.beta2,
                self.epsilon,
                self.learning_rate,
                bc1,
                bc2,
            );
        }
    }

    fn reset(&mut self) {
        self.t = 0;
        self.moments.clear();
    }
}

/// Stand-alone Adam state for a single parameter matrix.
///
/// Custom architectures that are not [`Sequential`] stacks (the CALLOC
/// hyperspace-attention model, the ANVIL multi-head attention baseline)
/// update their parameter matrices individually with this helper.
///
/// # Example
///
/// ```
/// use calloc_nn::ParamAdam;
/// use calloc_tensor::Matrix;
///
/// let mut w = Matrix::filled(1, 1, 1.0);
/// let mut adam = ParamAdam::new(1, 1);
/// for _ in 0..100 {
///     let grad = w.scale(2.0); // minimize w²
///     adam.update(&mut w, &grad, 0.05);
/// }
/// assert!(w.get(0, 0).abs() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct ParamAdam {
    m: Matrix,
    v: Matrix,
    t: u64,
    /// First-moment decay (default 0.9).
    pub beta1: f64,
    /// Second-moment decay (default 0.999).
    pub beta2: f64,
    /// Numerical stabilizer (default 1e-8).
    pub epsilon: f64,
}

impl ParamAdam {
    /// Creates zeroed Adam state for a `rows`-by-`cols` parameter.
    pub fn new(rows: usize, cols: usize) -> Self {
        ParamAdam {
            m: Matrix::zeros(rows, cols),
            v: Matrix::zeros(rows, cols),
            t: 0,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
        }
    }

    /// Applies one Adam update of `param` using `grad`.
    ///
    /// # Panics
    ///
    /// Panics if shapes do not match the state.
    pub fn update(&mut self, param: &mut Matrix, grad: &Matrix, learning_rate: f64) {
        assert_eq!(param.shape(), self.m.shape(), "param shape mismatch");
        assert_eq!(grad.shape(), self.m.shape(), "grad shape mismatch");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        adam_step(
            param.as_mut_slice(),
            self.m.as_mut_slice(),
            self.v.as_mut_slice(),
            grad.as_slice(),
            self.beta1,
            self.beta2,
            self.epsilon,
            learning_rate,
            bc1,
            bc2,
        );
    }

    /// Resets the state to step zero.
    pub fn reset(&mut self) {
        self.t = 0;
        self.m = Matrix::zeros(self.m.rows(), self.m.cols());
        self.v = Matrix::zeros(self.v.rows(), self.v.cols());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Dense, Mode};
    use crate::loss;
    use calloc_tensor::Rng;

    /// Train y = 2x on a 1-layer linear net; loss must shrink dramatically.
    fn converges(opt: &mut dyn Optimizer, steps: usize) -> (f64, f64) {
        let mut rng = Rng::new(42);
        let mut net = Sequential::new(vec![Layer::Dense(Dense::xavier(1, 1, &mut rng))]);
        let x = Matrix::from_fn(16, 1, |r, _| r as f64 / 8.0 - 1.0);
        let target = x.scale(2.0);
        let initial = {
            let (y, _) = net.forward(&x, Mode::Eval, &mut rng);
            loss::mse(&y, &target).0
        };
        let mut last = initial;
        for _ in 0..steps {
            let (y, caches) = net.forward(&x, Mode::Train, &mut rng);
            let (l, grad) = loss::mse(&y, &target);
            last = l;
            let (_, grads) = net.backward(&caches, &grad);
            opt.step(&mut net, &grads);
        }
        (initial, last)
    }

    #[test]
    fn sgd_converges_on_linear_regression() {
        let (initial, last) = converges(&mut Sgd::new(0.1, 0.0), 200);
        assert!(last < initial * 1e-3, "initial {initial}, last {last}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let (initial, last) = converges(&mut Sgd::new(0.05, 0.9), 200);
        assert!(last < initial * 1e-3, "initial {initial}, last {last}");
    }

    #[test]
    fn adam_converges_on_linear_regression() {
        let (initial, last) = converges(&mut Adam::new(0.05), 300);
        assert!(last < initial * 1e-3, "initial {initial}, last {last}");
    }

    #[test]
    fn reset_clears_state() {
        let mut adam = Adam::new(0.01);
        let _ = converges(&mut adam, 10);
        adam.reset();
        assert_eq!(adam.t, 0);
        assert!(adam.moments.is_empty());
    }

    /// The vectorized slice updates must be bit-identical per element to
    /// the former `Matrix`-temporary formulation (the goldens pin trained
    /// models, so a single rounding change here would surface as a sweep
    /// CSV diff).
    #[test]
    fn slice_updates_match_matrix_formulation_bitwise() {
        let mut rng = Rng::new(17);
        let rand = |rng: &mut Rng, n: usize| -> Vec<f64> {
            (0..n).map(|_| rng.normal(0.0, 1.0)).collect()
        };
        let n = 37;
        let (lr, momentum) = (0.05, 0.9);
        let (beta1, beta2, eps) = (0.9, 0.999, 1e-8);
        let (bc1, bc2) = (1.0 - beta1 * beta1, 1.0 - beta2 * beta2);

        let p0 = rand(&mut rng, n);
        let v0 = rand(&mut rng, n);
        let g = rand(&mut rng, n);

        // SGD momentum: v' = v·μ − g·lr, p' = p + v'.
        let vm = Matrix::row_vector(&v0)
            .scale(momentum)
            .sub(&Matrix::row_vector(&g).scale(lr));
        let pm = Matrix::row_vector(&p0).add(&vm);
        let (mut p, mut v) = (p0.clone(), v0.clone());
        sgd_momentum_step(&mut p, &mut v, &g, momentum, lr);
        for i in 0..n {
            assert_eq!(v[i].to_bits(), vm.get(0, i).to_bits(), "velocity {i}");
            assert_eq!(p[i].to_bits(), pm.get(0, i).to_bits(), "param {i}");
        }

        // Adam: the scale/add/zip_map chain of the former implementation.
        let m0 = rand(&mut rng, n);
        let w0 = rand(&mut rng, n);
        let v0 = rand(&mut rng, n).iter().map(|x| x * x).collect::<Vec<_>>();
        let mm = Matrix::row_vector(&m0)
            .scale(beta1)
            .add(&Matrix::row_vector(&g).scale(1.0 - beta1));
        let vv = Matrix::row_vector(&v0)
            .scale(beta2)
            .add(&Matrix::row_vector(&g).map(|g| g * g).scale(1.0 - beta2));
        let upd = mm.zip_map(&vv, |m, v| lr * (m / bc1) / ((v / bc2).sqrt() + eps));
        let wm = Matrix::row_vector(&w0).sub(&upd);
        let (mut w, mut m, mut v) = (w0.clone(), m0.clone(), v0.clone());
        adam_step(&mut w, &mut m, &mut v, &g, beta1, beta2, eps, lr, bc1, bc2);
        for i in 0..n {
            assert_eq!(m[i].to_bits(), mm.get(0, i).to_bits(), "moment1 {i}");
            assert_eq!(v[i].to_bits(), vv.get(0, i).to_bits(), "moment2 {i}");
            assert_eq!(w[i].to_bits(), wm.get(0, i).to_bits(), "param {i}");
        }
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn step_rejects_wrong_grad_count() {
        let mut rng = Rng::new(0);
        let mut net = Sequential::new(vec![Layer::Dense(Dense::xavier(2, 2, &mut rng))]);
        Sgd::new(0.1, 0.0).step(&mut net, &[]);
    }
}
