//! Gradient-descent optimizers.

use calloc_tensor::Matrix;

use crate::layer::{Layer, LayerGrad};
use crate::model::Sequential;

/// An optimizer updates a [`Sequential`] network in place from per-layer
/// gradients (the output of [`Sequential::backward`]).
///
/// State (momentum buffers, Adam moments) is keyed by layer index, so an
/// optimizer instance must be used with a single network whose layer
/// structure does not change between steps.
pub trait Optimizer {
    /// Applies one update step.
    ///
    /// # Panics
    ///
    /// Panics if `grads.len()` does not match the layer count.
    fn step(&mut self, net: &mut Sequential, grads: &[LayerGrad]);

    /// Resets internal state (e.g. when restarting training on new data).
    fn reset(&mut self);
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient in `[0, 1)`; 0 disables momentum.
    pub momentum: f64,
    velocity: Vec<Option<(Matrix, Matrix)>>,
}

impl Sgd {
    /// Creates SGD with the given learning rate and momentum.
    pub fn new(learning_rate: f64, momentum: f64) -> Self {
        Sgd {
            learning_rate,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut Sequential, grads: &[LayerGrad]) {
        let layers = net.layers_mut();
        assert_eq!(grads.len(), layers.len(), "gradient/layer count mismatch");
        if self.velocity.len() != layers.len() {
            self.velocity = vec![None; layers.len()];
        }
        for (i, (layer, grad)) in layers.iter_mut().zip(grads).enumerate() {
            let (Layer::Dense(d), LayerGrad::Dense { w: gw, b: gb }) = (layer, grad) else {
                continue;
            };
            if self.momentum > 0.0 {
                let (vw, vb) = self.velocity[i].get_or_insert_with(|| {
                    (
                        Matrix::zeros(gw.rows(), gw.cols()),
                        Matrix::zeros(gb.rows(), gb.cols()),
                    )
                });
                *vw = vw.scale(self.momentum).sub(&gw.scale(self.learning_rate));
                *vb = vb.scale(self.momentum).sub(&gb.scale(self.learning_rate));
                d.w = d.w.add(vw);
                d.b = d.b.add(vb);
            } else {
                d.w.axpy(-self.learning_rate, gw);
                d.b.axpy(-self.learning_rate, gb);
            }
        }
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }
}

/// Adam optimizer (Kingma & Ba, 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate (paper default 1e-3).
    pub learning_rate: f64,
    /// First-moment decay (default 0.9).
    pub beta1: f64,
    /// Second-moment decay (default 0.999).
    pub beta2: f64,
    /// Numerical stabilizer (default 1e-8).
    pub epsilon: f64,
    t: u64,
    moments: Vec<Option<AdamState>>,
}

#[derive(Debug, Clone)]
struct AdamState {
    mw: Matrix,
    vw: Matrix,
    mb: Matrix,
    vb: Matrix,
}

impl Adam {
    /// Creates Adam with the given learning rate and standard betas.
    pub fn new(learning_rate: f64) -> Self {
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            t: 0,
            moments: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut Sequential, grads: &[LayerGrad]) {
        let layers = net.layers_mut();
        assert_eq!(grads.len(), layers.len(), "gradient/layer count mismatch");
        if self.moments.len() != layers.len() {
            self.moments = vec![None; layers.len()];
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);

        for (i, (layer, grad)) in layers.iter_mut().zip(grads).enumerate() {
            let (Layer::Dense(d), LayerGrad::Dense { w: gw, b: gb }) = (layer, grad) else {
                continue;
            };
            let st = self.moments[i].get_or_insert_with(|| AdamState {
                mw: Matrix::zeros(gw.rows(), gw.cols()),
                vw: Matrix::zeros(gw.rows(), gw.cols()),
                mb: Matrix::zeros(gb.rows(), gb.cols()),
                vb: Matrix::zeros(gb.rows(), gb.cols()),
            });

            st.mw = st.mw.scale(self.beta1).add(&gw.scale(1.0 - self.beta1));
            st.vw = st
                .vw
                .scale(self.beta2)
                .add(&gw.map(|g| g * g).scale(1.0 - self.beta2));
            st.mb = st.mb.scale(self.beta1).add(&gb.scale(1.0 - self.beta1));
            st.vb = st
                .vb
                .scale(self.beta2)
                .add(&gb.map(|g| g * g).scale(1.0 - self.beta2));

            let lr = self.learning_rate;
            let eps = self.epsilon;
            let upd_w = st
                .mw
                .zip_map(&st.vw, |m, v| lr * (m / bc1) / ((v / bc2).sqrt() + eps));
            let upd_b = st
                .mb
                .zip_map(&st.vb, |m, v| lr * (m / bc1) / ((v / bc2).sqrt() + eps));
            d.w = d.w.sub(&upd_w);
            d.b = d.b.sub(&upd_b);
        }
    }

    fn reset(&mut self) {
        self.t = 0;
        self.moments.clear();
    }
}

/// Stand-alone Adam state for a single parameter matrix.
///
/// Custom architectures that are not [`Sequential`] stacks (the CALLOC
/// hyperspace-attention model, the ANVIL multi-head attention baseline)
/// update their parameter matrices individually with this helper.
///
/// # Example
///
/// ```
/// use calloc_nn::ParamAdam;
/// use calloc_tensor::Matrix;
///
/// let mut w = Matrix::filled(1, 1, 1.0);
/// let mut adam = ParamAdam::new(1, 1);
/// for _ in 0..100 {
///     let grad = w.scale(2.0); // minimize w²
///     adam.update(&mut w, &grad, 0.05);
/// }
/// assert!(w.get(0, 0).abs() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct ParamAdam {
    m: Matrix,
    v: Matrix,
    t: u64,
    /// First-moment decay (default 0.9).
    pub beta1: f64,
    /// Second-moment decay (default 0.999).
    pub beta2: f64,
    /// Numerical stabilizer (default 1e-8).
    pub epsilon: f64,
}

impl ParamAdam {
    /// Creates zeroed Adam state for a `rows`-by-`cols` parameter.
    pub fn new(rows: usize, cols: usize) -> Self {
        ParamAdam {
            m: Matrix::zeros(rows, cols),
            v: Matrix::zeros(rows, cols),
            t: 0,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
        }
    }

    /// Applies one Adam update of `param` using `grad`.
    ///
    /// # Panics
    ///
    /// Panics if shapes do not match the state.
    pub fn update(&mut self, param: &mut Matrix, grad: &Matrix, learning_rate: f64) {
        assert_eq!(param.shape(), self.m.shape(), "param shape mismatch");
        assert_eq!(grad.shape(), self.m.shape(), "grad shape mismatch");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        self.m = self.m.scale(self.beta1).add(&grad.scale(1.0 - self.beta1));
        self.v = self
            .v
            .scale(self.beta2)
            .add(&grad.map(|g| g * g).scale(1.0 - self.beta2));
        let eps = self.epsilon;
        let update = self.m.zip_map(&self.v, |m, v| {
            learning_rate * (m / bc1) / ((v / bc2).sqrt() + eps)
        });
        *param = param.sub(&update);
    }

    /// Resets the state to step zero.
    pub fn reset(&mut self) {
        self.t = 0;
        self.m = Matrix::zeros(self.m.rows(), self.m.cols());
        self.v = Matrix::zeros(self.v.rows(), self.v.cols());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Dense, Mode};
    use crate::loss;
    use calloc_tensor::Rng;

    /// Train y = 2x on a 1-layer linear net; loss must shrink dramatically.
    fn converges(opt: &mut dyn Optimizer, steps: usize) -> (f64, f64) {
        let mut rng = Rng::new(42);
        let mut net = Sequential::new(vec![Layer::Dense(Dense::xavier(1, 1, &mut rng))]);
        let x = Matrix::from_fn(16, 1, |r, _| r as f64 / 8.0 - 1.0);
        let target = x.scale(2.0);
        let initial = {
            let (y, _) = net.forward(&x, Mode::Eval, &mut rng);
            loss::mse(&y, &target).0
        };
        let mut last = initial;
        for _ in 0..steps {
            let (y, caches) = net.forward(&x, Mode::Train, &mut rng);
            let (l, grad) = loss::mse(&y, &target);
            last = l;
            let (_, grads) = net.backward(&caches, &grad);
            opt.step(&mut net, &grads);
        }
        (initial, last)
    }

    #[test]
    fn sgd_converges_on_linear_regression() {
        let (initial, last) = converges(&mut Sgd::new(0.1, 0.0), 200);
        assert!(last < initial * 1e-3, "initial {initial}, last {last}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let (initial, last) = converges(&mut Sgd::new(0.05, 0.9), 200);
        assert!(last < initial * 1e-3, "initial {initial}, last {last}");
    }

    #[test]
    fn adam_converges_on_linear_regression() {
        let (initial, last) = converges(&mut Adam::new(0.05), 300);
        assert!(last < initial * 1e-3, "initial {initial}, last {last}");
    }

    #[test]
    fn reset_clears_state() {
        let mut adam = Adam::new(0.01);
        let _ = converges(&mut adam, 10);
        adam.reset();
        assert_eq!(adam.t, 0);
        assert!(adam.moments.is_empty());
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn step_rejects_wrong_grad_count() {
        let mut rng = Rng::new(0);
        let mut net = Sequential::new(vec![Layer::Dense(Dense::xavier(2, 2, &mut rng))]);
        Sgd::new(0.1, 0.0).step(&mut net, &[]);
    }
}
