//! # calloc-nn
//!
//! A from-scratch neural-network training stack, sized for the small
//! fingerprinting models of the CALLOC paper (tens of thousands of
//! parameters) and for white-box adversarial attack research.
//!
//! Design notes:
//!
//! * **Functional forward/backward.** Layers are pure parameter holders;
//!   [`Sequential::forward`] returns the activations *and* a cache, and
//!   [`Sequential::backward`] consumes that cache to produce gradients both
//!   for the parameters and for the **input** — the latter is what FGSM /
//!   PGD / MIM attacks need. Nothing requires `&mut self`, so a trained
//!   model can be attacked and evaluated through a shared reference.
//! * **Enum layers, no trait objects.** The architecture space of the paper
//!   (MLPs, autoencoders, attention blocks) is covered by a closed set of
//!   layers; an enum keeps serialization and cloning trivial.
//! * **Gradient checking.** Every layer's backward pass is validated against
//!   central finite differences in the test suite.
//!
//! # Example
//!
//! ```
//! use calloc_nn::{Dense, Layer, Sequential, Mode, loss};
//! use calloc_tensor::{Matrix, Rng};
//!
//! let mut rng = Rng::new(0);
//! let net = Sequential::new(vec![
//!     Layer::Dense(Dense::xavier(4, 16, &mut rng)),
//!     Layer::Relu,
//!     Layer::Dense(Dense::xavier(16, 3, &mut rng)),
//! ]);
//! let x = Matrix::from_fn(2, 4, |_, _| rng.normal(0.0, 1.0));
//! let (logits, _cache) = net.forward(&x, Mode::Eval, &mut rng);
//! assert_eq!(logits.shape(), (2, 3));
//! let (loss_value, _grad) = loss::cross_entropy(&logits, &[0, 2]);
//! assert!(loss_value > 0.0);
//! ```

#![deny(missing_docs)]

mod init;
mod layer;
mod model;
mod optim;
mod train;

pub mod attention;
pub mod loss;
pub mod metrics;
pub mod state;

pub use init::{he_init, xavier_init};
pub use layer::{Cache, Dense, Layer, LayerGrad, Mode};
pub use model::{DifferentiableModel, Localizer, Sequential};
pub use optim::{Adam, Optimizer, ParamAdam, Sgd};
pub use train::{EarlyStopping, TrainConfig, TrainReport, Trainer};
