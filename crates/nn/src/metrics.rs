//! Classification metrics.

/// Fraction of predictions equal to the targets.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// use calloc_nn::metrics::accuracy;
///
/// assert_eq!(accuracy(&[0, 1, 1], &[0, 1, 0]), 2.0 / 3.0);
/// ```
pub fn accuracy(predictions: &[usize], targets: &[usize]) -> f64 {
    assert_eq!(
        predictions.len(),
        targets.len(),
        "prediction/target length mismatch"
    );
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(targets)
        .filter(|(p, t)| p == t)
        .count();
    correct as f64 / predictions.len() as f64
}

/// Confusion matrix with `num_classes` rows (true class) and columns
/// (predicted class).
///
/// # Panics
///
/// Panics if lengths mismatch or any label is out of range.
pub fn confusion_matrix(
    predictions: &[usize],
    targets: &[usize],
    num_classes: usize,
) -> Vec<Vec<usize>> {
    assert_eq!(predictions.len(), targets.len());
    let mut m = vec![vec![0usize; num_classes]; num_classes];
    for (&p, &t) in predictions.iter().zip(targets) {
        assert!(p < num_classes && t < num_classes, "label out of range");
        m[t][p] += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_perfect_and_zero() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(accuracy(&[0, 0, 0], &[1, 1, 1]), 0.0);
    }

    #[test]
    fn accuracy_empty_is_zero() {
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn confusion_matrix_counts() {
        let m = confusion_matrix(&[0, 1, 1, 0], &[0, 1, 0, 0], 2);
        assert_eq!(m[0][0], 2); // true 0 predicted 0
        assert_eq!(m[0][1], 1); // true 0 predicted 1
        assert_eq!(m[1][1], 1);
        assert_eq!(m[1][0], 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn confusion_matrix_rejects_bad_label() {
        confusion_matrix(&[2], &[0], 2);
    }
}
