//! Scaled dot-product attention with an analytic backward pass.
//!
//! `Attention(Q, K, V) = softmax(Q Kᵀ / √d_k) V` — equation (3) of the
//! CALLOC paper. This module provides the raw functional form; the CALLOC
//! model (crate `calloc`) and the ANVIL baseline build their architectures
//! on top of it.

use calloc_tensor::Matrix;

/// Intermediate values cached by [`attention_forward`] for the backward
/// pass.
#[derive(Debug, Clone)]
pub struct AttentionCache {
    q: Matrix,
    k: Matrix,
    v: Matrix,
    /// Row-softmaxed attention weights.
    weights: Matrix,
    scale: f64,
}

impl AttentionCache {
    /// The attention weight matrix (rows sum to one). Useful for
    /// interpretability: which reference fingerprints the model attended to.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }
}

/// Forward pass of scaled dot-product attention.
///
/// Shapes: `q` is `n_q`×`d`, `k` is `n_k`×`d`, `v` is `n_k`×`d_v`; the
/// output is `n_q`×`d_v`.
///
/// # Panics
///
/// Panics if `q`/`k` widths differ or `k`/`v` heights differ.
///
/// # Example
///
/// ```
/// use calloc_nn::attention::attention_forward;
/// use calloc_tensor::Matrix;
///
/// // One query attending to two keys; value rows are 2-D locations.
/// let q = Matrix::from_rows(&[vec![1.0, 0.0]]);
/// let k = Matrix::from_rows(&[vec![1.0, 0.0], vec![-1.0, 0.0]]);
/// let v = Matrix::from_rows(&[vec![0.0, 0.0], vec![10.0, 10.0]]);
/// let (out, cache) = attention_forward(&q, &k, &v);
/// // The query matches the first key, so the output leans to (0, 0).
/// assert!(out.get(0, 0) < 5.0);
/// assert!(cache.weights().get(0, 0) > 0.5);
/// ```
pub fn attention_forward(q: &Matrix, k: &Matrix, v: &Matrix) -> (Matrix, AttentionCache) {
    assert_eq!(
        q.cols(),
        k.cols(),
        "query width {} must equal key width {}",
        q.cols(),
        k.cols()
    );
    assert_eq!(
        k.rows(),
        v.rows(),
        "key count {} must equal value count {}",
        k.rows(),
        v.rows()
    );
    let scale = 1.0 / (q.cols().max(1) as f64).sqrt();
    // Q·Kᵀ without materializing Kᵀ (bit-identical to the transpose form).
    let scores = q.matmul_transposed(k).scale(scale);
    let weights = scores.softmax_rows();
    let out = weights.matmul(v);
    (
        out,
        AttentionCache {
            q: q.clone(),
            k: k.clone(),
            v: v.clone(),
            weights,
            scale,
        },
    )
}

/// Backward pass of scaled dot-product attention.
///
/// Given `dL/d(out)`, returns `(dL/dQ, dL/dK, dL/dV)`.
///
/// # Panics
///
/// Panics if `grad_out` does not match the forward output shape.
pub fn attention_backward(cache: &AttentionCache, grad_out: &Matrix) -> (Matrix, Matrix, Matrix) {
    assert_eq!(
        grad_out.shape(),
        (cache.q.rows(), cache.v.cols()),
        "grad_out shape mismatch"
    );
    // out = A V; all transposed products use the transpose-free kernels.
    let grad_v = cache.weights.transposed_matmul(grad_out);
    let grad_a = grad_out.matmul_transposed(&cache.v);

    // Softmax backward, row-wise: dS_ij = A_ij (dA_ij - Σ_k dA_ik A_ik)
    let mut grad_scores = Matrix::zeros(grad_a.rows(), grad_a.cols());
    for r in 0..grad_a.rows() {
        let ga_row = grad_a.row(r);
        let w_row = cache.weights.row(r);
        let dot: f64 = ga_row.iter().zip(w_row).map(|(&g, &a)| g * a).sum();
        let out_row = grad_scores.row_mut(r);
        for ((o, &g), &a) in out_row.iter_mut().zip(ga_row).zip(w_row) {
            *o = a * (g - dot);
        }
    }
    let grad_scores = grad_scores.scale(cache.scale);

    let grad_q = grad_scores.matmul(&cache.k);
    let grad_k = grad_scores.transposed_matmul(&cache.q);
    (grad_q, grad_k, grad_v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use calloc_tensor::Rng;

    fn rand_matrix(rows: usize, cols: usize, rng: &mut Rng) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| rng.normal(0.0, 1.0))
    }

    #[test]
    fn output_shape() {
        let mut rng = Rng::new(0);
        let q = rand_matrix(3, 4, &mut rng);
        let k = rand_matrix(7, 4, &mut rng);
        let v = rand_matrix(7, 2, &mut rng);
        let (out, _) = attention_forward(&q, &k, &v);
        assert_eq!(out.shape(), (3, 2));
    }

    #[test]
    fn weights_are_row_distributions() {
        let mut rng = Rng::new(1);
        let q = rand_matrix(5, 6, &mut rng);
        let k = rand_matrix(9, 6, &mut rng);
        let v = rand_matrix(9, 3, &mut rng);
        let (_, cache) = attention_forward(&q, &k, &v);
        for r in 0..5 {
            let s: f64 = cache.weights().row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn output_is_convex_combination_of_values() {
        // With identical values, the output equals that value regardless of
        // the attention distribution.
        let mut rng = Rng::new(2);
        let q = rand_matrix(2, 3, &mut rng);
        let k = rand_matrix(4, 3, &mut rng);
        let v = Matrix::from_fn(4, 2, |_, c| if c == 0 { 3.0 } else { -1.0 });
        let (out, _) = attention_forward(&q, &k, &v);
        for r in 0..2 {
            assert!((out.get(r, 0) - 3.0).abs() < 1e-12);
            assert!((out.get(r, 1) + 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn matched_query_attends_to_matching_key() {
        let q = Matrix::from_rows(&[vec![5.0, 0.0]]);
        let k = Matrix::from_rows(&[vec![5.0, 0.0], vec![0.0, 5.0], vec![-5.0, 0.0]]);
        let v = Matrix::identity(3);
        let (_, cache) = attention_forward(&q, &k, &v);
        let w = cache.weights();
        assert!(w.get(0, 0) > w.get(0, 1));
        assert!(w.get(0, 1) > w.get(0, 2));
    }

    /// Full finite-difference check of all three input gradients.
    #[test]
    fn gradients_match_finite_diff() {
        let mut rng = Rng::new(3);
        let q = rand_matrix(3, 4, &mut rng);
        let k = rand_matrix(5, 4, &mut rng);
        let v = rand_matrix(5, 2, &mut rng);
        let (out, cache) = attention_forward(&q, &k, &v);
        let g_out = rand_matrix(out.rows(), out.cols(), &mut rng);
        let (gq, gk, gv) = attention_backward(&cache, &g_out);

        let eps = 1e-6;
        let f = |q: &Matrix, k: &Matrix, v: &Matrix| -> f64 {
            attention_forward(q, k, v).0.hadamard(&g_out).sum()
        };
        // dQ
        for r in 0..q.rows() {
            for c in 0..q.cols() {
                let mut qp = q.clone();
                qp.set(r, c, q.get(r, c) + eps);
                let mut qm = q.clone();
                qm.set(r, c, q.get(r, c) - eps);
                let fd = (f(&qp, &k, &v) - f(&qm, &k, &v)) / (2.0 * eps);
                assert!((gq.get(r, c) - fd).abs() < 1e-5, "dQ[{r}][{c}]");
            }
        }
        // dK
        for r in 0..k.rows() {
            for c in 0..k.cols() {
                let mut kp = k.clone();
                kp.set(r, c, k.get(r, c) + eps);
                let mut km = k.clone();
                km.set(r, c, k.get(r, c) - eps);
                let fd = (f(&q, &kp, &v) - f(&q, &km, &v)) / (2.0 * eps);
                assert!((gk.get(r, c) - fd).abs() < 1e-5, "dK[{r}][{c}]");
            }
        }
        // dV
        for r in 0..v.rows() {
            for c in 0..v.cols() {
                let mut vp = v.clone();
                vp.set(r, c, v.get(r, c) + eps);
                let mut vm = v.clone();
                vm.set(r, c, v.get(r, c) - eps);
                let fd = (f(&q, &k, &vp) - f(&q, &k, &vm)) / (2.0 * eps);
                assert!((gv.get(r, c) - fd).abs() < 1e-5, "dV[{r}][{c}]");
            }
        }
    }

    #[test]
    #[should_panic(expected = "width")]
    fn rejects_mismatched_qk() {
        let q = Matrix::zeros(1, 3);
        let k = Matrix::zeros(2, 4);
        let v = Matrix::zeros(2, 2);
        attention_forward(&q, &k, &v);
    }
}
