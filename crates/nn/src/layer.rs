//! Neural-network layers with explicit forward/backward passes.

use calloc_tensor::{Matrix, Rng};
use serde::{Deserialize, Serialize};

use crate::init;

/// Whether a forward pass is part of training (stochastic layers active) or
/// evaluation (stochastic layers are identity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training: dropout masks and Gaussian noise are applied.
    Train,
    /// Evaluation/inference: the network is deterministic.
    Eval,
}

/// A fully connected layer `y = x W + b`.
///
/// `W` is `in_dim`-by-`out_dim`, `b` is `1`-by-`out_dim`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    /// Weight matrix (`in_dim` x `out_dim`).
    pub w: Matrix,
    /// Bias row vector (`1` x `out_dim`).
    pub b: Matrix,
}

impl Dense {
    /// Creates a dense layer with Xavier-uniform weights and zero bias.
    pub fn xavier(in_dim: usize, out_dim: usize, rng: &mut Rng) -> Self {
        Dense {
            w: init::xavier_init(in_dim, out_dim, rng),
            b: Matrix::zeros(1, out_dim),
        }
    }

    /// Creates a dense layer with He-normal weights and zero bias
    /// (preferred before ReLU activations).
    pub fn he(in_dim: usize, out_dim: usize, rng: &mut Rng) -> Self {
        Dense {
            w: init::he_init(in_dim, out_dim, rng),
            b: Matrix::zeros(1, out_dim),
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// Number of trainable parameters (weights + biases).
    pub fn parameter_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Forward pass `x W + b`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        x.matmul(&self.w).add_row_broadcast(&self.b)
    }

    /// Backward pass. Given the cached input and `dL/dy`, returns
    /// `(dL/dx, dL/dW, dL/db)`.
    pub fn backward(&self, input: &Matrix, grad_out: &Matrix) -> (Matrix, Matrix, Matrix) {
        // G·Wᵀ and Xᵀ·G via the transpose-free kernels (bit-identical to
        // materializing the transposes).
        let grad_x = grad_out.matmul_transposed(&self.w);
        let grad_w = input.transposed_matmul(grad_out);
        let grad_b = grad_out.sum_rows();
        (grad_x, grad_w, grad_b)
    }
}

/// A layer in a [`crate::Sequential`] network.
///
/// The closed set of variants covers every architecture in the paper:
/// MLP classifiers (DNN, AdvLoc), autoencoders (SANGRIA, WiDeep), the
/// embedding networks of CALLOC (Dense + Dropout + GaussianNoise) and the
/// feature blocks of ANVIL.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// Fully connected affine map.
    Dense(Dense),
    /// Rectified linear activation.
    Relu,
    /// Logistic sigmoid activation.
    Sigmoid,
    /// Hyperbolic tangent activation.
    Tanh,
    /// Inverted dropout with the given drop probability (active only in
    /// [`Mode::Train`]).
    Dropout {
        /// Probability of dropping each activation.
        rate: f64,
    },
    /// Additive zero-mean Gaussian noise (active only in [`Mode::Train`]).
    /// The paper's H^O embedding network uses `std = 0.32`.
    GaussianNoise {
        /// Standard deviation of the injected noise.
        std: f64,
    },
}

/// Per-layer cache produced by a forward pass and consumed by backward.
#[derive(Debug, Clone)]
pub enum Cache {
    /// Dense layers cache their input.
    Input(Matrix),
    /// Saturating activations cache their output.
    Output(Matrix),
    /// Dropout caches its (already scaled) keep mask.
    Mask(Matrix),
    /// Stateless layers (noise in eval mode, etc.) cache nothing.
    None,
}

/// Parameter gradients for one layer (only [`Layer::Dense`] has any).
#[derive(Debug, Clone)]
pub enum LayerGrad {
    /// Gradients for a dense layer: `(dL/dW, dL/db)`.
    Dense {
        /// Gradient with respect to the weight matrix.
        w: Matrix,
        /// Gradient with respect to the bias row.
        b: Matrix,
    },
    /// The layer has no trainable parameters.
    None,
}

impl Layer {
    /// Forward pass; returns the output and the backward cache.
    pub fn forward(&self, x: &Matrix, mode: Mode, rng: &mut Rng) -> (Matrix, Cache) {
        match self {
            Layer::Dense(d) => (d.forward(x), Cache::Input(x.clone())),
            Layer::Relu => {
                let y = x.map(|v| if v > 0.0 { v } else { 0.0 });
                (y, Cache::Input(x.clone()))
            }
            Layer::Sigmoid => {
                let y = x.map(|v| 1.0 / (1.0 + (-v).exp()));
                (y.clone(), Cache::Output(y))
            }
            Layer::Tanh => {
                let y = x.map(f64::tanh);
                (y.clone(), Cache::Output(y))
            }
            Layer::Dropout { rate } => {
                if mode == Mode::Eval || *rate <= 0.0 {
                    return (x.clone(), Cache::None);
                }
                let keep = 1.0 - rate.min(1.0 - f64::EPSILON);
                let mask = Matrix::from_fn(x.rows(), x.cols(), |_, _| {
                    if rng.bernoulli(keep) {
                        1.0 / keep
                    } else {
                        0.0
                    }
                });
                (x.hadamard(&mask), Cache::Mask(mask))
            }
            Layer::GaussianNoise { std } => {
                if mode == Mode::Eval || *std <= 0.0 {
                    return (x.clone(), Cache::None);
                }
                let noise = Matrix::from_fn(x.rows(), x.cols(), |_, _| rng.normal(0.0, *std));
                (x.add(&noise), Cache::None)
            }
        }
    }

    /// Backward pass; returns `dL/dx` and the parameter gradients.
    ///
    /// # Panics
    ///
    /// Panics if `cache` does not match the layer variant (a cache produced
    /// by a different layer or mode).
    pub fn backward(&self, cache: &Cache, grad_out: &Matrix) -> (Matrix, LayerGrad) {
        match (self, cache) {
            (Layer::Dense(d), Cache::Input(x)) => {
                let (gx, gw, gb) = d.backward(x, grad_out);
                (gx, LayerGrad::Dense { w: gw, b: gb })
            }
            (Layer::Relu, Cache::Input(x)) => {
                let gx = grad_out.zip_map(x, |g, v| if v > 0.0 { g } else { 0.0 });
                (gx, LayerGrad::None)
            }
            (Layer::Sigmoid, Cache::Output(y)) => {
                let gx = grad_out.zip_map(y, |g, s| g * s * (1.0 - s));
                (gx, LayerGrad::None)
            }
            (Layer::Tanh, Cache::Output(y)) => {
                let gx = grad_out.zip_map(y, |g, t| g * (1.0 - t * t));
                (gx, LayerGrad::None)
            }
            (Layer::Dropout { .. }, Cache::Mask(mask)) => {
                (grad_out.hadamard(mask), LayerGrad::None)
            }
            // Dropout in eval mode and noise layers are identity maps.
            (Layer::Dropout { .. }, Cache::None) | (Layer::GaussianNoise { .. }, Cache::None) => {
                (grad_out.clone(), LayerGrad::None)
            }
            (layer, cache) => panic!("cache {cache:?} does not match layer {layer:?}"),
        }
    }

    /// Number of trainable parameters in this layer.
    pub fn parameter_count(&self) -> usize {
        match self {
            Layer::Dense(d) => d.parameter_count(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_input(layer: &Layer, x: &Matrix, grad_out: &Matrix, eps: f64) -> Matrix {
        // d/dx of sum(grad_out ⊙ f(x)) via central differences, eval-free
        // layers only (deterministic path).
        let mut rng = Rng::new(0);
        let mut g = Matrix::zeros(x.rows(), x.cols());
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let (yp, _) = layer.forward(&xp, Mode::Eval, &mut rng);
                let (ym, _) = layer.forward(&xm, Mode::Eval, &mut rng);
                let fp = yp.hadamard(grad_out).sum();
                let fm = ym.hadamard(grad_out).sum();
                g.set(r, c, (fp - fm) / (2.0 * eps));
            }
        }
        g
    }

    fn check_input_grad(layer: Layer, seed: u64, tol: f64) {
        let mut rng = Rng::new(seed);
        let in_dim = match &layer {
            Layer::Dense(d) => d.in_dim(),
            _ => 5,
        };
        let x = Matrix::from_fn(3, in_dim, |_, _| rng.normal(0.0, 1.0));
        let (y, cache) = layer.forward(&x, Mode::Eval, &mut rng);
        let grad_out = Matrix::from_fn(y.rows(), y.cols(), |_, _| rng.normal(0.0, 1.0));
        let (gx, _) = layer.backward(&cache, &grad_out);
        let fd = finite_diff_input(&layer, &x, &grad_out, 1e-5);
        assert!(
            gx.approx_eq(&fd, tol),
            "analytic vs finite-diff mismatch for {layer:?}"
        );
    }

    #[test]
    fn dense_input_gradient_matches_finite_diff() {
        let mut rng = Rng::new(1);
        check_input_grad(Layer::Dense(Dense::xavier(4, 6, &mut rng)), 2, 1e-6);
    }

    #[test]
    fn sigmoid_gradient_matches_finite_diff() {
        check_input_grad(Layer::Sigmoid, 3, 1e-6);
    }

    #[test]
    fn tanh_gradient_matches_finite_diff() {
        check_input_grad(Layer::Tanh, 4, 1e-6);
    }

    #[test]
    fn relu_gradient_matches_finite_diff() {
        // ReLU is non-differentiable at 0; the random inputs avoid exact 0.
        check_input_grad(Layer::Relu, 5, 1e-6);
    }

    #[test]
    fn dense_weight_gradient_matches_finite_diff() {
        let mut rng = Rng::new(6);
        let dense = Dense::xavier(3, 4, &mut rng);
        let layer = Layer::Dense(dense.clone());
        let x = Matrix::from_fn(5, 3, |_, _| rng.normal(0.0, 1.0));
        let (y, cache) = layer.forward(&x, Mode::Eval, &mut rng);
        let grad_out = Matrix::from_fn(y.rows(), y.cols(), |_, _| rng.normal(0.0, 1.0));
        let (_, grads) = layer.backward(&cache, &grad_out);
        let LayerGrad::Dense { w: gw, b: gb } = grads else {
            panic!("dense layer must produce dense grads");
        };

        let eps = 1e-5;
        for r in 0..dense.w.rows() {
            for c in 0..dense.w.cols() {
                let mut dp = dense.clone();
                dp.w.set(r, c, dense.w.get(r, c) + eps);
                let mut dm = dense.clone();
                dm.w.set(r, c, dense.w.get(r, c) - eps);
                let fp = dp.forward(&x).hadamard(&grad_out).sum();
                let fm = dm.forward(&x).hadamard(&grad_out).sum();
                let fd = (fp - fm) / (2.0 * eps);
                assert!(
                    (gw.get(r, c) - fd).abs() < 1e-6,
                    "w[{r}][{c}]: {} vs {fd}",
                    gw.get(r, c)
                );
            }
        }
        for c in 0..dense.b.cols() {
            let mut dp = dense.clone();
            dp.b.set(0, c, dense.b.get(0, c) + eps);
            let mut dm = dense.clone();
            dm.b.set(0, c, dense.b.get(0, c) - eps);
            let fp = dp.forward(&x).hadamard(&grad_out).sum();
            let fm = dm.forward(&x).hadamard(&grad_out).sum();
            let fd = (fp - fm) / (2.0 * eps);
            assert!((gb.get(0, c) - fd).abs() < 1e-6);
        }
    }

    #[test]
    fn dropout_eval_is_identity() {
        let mut rng = Rng::new(7);
        let x = Matrix::from_fn(4, 4, |_, _| rng.normal(0.0, 1.0));
        let layer = Layer::Dropout { rate: 0.5 };
        let (y, cache) = layer.forward(&x, Mode::Eval, &mut rng);
        assert_eq!(y, x);
        assert!(matches!(cache, Cache::None));
    }

    #[test]
    fn dropout_train_preserves_expectation() {
        let mut rng = Rng::new(8);
        let x = Matrix::filled(200, 50, 1.0);
        let layer = Layer::Dropout { rate: 0.3 };
        let (y, _) = layer.forward(&x, Mode::Train, &mut rng);
        // inverted dropout: E[y] == x
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
        // Some elements must actually be dropped.
        assert!(y.as_slice().contains(&0.0));
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut rng = Rng::new(9);
        let x = Matrix::filled(3, 3, 2.0);
        let layer = Layer::Dropout { rate: 0.5 };
        let (y, cache) = layer.forward(&x, Mode::Train, &mut rng);
        let ones = Matrix::filled(3, 3, 1.0);
        let (gx, _) = layer.backward(&cache, &ones);
        // grad must be zero exactly where the output was zeroed
        for i in 0..9 {
            let dropped = y.as_slice()[i] == 0.0;
            assert_eq!(gx.as_slice()[i] == 0.0, dropped);
        }
    }

    #[test]
    fn gaussian_noise_train_perturbs_eval_does_not() {
        let mut rng = Rng::new(10);
        let x = Matrix::filled(10, 10, 0.5);
        let layer = Layer::GaussianNoise { std: 0.32 };
        let (y_eval, _) = layer.forward(&x, Mode::Eval, &mut rng);
        assert_eq!(y_eval, x);
        let (y_train, _) = layer.forward(&x, Mode::Train, &mut rng);
        assert_ne!(y_train, x);
        let noise_std = calloc_tensor::stats::std_dev(y_train.sub(&x).as_slice());
        assert!((noise_std - 0.32).abs() < 0.1, "std {noise_std}");
    }

    #[test]
    fn parameter_counts() {
        let mut rng = Rng::new(11);
        assert_eq!(
            Layer::Dense(Dense::xavier(165, 128, &mut rng)).parameter_count(),
            165 * 128 + 128
        );
        assert_eq!(Layer::Relu.parameter_count(), 0);
        assert_eq!(Layer::Dropout { rate: 0.2 }.parameter_count(), 0);
    }

    #[test]
    #[should_panic(expected = "does not match layer")]
    fn mismatched_cache_panics() {
        let layer = Layer::Relu;
        let bad = Cache::Output(Matrix::zeros(1, 1));
        layer.backward(&bad, &Matrix::zeros(1, 1));
    }
}
