//! Property-based tests of the declarative scenario grid
//! (`ScenarioSpec → ScenarioPlan → ScenarioSet`): cross-product
//! enumeration, thread-count-invariant generation and per-cell seed
//! independence.

use calloc_sim::{
    Building, BuildingId, BuildingSpec, CollectionConfig, EnvLevel, Scenario, ScenarioSpec,
    SurveyDensity,
};
use calloc_tensor::par;
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes the tests that flip the process-global `par` knobs. The
/// other tests in this binary may generate while a knob flip is in
/// flight — harmless by the grid's own contract (generation is
/// thread-count invariant), but the flipping tests must not interleave
/// with each other.
static KNOB_LOCK: Mutex<()> = Mutex::new(());

fn lock_knobs() -> std::sync::MutexGuard<'static, ()> {
    KNOB_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tiny_building(salt: u64) -> BuildingSpec {
    let id = BuildingId::ALL[(salt % 5) as usize];
    BuildingSpec {
        path_length_m: 8 + (salt % 5) as usize,
        num_aps: 6 + (salt % 7) as usize,
        ..id.spec()
    }
}

/// Raw-bit scenario equality: the grid contract is *bit* identity, and
/// `PartialEq` on `f64` would let a `0.0` / `-0.0` divergence slip by.
fn assert_scenario_bits_eq(a: &Scenario, b: &Scenario, context: &str) {
    assert_eq!(a.train.labels, b.train.labels, "{context}: labels differ");
    for (i, (x, y)) in a
        .train
        .x
        .as_slice()
        .iter()
        .zip(b.train.x.as_slice())
        .enumerate()
    {
        assert_eq!(x.to_bits(), y.to_bits(), "{context}: train element {i}");
    }
    assert_eq!(
        a.test_per_device.len(),
        b.test_per_device.len(),
        "{context}"
    );
    for ((da, ta), (db, tb)) in a.test_per_device.iter().zip(&b.test_per_device) {
        assert_eq!(da, db, "{context}: device order differs");
        for (i, (x, y)) in ta.x.as_slice().iter().zip(tb.x.as_slice()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{context}: {} element {i}",
                da.acronym
            );
        }
    }
}

/// The plan-index merge contract end to end: the same grid generated at
/// 1, 2, 3 and 8 worker threads is bit-identical, with the work floor
/// dropped so every fan-out engages at test sizes. (CI additionally runs
/// this binary at `CALLOC_THREADS` ∈ {1, 2, 3, 4}, comparing across
/// processes through the golden tier.)
#[test]
fn scenario_set_is_bit_identical_across_thread_counts() {
    let _guard = lock_knobs();
    let spec = ScenarioSpec::from_base(
        vec![tiny_building(0), tiny_building(1)],
        5,
        CollectionConfig::small(),
        vec![3, 4],
    )
    .with_environments(vec![EnvLevel::BASELINE, EnvLevel::uniform(2.0)]);

    // RAII guards: a failed assertion below must not leak the overrides
    // into the rest of the process.
    let _floor = par::MinWorkGuard::new(1);
    let _threads = par::ThreadGuard::new(1);
    let serial = spec.generate();
    assert_eq!(serial.len(), 8);
    for threads in [2usize, 3, 8] {
        par::set_threads(threads);
        let parallel = spec.generate();
        assert_eq!(serial.len(), parallel.len());
        for i in 0..serial.len() {
            assert_eq!(serial.cell(i), parallel.cell(i), "cell {i}");
            assert_scenario_bits_eq(
                serial.scenario(i),
                parallel.scenario(i),
                &format!("cell {i} diverges between 1 and {threads} threads"),
            );
        }
    }
}

/// Grid cells are bit-identical to direct `Scenario::generate` calls with
/// the matching `(building, config, seed)` triple — the grid engine adds
/// parallelism, never new randomness.
#[test]
fn grid_cells_match_direct_generation() {
    let _guard = lock_knobs();
    let base = CollectionConfig::small();
    let spec = ScenarioSpec::from_base(vec![tiny_building(2)], 7, base.clone(), vec![11, 12]);
    let set = {
        let _floor = par::MinWorkGuard::new(1);
        let _threads = par::ThreadGuard::new(4);
        spec.generate()
    };
    let building = Building::generate(tiny_building(2), 7);
    for (i, &seed) in [11u64, 12].iter().enumerate() {
        let direct = Scenario::generate(&building, &base, seed);
        assert_scenario_bits_eq(
            set.scenario(i),
            &direct,
            &format!("grid cell {i} diverges from the direct call"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Plan enumeration is a pure cross-product: the cell count is the
    /// product of every axis length, plan indices equal positions, every
    /// axis index stays in range and `index_of` inverts the enumeration —
    /// for arbitrary axis sizes.
    #[test]
    fn scenario_plan_is_a_complete_cross_product(
        salt in 0u64..1000,
        n_buildings in 1usize..3,
        n_densities in 1usize..3,
        n_devices in 1usize..3,
        n_envs in 1usize..3,
        n_seeds in 1usize..4,
    ) {
        let base = CollectionConfig::small();
        let device_sets: Vec<_> = (0..n_devices)
            .map(|i| base.test_devices[..=i.min(base.test_devices.len() - 1)].to_vec())
            .collect();
        let spec = ScenarioSpec::from_base(
            (0..n_buildings).map(|i| tiny_building(salt + i as u64)).collect(),
            salt,
            base,
            (0..n_seeds).map(|i| salt + i as u64).collect(),
        )
        .with_densities(
            (0..n_densities)
                .map(|i| SurveyDensity { train_per_rp: i + 1, test_per_rp: 1 })
                .collect(),
        )
        .with_device_sets(device_sets)
        .with_environments((0..n_envs).map(|i| EnvLevel::uniform(1.0 + i as f64)).collect());
        let plan = spec.plan();
        prop_assert_eq!(
            plan.len(),
            n_buildings * n_densities * n_devices * n_envs * n_seeds
        );
        for (i, cell) in plan.cells().iter().enumerate() {
            prop_assert_eq!(cell.plan_index, i);
            prop_assert!(cell.building < n_buildings);
            prop_assert!(cell.density < n_densities);
            prop_assert!(cell.device_set < n_devices);
            prop_assert!(cell.environment < n_envs);
            prop_assert!(cell.seed < n_seeds);
            prop_assert_eq!(
                plan.index_of(cell.building, cell.density, cell.device_set,
                              cell.environment, cell.seed),
                i
            );
        }
    }

    /// Per-cell seed independence: changing one entry of the seed axis
    /// changes only the cells that carry it — every other cell's bits are
    /// untouched.
    #[test]
    fn changing_one_seed_leaves_other_cells_unchanged(
        salt in 0u64..1000,
        seed in 0u64..10_000,
    ) {
        let base = CollectionConfig::small();
        let building = tiny_building(salt);
        let shared = ScenarioSpec::from_base(
            vec![building.clone()], salt, base.clone(), vec![seed, seed + 1],
        );
        let changed = ScenarioSpec::from_base(
            vec![building], salt, base, vec![seed, seed + 2],
        );
        let a = shared.generate();
        let b = changed.generate();
        // The shared-seed cell is bit-identical across the two grids...
        assert_scenario_bits_eq(a.scenario(0), b.scenario(0), "shared-seed cell");
        // ...while the re-seeded cell actually changed.
        prop_assert!(
            a.scenario(1).train.x != b.scenario(1).train.x,
            "different seeds must change the realization"
        );
    }
}
