//! Property-based tests of the trajectory subsystem
//! (`TrajectorySpec → TrajectoryPlan → TrajectorySet`): walks stay inside
//! the building, cross-product enumeration, thread-count-invariant
//! generation and per-cell seed independence.

use calloc_sim::{
    Building, BuildingId, BuildingSpec, CollectionConfig, EnvLevel, MotionConfig, Trajectory,
    TrajectorySpec,
};
use calloc_tensor::par;
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes the tests that flip the process-global `par` knobs (see
/// `proptest_scenario.rs` for the rationale).
static KNOB_LOCK: Mutex<()> = Mutex::new(());

fn lock_knobs() -> std::sync::MutexGuard<'static, ()> {
    KNOB_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tiny_building(salt: u64) -> BuildingSpec {
    let id = BuildingId::ALL[(salt % 5) as usize];
    BuildingSpec {
        path_length_m: 8 + (salt % 5) as usize,
        num_aps: 6 + (salt % 7) as usize,
        ..id.spec()
    }
}

/// Raw-bit trajectory equality: the grid contract is *bit* identity, and
/// `PartialEq` on `f64` would let a `0.0` / `-0.0` divergence slip by.
fn assert_trajectory_bits_eq(a: &Trajectory, b: &Trajectory, context: &str) {
    assert_eq!(a.rp_labels, b.rp_labels, "{context}: labels differ");
    assert_eq!(a.positions_m.len(), b.positions_m.len(), "{context}");
    for (i, (x, y)) in a
        .observations
        .as_slice()
        .iter()
        .zip(b.observations.as_slice())
        .enumerate()
    {
        assert_eq!(x.to_bits(), y.to_bits(), "{context}: observation {i}");
    }
    for (i, (t, u)) in a.timestamps_s.iter().zip(&b.timestamps_s).enumerate() {
        assert_eq!(t.to_bits(), u.to_bits(), "{context}: timestamp {i}");
    }
}

/// The plan-index merge contract end to end: the same trajectory grid
/// generated at 1, 2, 3 and 8 worker threads is bit-identical, with the
/// work floor dropped so every fan-out engages at test sizes.
#[test]
fn trajectory_set_is_bit_identical_across_thread_counts() {
    let _guard = lock_knobs();
    let spec = TrajectorySpec::from_base(
        vec![tiny_building(0), tiny_building(1)],
        5,
        MotionConfig::paper(),
        CollectionConfig::small(),
        vec![6, 12],
        vec![3, 4],
    )
    .with_environments(vec![EnvLevel::BASELINE, EnvLevel::uniform(2.0)]);

    let _floor = par::MinWorkGuard::new(1);
    let _threads = par::ThreadGuard::new(1);
    let serial = spec.generate();
    assert_eq!(serial.len(), 16);
    for threads in [2usize, 3, 8] {
        par::set_threads(threads);
        let parallel = spec.generate();
        assert_eq!(serial.len(), parallel.len());
        for i in 0..serial.len() {
            assert_eq!(serial.cell(i), parallel.cell(i), "cell {i}");
            assert_trajectory_bits_eq(
                serial.trajectory(i),
                parallel.trajectory(i),
                &format!("cell {i} diverges between 1 and {threads} threads"),
            );
        }
    }
}

/// Grid cells are bit-identical to direct `Trajectory::generate` calls —
/// the grid engine adds parallelism, never new randomness.
#[test]
fn grid_cells_match_direct_generation() {
    let _guard = lock_knobs();
    let motion = MotionConfig::paper();
    let base = CollectionConfig::small();
    let spec = TrajectorySpec::from_base(
        vec![tiny_building(2)],
        7,
        motion.clone(),
        base.clone(),
        vec![9],
        vec![11, 12],
    );
    let set = {
        let _floor = par::MinWorkGuard::new(1);
        let _threads = par::ThreadGuard::new(4);
        spec.generate()
    };
    let building = Building::generate(tiny_building(2), 7);
    for (i, &seed) in [11u64, 12].iter().enumerate() {
        let direct = Trajectory::generate(&building, &motion, &base, 9, seed);
        assert_trajectory_bits_eq(
            set.trajectory(i),
            &direct,
            &format!("grid cell {i} diverges from the direct call"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Walks never leave the building: every ground-truth RP index is in
    /// range and every position lies inside the floorplan extent, for
    /// arbitrary buildings, walk lengths and seeds.
    #[test]
    fn walks_never_leave_building_bounds(
        salt in 0u64..1000,
        steps in 1usize..64,
        seed in 0u64..10_000,
    ) {
        let building = Building::generate(tiny_building(salt), salt);
        let t = Trajectory::generate(
            &building,
            &MotionConfig::paper(),
            &CollectionConfig::small(),
            steps,
            seed,
        );
        let (w, h) = building.spec().extent_m;
        prop_assert_eq!(t.len(), steps);
        for (&rp, &(x, y)) in t.rp_labels.iter().zip(&t.positions_m) {
            prop_assert!(rp < building.num_rps(), "RP {} out of range", rp);
            prop_assert!((0.0..=w).contains(&x), "x = {} outside [0, {}]", x, w);
            prop_assert!((0.0..=h).contains(&y), "y = {} outside [0, {}]", y, h);
        }
        for v in t.observations.as_slice() {
            prop_assert!((0.0..=1.0).contains(v), "observation {} not normalized", v);
        }
    }

    /// Plan enumeration is a pure cross-product: the cell count is the
    /// product of every axis length, plan indices equal positions, every
    /// axis index stays in range and `index_of` inverts the enumeration.
    #[test]
    fn trajectory_plan_is_a_complete_cross_product(
        salt in 0u64..1000,
        n_buildings in 1usize..3,
        n_lengths in 1usize..4,
        n_envs in 1usize..3,
        n_seeds in 1usize..4,
    ) {
        let spec = TrajectorySpec::from_base(
            (0..n_buildings).map(|i| tiny_building(salt + i as u64)).collect(),
            salt,
            MotionConfig::paper(),
            CollectionConfig::small(),
            (0..n_lengths).map(|i| 4 + i).collect(),
            (0..n_seeds).map(|i| salt + i as u64).collect(),
        )
        .with_environments((0..n_envs).map(|i| EnvLevel::uniform(1.0 + i as f64)).collect());
        let plan = spec.plan();
        prop_assert_eq!(plan.len(), n_buildings * n_lengths * n_envs * n_seeds);
        for (i, cell) in plan.cells().iter().enumerate() {
            prop_assert_eq!(cell.plan_index, i);
            prop_assert!(cell.building < n_buildings);
            prop_assert!(cell.path_length < n_lengths);
            prop_assert!(cell.environment < n_envs);
            prop_assert!(cell.seed < n_seeds);
            prop_assert_eq!(
                plan.index_of(cell.building, cell.path_length, cell.environment, cell.seed),
                i
            );
        }
    }

    /// Per-cell seed independence: changing one entry of the seed axis
    /// changes only the cells that carry it — every other cell's bits are
    /// untouched.
    #[test]
    fn changing_one_seed_leaves_other_cells_unchanged(
        salt in 0u64..1000,
        seed in 0u64..10_000,
    ) {
        let motion = MotionConfig::paper();
        let base = CollectionConfig::small();
        let building = tiny_building(salt);
        let shared = TrajectorySpec::from_base(
            vec![building.clone()], salt, motion.clone(), base.clone(),
            vec![8], vec![seed, seed + 1],
        );
        let changed = TrajectorySpec::from_base(
            vec![building], salt, motion, base, vec![8], vec![seed, seed + 2],
        );
        let a = shared.generate();
        let b = changed.generate();
        // The shared-seed cell is bit-identical across the two grids...
        assert_trajectory_bits_eq(a.trajectory(0), b.trajectory(0), "shared-seed cell");
        // ...while the re-seeded cell actually changed.
        prop_assert!(
            a.trajectory(1).observations != b.trajectory(1).observations,
            "different seeds must change the realization"
        );
    }
}
