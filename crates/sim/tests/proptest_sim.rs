//! Property-based tests of the simulator's physical invariants across
//! random building realizations and devices.

use calloc_sim::{
    normalize_rss, Building, BuildingId, BuildingSpec, CollectionConfig, DeviceProfile,
    PropagationModel, Scenario, RSS_FLOOR_DBM, RSS_MAX_DBM,
};
use calloc_tensor::Rng;
use proptest::prelude::*;

fn small_spec(salt: u64) -> (BuildingSpec, u64) {
    let ids = BuildingId::ALL;
    let id = ids[(salt % 5) as usize];
    (
        BuildingSpec {
            path_length_m: 10 + (salt % 12) as usize,
            num_aps: 8 + (salt % 20) as usize,
            ..id.spec()
        },
        salt,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All mean RSS values stay inside the representable range, for any
    /// building realization.
    #[test]
    fn mean_rss_is_in_range(salt in 0u64..5000) {
        let (spec, s) = small_spec(salt);
        let b = Building::generate(spec, s);
        let pm = PropagationModel::default();
        for rp in 0..b.num_rps() {
            for ap in 0..b.num_aps() {
                let v = pm.mean_rss_dbm(&b, rp, ap);
                prop_assert!((RSS_FLOOR_DBM..=RSS_MAX_DBM).contains(&v));
            }
        }
    }

    /// Device observation never leaves the representable range and is
    /// deterministic per RNG stream.
    #[test]
    fn device_observation_range_and_determinism(seed in 0u64..5000, truth in -120.0..10.0f64) {
        for d in DeviceProfile::paper_devices() {
            let v1 = d.observe(truth, &mut Rng::new(seed));
            let v2 = d.observe(truth, &mut Rng::new(seed));
            prop_assert_eq!(v1, v2);
            prop_assert!((RSS_FLOOR_DBM..=0.0).contains(&v1));
        }
    }

    /// Normalization is monotone and maps the range endpoints exactly.
    #[test]
    fn normalization_is_monotone(a in -130.0..30.0f64, b in -130.0..30.0f64) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(normalize_rss(lo) <= normalize_rss(hi));
        prop_assert_eq!(normalize_rss(RSS_FLOOR_DBM), 0.0);
        prop_assert_eq!(normalize_rss(RSS_MAX_DBM), 1.0);
    }

    /// A collected scenario always has consistent shapes: every dataset
    /// shares the building's AP count and RP map, features are normalized
    /// and every label is in range.
    #[test]
    fn scenario_shapes_are_consistent(salt in 0u64..2000, seed in 0u64..2000) {
        let (spec, s) = small_spec(salt);
        let b = Building::generate(spec, s);
        let sc = Scenario::generate(&b, &CollectionConfig::small(), seed);
        let all = std::iter::once(&sc.train)
            .chain(sc.test_per_device.iter().map(|(_, d)| d));
        for ds in all {
            prop_assert_eq!(ds.num_aps(), b.num_aps());
            prop_assert_eq!(ds.num_classes(), b.num_rps());
            prop_assert!(ds.x.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
            prop_assert!(ds.labels.iter().all(|&l| l < b.num_rps()));
        }
    }

    /// Localization error is a metric on RP labels: zero iff equal,
    /// symmetric, and bounded by the building diameter.
    #[test]
    fn error_meters_is_a_metric(salt in 0u64..2000, i in 0usize..10, j in 0usize..10) {
        let (spec, s) = small_spec(salt);
        let b = Building::generate(spec, s);
        let sc = Scenario::generate(&b, &CollectionConfig::small(), 3);
        let n = b.num_rps();
        let (i, j) = (i % n, j % n);
        let d_ij = sc.train.error_meters(i, j);
        let d_ji = sc.train.error_meters(j, i);
        prop_assert!((d_ij - d_ji).abs() < 1e-12);
        prop_assert_eq!(d_ij == 0.0, i == j);
        let (w, h) = b.spec().extent_m;
        prop_assert!(d_ij <= (w * w + h * h).sqrt());
    }
}
