//! Building floorplans (Table II of the paper).

use calloc_tensor::{Matrix, Rng};
use serde::{Deserialize, Serialize};

/// Construction materials that shape a building's radio environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Material {
    /// Light wooden partitions: low wall loss.
    Wood,
    /// Concrete walls: medium wall loss.
    Concrete,
    /// Metallic equipment / structures: strong attenuation and multipath.
    Metal,
    /// Open areas: fewer walls, longer sight lines, more people movement.
    WideSpaces,
}

/// The five paper buildings of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BuildingId {
    /// Building 1 — 156 APs, 64 m path, wood and concrete.
    B1,
    /// Building 2 — 125 APs, 62 m path, heavy metallic equipment.
    B2,
    /// Building 3 — 78 APs, 88 m path, wood/concrete/metal.
    B3,
    /// Building 4 — 112 APs, 68 m path, wood/concrete/metal.
    B4,
    /// Building 5 — 218 APs, 60 m path, wide spaces, wood and metal.
    B5,
}

impl BuildingId {
    /// All five paper buildings, in order.
    pub const ALL: [BuildingId; 5] = [
        BuildingId::B1,
        BuildingId::B2,
        BuildingId::B3,
        BuildingId::B4,
        BuildingId::B5,
    ];

    /// Human-readable name matching Table II.
    pub fn name(self) -> &'static str {
        match self {
            BuildingId::B1 => "Building 1",
            BuildingId::B2 => "Building 2",
            BuildingId::B3 => "Building 3",
            BuildingId::B4 => "Building 4",
            BuildingId::B5 => "Building 5",
        }
    }

    /// The Table II specification of this building.
    ///
    /// Radio parameters (path-loss exponent, wall density, noise) are
    /// derived from the material characteristics column: metallic
    /// environments attenuate harder and scatter more; wide spaces have a
    /// lower exponent but more dynamic (people/equipment) noise. Buildings
    /// 1 and 5 are given the largest dynamic noise, mirroring the paper's
    /// observation that they show the highest errors.
    pub fn spec(self) -> BuildingSpec {
        match self {
            BuildingId::B1 => BuildingSpec {
                id: self,
                num_aps: 156,
                path_length_m: 64,
                materials: vec![Material::Wood, Material::Concrete],
                path_loss_exponent: 3.0,
                wall_density_per_m: 0.10,
                wall_loss_db: 2.5,
                shadowing_std_db: 3.5,
                shadowing_corr_m: 7.0,
                dynamic_noise_std_db: 2.8,
                extent_m: (44.0, 26.0),
                seed: 101,
            },
            BuildingId::B2 => BuildingSpec {
                id: self,
                num_aps: 125,
                path_length_m: 62,
                materials: vec![Material::Metal],
                path_loss_exponent: 3.3,
                wall_density_per_m: 0.12,
                wall_loss_db: 3.5,
                shadowing_std_db: 4.0,
                shadowing_corr_m: 7.0,
                dynamic_noise_std_db: 2.0,
                extent_m: (40.0, 24.0),
                seed: 102,
            },
            BuildingId::B3 => BuildingSpec {
                id: self,
                num_aps: 78,
                path_length_m: 88,
                materials: vec![Material::Wood, Material::Concrete, Material::Metal],
                path_loss_exponent: 3.1,
                wall_density_per_m: 0.11,
                wall_loss_db: 3.0,
                shadowing_std_db: 3.5,
                shadowing_corr_m: 7.0,
                dynamic_noise_std_db: 1.8,
                extent_m: (56.0, 30.0),
                seed: 103,
            },
            BuildingId::B4 => BuildingSpec {
                id: self,
                num_aps: 112,
                path_length_m: 68,
                materials: vec![Material::Wood, Material::Concrete, Material::Metal],
                path_loss_exponent: 3.1,
                wall_density_per_m: 0.11,
                wall_loss_db: 3.0,
                shadowing_std_db: 3.5,
                shadowing_corr_m: 7.0,
                dynamic_noise_std_db: 1.8,
                extent_m: (46.0, 28.0),
                seed: 104,
            },
            BuildingId::B5 => BuildingSpec {
                id: self,
                num_aps: 218,
                path_length_m: 60,
                materials: vec![Material::WideSpaces, Material::Wood, Material::Metal],
                path_loss_exponent: 2.6,
                wall_density_per_m: 0.06,
                wall_loss_db: 2.0,
                shadowing_std_db: 3.0,
                shadowing_corr_m: 7.0,
                dynamic_noise_std_db: 3.0,
                extent_m: (50.0, 32.0),
                seed: 105,
            },
        }
    }
}

/// Parametric description of a building (the generator input).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BuildingSpec {
    /// Which paper building this is.
    pub id: BuildingId,
    /// Number of visible Wi-Fi access points (Table II).
    pub num_aps: usize,
    /// Walkable path length in meters; RPs are laid out at 1 m granularity,
    /// so this is also the number of location classes.
    pub path_length_m: usize,
    /// Dominant construction materials (Table II "Characteristics").
    pub materials: Vec<Material>,
    /// Log-distance path-loss exponent `n`.
    pub path_loss_exponent: f64,
    /// Expected wall crossings per meter of propagation distance.
    pub wall_density_per_m: f64,
    /// Attenuation per crossed wall, in dB.
    pub wall_loss_db: f64,
    /// Standard deviation of static log-normal shadowing, in dB.
    pub shadowing_std_db: f64,
    /// Spatial decorrelation distance of shadowing along the survey path,
    /// in meters (indoor measurements report 5–10 m). Adjacent RPs share
    /// most of their shadowing, which is what makes them genuinely hard to
    /// tell apart.
    pub shadowing_corr_m: f64,
    /// Standard deviation of time-varying environmental noise, in dB.
    pub dynamic_noise_std_db: f64,
    /// Bounding box of the floorplan in meters (width, height).
    pub extent_m: (f64, f64),
    /// Seed controlling AP placement and the static radio realization.
    pub seed: u64,
}

/// A concrete building: AP positions, the RP path and the *static* radio
/// realization (wall-crossing counts and shadowing per RP/AP pair).
///
/// The static realization is sampled once at construction so that repeated
/// fingerprint collections see the same environment and only time-varying
/// noise differs — exactly like a real site survey.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Building {
    spec: BuildingSpec,
    ap_positions: Vec<(f64, f64)>,
    rp_positions: Vec<(f64, f64)>,
    wall_counts: Matrix,
    shadowing_db: Matrix,
}

impl Building {
    /// Generates a building from its spec. `salt` perturbs the layout seed,
    /// letting tests create independent realizations of the same spec.
    pub fn generate(spec: BuildingSpec, salt: u64) -> Self {
        let mut rng = Rng::new(spec.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let (w, h) = spec.extent_m;

        let ap_positions: Vec<(f64, f64)> = (0..spec.num_aps)
            .map(|_| (rng.uniform(0.0, w), rng.uniform(0.0, h)))
            .collect();

        let rp_positions = serpentine_path(w, h, spec.path_length_m);

        let n_rp = rp_positions.len();
        let n_ap = ap_positions.len();
        let mut wall_counts = Matrix::zeros(n_rp, n_ap);
        let mut shadowing_db = Matrix::zeros(n_rp, n_ap);
        // Per-AP wall-fraction offset: adjacent RPs see almost the same
        // propagation distance, so they must see almost the same wall
        // count. A per-link i.i.d. jitter would hand every RP an
        // artificial unique signature and make localization trivially
        // easy; a per-AP offset keeps the rounding boundary consistent
        // along the path.
        let wall_offset: Vec<f64> = (0..n_ap).map(|_| rng.uniform(-0.5, 0.5)).collect();
        // Shadowing is spatially correlated along the walking path:
        // an AR(1) process per AP with the spec's decorrelation distance
        // (RPs are 1 m apart, so the per-step correlation is
        // exp(-1 / corr_m)).
        let rho = (-1.0 / spec.shadowing_corr_m.max(0.1)).exp();
        let innovation = spec.shadowing_std_db * (1.0 - rho * rho).sqrt();
        for a in 0..n_ap {
            let ap = ap_positions[a];
            let mut shade = rng.normal(0.0, spec.shadowing_std_db);
            for (r, &rp) in rp_positions.iter().enumerate() {
                let d = dist(rp, ap);
                let expected = d * spec.wall_density_per_m;
                wall_counts.set(r, a, (expected + wall_offset[a]).max(0.0).round());
                if r > 0 {
                    shade = rho * shade + rng.normal(0.0, innovation);
                }
                shadowing_db.set(r, a, shade);
            }
        }

        Building {
            spec,
            ap_positions,
            rp_positions,
            wall_counts,
            shadowing_db,
        }
    }

    /// The generator spec.
    pub fn spec(&self) -> &BuildingSpec {
        &self.spec
    }

    /// Number of reference points (= location classes).
    pub fn num_rps(&self) -> usize {
        self.rp_positions.len()
    }

    /// Number of visible APs (= fingerprint dimensionality).
    pub fn num_aps(&self) -> usize {
        self.ap_positions.len()
    }

    /// AP positions in meters.
    pub fn ap_positions(&self) -> &[(f64, f64)] {
        &self.ap_positions
    }

    /// RP positions in meters, indexed by class label.
    pub fn rp_positions(&self) -> &[(f64, f64)] {
        &self.rp_positions
    }

    /// Static wall-crossing count between RP `rp` and AP `ap`.
    pub fn wall_count(&self, rp: usize, ap: usize) -> f64 {
        self.wall_counts.get(rp, ap)
    }

    /// Static shadowing between RP `rp` and AP `ap`, in dB.
    pub fn shadowing_db(&self, rp: usize, ap: usize) -> f64 {
        self.shadowing_db.get(rp, ap)
    }

    /// Euclidean distance in meters between two RPs (used to convert a
    /// misclassification into a localization error).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn rp_distance(&self, a: usize, b: usize) -> f64 {
        dist(self.rp_positions[a], self.rp_positions[b])
    }
}

/// Lays out `length_m + 1`-ish RPs at 1 m steps along a serpentine corridor
/// path inside a `w`-by-`h` box, mimicking a walking survey. Returns exactly
/// `length_m` points.
fn serpentine_path(w: f64, h: f64, length_m: usize) -> Vec<(f64, f64)> {
    let margin = 2.0;
    let usable_w = (w - 2.0 * margin).max(1.0);
    let row_gap = 4.0;
    let mut points = Vec::with_capacity(length_m);
    let mut x = margin;
    let mut y = margin;
    let mut dir = 1.0;
    while points.len() < length_m {
        points.push((x, y.min(h - margin)));
        let next_x = x + dir;
        if next_x > margin + usable_w || next_x < margin {
            // turn: move up a row and reverse direction
            y += row_gap;
            dir = -dir;
        } else {
            x = next_x;
        }
    }
    points
}

fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table_ii() {
        assert_eq!(BuildingId::B1.spec().num_aps, 156);
        assert_eq!(BuildingId::B2.spec().num_aps, 125);
        assert_eq!(BuildingId::B3.spec().num_aps, 78);
        assert_eq!(BuildingId::B4.spec().num_aps, 112);
        assert_eq!(BuildingId::B5.spec().num_aps, 218);
        assert_eq!(BuildingId::B1.spec().path_length_m, 64);
        assert_eq!(BuildingId::B2.spec().path_length_m, 62);
        assert_eq!(BuildingId::B3.spec().path_length_m, 88);
        assert_eq!(BuildingId::B4.spec().path_length_m, 68);
        assert_eq!(BuildingId::B5.spec().path_length_m, 60);
    }

    #[test]
    fn generate_counts_match_spec() {
        for id in BuildingId::ALL {
            let b = Building::generate(id.spec(), 0);
            assert_eq!(b.num_aps(), id.spec().num_aps, "{id:?}");
            assert_eq!(b.num_rps(), id.spec().path_length_m, "{id:?}");
        }
    }

    #[test]
    fn rps_are_one_meter_apart_along_path() {
        let b = Building::generate(BuildingId::B1.spec(), 0);
        let rps = b.rp_positions();
        let mut adjacent_close = 0;
        for w in rps.windows(2) {
            let d = dist(w[0], w[1]);
            // consecutive path points are 1 m apart except at row turns
            if (d - 1.0).abs() < 1e-9 {
                adjacent_close += 1;
            } else {
                assert!(d <= 6.0, "gap {d} too large");
            }
        }
        assert!(adjacent_close as f64 > rps.len() as f64 * 0.8);
    }

    #[test]
    fn points_stay_inside_extent() {
        for id in BuildingId::ALL {
            let b = Building::generate(id.spec(), 3);
            let (w, h) = b.spec().extent_m;
            for &(x, y) in b.rp_positions() {
                assert!(x >= 0.0 && x <= w && y >= 0.0 && y <= h);
            }
            for &(x, y) in b.ap_positions() {
                assert!(x >= 0.0 && x <= w && y >= 0.0 && y <= h);
            }
        }
    }

    #[test]
    fn same_seed_same_building() {
        let a = Building::generate(BuildingId::B2.spec(), 5);
        let b = Building::generate(BuildingId::B2.spec(), 5);
        assert_eq!(a.ap_positions(), b.ap_positions());
        assert_eq!(a.shadowing_db(3, 7), b.shadowing_db(3, 7));
    }

    #[test]
    fn different_salt_different_layout() {
        let a = Building::generate(BuildingId::B2.spec(), 1);
        let b = Building::generate(BuildingId::B2.spec(), 2);
        assert_ne!(a.ap_positions(), b.ap_positions());
    }

    #[test]
    fn wall_counts_grow_with_distance_on_average() {
        let b = Building::generate(BuildingId::B1.spec(), 0);
        let mut near = Vec::new();
        let mut far = Vec::new();
        for r in 0..b.num_rps() {
            for a in 0..b.num_aps() {
                let d = dist(b.rp_positions()[r], b.ap_positions()[a]);
                if d < 10.0 {
                    near.push(b.wall_count(r, a));
                } else if d > 30.0 {
                    far.push(b.wall_count(r, a));
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(mean(&far) > mean(&near));
    }

    #[test]
    fn rp_distance_is_symmetric_and_zero_on_diagonal() {
        let b = Building::generate(BuildingId::B3.spec(), 0);
        assert_eq!(b.rp_distance(5, 5), 0.0);
        assert!((b.rp_distance(2, 9) - b.rp_distance(9, 2)).abs() < 1e-12);
    }
}
