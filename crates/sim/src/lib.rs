//! # calloc-sim
//!
//! Wi-Fi RSS indoor-localization data simulator: the substrate that stands
//! in for the measured smartphone dataset of the CALLOC paper (Tables I and
//! II), which is not publicly available.
//!
//! The simulator produces RSS fingerprints with the statistical structure
//! that drives the paper's results:
//!
//! * a **log-distance path-loss** radio model with per-building path-loss
//!   exponent, wall attenuation and static log-normal shadowing;
//! * **dynamic environmental noise** per measurement (people, equipment),
//!   scaled per building to mimic Table II's material characteristics;
//! * **device heterogeneity** (Table I): each smartphone applies its own
//!   gain offset, scale distortion, quantization and noise to the true RSS
//!   field, with the OnePlus 3 (OP3) as the reference capture device;
//! * the paper's collection protocol: reference points at 1 m granularity
//!   along a path, 5 training fingerprints per RP captured with OP3 and 1
//!   test fingerprint per RP per device;
//! * **declarative scenario grids** ([`ScenarioSpec`] → [`ScenarioPlan`] →
//!   [`ScenarioSet`]): buildings × survey densities × device sets ×
//!   environment levels × seeds, generated in parallel and merged in
//!   plan-index order, so a grid is bit-identical at every
//!   `CALLOC_THREADS` (see the [`ScenarioSpec`] docs for the grammar and
//!   the plan-index merge contract);
//! * **trajectory workloads** ([`MotionConfig`] / [`MotionModel`] /
//!   [`Trajectory`] and the mirrored [`TrajectorySpec`] →
//!   [`TrajectoryPlan`] → [`TrajectorySet`] grid): waypoint walks along
//!   the RP path with RSSI sampled through the same propagation +
//!   temporal-drift machinery — moving users instead of i.i.d. test
//!   points (see the [`motion`](crate::Trajectory) docs for the motion
//!   grammar).
//!
//! # Example
//!
//! ```
//! use calloc_sim::{Building, BuildingId, Scenario, CollectionConfig};
//!
//! let building = Building::generate(BuildingId::B1.spec(), 7);
//! let scenario = Scenario::generate(&building, &CollectionConfig::paper(), 7);
//! assert_eq!(scenario.train.num_classes(), building.num_rps());
//! assert_eq!(scenario.test_per_device.len(), 6);
//! ```
//!
//! The same collection as a (one-cell) declarative grid — grids of any
//! size generate in parallel with bit-identical results:
//!
//! ```
//! use calloc_sim::{BuildingId, CollectionConfig, EnvLevel, ScenarioSpec};
//!
//! let mut spec = BuildingId::B1.spec();
//! spec.path_length_m = 10;
//! spec.num_aps = 8;
//! let set = ScenarioSpec::single(spec, 7, CollectionConfig::small(), 7)
//!     .with_environments(vec![EnvLevel::BASELINE, EnvLevel::uniform(2.0)])
//!     .generate();
//! assert_eq!(set.len(), 2);
//! assert_eq!(set.scenario(0).train, set.scenario(1).train);
//! ```

#![deny(missing_docs)]

mod building;
mod dataset;
mod device;
mod grid;
mod motion;
mod propagation;
mod scenario;

pub use building::{Building, BuildingId, BuildingSpec, Material};
pub use dataset::Dataset;
pub use device::DeviceProfile;
pub use grid::{
    collection_identity, EnvLevel, ScenarioCell, ScenarioPlan, ScenarioSet, ScenarioSpec,
    SurveyDensity,
};
pub use motion::{
    trajectory_identity, MotionConfig, MotionModel, Trajectory, TrajectoryCell, TrajectoryPlan,
    TrajectorySet, TrajectorySpec,
};
pub use propagation::{normalize_rss, PropagationModel, RSS_FLOOR_DBM, RSS_MAX_DBM};
pub use scenario::{CollectionConfig, Scenario};
