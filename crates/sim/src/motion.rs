//! Trajectory workloads: waypoint-walk motion simulation over a building.
//!
//! The paper evaluates localizers on i.i.d. test fingerprints; production
//! users *move*. This module adds the motion half of that story: a
//! [`MotionModel`] walks the building's RP path (the serpentine survey
//! path of Table II, RPs at 1 m granularity) under a speed / dwell / turn
//! configuration, and [`Trajectory::generate`] samples RSSI along the walk
//! through the existing propagation + temporal-drift machinery — a
//! trajectory is one *online session in motion*, so it realizes its
//! between-phase drift exactly the way a [`crate::Scenario`] online
//! session does.
//!
//! # The motion grammar
//!
//! The walker lives on the RP path parameterized by arc length: a
//! continuous position `s ∈ [0, num_rps − 1]` plus a direction. Each
//! sample tick it
//!
//! 1. records the RP nearest to `s` (ground truth) and one fingerprint
//!    measured at that RP;
//! 2. *dwells* (no movement) with probability
//!    [`MotionConfig::dwell_prob`], otherwise *turns around* with
//!    probability [`MotionConfig::turn_prob`] and advances by
//!    `speed_mps × sample_period_s` metres (consecutive RPs are 1 m
//!    apart), reflecting off the path ends.
//!
//! Positions are RP positions, so a walk can never leave the building
//! extent (`crates/sim/tests/proptest_motion.rs` pins this). Future
//! motion models (room graphs, pause-and-go, multi-floor) follow the same
//! axis rules as the scenario grid: new fields on [`MotionConfig`] with
//! defaults that keep every pinned walk bit-identical, new axes on
//! [`TrajectorySpec`] with singleton defaults.
//!
//! # Grids and the plan-index merge contract
//!
//! [`TrajectorySpec`] → [`TrajectoryPlan`] → [`TrajectorySet`] mirrors the
//! scenario grid ([`crate::ScenarioSpec`]) exactly: axes are flattened
//! into a plan-indexed work list (building-major, then path length, then
//! environment, seed innermost), [`TrajectoryPlan::shard`] restricts to a
//! contiguous window keeping parent indices, and
//! [`TrajectoryPlan::generate`] fans cells out on
//! [`calloc_tensor::par::par_chunks`] merging in plan-index order — a
//! [`TrajectorySet`] is **bit-identical at every `CALLOC_THREADS`**.
//! Every trajectory derives all randomness from its cell seed and the
//! building seed via per-trajectory RNG forks (one stream for the walk,
//! one for the measurement session), so cells are pure functions of
//! `(building, motion, config, steps, seed)`.

use calloc_tensor::{par, Matrix, Rng};
use serde::{Deserialize, Serialize};

use crate::building::{Building, BuildingId, BuildingSpec};
use crate::grid::EnvLevel;
use crate::propagation::{normalize_rss, RSS_FLOOR_DBM};
use crate::scenario::{CollectionConfig, PhaseDrift};

/// Waypoint-walk parameters: how a user moves along the RP path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MotionConfig {
    /// Walking speed in metres per second (consecutive path RPs are 1 m
    /// apart, so this is also RPs per second along the path).
    pub speed_mps: f64,
    /// Probability of dwelling (zero movement) at each sample tick —
    /// users stop at desks, doors and displays.
    pub dwell_prob: f64,
    /// Probability of reversing walk direction at each moving tick.
    pub turn_prob: f64,
    /// Seconds between consecutive RSSI samples (Wi-Fi scan period).
    pub sample_period_s: f64,
}

impl MotionConfig {
    /// The default walk: 1.4 m/s pedestrian speed, occasional dwells and
    /// turn-arounds, one scan per second.
    pub fn paper() -> Self {
        MotionConfig {
            speed_mps: 1.4,
            dwell_prob: 0.1,
            turn_prob: 0.05,
            sample_period_s: 1.0,
        }
    }
}

/// A waypoint walker over one building's RP path.
pub struct MotionModel<'a> {
    building: &'a Building,
    config: MotionConfig,
}

impl<'a> MotionModel<'a> {
    /// A walker for `building` under `config`.
    pub fn new(building: &'a Building, config: MotionConfig) -> Self {
        MotionModel { building, config }
    }

    /// Walks `num_steps` sample ticks and returns the ground-truth RP
    /// index at each tick. The start RP, start direction, dwells and
    /// turns are all drawn from `rng`, so the walk is a pure function of
    /// the RNG state; consecutive ticks move at most
    /// `speed_mps × sample_period_s` metres of arc length.
    pub fn walk(&self, num_steps: usize, rng: &mut Rng) -> Vec<usize> {
        let n = self.building.num_rps();
        let max_s = (n - 1) as f64;
        let mut s = rng.index(n) as f64;
        let mut dir = if rng.bernoulli(0.5) { 1.0 } else { -1.0 };
        let step_m = self.config.speed_mps * self.config.sample_period_s;
        let mut rps = Vec::with_capacity(num_steps);
        for _ in 0..num_steps {
            rps.push((s.round() as usize).min(n - 1));
            if rng.bernoulli(self.config.dwell_prob) {
                continue;
            }
            if rng.bernoulli(self.config.turn_prob) {
                dir = -dir;
            }
            s += dir * step_m;
            // Reflect off the path ends; the clamp guards degenerate
            // single-RP paths and steps longer than the whole path.
            if s < 0.0 {
                s = -s;
                dir = 1.0;
            }
            if s > max_s {
                s = 2.0 * max_s - s;
                dir = -1.0;
            }
            s = s.clamp(0.0, max_s);
        }
        rps
    }
}

/// One walked-and-measured trajectory: timestamped ground truth plus the
/// RSSI fingerprint observed at each sample tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    /// Seconds since walk start, one per sample tick.
    pub timestamps_s: Vec<f64>,
    /// Ground-truth RP index at each tick.
    pub rp_labels: Vec<usize>,
    /// Ground-truth position in metres at each tick (the RP position).
    pub positions_m: Vec<(f64, f64)>,
    /// Normalized RSSI observations, one row per tick (`len × num_aps`).
    pub observations: Matrix,
}

impl Trajectory {
    /// Walks and measures one trajectory, reproducibly from `seed`.
    ///
    /// Randomness discipline (the per-trajectory fork contract): a
    /// trajectory RNG is seeded from `seed` and the building seed, then
    /// forked once for the walk and once for the measurement session —
    /// so two trajectories with different seeds are independent, and the
    /// walk of a cell is unchanged by environment-axis drift multipliers
    /// (drift shifts what is *measured*, never where the user *walks*).
    /// The session stream samples a [`crate::Scenario`]-style drift
    /// realization first, then measures one fingerprint per tick at the
    /// walker's RP through propagation → drift shift → device transfer →
    /// normalization, exactly the scenario collection sequence. The
    /// device is [`CollectionConfig::reference_device`].
    pub fn generate(
        building: &Building,
        motion: &MotionConfig,
        config: &CollectionConfig,
        num_steps: usize,
        seed: u64,
    ) -> Trajectory {
        let n_rp = building.num_rps();
        let n_ap = building.num_aps();
        let mut rng = Rng::new(seed ^ building.spec().seed.rotate_left(23));
        let mut walk_rng = rng.fork(1);
        let mut session_rng = rng.fork(2);

        let model = MotionModel::new(building, motion.clone());
        let rp_labels = model.walk(num_steps, &mut walk_rng);

        let drift = PhaseDrift::sample(
            n_rp,
            n_ap,
            config.temporal_drift_std_db,
            config.reshadow_std_db,
            &mut session_rng,
        );
        let mut observations = Matrix::zeros(num_steps, n_ap);
        for (row, &rp) in rp_labels.iter().enumerate() {
            for ap in 0..n_ap {
                let truth = config
                    .propagation
                    .measure_dbm(building, rp, ap, &mut session_rng);
                let shifted = if truth > RSS_FLOOR_DBM {
                    (truth + drift.ap_drift_db[ap] + drift.reshadow_db.get(rp, ap))
                        .clamp(RSS_FLOOR_DBM, 0.0)
                } else {
                    truth
                };
                let observed = config.reference_device.observe(shifted, &mut session_rng);
                observations.set(row, ap, normalize_rss(observed));
            }
        }

        let positions_m = rp_labels
            .iter()
            .map(|&rp| building.rp_positions()[rp])
            .collect();
        let timestamps_s = (0..num_steps)
            .map(|t| t as f64 * motion.sample_period_s)
            .collect();
        Trajectory {
            timestamps_s,
            rp_labels,
            positions_m,
            observations,
        }
    }

    /// Number of sample ticks.
    pub fn len(&self) -> usize {
        self.rp_labels.len()
    }

    /// Whether the trajectory has no ticks.
    pub fn is_empty(&self) -> bool {
        self.rp_labels.is_empty()
    }

    /// Total ground-truth path length in metres (sum of consecutive
    /// position distances — dwells contribute zero).
    pub fn path_length_m(&self) -> f64 {
        self.positions_m
            .windows(2)
            .map(|w| {
                let (x0, y0) = w[0];
                let (x1, y1) = w[1];
                ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt()
            })
            .sum()
    }
}

/// Canonical identity string of one trajectory generation: the resolved
/// `(building spec, salt, motion config, collection config, steps, seed)`
/// tuple [`Trajectory::generate`] is a pure function of — the trajectory
/// mirror of [`crate::collection_identity`], usable as a cache key.
/// The scheme version must be bumped whenever generation semantics change
/// incompatibly.
pub fn trajectory_identity(
    spec: &BuildingSpec,
    building_salt: u64,
    motion: &MotionConfig,
    config: &CollectionConfig,
    num_steps: usize,
    seed: u64,
) -> String {
    format!(
        "trajectory v1 building={spec:?} salt={building_salt} motion={motion:?} \
         config={config:?} steps={num_steps} seed={seed}"
    )
}

/// Declarative description of a trajectory grid: buildings × path lengths
/// × environment levels × seeds over a template motion + collection
/// config, mirroring [`crate::ScenarioSpec`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrajectorySpec {
    /// Building axis (outermost): one generated realization per spec.
    pub buildings: Vec<BuildingSpec>,
    /// Salt fed to [`Building::generate`] for every building realization.
    pub building_salt: u64,
    /// Template walk parameters, shared by the whole grid.
    pub motion: MotionConfig,
    /// Template collection protocol; the environment axis scales its
    /// drift fields per cell, everything else is shared.
    pub base: CollectionConfig,
    /// Path-length axis: number of sample ticks per trajectory.
    pub path_lengths: Vec<usize>,
    /// Environment axis: between-phase drift severity (shifts what the
    /// walker measures, never where it walks).
    pub environments: Vec<EnvLevel>,
    /// Seed axis (innermost): independent walk + session realizations.
    pub seeds: Vec<u64>,
}

impl TrajectorySpec {
    /// A grid over `buildings` with a singleton baseline environment
    /// axis — each cell is then exactly a direct
    /// [`Trajectory::generate`] call.
    pub fn from_base(
        buildings: Vec<BuildingSpec>,
        building_salt: u64,
        motion: MotionConfig,
        base: CollectionConfig,
        path_lengths: Vec<usize>,
        seeds: Vec<u64>,
    ) -> Self {
        TrajectorySpec {
            environments: vec![EnvLevel::BASELINE],
            buildings,
            building_salt,
            motion,
            base,
            path_lengths,
            seeds,
        }
    }

    /// The paper grid: all five Table II buildings, three path lengths,
    /// baseline environment, one seed.
    pub fn paper() -> Self {
        Self::from_base(
            BuildingId::ALL.iter().map(|id| id.spec()).collect(),
            0,
            MotionConfig::paper(),
            CollectionConfig::paper(),
            vec![30, 60, 120],
            vec![42],
        )
    }

    /// The quick grid: two shrunken buildings (24 m paths, 40 APs — the
    /// bench quick profile), two path lengths, baseline environment, one
    /// seed.
    pub fn quick() -> Self {
        let buildings = [BuildingId::B1, BuildingId::B3]
            .iter()
            .map(|id| BuildingSpec {
                path_length_m: 24,
                num_aps: 40,
                ..id.spec()
            })
            .collect();
        Self::from_base(
            buildings,
            0,
            MotionConfig::paper(),
            CollectionConfig::paper(),
            vec![16, 32],
            vec![42],
        )
    }

    /// A one-cell grid: the generated cell is bit-identical to the
    /// direct [`Trajectory::generate`] call with the same arguments.
    pub fn single(
        building: BuildingSpec,
        building_salt: u64,
        motion: MotionConfig,
        config: CollectionConfig,
        num_steps: usize,
        seed: u64,
    ) -> Self {
        Self::from_base(
            vec![building],
            building_salt,
            motion,
            config,
            vec![num_steps],
            vec![seed],
        )
    }

    /// Returns a copy with the given building salt.
    pub fn with_building_salt(mut self, salt: u64) -> Self {
        self.building_salt = salt;
        self
    }

    /// Returns a copy with the given path-length axis.
    pub fn with_path_lengths(mut self, path_lengths: Vec<usize>) -> Self {
        self.path_lengths = path_lengths;
        self
    }

    /// Returns a copy with the given environment axis.
    pub fn with_environments(mut self, environments: Vec<EnvLevel>) -> Self {
        self.environments = environments;
        self
    }

    /// Returns a copy with the given seed axis.
    pub fn with_seeds(mut self, seeds: Vec<u64>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Enumerates the grid: generates one [`Building`] realization per
    /// building-axis entry (fanned out on [`par::par_chunks`], merged in
    /// axis order) and flattens the cross-product into the plan-indexed
    /// work list. An empty axis yields an empty plan.
    pub fn plan(&self) -> TrajectoryPlan {
        let buildings: Vec<Building> = par::par_chunks(self.buildings.len(), 1, |range| {
            range
                .map(|i| Building::generate(self.buildings[i].clone(), self.building_salt))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
        let mut cells = Vec::with_capacity(
            self.buildings.len()
                * self.path_lengths.len()
                * self.environments.len()
                * self.seeds.len(),
        );
        for building in 0..self.buildings.len() {
            for path_length in 0..self.path_lengths.len() {
                for environment in 0..self.environments.len() {
                    for seed in 0..self.seeds.len() {
                        cells.push(TrajectoryCell {
                            plan_index: cells.len(),
                            building,
                            path_length,
                            environment,
                            seed,
                        });
                    }
                }
            }
        }
        TrajectoryPlan {
            spec: self.clone(),
            buildings,
            cells,
        }
    }

    /// Plans and generates in one call.
    pub fn generate(&self) -> TrajectorySet {
        self.plan().generate()
    }
}

/// One unit of trajectory-generation work: one point on the grid axes.
/// All fields are indices into the axes of the owning plan's
/// [`TrajectorySpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrajectoryCell {
    /// Position of this cell in the plan — the merge key of the engine's
    /// determinism contract.
    pub plan_index: usize,
    /// Index into [`TrajectorySpec::buildings`].
    pub building: usize,
    /// Index into [`TrajectorySpec::path_lengths`].
    pub path_length: usize,
    /// Index into [`TrajectorySpec::environments`].
    pub environment: usize,
    /// Index into [`TrajectorySpec::seeds`].
    pub seed: usize,
}

/// A fully enumerated trajectory grid: the generated building
/// realizations plus the flat cell work list, in plan-index order.
#[derive(Debug, Clone)]
pub struct TrajectoryPlan {
    spec: TrajectorySpec,
    buildings: Vec<Building>,
    cells: Vec<TrajectoryCell>,
}

impl TrajectoryPlan {
    /// The spec this plan was enumerated from.
    pub fn spec(&self) -> &TrajectorySpec {
        &self.spec
    }

    /// The generated building realizations, in building-axis order.
    pub fn buildings(&self) -> &[Building] {
        &self.buildings
    }

    /// The flat work list, in plan-index order.
    pub fn cells(&self) -> &[TrajectoryCell] {
        &self.cells
    }

    /// Number of cells in the plan.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the plan has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Restricts the plan to a contiguous range of cell positions, the
    /// [`crate::ScenarioPlan::shard`] contract verbatim: the shard keeps
    /// the full spec and building list, and its cells keep their
    /// **original** plan indices.
    ///
    /// # Panics
    ///
    /// Panics if the range does not lie within `0..len()`.
    pub fn shard(&self, range: std::ops::Range<usize>) -> TrajectoryPlan {
        assert!(
            range.start <= range.end && range.end <= self.cells.len(),
            "shard range {range:?} out of bounds for a {}-cell plan",
            self.cells.len()
        );
        TrajectoryPlan {
            spec: self.spec.clone(),
            buildings: self.buildings.clone(),
            cells: self.cells[range].to_vec(),
        }
    }

    /// The concrete collection protocol of one cell: the template config
    /// with the cell's environment applied. A baseline cell reproduces
    /// the template **exactly** (multiplying by `1.0` preserves bits).
    pub fn config_for(&self, cell: &TrajectoryCell) -> CollectionConfig {
        self.spec.environments[cell.environment].apply(&self.spec.base)
    }

    /// The number of sample ticks of one cell.
    pub fn steps_for(&self, cell: &TrajectoryCell) -> usize {
        self.spec.path_lengths[cell.path_length]
    }

    /// The generation seed of one cell.
    pub fn seed_for(&self, cell: &TrajectoryCell) -> u64 {
        self.spec.seeds[cell.seed]
    }

    /// Canonical identity of one cell's trajectory (see
    /// [`trajectory_identity`]), built from the **resolved** per-cell
    /// config.
    pub fn cell_identity(&self, cell: &TrajectoryCell) -> String {
        trajectory_identity(
            &self.spec.buildings[cell.building],
            self.spec.building_salt,
            &self.spec.motion,
            &self.config_for(cell),
            self.steps_for(cell),
            self.seed_for(cell),
        )
    }

    /// Plan index of the cell at the given axis indices (the enumeration
    /// is a dense cross-product, so this is pure arithmetic).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range for its axis.
    pub fn index_of(
        &self,
        building: usize,
        path_length: usize,
        environment: usize,
        seed: usize,
    ) -> usize {
        assert!(
            building < self.spec.buildings.len(),
            "building out of range"
        );
        assert!(
            path_length < self.spec.path_lengths.len(),
            "path length out of range"
        );
        assert!(
            environment < self.spec.environments.len(),
            "environment out of range"
        );
        assert!(seed < self.spec.seeds.len(), "seed out of range");
        ((building * self.spec.path_lengths.len() + path_length) * self.spec.environments.len()
            + environment)
            * self.spec.seeds.len()
            + seed
    }

    /// Executes the plan: every cell is walked and measured (fanned out
    /// on [`par::par_chunks`]) and the trajectories are merged in
    /// plan-index order, so the returned set is bit-identical for every
    /// thread count.
    pub fn generate(self) -> TrajectorySet {
        let trajectories: Vec<Trajectory> = par::par_chunks(self.cells.len(), 1, |range| {
            range
                .map(|i| {
                    let cell = &self.cells[i];
                    Trajectory::generate(
                        &self.buildings[cell.building],
                        &self.spec.motion,
                        &self.config_for(cell),
                        self.steps_for(cell),
                        self.seed_for(cell),
                    )
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
        TrajectorySet {
            plan: self,
            trajectories,
        }
    }
}

/// A generated trajectory grid: one [`Trajectory`] per plan cell, in
/// plan-index order, together with the plan that produced it.
#[derive(Debug, Clone)]
pub struct TrajectorySet {
    plan: TrajectoryPlan,
    trajectories: Vec<Trajectory>,
}

impl TrajectorySet {
    /// The plan this set was generated from.
    pub fn plan(&self) -> &TrajectoryPlan {
        &self.plan
    }

    /// Number of trajectories in the set.
    pub fn len(&self) -> usize {
        self.trajectories.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.trajectories.is_empty()
    }

    /// All trajectories, in plan-index order.
    pub fn trajectories(&self) -> &[Trajectory] {
        &self.trajectories
    }

    /// The trajectory at a plan index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range (as do the accessors below).
    pub fn trajectory(&self, index: usize) -> &Trajectory {
        &self.trajectories[index]
    }

    /// The cell at a plan index.
    pub fn cell(&self, index: usize) -> &TrajectoryCell {
        &self.plan.cells()[index]
    }

    /// The building realization a plan index was walked in.
    pub fn building_for(&self, index: usize) -> &Building {
        &self.plan.buildings()[self.cell(index).building]
    }

    /// The Table II name of the building a plan index was walked in.
    pub fn building_name(&self, index: usize) -> &'static str {
        self.building_for(index).spec().id.name()
    }

    /// The environment level a plan index was measured under.
    pub fn env_for(&self, index: usize) -> EnvLevel {
        self.plan.spec().environments[self.cell(index).environment]
    }

    /// The generation seed of a plan index.
    pub fn seed_for(&self, index: usize) -> u64 {
        self.plan.seed_for(self.cell(index))
    }

    /// Canonical identity of a plan index — see
    /// [`TrajectoryPlan::cell_identity`].
    pub fn cell_identity(&self, index: usize) -> String {
        self.plan.cell_identity(self.cell(index))
    }

    /// Iterates `(cell, trajectory)` pairs in plan-index order.
    pub fn iter(&self) -> impl Iterator<Item = (&TrajectoryCell, &Trajectory)> {
        self.plan.cells().iter().zip(&self.trajectories)
    }

    /// Plan index of the given axis indices — see
    /// [`TrajectoryPlan::index_of`].
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range for its axis.
    pub fn index_of(
        &self,
        building: usize,
        path_length: usize,
        environment: usize,
        seed: usize,
    ) -> usize {
        self.plan.index_of(building, path_length, environment, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_building() -> BuildingSpec {
        BuildingSpec {
            path_length_m: 10,
            num_aps: 8,
            ..BuildingId::B2.spec()
        }
    }

    #[test]
    fn presets_have_singleton_axes() {
        let paper = TrajectorySpec::paper();
        assert_eq!(paper.buildings.len(), 5);
        assert_eq!(paper.environments, vec![EnvLevel::BASELINE]);
        assert_eq!(paper.plan().len(), 15);

        let quick = TrajectorySpec::quick();
        assert_eq!(quick.buildings.len(), 2);
        assert!(quick
            .buildings
            .iter()
            .all(|b| b.path_length_m == 24 && b.num_aps == 40));
        assert_eq!(quick.plan().len(), 4);
    }

    #[test]
    fn plan_enumerates_the_full_cross_product() {
        let spec = TrajectorySpec::from_base(
            vec![tiny_building(), BuildingId::B4.spec()],
            3,
            MotionConfig::paper(),
            CollectionConfig::small(),
            vec![4, 8],
            vec![7, 8, 9],
        )
        .with_environments(vec![EnvLevel::BASELINE, EnvLevel::uniform(2.0)]);
        let plan = spec.plan();
        // 2 buildings × 2 path lengths × 2 environments × 3 seeds
        assert_eq!(plan.len(), 24);
        assert!(!plan.is_empty());
        for (i, cell) in plan.cells().iter().enumerate() {
            assert_eq!(cell.plan_index, i, "plan index must equal position");
            assert_eq!(
                plan.index_of(cell.building, cell.path_length, cell.environment, cell.seed),
                i,
                "index_of must invert the enumeration"
            );
        }
        // Seed is the innermost axis; building the outermost.
        assert_eq!(plan.cells()[0].seed, 0);
        assert_eq!(plan.cells()[1].seed, 1);
        assert_eq!(plan.cells()[2].seed, 2);
        assert_eq!(plan.cells()[3].environment, 1);
        assert!(plan.cells()[..plan.len() / 2]
            .iter()
            .all(|c| c.building == 0));
    }

    #[test]
    fn baseline_cell_config_reproduces_the_template() {
        let base = CollectionConfig::small();
        let spec = TrajectorySpec::single(
            tiny_building(),
            1,
            MotionConfig::paper(),
            base.clone(),
            6,
            5,
        );
        let plan = spec.plan();
        let cell = plan.cells()[0];
        let config = plan.config_for(&cell);
        assert_eq!(
            config.temporal_drift_std_db.to_bits(),
            base.temporal_drift_std_db.to_bits()
        );
        assert_eq!(
            config.reshadow_std_db.to_bits(),
            base.reshadow_std_db.to_bits()
        );
        assert_eq!(plan.steps_for(&cell), 6);
        assert_eq!(plan.seed_for(&cell), 5);
    }

    #[test]
    fn single_cell_matches_direct_generate() {
        let bspec = tiny_building();
        let motion = MotionConfig::paper();
        let config = CollectionConfig::small();
        let set = TrajectorySpec::single(bspec.clone(), 4, motion.clone(), config.clone(), 9, 11)
            .generate();
        assert_eq!(set.len(), 1);
        let direct = Trajectory::generate(&Building::generate(bspec, 4), &motion, &config, 9, 11);
        assert_eq!(
            set.trajectory(0),
            &direct,
            "grid cell must equal direct call"
        );
        assert_eq!(set.seed_for(0), 11);
        assert!(set.env_for(0).is_baseline());
        assert_eq!(set.building_name(0), "Building 2");
    }

    #[test]
    fn trajectory_shape_and_truth_are_consistent() {
        let building = Building::generate(tiny_building(), 2);
        let motion = MotionConfig::paper();
        let t = Trajectory::generate(&building, &motion, &CollectionConfig::small(), 12, 3);
        assert_eq!(t.len(), 12);
        assert!(!t.is_empty());
        assert_eq!(t.timestamps_s.len(), 12);
        assert_eq!(t.positions_m.len(), 12);
        assert_eq!(t.observations.rows(), 12);
        assert_eq!(t.observations.cols(), building.num_aps());
        assert_eq!(t.timestamps_s[0], 0.0);
        assert_eq!(t.timestamps_s[1], motion.sample_period_s);
        for (&rp, &pos) in t.rp_labels.iter().zip(&t.positions_m) {
            assert!(rp < building.num_rps());
            assert_eq!(pos, building.rp_positions()[rp]);
        }
        assert!(t
            .observations
            .as_slice()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn walks_move_at_most_one_step_per_tick() {
        let building = Building::generate(tiny_building(), 7);
        let motion = MotionConfig::paper();
        let model = MotionModel::new(&building, motion.clone());
        let mut rng = Rng::new(99);
        let rps = model.walk(64, &mut rng);
        let max_step = (motion.speed_mps * motion.sample_period_s).ceil() as usize;
        for w in rps.windows(2) {
            let jump = w[0].abs_diff(w[1]);
            assert!(
                jump <= max_step,
                "walk jumped {jump} RPs in one tick (max {max_step})"
            );
        }
    }

    #[test]
    fn environment_axis_changes_observations_but_not_the_walk() {
        let spec = TrajectorySpec::single(
            tiny_building(),
            2,
            MotionConfig::paper(),
            CollectionConfig::small(),
            10,
            3,
        )
        .with_environments(vec![EnvLevel::BASELINE, EnvLevel::uniform(3.0)]);
        let set = spec.generate();
        assert_eq!(set.len(), 2);
        let (baseline, harsh) = (set.trajectory(0), set.trajectory(1));
        // Drift multipliers shift what is measured, never where the user
        // walks: the ground truth is shared, the observations are not.
        assert_eq!(baseline.rp_labels, harsh.rp_labels, "walk must not drift");
        assert_ne!(
            baseline.observations, harsh.observations,
            "environment level must change the measurements"
        );
    }

    #[test]
    fn longer_walks_share_their_prefix() {
        // The walk and session streams are forked before length is
        // consumed, so a longer cell extends — bit-identically — the
        // shorter cell's realization.
        let building = Building::generate(tiny_building(), 5);
        let motion = MotionConfig::paper();
        let config = CollectionConfig::small();
        let short = Trajectory::generate(&building, &motion, &config, 6, 21);
        let long = Trajectory::generate(&building, &motion, &config, 12, 21);
        assert_eq!(short.rp_labels[..], long.rp_labels[..6]);
        for row in 0..6 {
            assert_eq!(short.observations.row(row), long.observations.row(row));
        }
    }

    #[test]
    fn shards_generate_the_same_trajectories_as_the_full_plan() {
        let spec = TrajectorySpec::single(
            tiny_building(),
            0,
            MotionConfig::paper(),
            CollectionConfig::small(),
            5,
            1,
        )
        .with_seeds(vec![1, 2, 3]);
        let full = spec.plan();
        let whole = spec.generate();

        let back = full.shard(1..3);
        assert_eq!(back.len(), 2);
        assert_eq!(
            back.cells()[0].plan_index,
            1,
            "shard cells keep their original plan indices"
        );
        let back_set = back.generate();
        assert_eq!(back_set.trajectory(0), whole.trajectory(1));
        assert_eq!(back_set.trajectory(1), whole.trajectory(2));

        let front = spec.plan().shard(0..1).generate();
        assert_eq!(front.trajectory(0), whole.trajectory(0));

        assert!(spec.plan().shard(2..2).is_empty(), "empty shards are fine");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn shard_rejects_an_out_of_range_window() {
        let plan = TrajectorySpec::single(
            tiny_building(),
            0,
            MotionConfig::paper(),
            CollectionConfig::small(),
            5,
            1,
        )
        .plan();
        let _ = plan.shard(0..2);
    }

    #[test]
    fn iter_yields_cells_with_trajectories_in_order() {
        let set = TrajectorySpec::single(
            tiny_building(),
            0,
            MotionConfig::paper(),
            CollectionConfig::small(),
            5,
            1,
        )
        .with_seeds(vec![1, 2])
        .generate();
        let mut count = 0;
        for (i, (cell, trajectory)) in set.iter().enumerate() {
            assert_eq!(cell.plan_index, i);
            assert_eq!(trajectory.len(), 5);
            count += 1;
        }
        assert_eq!(count, 2);
        assert_eq!(set.index_of(0, 0, 0, 1), 1);
    }

    #[test]
    fn cell_identity_distinguishes_every_axis() {
        let spec = TrajectorySpec::single(
            tiny_building(),
            0,
            MotionConfig::paper(),
            CollectionConfig::small(),
            5,
            1,
        )
        .with_path_lengths(vec![5, 6])
        .with_environments(vec![EnvLevel::BASELINE, EnvLevel::uniform(2.0)])
        .with_seeds(vec![1, 2]);
        let plan = spec.plan();
        let ids: std::collections::BTreeSet<String> =
            plan.cells().iter().map(|c| plan.cell_identity(c)).collect();
        assert_eq!(ids.len(), plan.len(), "identities must be unique per cell");
        assert!(ids.iter().all(|id| id.starts_with("trajectory v1 ")));
    }
}
