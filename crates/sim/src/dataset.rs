//! Fingerprint dataset containers.

use calloc_tensor::{Matrix, Rng};
use serde::{Deserialize, Serialize};

/// A labelled set of normalized RSS fingerprints.
///
/// * `x` — one fingerprint per row, `num_aps` columns, values in `[0, 1]`
///   (see [`crate::normalize_rss`]).
/// * `labels` — the RP class of each row.
/// * `rp_positions` — RP coordinates in meters, indexed by class label;
///   used to convert a misclassification into a localization error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Normalized fingerprints (rows) by APs (columns).
    pub x: Matrix,
    /// RP class label per row.
    pub labels: Vec<usize>,
    /// RP coordinates in meters, indexed by class label.
    pub rp_positions: Vec<(f64, f64)>,
}

impl Dataset {
    /// Creates a dataset, validating row/label agreement.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != labels.len()` or a label has no coordinate.
    pub fn new(x: Matrix, labels: Vec<usize>, rp_positions: Vec<(f64, f64)>) -> Self {
        assert_eq!(x.rows(), labels.len(), "row/label count mismatch");
        if let Some(&max) = labels.iter().max() {
            assert!(
                max < rp_positions.len(),
                "label {max} has no RP coordinate (only {} RPs)",
                rp_positions.len()
            );
        }
        Dataset {
            x,
            labels,
            rp_positions,
        }
    }

    /// Number of fingerprints.
    pub fn len(&self) -> usize {
        self.x.rows()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fingerprint dimensionality (number of APs).
    pub fn num_aps(&self) -> usize {
        self.x.cols()
    }

    /// Number of RP classes (coordinates known to the dataset).
    pub fn num_classes(&self) -> usize {
        self.rp_positions.len()
    }

    /// Localization error in meters for a single prediction.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn error_meters(&self, predicted: usize, actual: usize) -> f64 {
        let p = self.rp_positions[predicted];
        let a = self.rp_positions[actual];
        ((p.0 - a.0).powi(2) + (p.1 - a.1).powi(2)).sqrt()
    }

    /// Localization errors in meters for a batch of predictions against
    /// this dataset's labels.
    ///
    /// # Panics
    ///
    /// Panics if `predictions.len() != self.len()`.
    pub fn errors_meters(&self, predictions: &[usize]) -> Vec<f64> {
        assert_eq!(predictions.len(), self.len(), "prediction count mismatch");
        predictions
            .iter()
            .zip(&self.labels)
            .map(|(&p, &a)| self.error_meters(p, a))
            .collect()
    }

    /// Returns a new dataset with rows shuffled (labels follow).
    pub fn shuffled(&self, rng: &mut Rng) -> Dataset {
        let perm = rng.permutation(self.len());
        let x = self.x.select_rows(&perm);
        let labels = perm.iter().map(|&i| self.labels[i]).collect();
        Dataset {
            x,
            labels,
            rp_positions: self.rp_positions.clone(),
        }
    }

    /// Selects a subset of rows by index into a new dataset.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select_rows(indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            rp_positions: self.rp_positions.clone(),
        }
    }

    /// Concatenates two datasets over the same building (same AP count and
    /// RP map).
    ///
    /// # Panics
    ///
    /// Panics if the AP counts or RP maps differ.
    pub fn concat(&self, other: &Dataset) -> Dataset {
        assert_eq!(self.num_aps(), other.num_aps(), "AP count mismatch");
        assert_eq!(
            self.rp_positions, other.rp_positions,
            "datasets come from different buildings"
        );
        let mut labels = self.labels.clone();
        labels.extend_from_slice(&other.labels);
        Dataset {
            x: self.x.vstack(&other.x),
            labels,
            rp_positions: self.rp_positions.clone(),
        }
    }

    /// Splits into `(first, second)` where `first` receives `fraction` of
    /// the rows (rounded down, at least 1 when possible), sampled without
    /// replacement.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1)`.
    pub fn split(&self, fraction: f64, rng: &mut Rng) -> (Dataset, Dataset) {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "split fraction {fraction} must be in (0, 1)"
        );
        let perm = rng.permutation(self.len());
        let k = ((self.len() as f64 * fraction) as usize)
            .max(1)
            .min(self.len().saturating_sub(1));
        (self.subset(&perm[..k]), self.subset(&perm[k..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let x = Matrix::from_rows(&[
            vec![0.1, 0.2],
            vec![0.3, 0.4],
            vec![0.5, 0.6],
            vec![0.7, 0.8],
        ]);
        Dataset::new(x, vec![0, 1, 0, 1], vec![(0.0, 0.0), (3.0, 4.0)])
    }

    #[test]
    fn error_meters_is_euclidean() {
        let d = toy();
        assert_eq!(d.error_meters(0, 1), 5.0);
        assert_eq!(d.error_meters(1, 1), 0.0);
    }

    #[test]
    fn errors_meters_batch() {
        let d = toy();
        let errs = d.errors_meters(&[0, 1, 1, 0]);
        assert_eq!(errs, vec![0.0, 0.0, 5.0, 5.0]);
    }

    #[test]
    fn shuffled_preserves_pairs() {
        let d = toy();
        let mut rng = Rng::new(1);
        let s = d.shuffled(&mut rng);
        assert_eq!(s.len(), d.len());
        // every (row, label) pair of s must exist in d
        for i in 0..s.len() {
            let found =
                (0..d.len()).any(|j| d.labels[j] == s.labels[i] && d.x.row(j) == s.x.row(i));
            assert!(found);
        }
    }

    #[test]
    fn subset_selects() {
        let d = toy();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.labels, vec![0, 0]);
        assert_eq!(s.x.row(0), &[0.5, 0.6]);
    }

    #[test]
    fn concat_appends() {
        let d = toy();
        let c = d.concat(&d);
        assert_eq!(c.len(), 8);
        assert_eq!(c.labels[4..], d.labels[..]);
    }

    #[test]
    fn split_partitions_rows() {
        let d = toy();
        let mut rng = Rng::new(2);
        let (a, b) = d.split(0.5, &mut rng);
        assert_eq!(a.len() + b.len(), d.len());
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn new_rejects_label_count_mismatch() {
        Dataset::new(
            Matrix::zeros(3, 2),
            vec![0, 1],
            vec![(0.0, 0.0), (1.0, 1.0)],
        );
    }

    #[test]
    #[should_panic(expected = "no RP coordinate")]
    fn new_rejects_out_of_range_label() {
        Dataset::new(Matrix::zeros(1, 2), vec![5], vec![(0.0, 0.0)]);
    }
}
