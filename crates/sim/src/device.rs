//! Heterogeneous smartphone profiles (Table I of the paper).
//!
//! Two devices at the same location capture dissimilar fingerprints because
//! of chipset and firmware differences. We model a device as a transfer
//! function on the true RSS field:
//!
//! ```text
//! observed = quantize(gain + scale * rss + N(0, noise_std), step)
//! ```
//!
//! clipped to the device's sensitivity floor. The OnePlus 3 (`OP3`) is the
//! reference device used for training data, so its profile is (nearly) the
//! identity.

use calloc_tensor::Rng;
use serde::{Deserialize, Serialize};

use crate::propagation::RSS_FLOOR_DBM;

/// A smartphone model's RSS capture characteristics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Manufacturer (Table I).
    pub manufacturer: String,
    /// Model (Table I).
    pub model: String,
    /// Short acronym used in figures (BLU, HTC, S7, LG, MOTO, OP3).
    pub acronym: String,
    /// Constant RSS offset in dB introduced by the chipset front-end.
    pub gain_offset_db: f64,
    /// Multiplicative distortion of the RSS scale (1.0 = faithful).
    pub scale: f64,
    /// Extra measurement noise of the firmware filtering stack, in dB.
    pub noise_std_db: f64,
    /// Reporting quantization step in dB (many chipsets report 1–2 dB
    /// steps).
    pub quantization_db: f64,
    /// Weakest RSS the chipset can detect; weaker signals read as the
    /// global floor.
    pub sensitivity_floor_dbm: f64,
}

impl DeviceProfile {
    /// The six Table I smartphones, in table order
    /// (BLU, HTC, S7, LG, MOTO, OP3).
    pub fn paper_devices() -> Vec<DeviceProfile> {
        vec![
            DeviceProfile {
                manufacturer: "BLU".to_string(),
                model: "Vivo 8".to_string(),
                acronym: "BLU".to_string(),
                gain_offset_db: -4.0,
                scale: 1.06,
                noise_std_db: 1.8,
                quantization_db: 2.0,
                sensitivity_floor_dbm: -92.0,
            },
            DeviceProfile {
                manufacturer: "HTC".to_string(),
                model: "U11".to_string(),
                acronym: "HTC".to_string(),
                gain_offset_db: 2.5,
                scale: 0.97,
                noise_std_db: 1.2,
                quantization_db: 1.0,
                sensitivity_floor_dbm: -95.0,
            },
            DeviceProfile {
                manufacturer: "Samsung".to_string(),
                model: "Galaxy S7".to_string(),
                acronym: "S7".to_string(),
                gain_offset_db: 1.5,
                scale: 1.02,
                noise_std_db: 1.0,
                quantization_db: 1.0,
                sensitivity_floor_dbm: -96.0,
            },
            DeviceProfile {
                manufacturer: "LG".to_string(),
                model: "V20".to_string(),
                acronym: "LG".to_string(),
                gain_offset_db: -2.0,
                scale: 0.95,
                noise_std_db: 1.5,
                quantization_db: 1.0,
                sensitivity_floor_dbm: -94.0,
            },
            DeviceProfile {
                manufacturer: "Motorola".to_string(),
                model: "Z2".to_string(),
                acronym: "MOTO".to_string(),
                gain_offset_db: -5.5,
                scale: 1.08,
                noise_std_db: 2.2,
                quantization_db: 2.0,
                sensitivity_floor_dbm: -91.0,
            },
            DeviceProfile::reference(),
        ]
    }

    /// Looks up a Table I device by its figure acronym (case-sensitive,
    /// first match — the paper devices all carry distinct acronyms).
    /// Returns `None` for acronyms outside Table I.
    ///
    /// # Example
    ///
    /// ```
    /// use calloc_sim::DeviceProfile;
    ///
    /// let moto = DeviceProfile::by_acronym("MOTO").unwrap();
    /// assert_eq!(moto.manufacturer, "Motorola");
    /// assert!(DeviceProfile::by_acronym("PIXEL").is_none());
    /// ```
    pub fn by_acronym(acronym: &str) -> Option<DeviceProfile> {
        Self::paper_devices()
            .into_iter()
            .find(|d| d.acronym == acronym)
    }

    /// The OnePlus 3 — the reference training device (identity transfer up
    /// to 1 dB quantization and a small noise term).
    pub fn reference() -> DeviceProfile {
        DeviceProfile {
            manufacturer: "Oneplus".to_string(),
            model: "3".to_string(),
            acronym: "OP3".to_string(),
            gain_offset_db: 0.0,
            scale: 1.0,
            noise_std_db: 0.8,
            quantization_db: 1.0,
            sensitivity_floor_dbm: -97.0,
        }
    }

    /// Width (dB) of the detection ramp above the sensitivity floor:
    /// a signal `DETECTION_RAMP_DB` above the floor is always reported,
    /// one at the floor is never reported, with linear probability in
    /// between. Weak APs therefore *flicker* across scans — the dominant
    /// non-Gaussian noise source in real Wi-Fi fingerprints (and the
    /// reason the paper augments training with random dropouts).
    pub const DETECTION_RAMP_DB: f64 = 15.0;

    /// Applies the device transfer function to a true RSS value (dBm),
    /// returning the observed value (dBm, in `[RSS_FLOOR_DBM, 0]`). An
    /// undetected AP reads as `RSS_FLOOR_DBM`.
    pub fn observe(&self, true_rss_dbm: f64, rng: &mut Rng) -> f64 {
        if true_rss_dbm <= RSS_FLOOR_DBM {
            return RSS_FLOOR_DBM;
        }
        // Scale distortion is applied around the floor so that stronger
        // signals are distorted more, as observed across real chipsets.
        let rel = true_rss_dbm - RSS_FLOOR_DBM;
        let mut v = RSS_FLOOR_DBM + rel * self.scale + self.gain_offset_db;
        v += rng.normal(0.0, self.noise_std_db);
        // Stochastic detection: scanning misses weak beacons.
        let p_detect = ((v - self.sensitivity_floor_dbm) / Self::DETECTION_RAMP_DB).clamp(0.0, 1.0);
        if !rng.bernoulli(p_detect) {
            return RSS_FLOOR_DBM;
        }
        let q = self.quantization_db.max(f64::EPSILON);
        ((v / q).round() * q).clamp(RSS_FLOOR_DBM, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_has_six_devices() {
        let d = DeviceProfile::paper_devices();
        assert_eq!(d.len(), 6);
        let acr: Vec<&str> = d.iter().map(|p| p.acronym.as_str()).collect();
        assert_eq!(acr, vec!["BLU", "HTC", "S7", "LG", "MOTO", "OP3"]);
    }

    #[test]
    fn by_acronym_matches_table_order() {
        for want in DeviceProfile::paper_devices() {
            let got = DeviceProfile::by_acronym(&want.acronym).expect("Table I acronym");
            assert_eq!(got, want);
        }
        assert_eq!(
            DeviceProfile::by_acronym("MOTO"),
            Some(DeviceProfile::paper_devices()[4].clone())
        );
        assert!(
            DeviceProfile::by_acronym("moto").is_none(),
            "case-sensitive"
        );
        assert!(DeviceProfile::by_acronym("PIXEL").is_none());
    }

    #[test]
    fn reference_device_is_nearly_identity() {
        let op3 = DeviceProfile::reference();
        let mut rng = Rng::new(1);
        let mut errs = Vec::new();
        for _ in 0..500 {
            // Stay above the detection ramp so dropouts don't dominate.
            let truth = rng.uniform(-75.0, -40.0);
            errs.push((op3.observe(truth, &mut rng) - truth).abs());
        }
        let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean_err < 1.5, "mean |err| {mean_err}");
    }

    #[test]
    fn heterogeneous_device_biases_rss() {
        let moto = &DeviceProfile::paper_devices()[4];
        let mut rng = Rng::new(2);
        let truth = -60.0;
        let mean_obs: f64 = (0..500).map(|_| moto.observe(truth, &mut rng)).sum::<f64>() / 500.0;
        // MOTO has gain -5.5 and scale 1.08 → observed clearly below truth.
        assert!(mean_obs < truth - 2.0, "mean obs {mean_obs}");
    }

    #[test]
    fn floor_is_preserved() {
        let mut rng = Rng::new(3);
        for d in DeviceProfile::paper_devices() {
            assert_eq!(d.observe(RSS_FLOOR_DBM, &mut rng), RSS_FLOOR_DBM);
            assert_eq!(d.observe(-150.0, &mut rng), RSS_FLOOR_DBM);
        }
    }

    #[test]
    fn weak_signals_cut_by_sensitivity() {
        let blu = &DeviceProfile::paper_devices()[0]; // floor -92 dBm
        let mut rng = Rng::new(4);
        let hits = (0..200)
            .filter(|_| blu.observe(-96.0, &mut rng) > RSS_FLOOR_DBM)
            .count();
        // -96 dBm is below BLU's sensitivity most of the time.
        assert!(hits < 60, "{hits} detections of a sub-floor signal");
    }

    #[test]
    fn observation_is_quantized() {
        let blu = &DeviceProfile::paper_devices()[0]; // 2 dB steps
        let mut rng = Rng::new(5);
        for _ in 0..100 {
            let v = blu.observe(-55.0, &mut rng);
            if v > RSS_FLOOR_DBM {
                let rem = (v / 2.0).fract().abs();
                assert!(rem < 1e-9, "value {v} not on 2 dB grid");
            }
        }
    }

    #[test]
    fn output_range_is_valid() {
        let mut rng = Rng::new(6);
        for d in DeviceProfile::paper_devices() {
            for _ in 0..200 {
                let v = d.observe(rng.uniform(-120.0, 10.0), &mut rng);
                assert!((RSS_FLOOR_DBM..=0.0).contains(&v));
            }
        }
    }
}
