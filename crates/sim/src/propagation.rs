//! Log-distance radio propagation model.

use calloc_tensor::Rng;
use serde::{Deserialize, Serialize};

use crate::building::Building;

/// Weakest representable RSS: an undetected AP reads as this value.
pub const RSS_FLOOR_DBM: f64 = -100.0;

/// Strongest representable RSS.
pub const RSS_MAX_DBM: f64 = 0.0;

/// Maps a dBm RSS value into the normalized `[0, 1]` feature range used by
/// every model in the reproduction (`-100 dBm → 0.0`, `0 dBm → 1.0`).
///
/// # Example
///
/// ```
/// use calloc_sim::normalize_rss;
///
/// assert_eq!(normalize_rss(-100.0), 0.0);
/// assert_eq!(normalize_rss(-50.0), 0.5);
/// assert_eq!(normalize_rss(0.0), 1.0);
/// ```
pub fn normalize_rss(rss_dbm: f64) -> f64 {
    ((rss_dbm - RSS_FLOOR_DBM) / (RSS_MAX_DBM - RSS_FLOOR_DBM)).clamp(0.0, 1.0)
}

/// Log-distance path-loss radio model with wall attenuation and shadowing.
///
/// `RSS(d) = tx_power - pl_ref - 10·n·log10(max(d, d0)) - walls·wall_loss
///  - shadowing - N(0, dynamic_noise)`
///
/// The static terms (walls, shadowing) live in [`Building`]; this struct
/// holds the transmit-side constants and evaluates measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PropagationModel {
    /// AP transmit power in dBm.
    pub tx_power_dbm: f64,
    /// Reference path loss at `d0 = 1 m`, in dB.
    pub ref_loss_db: f64,
}

impl Default for PropagationModel {
    fn default() -> Self {
        // Typical 2.4 GHz indoor values: 20 dBm EIRP, ~40 dB loss at 1 m.
        PropagationModel {
            tx_power_dbm: 20.0,
            ref_loss_db: 40.0,
        }
    }
}

impl PropagationModel {
    /// Mean (noise-free, device-free) RSS in dBm from AP `ap` at RP `rp`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range for the building.
    pub fn mean_rss_dbm(&self, building: &Building, rp: usize, ap: usize) -> f64 {
        let (px, py) = building.rp_positions()[rp];
        let (ax, ay) = building.ap_positions()[ap];
        let d = ((px - ax).powi(2) + (py - ay).powi(2)).sqrt().max(1.0);
        let spec = building.spec();
        let path_loss = self.ref_loss_db + 10.0 * spec.path_loss_exponent * d.log10();
        let wall_loss = building.wall_count(rp, ap) * spec.wall_loss_db;
        let rss = self.tx_power_dbm - path_loss - wall_loss - building.shadowing_db(rp, ap);
        rss.clamp(RSS_FLOOR_DBM, RSS_MAX_DBM)
    }

    /// One *true-field* measurement: the mean RSS plus time-varying
    /// environmental noise (people, equipment movement). Device effects are
    /// applied afterwards by [`crate::DeviceProfile::observe`].
    pub fn measure_dbm(&self, building: &Building, rp: usize, ap: usize, rng: &mut Rng) -> f64 {
        let mean = self.mean_rss_dbm(building, rp, ap);
        if mean <= RSS_FLOOR_DBM {
            return RSS_FLOOR_DBM;
        }
        (mean + rng.normal(0.0, building.spec().dynamic_noise_std_db))
            .clamp(RSS_FLOOR_DBM, RSS_MAX_DBM)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::building::BuildingId;

    fn building() -> Building {
        Building::generate(BuildingId::B1.spec(), 0)
    }

    #[test]
    fn rss_is_within_range() {
        let b = building();
        let pm = PropagationModel::default();
        for rp in (0..b.num_rps()).step_by(7) {
            for ap in (0..b.num_aps()).step_by(13) {
                let v = pm.mean_rss_dbm(&b, rp, ap);
                assert!((RSS_FLOOR_DBM..=RSS_MAX_DBM).contains(&v));
            }
        }
    }

    #[test]
    fn rss_decays_with_distance() {
        let b = building();
        let pm = PropagationModel::default();
        // For each AP, compare its nearest RP to its farthest RP.
        let mut decays = 0;
        let mut total = 0;
        for ap in 0..b.num_aps() {
            let (ax, ay) = b.ap_positions()[ap];
            let (mut near, mut far) = (0usize, 0usize);
            let (mut dn, mut df) = (f64::INFINITY, 0.0f64);
            for (rp, &(x, y)) in b.rp_positions().iter().enumerate() {
                let d = ((x - ax).powi(2) + (y - ay).powi(2)).sqrt();
                if d < dn {
                    dn = d;
                    near = rp;
                }
                if d > df {
                    df = d;
                    far = rp;
                }
            }
            total += 1;
            if pm.mean_rss_dbm(&b, near, ap) > pm.mean_rss_dbm(&b, far, ap) {
                decays += 1;
            }
        }
        // Shadowing can invert a few, but the vast majority must decay.
        assert!(decays as f64 > total as f64 * 0.9, "{decays}/{total}");
    }

    #[test]
    fn typical_signal_levels_are_plausible() {
        // Indoor Wi-Fi should mostly land between -95 and -35 dBm with a
        // reasonable detected fraction.
        let b = building();
        let pm = PropagationModel::default();
        let mut detected = 0;
        let mut total = 0;
        for rp in 0..b.num_rps() {
            for ap in 0..b.num_aps() {
                let v = pm.mean_rss_dbm(&b, rp, ap);
                total += 1;
                if v > RSS_FLOOR_DBM {
                    detected += 1;
                    assert!(v < -10.0, "implausibly strong {v} dBm");
                }
            }
        }
        let frac = detected as f64 / total as f64;
        assert!(frac > 0.5, "only {frac:.2} of links detected");
    }

    #[test]
    fn measurement_noise_has_configured_spread() {
        let b = building();
        let pm = PropagationModel::default();
        let mut rng = Rng::new(1);
        // pick a strong link so clamping doesn't bite
        let (mut rp, mut ap, mut best) = (0, 0, RSS_FLOOR_DBM);
        for r in 0..b.num_rps() {
            for a in 0..b.num_aps() {
                let v = pm.mean_rss_dbm(&b, r, a);
                if v > best {
                    best = v;
                    rp = r;
                    ap = a;
                }
            }
        }
        let samples: Vec<f64> = (0..2000)
            .map(|_| pm.measure_dbm(&b, rp, ap, &mut rng))
            .collect();
        let std = calloc_tensor::stats::std_dev(&samples);
        let expect = b.spec().dynamic_noise_std_db;
        assert!((std - expect).abs() < 0.4, "std {std} vs {expect}");
    }

    #[test]
    fn undetected_aps_read_floor_without_noise() {
        let b = building();
        let pm = PropagationModel::default();
        let mut rng = Rng::new(2);
        for rp in 0..b.num_rps() {
            for ap in 0..b.num_aps() {
                if pm.mean_rss_dbm(&b, rp, ap) <= RSS_FLOOR_DBM {
                    assert_eq!(pm.measure_dbm(&b, rp, ap, &mut rng), RSS_FLOOR_DBM);
                }
            }
        }
    }

    #[test]
    fn normalize_rss_clamps() {
        assert_eq!(normalize_rss(-150.0), 0.0);
        assert_eq!(normalize_rss(20.0), 1.0);
        assert!((normalize_rss(-25.0) - 0.75).abs() < 1e-12);
    }
}
