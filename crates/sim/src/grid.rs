//! Declarative scenario grids: the batch data-generation engine.
//!
//! Every workload in the reproduction starts from collected scenarios, and
//! every multi-scenario experiment (figure bins, benches, robustness
//! sweeps) used to hand-roll its own loop around
//! [`Scenario::generate`]. This module turns that grid into a first-class,
//! declarative, parallel subsystem — the data-side mirror of
//! `calloc_eval::sweep`:
//!
//! ```text
//! ScenarioSpec  --plan-->  ScenarioPlan  --generate-->  ScenarioSet
//! ```
//!
//! * [`ScenarioSpec`] declares the axes: buildings × survey densities ×
//!   device sets × environment levels × seeds, on top of a template
//!   [`CollectionConfig`]. [`ScenarioSpec::paper`] and
//!   [`ScenarioSpec::quick`] mirror the sweep engine's presets;
//!   [`ScenarioSpec::single`] wraps the historical one-building call.
//! * [`ScenarioSpec::plan`] generates one [`Building`] realization per
//!   building-axis entry and flattens the cross-product into a work list
//!   of [`ScenarioCell`]s, each carrying its **plan index** — its position
//!   in the canonical enumeration order (building-major, then density,
//!   then device set, then environment, seed innermost).
//! * [`ScenarioPlan::generate`] collects every cell on
//!   [`calloc_tensor::par::par_chunks`] — the work list is split into
//!   contiguous chunks that idle pool workers reclaim off a shared queue
//!   — and merges the scenarios **in plan-index order**. The session
//!   fan-out inside each cell draws the full configured budget too
//!   (nested fan-outs no longer collapse to serial).
//!
//! # The plan-index merge contract
//!
//! Every cell is a pure function of its `(building, config, seed)` triple
//! ([`Scenario::generate`] derives all randomness from the cell seed and
//! the building seed), and the generated scenarios are reassembled by
//! ascending plan index, so a [`ScenarioSet`] is **bit-identical for every
//! thread count** (`CALLOC_THREADS` ∈ {1, 2, 3, …}) — and every cell is
//! bit-identical to calling [`Scenario::generate`] directly with the same
//! triple. `tests/determinism.rs` and
//! `crates/sim/tests/proptest_scenario.rs` enforce both.
//!
//! # Adding an environment axis
//!
//! Environment axes select the *data* a cell collects (the attack axes of
//! `calloc_eval::SweepSpec` select the *adversary*), so they follow the
//! data-side mirror of the attack-axis rule: give the axis a field on
//! [`ScenarioSpec`] (every constructor defaulting to the axis' baseline
//! singleton so existing plans are unchanged), fold it into
//! [`ScenarioPlan::config_for`] so a baseline cell reproduces the template
//! config **exactly** (bit-compatibility with pinned realizations), keep
//! the new loop's position in the enumeration documented, and — when the
//! axis is exposed to the sweep engine, as [`EnvLevel`] is through
//! `SweepSpec::env_multipliers` — label it in the result rows and pin a
//! golden CSV for it (`tests/golden/env_sweep.csv` is the template).

use calloc_tensor::par;
use serde::{Deserialize, Serialize};

use crate::building::{Building, BuildingId, BuildingSpec};
use crate::device::DeviceProfile;
use crate::scenario::{CollectionConfig, Scenario};

/// One survey-density point of a scenario grid: how many fingerprints the
/// offline and online phases capture per RP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SurveyDensity {
    /// Offline fingerprints per RP (reference device).
    pub train_per_rp: usize,
    /// Online fingerprints per RP per device.
    pub test_per_rp: usize,
}

impl SurveyDensity {
    /// The density of an existing collection protocol.
    pub fn of(config: &CollectionConfig) -> Self {
        SurveyDensity {
            train_per_rp: config.train_fingerprints_per_rp,
            test_per_rp: config.test_fingerprints_per_rp,
        }
    }
}

/// One environment-severity point: multipliers on the between-phase drift
/// of the collection protocol (per-AP temporal power drift and per-link
/// re-shadowing). `1.0 / 1.0` is the baseline environment; larger values
/// model harsher deployments — APs rebooted, moved or re-loaded, furniture
/// and people rearranged — the Fig. 3-style robustness axis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnvLevel {
    /// Multiplier on [`CollectionConfig::temporal_drift_std_db`].
    pub drift_mult: f64,
    /// Multiplier on [`CollectionConfig::reshadow_std_db`].
    pub reshadow_mult: f64,
}

impl EnvLevel {
    /// The unmodified environment (both multipliers `1.0`).
    pub const BASELINE: EnvLevel = EnvLevel {
        drift_mult: 1.0,
        reshadow_mult: 1.0,
    };

    /// A level scaling drift and re-shadowing by the same factor — the
    /// shape `calloc_eval::SweepSpec::env_multipliers` maps onto.
    pub fn uniform(mult: f64) -> Self {
        EnvLevel {
            drift_mult: mult,
            reshadow_mult: mult,
        }
    }

    /// Whether this is the baseline environment.
    pub fn is_baseline(&self) -> bool {
        self.drift_mult == 1.0 && self.reshadow_mult == 1.0
    }

    /// Applies the multipliers to a collection protocol. The baseline
    /// level returns a bit-identical config (multiplying a finite `f64`
    /// by `1.0` preserves its bits), so baseline cells reproduce pinned
    /// realizations exactly.
    pub fn apply(&self, config: &CollectionConfig) -> CollectionConfig {
        CollectionConfig {
            temporal_drift_std_db: config.temporal_drift_std_db * self.drift_mult,
            reshadow_std_db: config.reshadow_std_db * self.reshadow_mult,
            ..config.clone()
        }
    }

    /// Human-readable axis label, e.g. `"drift x2"` (`"baseline"` for the
    /// unmodified environment).
    pub fn label(&self) -> String {
        if self.is_baseline() {
            "baseline".to_string()
        } else if self.drift_mult == self.reshadow_mult {
            format!("drift x{}", self.drift_mult)
        } else {
            format!(
                "drift x{} / reshadow x{}",
                self.drift_mult, self.reshadow_mult
            )
        }
    }
}

/// Declarative description of a scenario grid: the data axes crossed into
/// a flat, plan-indexed generation work list.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Building axis (outermost): one generated realization per spec.
    pub buildings: Vec<BuildingSpec>,
    /// Salt fed to [`Building::generate`] for every building realization
    /// (the historical `salt` argument of the one-building workflow).
    pub building_salt: u64,
    /// Template protocol. The axes below override its density, device and
    /// drift fields per cell; everything else (reference device, radio
    /// constants) is shared by the whole grid.
    pub base: CollectionConfig,
    /// Survey-density axis.
    pub densities: Vec<SurveyDensity>,
    /// Device-set axis: each entry is a complete test-device list.
    pub device_sets: Vec<Vec<DeviceProfile>>,
    /// Environment axis: between-phase drift severity.
    pub environments: Vec<EnvLevel>,
    /// Seed axis (innermost): independent collection realizations. This is
    /// the grid's independence axis — changing one seed entry changes only
    /// the cells that carry it (see `proptest_scenario.rs`).
    pub seeds: Vec<u64>,
}

impl ScenarioSpec {
    /// A grid over `buildings` with singleton density / device-set /
    /// environment axes derived from `base` — each cell is then exactly a
    /// historical `Scenario::generate(building, base, seed)` call.
    pub fn from_base(
        buildings: Vec<BuildingSpec>,
        building_salt: u64,
        base: CollectionConfig,
        seeds: Vec<u64>,
    ) -> Self {
        ScenarioSpec {
            densities: vec![SurveyDensity::of(&base)],
            device_sets: vec![base.test_devices.clone()],
            environments: vec![EnvLevel::BASELINE],
            buildings,
            building_salt,
            base,
            seeds,
        }
    }

    /// The paper grid: all five Table II buildings under the paper
    /// protocol (5 train / 1 test fingerprints per RP, OP3 reference, all
    /// six Table I devices), baseline environment, one seed.
    pub fn paper() -> Self {
        Self::from_base(
            BuildingId::ALL.iter().map(|id| id.spec()).collect(),
            0,
            CollectionConfig::paper(),
            vec![42],
        )
    }

    /// The quick grid: two shrunken buildings (24 m paths, 40 APs — the
    /// bench quick profile) under the paper protocol, baseline
    /// environment, one seed.
    pub fn quick() -> Self {
        let buildings = [BuildingId::B1, BuildingId::B3]
            .iter()
            .map(|id| BuildingSpec {
                path_length_m: 24,
                num_aps: 40,
                ..id.spec()
            })
            .collect();
        Self::from_base(buildings, 0, CollectionConfig::paper(), vec![42])
    }

    /// The historical one-building entry point as a one-cell grid: the
    /// generated cell is bit-identical to
    /// `Scenario::generate(&Building::generate(building, salt), &config, seed)`.
    pub fn single(
        building: BuildingSpec,
        building_salt: u64,
        config: CollectionConfig,
        seed: u64,
    ) -> Self {
        Self::from_base(vec![building], building_salt, config, vec![seed])
    }

    /// Returns a copy with the given building salt.
    pub fn with_building_salt(mut self, salt: u64) -> Self {
        self.building_salt = salt;
        self
    }

    /// Returns a copy with the given survey-density axis.
    pub fn with_densities(mut self, densities: Vec<SurveyDensity>) -> Self {
        self.densities = densities;
        self
    }

    /// Returns a copy with the given device-set axis.
    pub fn with_device_sets(mut self, device_sets: Vec<Vec<DeviceProfile>>) -> Self {
        self.device_sets = device_sets;
        self
    }

    /// Returns a copy with the given environment axis.
    pub fn with_environments(mut self, environments: Vec<EnvLevel>) -> Self {
        self.environments = environments;
        self
    }

    /// Returns a copy with the given seed axis.
    pub fn with_seeds(mut self, seeds: Vec<u64>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Enumerates the grid: generates one [`Building`] realization per
    /// building-axis entry (fanned out on
    /// [`calloc_tensor::par::par_chunks`], merged in axis order) and
    /// flattens the cross-product into the plan-indexed work list. An
    /// empty axis yields an empty plan.
    pub fn plan(&self) -> ScenarioPlan {
        let buildings: Vec<Building> = par::par_chunks(self.buildings.len(), 1, |range| {
            range
                .map(|i| Building::generate(self.buildings[i].clone(), self.building_salt))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
        let mut cells = Vec::with_capacity(
            self.buildings.len()
                * self.densities.len()
                * self.device_sets.len()
                * self.environments.len()
                * self.seeds.len(),
        );
        for building in 0..self.buildings.len() {
            for density in 0..self.densities.len() {
                for device_set in 0..self.device_sets.len() {
                    for environment in 0..self.environments.len() {
                        for seed in 0..self.seeds.len() {
                            cells.push(ScenarioCell {
                                plan_index: cells.len(),
                                building,
                                density,
                                device_set,
                                environment,
                                seed,
                            });
                        }
                    }
                }
            }
        }
        ScenarioPlan {
            spec: self.clone(),
            buildings,
            cells,
        }
    }

    /// Plans and generates in one call.
    pub fn generate(&self) -> ScenarioSet {
        self.plan().generate()
    }
}

/// Canonical identity string of one scenario collection: the resolved
/// `(building spec, building salt, collection config, seed)` quadruple
/// that [`Scenario::generate`] is a pure function of. Two collections with
/// equal identity strings produce bit-identical scenarios, so the string
/// is a sound cache key for anything derived deterministically from the
/// collected data (`calloc_eval::cache` keys trained models on it).
///
/// The encoding is the `Debug` form of each component (Rust's `{:?}`
/// round-trips `f64` exactly, so distinct configs never collide by
/// formatting), prefixed with a scheme version that must be bumped
/// whenever the generation semantics change incompatibly.
pub fn collection_identity(
    spec: &BuildingSpec,
    building_salt: u64,
    config: &CollectionConfig,
    seed: u64,
) -> String {
    format!("scenario v1 building={spec:?} salt={building_salt} config={config:?} seed={seed}")
}

/// One unit of generation work: collect one scenario for one point on the
/// grid axes. All fields are indices into the axes of the owning plan's
/// [`ScenarioSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioCell {
    /// Position of this cell in the plan — the merge key of the engine's
    /// determinism contract.
    pub plan_index: usize,
    /// Index into [`ScenarioSpec::buildings`].
    pub building: usize,
    /// Index into [`ScenarioSpec::densities`].
    pub density: usize,
    /// Index into [`ScenarioSpec::device_sets`].
    pub device_set: usize,
    /// Index into [`ScenarioSpec::environments`].
    pub environment: usize,
    /// Index into [`ScenarioSpec::seeds`].
    pub seed: usize,
}

/// A fully enumerated scenario grid: the generated building realizations
/// plus the flat cell work list, in plan-index order.
#[derive(Debug, Clone)]
pub struct ScenarioPlan {
    spec: ScenarioSpec,
    buildings: Vec<Building>,
    cells: Vec<ScenarioCell>,
}

impl ScenarioPlan {
    /// The spec this plan was enumerated from.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The generated building realizations, in building-axis order.
    pub fn buildings(&self) -> &[Building] {
        &self.buildings
    }

    /// The flat work list, in plan-index order.
    pub fn cells(&self) -> &[ScenarioCell] {
        &self.cells
    }

    /// Number of cells in the plan.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the plan has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Restricts the plan to a contiguous range of cell positions (equal
    /// to plan indices on a full plan): the enumeration is flat and
    /// stable, so shards are independently generatable — in separate
    /// processes, even — and their scenarios reassemble in plan-index
    /// order. The shard keeps the full spec and building list, and its
    /// cells keep their **original** plan indices; on a sharded plan
    /// [`index_of`](Self::index_of) therefore still returns parent-plan
    /// indices, which no longer equal positions in the shard's
    /// [`generate`](Self::generate) output.
    ///
    /// # Panics
    ///
    /// Panics if the range does not lie within `0..len()`.
    pub fn shard(&self, range: std::ops::Range<usize>) -> ScenarioPlan {
        assert!(
            range.start <= range.end && range.end <= self.cells.len(),
            "shard range {range:?} out of bounds for a {}-cell plan",
            self.cells.len()
        );
        ScenarioPlan {
            spec: self.spec.clone(),
            buildings: self.buildings.clone(),
            cells: self.cells[range].to_vec(),
        }
    }

    /// The concrete collection protocol of one cell: the template config
    /// with the cell's density, device set and environment applied. A cell
    /// on all-baseline axes (as produced by [`ScenarioSpec::from_base`])
    /// reproduces the template **exactly**, which is what keeps grid cells
    /// bit-identical to historical `Scenario::generate` calls.
    pub fn config_for(&self, cell: &ScenarioCell) -> CollectionConfig {
        let density = self.spec.densities[cell.density];
        let mut config = self.spec.environments[cell.environment].apply(&self.spec.base);
        config.train_fingerprints_per_rp = density.train_per_rp;
        config.test_fingerprints_per_rp = density.test_per_rp;
        config.test_devices = self.spec.device_sets[cell.device_set].clone();
        config
    }

    /// The collection seed of one cell.
    pub fn seed_for(&self, cell: &ScenarioCell) -> u64 {
        self.spec.seeds[cell.seed]
    }

    /// Canonical identity of one cell's collection (see
    /// [`collection_identity`]): built from the **resolved** per-cell
    /// config, so two cells of different grids that collect the same data
    /// share one identity, and any axis that changes the data changes it.
    pub fn cell_identity(&self, cell: &ScenarioCell) -> String {
        collection_identity(
            &self.spec.buildings[cell.building],
            self.spec.building_salt,
            &self.config_for(cell),
            self.seed_for(cell),
        )
    }

    /// Plan index of the cell at the given axis indices (the enumeration
    /// is a dense cross-product, so this is pure arithmetic).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range for its axis.
    pub fn index_of(
        &self,
        building: usize,
        density: usize,
        device_set: usize,
        environment: usize,
        seed: usize,
    ) -> usize {
        assert!(
            building < self.spec.buildings.len(),
            "building out of range"
        );
        assert!(density < self.spec.densities.len(), "density out of range");
        assert!(
            device_set < self.spec.device_sets.len(),
            "device set out of range"
        );
        assert!(
            environment < self.spec.environments.len(),
            "environment out of range"
        );
        assert!(seed < self.spec.seeds.len(), "seed out of range");
        (((building * self.spec.densities.len() + density) * self.spec.device_sets.len()
            + device_set)
            * self.spec.environments.len()
            + environment)
            * self.spec.seeds.len()
            + seed
    }

    /// Executes the plan: every cell is collected (fanned out on
    /// [`par::par_chunks`]: contiguous chunks of the work list reclaimed
    /// by idle pool workers) and the scenarios are merged in plan-index
    /// order, so the returned set is bit-identical for every thread
    /// count. The session-level fan-out inside [`Scenario::generate`]
    /// sees the full configured budget as well — the pool schedules
    /// nested fan-outs instead of collapsing them to serial.
    pub fn generate(self) -> ScenarioSet {
        let scenarios: Vec<Scenario> = par::par_chunks(self.cells.len(), 1, |range| {
            range
                .map(|i| {
                    let cell = &self.cells[i];
                    Scenario::generate(
                        &self.buildings[cell.building],
                        &self.config_for(cell),
                        self.seed_for(cell),
                    )
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
        ScenarioSet {
            plan: self,
            scenarios,
        }
    }
}

/// A generated scenario grid: one collected [`Scenario`] per plan cell, in
/// plan-index order, together with the plan that produced it.
#[derive(Debug, Clone)]
pub struct ScenarioSet {
    plan: ScenarioPlan,
    scenarios: Vec<Scenario>,
}

impl ScenarioSet {
    /// The plan this set was generated from.
    pub fn plan(&self) -> &ScenarioPlan {
        &self.plan
    }

    /// Number of scenarios in the set.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// All scenarios, in plan-index order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// The scenario at a plan index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range (as do the accessors below).
    pub fn scenario(&self, index: usize) -> &Scenario {
        &self.scenarios[index]
    }

    /// The cell at a plan index.
    pub fn cell(&self, index: usize) -> &ScenarioCell {
        &self.plan.cells()[index]
    }

    /// The building realization a plan index was collected in.
    pub fn building_for(&self, index: usize) -> &Building {
        &self.plan.buildings()[self.cell(index).building]
    }

    /// The Table II name of the building a plan index was collected in.
    pub fn building_name(&self, index: usize) -> &'static str {
        self.building_for(index).spec().id.name()
    }

    /// The environment level a plan index was collected under.
    pub fn env_for(&self, index: usize) -> EnvLevel {
        self.plan.spec().environments[self.cell(index).environment]
    }

    /// The collection seed a plan index was collected from.
    pub fn seed_for(&self, index: usize) -> u64 {
        self.plan.seed_for(self.cell(index))
    }

    /// Canonical collection identity of a plan index — see
    /// [`ScenarioPlan::cell_identity`].
    pub fn cell_identity(&self, index: usize) -> String {
        self.plan.cell_identity(self.cell(index))
    }

    /// Iterates `(cell, scenario)` pairs in plan-index order.
    pub fn iter(&self) -> impl Iterator<Item = (&ScenarioCell, &Scenario)> {
        self.plan.cells().iter().zip(&self.scenarios)
    }

    /// Plan index of the given axis indices — see
    /// [`ScenarioPlan::index_of`].
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range for its axis.
    pub fn index_of(
        &self,
        building: usize,
        density: usize,
        device_set: usize,
        environment: usize,
        seed: usize,
    ) -> usize {
        self.plan
            .index_of(building, density, device_set, environment, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_building() -> BuildingSpec {
        BuildingSpec {
            path_length_m: 10,
            num_aps: 8,
            ..BuildingId::B2.spec()
        }
    }

    #[test]
    fn presets_have_singleton_axes() {
        let paper = ScenarioSpec::paper();
        assert_eq!(paper.buildings.len(), 5);
        assert_eq!(
            paper.densities,
            vec![SurveyDensity {
                train_per_rp: 5,
                test_per_rp: 1
            }]
        );
        assert_eq!(paper.device_sets[0].len(), 6);
        assert_eq!(paper.environments, vec![EnvLevel::BASELINE]);
        assert_eq!(paper.plan().len(), 5);

        let quick = ScenarioSpec::quick();
        assert_eq!(quick.buildings.len(), 2);
        assert!(quick
            .buildings
            .iter()
            .all(|b| b.path_length_m == 24 && b.num_aps == 40));
        assert_eq!(quick.plan().len(), 2);
    }

    #[test]
    fn plan_enumerates_the_full_cross_product() {
        let spec = ScenarioSpec::from_base(
            vec![tiny_building(), BuildingId::B4.spec()],
            3,
            CollectionConfig::small(),
            vec![7, 8, 9],
        )
        .with_densities(vec![
            SurveyDensity {
                train_per_rp: 1,
                test_per_rp: 1,
            },
            SurveyDensity {
                train_per_rp: 2,
                test_per_rp: 1,
            },
        ])
        .with_environments(vec![EnvLevel::BASELINE, EnvLevel::uniform(2.0)]);
        let plan = spec.plan();
        // 2 buildings × 2 densities × 1 device set × 2 environments × 3 seeds
        assert_eq!(plan.len(), 24);
        assert!(!plan.is_empty());
        for (i, cell) in plan.cells().iter().enumerate() {
            assert_eq!(cell.plan_index, i, "plan index must equal position");
            assert_eq!(
                plan.index_of(
                    cell.building,
                    cell.density,
                    cell.device_set,
                    cell.environment,
                    cell.seed
                ),
                i,
                "index_of must invert the enumeration"
            );
        }
        // Seed is the innermost axis.
        assert_eq!(plan.cells()[0].seed, 0);
        assert_eq!(plan.cells()[1].seed, 1);
        assert_eq!(plan.cells()[2].seed, 2);
        assert_eq!(plan.cells()[3].environment, 1);
        // Building is the outermost axis.
        assert!(plan.cells()[..plan.len() / 2]
            .iter()
            .all(|c| c.building == 0));
    }

    #[test]
    fn baseline_cell_config_reproduces_the_template() {
        let base = CollectionConfig::small();
        let spec = ScenarioSpec::single(tiny_building(), 1, base.clone(), 5);
        let plan = spec.plan();
        let cell = plan.cells()[0];
        let config = plan.config_for(&cell);
        assert_eq!(
            config.temporal_drift_std_db.to_bits(),
            base.temporal_drift_std_db.to_bits()
        );
        assert_eq!(
            config.reshadow_std_db.to_bits(),
            base.reshadow_std_db.to_bits()
        );
        assert_eq!(config.test_devices, base.test_devices);
        assert_eq!(
            config.train_fingerprints_per_rp,
            base.train_fingerprints_per_rp
        );
        assert_eq!(plan.seed_for(&cell), 5);
    }

    #[test]
    fn single_cell_matches_direct_generate() {
        let spec_b = tiny_building();
        let config = CollectionConfig::small();
        let set = ScenarioSpec::single(spec_b.clone(), 4, config.clone(), 11).generate();
        assert_eq!(set.len(), 1);
        let direct = Scenario::generate(&Building::generate(spec_b, 4), &config, 11);
        assert_eq!(set.scenario(0), &direct, "grid cell must equal direct call");
        assert_eq!(set.seed_for(0), 11);
        assert!(set.env_for(0).is_baseline());
        assert_eq!(set.building_name(0), "Building 2");
    }

    #[test]
    fn environment_axis_changes_online_but_not_offline_data() {
        let spec = ScenarioSpec::single(tiny_building(), 2, CollectionConfig::small(), 3)
            .with_environments(vec![EnvLevel::BASELINE, EnvLevel::uniform(3.0)]);
        let set = spec.generate();
        assert_eq!(set.len(), 2);
        let (baseline, harsh) = (set.scenario(0), set.scenario(1));
        // The offline survey has no between-phase drift, so the training
        // data is shared by every environment level.
        assert_eq!(baseline.train, harsh.train, "survey must not see drift");
        // The online sessions do drift: the harsher environment yields
        // different (and typically worse-aligned) fingerprints.
        assert_ne!(
            baseline.test_per_device[0].1.x, harsh.test_per_device[0].1.x,
            "environment level must change the online data"
        );
        assert_eq!(set.env_for(1), EnvLevel::uniform(3.0));
    }

    #[test]
    fn env_level_labels() {
        assert_eq!(EnvLevel::BASELINE.label(), "baseline");
        assert_eq!(EnvLevel::uniform(2.0).label(), "drift x2");
        assert_eq!(
            EnvLevel {
                drift_mult: 2.0,
                reshadow_mult: 1.0
            }
            .label(),
            "drift x2 / reshadow x1"
        );
    }

    #[test]
    fn shards_generate_the_same_scenarios_as_the_full_plan() {
        let spec = ScenarioSpec::single(tiny_building(), 0, CollectionConfig::small(), 1)
            .with_seeds(vec![1, 2, 3]);
        let full = spec.plan();
        let whole = spec.generate();

        let back = full.shard(1..3);
        assert_eq!(back.len(), 2);
        assert_eq!(
            back.cells()[0].plan_index,
            1,
            "shard cells keep their original plan indices"
        );
        let back_set = back.generate();
        assert_eq!(back_set.scenario(0), whole.scenario(1));
        assert_eq!(back_set.scenario(1), whole.scenario(2));

        let front = spec.plan().shard(0..1).generate();
        assert_eq!(front.scenario(0), whole.scenario(0));

        assert!(spec.plan().shard(2..2).is_empty(), "empty shards are fine");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn shard_rejects_an_out_of_range_window() {
        let plan = ScenarioSpec::single(tiny_building(), 0, CollectionConfig::small(), 1).plan();
        let _ = plan.shard(0..2);
    }

    #[test]
    fn iter_yields_cells_with_scenarios_in_order() {
        let set = ScenarioSpec::single(tiny_building(), 0, CollectionConfig::small(), 1)
            .with_seeds(vec![1, 2])
            .generate();
        let mut count = 0;
        for (i, (cell, scenario)) in set.iter().enumerate() {
            assert_eq!(cell.plan_index, i);
            assert!(!scenario.train.is_empty());
            count += 1;
        }
        assert_eq!(count, 2);
    }
}
