//! End-to-end data collection scenarios following the paper's protocol.
//!
//! [`Scenario::generate`] is the single-scenario entry point; grids of
//! scenarios (buildings × survey densities × device sets × environment
//! levels × seeds) are declared with [`crate::ScenarioSpec`] and generated
//! in parallel by [`crate::ScenarioPlan::generate`].
//!
//! # Parallelism and the session merge contract
//!
//! A scenario is a set of independent *collection sessions*: the offline
//! survey (reference device, no drift) plus one online session per test
//! device, each under its own realization of between-phase drift. Every
//! session consumes its own forked RNG stream (the forks are drawn from
//! the scenario RNG serially, in session order, exactly as the original
//! serial implementation did), so the sessions fan out onto
//! [`calloc_tensor::par::par_run`] workers and are merged back in session
//! order — the collected scenario is **bit-identical to the historical
//! serial implementation at every `CALLOC_THREADS`**. This fan-out draws
//! the full configured budget even when the scenario itself is one cell
//! of a parallel grid: the pool schedules nested fan-outs rather than
//! collapsing them to serial.
//!
//! Parallelism deliberately stops at session granularity: within one
//! session the measurement loop threads a single RNG stream through the
//! RPs (each draw count is data-dependent), so splitting it per RP would
//! require per-RP forks and change every pinned realization — the golden
//! regression tier (`tests/golden/quick_sweep.csv`) forbids that. Grids
//! scale across cells instead (see [`crate::ScenarioPlan`]).

use calloc_tensor::{par, Matrix, Rng};
use serde::{Deserialize, Serialize};

use crate::building::Building;
use crate::dataset::Dataset;
use crate::device::DeviceProfile;
use crate::propagation::{normalize_rss, PropagationModel};

/// Collection protocol parameters (§V.A of the paper).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CollectionConfig {
    /// Training fingerprints captured per RP (paper: 5).
    pub train_fingerprints_per_rp: usize,
    /// Test fingerprints captured per RP per device (paper: 1).
    pub test_fingerprints_per_rp: usize,
    /// Device used to capture training data (paper: OP3).
    pub reference_device: DeviceProfile,
    /// Devices used for testing (paper: all six of Table I).
    pub test_devices: Vec<DeviceProfile>,
    /// Radio constants.
    pub propagation: PropagationModel,
    /// Std (dB) of the per-AP power drift between the offline survey and
    /// each online session — APs reboot, change load and get moved between
    /// phases, the dominant error source in real deployments.
    pub temporal_drift_std_db: f64,
    /// Std (dB) of the per-link re-shadowing between phases (furniture and
    /// people rearrange the multipath field).
    pub reshadow_std_db: f64,
}

impl CollectionConfig {
    /// The exact protocol of the paper: 5 train / 1 test fingerprints per
    /// RP, OP3 as the reference device, all six Table I devices for test.
    pub fn paper() -> Self {
        CollectionConfig {
            train_fingerprints_per_rp: 5,
            test_fingerprints_per_rp: 1,
            reference_device: DeviceProfile::reference(),
            test_devices: DeviceProfile::paper_devices(),
            propagation: PropagationModel::default(),
            temporal_drift_std_db: 4.0,
            reshadow_std_db: 2.5,
        }
    }

    /// A faster protocol for unit tests and examples: fewer fingerprints
    /// and only the reference + one heterogeneous device (the MOTO, the
    /// most distorting transfer function of Table I).
    pub fn small() -> Self {
        CollectionConfig {
            train_fingerprints_per_rp: 3,
            test_fingerprints_per_rp: 1,
            reference_device: DeviceProfile::reference(),
            test_devices: vec![
                DeviceProfile::by_acronym("MOTO").expect("MOTO is a Table I device"),
                DeviceProfile::reference(),
            ],
            propagation: PropagationModel::default(),
            temporal_drift_std_db: 4.0,
            reshadow_std_db: 2.5,
        }
    }
}

/// A fully collected offline/online scenario for one building: one training
/// set (reference device) and one test set per device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Training fingerprints (offline phase, reference device).
    pub train: Dataset,
    /// Per-device test fingerprints (online phase), in the order of
    /// [`CollectionConfig::test_devices`].
    pub test_per_device: Vec<(DeviceProfile, Dataset)>,
}

impl Scenario {
    /// Collects a complete scenario for `building`, reproducibly from
    /// `seed`.
    ///
    /// The offline survey and the per-device online sessions run in
    /// parallel on up to `calloc_tensor::par::threads()` workers and are
    /// merged in session order; each session owns a forked RNG stream, so
    /// the result is bit-identical for every thread count — and
    /// bit-identical to the historical serial implementation (see the
    /// [module docs](self)).
    pub fn generate(building: &Building, config: &CollectionConfig, seed: u64) -> Self {
        let mut rng = Rng::new(seed ^ building.spec().seed.rotate_left(17));
        // Fork every session stream up front, in the order the serial
        // implementation consumed them: the offline survey first, then one
        // stream per online device session. Each fork draws exactly one
        // word from the scenario RNG, so the stream assignment is
        // independent of how the sessions are later scheduled.
        let mut train_rng = rng.fork(1);
        let session_rngs: Vec<Rng> = (0..config.test_devices.len())
            .map(|i| rng.fork(100 + i as u64))
            .collect();

        // Offline phase: no drift — the survey defines the reference field.
        let no_drift = PhaseDrift::none(building.num_rps(), building.num_aps());
        let mut jobs: Vec<Box<dyn FnOnce() -> Dataset + Send + '_>> =
            Vec::with_capacity(config.test_devices.len() + 1);
        jobs.push(Box::new(move || {
            collect(
                building,
                &config.propagation,
                &config.reference_device,
                config.train_fingerprints_per_rp,
                &no_drift,
                &mut train_rng,
            )
        }));
        // Online phase: every device session happens later, under its own
        // realization of AP power drift and re-shadowing.
        for (device, mut session_rng) in config.test_devices.iter().zip(session_rngs) {
            jobs.push(Box::new(move || {
                let drift = PhaseDrift::sample(
                    building.num_rps(),
                    building.num_aps(),
                    config.temporal_drift_std_db,
                    config.reshadow_std_db,
                    &mut session_rng,
                );
                collect(
                    building,
                    &config.propagation,
                    device,
                    config.test_fingerprints_per_rp,
                    &drift,
                    &mut session_rng,
                )
            }));
        }

        let mut sessions = par::par_run(jobs).into_iter();
        let train = sessions.next().expect("the first job is the survey");
        let test_per_device = config.test_devices.iter().cloned().zip(sessions).collect();
        Scenario {
            train,
            test_per_device,
        }
    }

    /// The test dataset for a device acronym, if collected.
    ///
    /// Device lists may repeat an acronym (e.g. the same phone model used
    /// for two online sessions); this returns the **first** matching
    /// session, in [`CollectionConfig::test_devices`] order. Use
    /// [`Scenario::device_acronyms`] to enumerate every collected session
    /// instead of probing acronym strings.
    pub fn test_for(&self, acronym: &str) -> Option<&Dataset> {
        self.test_per_device
            .iter()
            .find(|(d, _)| d.acronym == acronym)
            .map(|(_, ds)| ds)
    }

    /// The acronyms of every collected test device, in session
    /// ([`CollectionConfig::test_devices`]) order — duplicates included,
    /// so the indices align with [`Scenario::test_per_device`].
    pub fn device_acronyms(&self) -> Vec<&str> {
        self.test_per_device
            .iter()
            .map(|(d, _)| d.acronym.as_str())
            .collect()
    }
}

/// Between-phase environment change for one online session: per-AP power
/// drift plus per-link re-shadowing (both in dB).
///
/// Shared crate-internally with [`crate::motion`]: a trajectory is one
/// online session walked through the building, so it samples its drift
/// realization with exactly this machinery.
pub(crate) struct PhaseDrift {
    pub(crate) ap_drift_db: Vec<f64>,
    pub(crate) reshadow_db: Matrix,
}

impl PhaseDrift {
    pub(crate) fn none(n_rp: usize, n_ap: usize) -> Self {
        PhaseDrift {
            ap_drift_db: vec![0.0; n_ap],
            reshadow_db: Matrix::zeros(n_rp, n_ap),
        }
    }

    pub(crate) fn sample(
        n_rp: usize,
        n_ap: usize,
        drift_std: f64,
        reshadow_std: f64,
        rng: &mut Rng,
    ) -> Self {
        PhaseDrift {
            ap_drift_db: (0..n_ap).map(|_| rng.normal(0.0, drift_std)).collect(),
            reshadow_db: Matrix::from_fn(n_rp, n_ap, |_, _| rng.normal(0.0, reshadow_std)),
        }
    }
}

/// Collects `per_rp` fingerprints at every RP with the given device and
/// returns them as a normalized dataset.
fn collect(
    building: &Building,
    propagation: &PropagationModel,
    device: &DeviceProfile,
    per_rp: usize,
    drift: &PhaseDrift,
    rng: &mut Rng,
) -> Dataset {
    let n_rp = building.num_rps();
    let n_ap = building.num_aps();
    let mut x = Matrix::zeros(n_rp * per_rp, n_ap);
    let mut labels = Vec::with_capacity(n_rp * per_rp);
    let mut row = 0;
    for rp in 0..n_rp {
        for _ in 0..per_rp {
            for ap in 0..n_ap {
                let truth = propagation.measure_dbm(building, rp, ap, rng);
                let shifted = if truth > crate::propagation::RSS_FLOOR_DBM {
                    (truth + drift.ap_drift_db[ap] + drift.reshadow_db.get(rp, ap))
                        .clamp(crate::propagation::RSS_FLOOR_DBM, 0.0)
                } else {
                    truth
                };
                let observed = device.observe(shifted, rng);
                x.set(row, ap, normalize_rss(observed));
            }
            labels.push(rp);
            row += 1;
        }
    }
    Dataset::new(x, labels, building.rp_positions().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::building::BuildingId;

    fn scenario() -> (Building, Scenario) {
        let b = Building::generate(BuildingId::B3.spec(), 1);
        let s = Scenario::generate(&b, &CollectionConfig::paper(), 42);
        (b, s)
    }

    #[test]
    fn paper_protocol_counts() {
        let (b, s) = scenario();
        assert_eq!(s.train.len(), b.num_rps() * 5);
        assert_eq!(s.test_per_device.len(), 6);
        for (_, ds) in &s.test_per_device {
            assert_eq!(ds.len(), b.num_rps());
        }
    }

    #[test]
    fn features_are_normalized() {
        let (_, s) = scenario();
        assert!(s
            .train
            .x
            .as_slice()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn every_rp_is_labelled() {
        let (b, s) = scenario();
        let mut seen = vec![false; b.num_rps()];
        for &l in &s.train.labels {
            seen[l] = true;
        }
        assert!(seen.iter().all(|&v| v));
    }

    #[test]
    fn generation_is_deterministic() {
        let b = Building::generate(BuildingId::B1.spec(), 2);
        let s1 = Scenario::generate(&b, &CollectionConfig::small(), 7);
        let s2 = Scenario::generate(&b, &CollectionConfig::small(), 7);
        assert_eq!(s1.train.x, s2.train.x);
        let s3 = Scenario::generate(&b, &CollectionConfig::small(), 8);
        assert_ne!(s1.train.x, s3.train.x);
    }

    #[test]
    fn device_heterogeneity_shifts_fingerprints() {
        let (_, s) = scenario();
        let op3 = s.test_for("OP3").expect("OP3 collected");
        let moto = s.test_for("MOTO").expect("MOTO collected");
        // Same building, same RPs — but a clearly different mean feature
        // level because of the MOTO transfer function.
        let diff = (op3.x.mean() - moto.x.mean()).abs();
        assert!(diff > 0.005, "device shift too small: {diff}");
    }

    #[test]
    fn nearby_rps_have_similar_fingerprints() {
        // Spatial coherence: the fingerprint at RP i should usually be
        // closer to RP i+1 than to a far-away RP.
        let (b, s) = scenario();
        let per_rp = 5;
        let mut closer = 0;
        let mut total = 0;
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f64>()
        };
        for rp in 0..b.num_rps() - 1 {
            let here = s.train.x.row(rp * per_rp);
            let next = s.train.x.row((rp + 1) * per_rp);
            let far_rp = (rp + b.num_rps() / 2) % b.num_rps();
            let far = s.train.x.row(far_rp * per_rp);
            if dist(here, next) < dist(here, far) {
                closer += 1;
            }
            total += 1;
        }
        assert!(
            closer as f64 > total as f64 * 0.8,
            "spatial coherence too weak: {closer}/{total}"
        );
    }

    #[test]
    fn test_for_unknown_device_is_none() {
        let (_, s) = scenario();
        assert!(s.test_for("PIXEL").is_none());
    }

    #[test]
    fn test_for_duplicate_acronym_returns_first_session() {
        // Two online sessions with the same phone model: each gets its own
        // drift realization, so their datasets differ — `test_for` must
        // resolve the ambiguity to the first session, by contract.
        let b = Building::generate(BuildingId::B1.spec(), 2);
        let mut config = CollectionConfig::small();
        config.test_devices = vec![DeviceProfile::reference(), DeviceProfile::reference()];
        let s = Scenario::generate(&b, &config, 6);
        assert_ne!(
            s.test_per_device[0].1.x, s.test_per_device[1].1.x,
            "sessions must see independent drift"
        );
        let first = s.test_for("OP3").expect("OP3 collected");
        assert_eq!(first.x, s.test_per_device[0].1.x, "first match wins");
    }

    #[test]
    fn device_acronyms_follow_session_order() {
        let (_, s) = scenario();
        assert_eq!(
            s.device_acronyms(),
            vec!["BLU", "HTC", "S7", "LG", "MOTO", "OP3"]
        );
        let b = Building::generate(BuildingId::B1.spec(), 2);
        let mut config = CollectionConfig::small();
        config.test_devices = vec![DeviceProfile::reference(), DeviceProfile::reference()];
        let s = Scenario::generate(&b, &config, 6);
        assert_eq!(s.device_acronyms(), vec!["OP3", "OP3"], "duplicates kept");
    }
}
