//! # calloc-bench
//!
//! Shared infrastructure for the table/figure regeneration binaries and
//! the Criterion micro-benchmarks.
//!
//! Every binary honours the `CALLOC_PROFILE` environment variable:
//!
//! * `quick` (default) — reduced buildings, grids and epochs; finishes in
//!   seconds to a couple of minutes and preserves every qualitative trend.
//! * `full` — the paper's five buildings, six devices and full (ε, ø)
//!   grids; takes considerably longer.
//!
//! Regeneration targets (see DESIGN.md §3):
//!
//! ```text
//! cargo run -p calloc-bench --release --bin table1
//! cargo run -p calloc-bench --release --bin table2
//! cargo run -p calloc-bench --release --bin fig1
//! cargo run -p calloc-bench --release --bin fig4
//! cargo run -p calloc-bench --release --bin fig5
//! cargo run -p calloc-bench --release --bin fig6
//! cargo run -p calloc-bench --release --bin fig7
//! cargo run -p calloc-bench --release --bin model_size
//! ```

#![deny(missing_docs)]

use calloc::CallocConfig;

use calloc_attack::AttackKind;
use calloc_baselines::{GpcConfig, GpcLocalizer, KnnLocalizer};
use calloc_eval::{
    run_sweep, DifferentiableModel, ExecSpec, Localizer, ModelCache, ResultTable, Suite,
    SuiteProfile, SweepSpec,
};
use calloc_sim::{
    normalize_rss, Building, BuildingId, BuildingSpec, CollectionConfig, Dataset, EnvLevel,
    Scenario, ScenarioSpec, Trajectory, TrajectoryPlan, TrajectorySpec, RSS_FLOOR_DBM,
};
use calloc_tensor::{Matrix, Rng, TensorError};
use calloc_track::{run_trajectory_sweep, TrackConfig, TrajectoryTable};

/// Calibration of the paper's ε to our normalized RSS units.
///
/// Our features map 100 dB of dynamic range onto `[0, 1]`, so ε = 0.1 in
/// raw units would mean a 10 dB distortion of *every targeted AP* — far
/// beyond the "subtle perturbations" the paper describes and larger than
/// the signal differences between adjacent RPs (0.5–3 dB), which would
/// make robust localization information-theoretically impossible for every
/// framework. We therefore map the paper's ε through this factor: paper
/// ε = 0.1 → 2.5 dB of per-AP distortion, which reproduces both the
/// "subtle" threat model and the paper's error magnitudes. Documented in
/// DESIGN.md §4.
pub const EPSILON_UNIT: f64 = 0.25;

/// Maps a paper ε (0.1–0.5) to normalized attack units.
pub fn calibrate_epsilon(paper_epsilon: f64) -> f64 {
    paper_epsilon * EPSILON_UNIT
}

/// The shared trained-model cache of the figure binaries.
///
/// When `CALLOC_MODEL_CACHE` names a directory, the cache persists to
/// `<dir>/bench_models.bin`, so every `(member config, scenario cell)`
/// pair trains **once across figures, sweeps and reruns** — a warm
/// second run of any figure restores its models bit-identically instead
/// of retraining them. Without the variable the cache is in-memory:
/// repeated cells still train once within the process, and the figures'
/// output is byte-identical either way (cached models restore the exact
/// parameter bits the training produced).
///
/// # Panics
///
/// Panics if `CALLOC_MODEL_CACHE` is set but the cache file is corrupt
/// or written under an incompatible key scheme — a stale cache must
/// never silently feed wrong models into a figure.
pub fn model_cache() -> ModelCache {
    match std::env::var_os("CALLOC_MODEL_CACHE") {
        Some(dir) => {
            let path = std::path::Path::new(&dir).join("bench_models.bin");
            match ModelCache::open(&path) {
                Ok(cache) => cache,
                Err(e) => panic!("CALLOC_MODEL_CACHE: {e} (delete the file to rebuild the cache)"),
            }
        }
        None => ModelCache::in_memory(),
    }
}

/// Checkpoints the figure binaries' model cache and reports its traffic
/// on stderr — every binary calls this once, after its last training.
///
/// # Panics
///
/// Panics if the checkpoint write fails (out of disk, permissions): a
/// figure that claims to have populated the cache must actually have.
pub fn finish_model_cache(cache: &ModelCache) {
    if let Err(e) = cache.checkpoint() {
        panic!("CALLOC_MODEL_CACHE checkpoint failed: {e}");
    }
    eprintln!(
        "model cache: {} hits, {} misses, {} models{}",
        cache.hits(),
        cache.misses(),
        cache.len(),
        cache
            .path()
            .map(|p| format!(" at {}", p.display()))
            .unwrap_or_else(|| " (in-memory)".to_string()),
    );
}

/// Runs one figure sweep through the binaries' **persistent result
/// store** when `CALLOC_RESULT_STORE` names a directory, else entirely
/// in memory (bit-identical to plain [`run_sweep`] either way, so the
/// figures and their goldens don't move).
///
/// With the store set, the sweep's plan opens (or creates)
/// `<dir>/<label>.bin` and executes only the cells the store is
/// missing: finished cells survive reruns and interrupted figure runs
/// resume at the last checkpoint, the way trained models already
/// survive through [`model_cache`]. `label` must therefore pin
/// everything that distinguishes the sweep besides the plan fingerprint
/// itself — the binaries use `<fig>_<profile>_<building>`.
///
/// # Panics
///
/// Panics when the store file exists but belongs to a different plan or
/// is unreadable (the message names the file; delete it to recompute),
/// when a store write fails, or when any cell fails permanently.
pub fn run_sweep_stored(
    label: &str,
    members: &[(&str, &dyn Localizer)],
    surrogate: Option<&dyn DifferentiableModel>,
    datasets: &[(String, String, &Dataset)],
    spec: &SweepSpec,
) -> ResultTable {
    let Some(dir) = std::env::var_os("CALLOC_RESULT_STORE") else {
        return run_sweep(members, surrogate, datasets, spec);
    };
    let file: String = label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let path = std::path::Path::new(&dir).join(format!("{file}.bin"));
    let names: Vec<String> = members.iter().map(|(n, _)| (*n).into()).collect();
    let labels: Vec<(String, String)> = datasets
        .iter()
        .map(|(b, d, _)| (b.clone(), d.clone()))
        .collect();
    let models: Vec<&dyn Localizer> = members.iter().map(|(_, m)| *m).collect();
    let data: Vec<&Dataset> = datasets.iter().map(|(_, _, d)| *d).collect();
    let plan = spec.plan(&names, &labels);
    let mut store = match plan.open_store(&path) {
        Ok(store) => store,
        Err(e) => panic!(
            "CALLOC_RESULT_STORE: cannot use {}: {e} (delete the file to recompute the sweep)",
            path.display()
        ),
    };
    let restored = store.len();
    let report = plan
        .run_with_store(&models, surrogate, &data, &ExecSpec::default(), &mut store)
        .unwrap_or_else(|e| panic!("CALLOC_RESULT_STORE: {} failed: {e}", path.display()));
    assert!(
        report.is_complete(),
        "sweep {label} left cells unfinished: {}",
        report.summary()
    );
    eprintln!(
        "result store {}: {restored} cells restored, {} executed",
        path.display(),
        report.executed
    );
    report.table
}

/// [`run_sweep_stored`] over a trained suite: the member list and the
/// transfer-attack surrogate come from the suite, exactly as
/// `Suite::sweep` wires them.
pub fn suite_sweep_stored(
    label: &str,
    suite: &Suite,
    datasets: &[(String, String, &Dataset)],
    spec: &SweepSpec,
) -> ResultTable {
    let members: Vec<(&str, &dyn Localizer)> = suite
        .members
        .iter()
        .map(|m| (m.name.as_str(), m.model.as_ref()))
        .collect();
    run_sweep_stored(label, &members, Some(suite.surrogate()), datasets, spec)
}

/// Experiment fidelity, selected by `CALLOC_PROFILE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Reduced grids and epochs (default).
    Quick,
    /// Paper-scale grids.
    Full,
}

impl Profile {
    /// Reads `CALLOC_PROFILE` (`full` → [`Profile::Full`], anything else →
    /// [`Profile::Quick`]).
    pub fn from_env() -> Self {
        match std::env::var("CALLOC_PROFILE").as_deref() {
            Ok("full") => Profile::Full,
            _ => Profile::Quick,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Quick => "quick",
            Profile::Full => "full",
        }
    }
}

/// The buildings evaluated at this profile. `Quick` uses two shrunken
/// buildings (shorter paths, fewer APs) so that training completes in
/// seconds; `Full` generates all five Table II buildings at paper scale.
pub fn buildings(profile: Profile) -> Vec<Building> {
    match profile {
        Profile::Full => BuildingId::ALL
            .iter()
            .map(|id| Building::generate(id.spec(), 0))
            .collect(),
        Profile::Quick => [BuildingId::B1, BuildingId::B3]
            .iter()
            .map(|id| {
                let spec = BuildingSpec {
                    path_length_m: 24,
                    num_aps: 40,
                    ..id.spec()
                };
                Building::generate(spec, 0)
            })
            .collect(),
    }
}

/// Collects the paper's protocol for a building (5 train / 1 test per RP,
/// OP3 reference, all six devices).
pub fn scenario_for(building: &Building, seed: u64) -> Scenario {
    Scenario::generate(building, &CollectionConfig::paper(), seed)
}

/// The declarative scenario grid of this profile: the same buildings as
/// [`buildings`] under the paper protocol, as a `ScenarioSpec` whose cells
/// the figure binaries generate in parallel (`Full` → the five Table II
/// buildings, `Quick` → the two shrunken ones). Binaries override the seed
/// axis per experiment with `with_seeds`.
pub fn scenario_grid(profile: Profile) -> ScenarioSpec {
    match profile {
        Profile::Full => ScenarioSpec::paper(),
        Profile::Quick => ScenarioSpec::quick(),
    }
}

/// The framework-suite training profile for this fidelity.
pub fn suite_profile(profile: Profile) -> SuiteProfile {
    match profile {
        Profile::Full => SuiteProfile::paper(),
        Profile::Quick => SuiteProfile {
            calloc: CallocConfig {
                embedding_dim: 64,
                attention_dim: 32,
                epochs_per_lesson: 10,
                ..CallocConfig::default()
            },
            lessons: 6,
            baseline_epochs: 40,
            ..SuiteProfile::quick()
        },
    }
}

/// The ε grid (paper: 0.1–0.5).
pub fn epsilon_grid(profile: Profile) -> Vec<f64> {
    match profile {
        Profile::Full => vec![0.1, 0.2, 0.3, 0.4, 0.5],
        Profile::Quick => vec![0.1, 0.3, 0.5],
    }
}

/// The ø grid for heatmap-style sweeps (paper: 10–100).
pub fn phi_grid(profile: Profile) -> Vec<f64> {
    match profile {
        Profile::Full => vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0],
        Profile::Quick => vec![10.0, 50.0, 100.0],
    }
}

/// The ø grid of Fig. 7 (paper: 1–100).
pub fn phi_grid_fig7(profile: Profile) -> Vec<f64> {
    match profile {
        Profile::Full => vec![
            1.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0,
        ],
        Profile::Quick => vec![1.0, 20.0, 40.0, 60.0, 80.0, 100.0],
    }
}

/// All three attacks in paper order.
pub fn attacks() -> [AttackKind; 3] {
    AttackKind::ALL
}

/// The figure binaries' base sweep: all three crafting algorithms over
/// this profile's (ε, ø) grids, manipulation injection, strongest-AP
/// targeting, ε calibrated through [`EPSILON_UNIT`], no clean cell (the
/// paper's robustness figures are attack-only). Individual figures swap
/// grids or axes on the returned spec.
pub fn sweep_spec(profile: Profile) -> SweepSpec {
    let mut spec =
        SweepSpec::grid(epsilon_grid(profile), phi_grid(profile)).with_epsilon_unit(EPSILON_UNIT);
    spec.include_clean = false;
    spec
}

/// Training seed of the trajectory-sweep members: one fixed fingerprint
/// survey per building, shared by `fig_traj`, the golden tier and
/// `perf_baseline`.
pub const TRAJECTORY_TRAIN_SEED: u64 = 9;

/// The trajectory grid of this profile: the same buildings as
/// [`buildings`] walked under the paper motion prior, with a two-level
/// environment axis (baseline and 2× drift) so the error-vs-path-length
/// trend composes with [`EnvLevel`] drift severity.
pub fn trajectory_grid(profile: Profile) -> TrajectorySpec {
    let spec = match profile {
        Profile::Full => TrajectorySpec::paper(),
        Profile::Quick => TrajectorySpec::quick(),
    };
    spec.with_environments(vec![EnvLevel::BASELINE, EnvLevel::uniform(2.0)])
}

/// Trains the trajectory-sweep member pair for one building realization:
/// KNN (hard one-hot emissions) and GPC (soft probabilistic emissions),
/// both fit on the building's fixed fingerprint survey under `config`.
pub fn trajectory_members(
    building: &Building,
    config: &CollectionConfig,
    seed: u64,
) -> (KnnLocalizer, GpcLocalizer) {
    let scenario = Scenario::generate(building, config, seed);
    let train = &scenario.train;
    let knn = KnnLocalizer::fit(train.x.clone(), train.labels.clone(), building.num_rps(), 3);
    let gpc = GpcLocalizer::fit(
        train.x.clone(),
        train.labels.clone(),
        building.num_rps(),
        GpcConfig::default(),
    )
    .expect("survey gram matrices are SPD under the default noise");
    (knn, gpc)
}

/// The full trajectory sweep of this profile: error vs path length ×
/// environment level × member (KNN and GPC), sequentially decoded by
/// raw / forward-filtered / smoothed estimators. Deterministic for a
/// fixed profile — `tests/golden/trajectory_sweep.csv` pins the quick
/// rendering byte for byte.
pub fn trajectory_sweep_table(profile: Profile) -> TrajectoryTable {
    let set = trajectory_grid(profile).generate();
    let base = set.plan().spec().base.clone();
    let trained: Vec<(KnnLocalizer, GpcLocalizer)> = set
        .plan()
        .buildings()
        .iter()
        .map(|b| trajectory_members(b, &base, TRAJECTORY_TRAIN_SEED))
        .collect();
    let members: Vec<Vec<(&str, &dyn Localizer)>> = trained
        .iter()
        .map(|(knn, gpc)| {
            vec![
                ("KNN", knn as &dyn Localizer),
                ("GPC", gpc as &dyn Localizer),
            ]
        })
        .collect();
    run_trajectory_sweep(&set, &members, &TrackConfig::paper())
}

/// The seed repository's serial trajectory-set generation — a plain
/// cell-order loop over direct [`Trajectory::generate`] calls — preserved
/// as the baseline for the `trajectory_generation` section of the
/// `perf_baseline` JSON snapshot. The parallel
/// `TrajectoryPlan::generate` fan-out must stay **bit-identical** to it
/// for every plan, which is also what keeps
/// `tests/golden/trajectory_sweep.csv` byte-stable across thread counts.
pub fn seed_trajectory_set_reference(plan: &TrajectoryPlan) -> Vec<Trajectory> {
    plan.cells()
        .iter()
        .map(|cell| {
            Trajectory::generate(
                &plan.buildings()[cell.building],
                &plan.spec().motion,
                &plan.config_for(cell),
                plan.steps_for(cell),
                plan.seed_for(cell),
            )
        })
        .collect()
}

/// The seed repository's unblocked Cholesky kernel, preserved verbatim as
/// the shared baseline for the `perf_baseline` JSON snapshot — the
/// blocked/parallel `calloc_tensor::linalg::cholesky` must stay
/// bit-identical to it.
///
/// # Errors
///
/// Returns the same errors as `linalg::cholesky` (non-square input,
/// non-positive pivot).
pub fn seed_cholesky_reference(a: &Matrix) -> Result<Matrix, TensorError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(TensorError::ShapeMismatch(format!(
            "cholesky requires a square matrix, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(TensorError::Numeric(format!(
                        "non-positive pivot {sum:.3e} at row {i}; matrix is not positive definite"
                    )));
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Ok(l)
}

/// Asserts raw-bit matrix equality (unlike `assert_eq!` on `Matrix`, this
/// distinguishes `0.0` from `-0.0`) — the shared assertion behind every
/// seed-reference bit-identity check in this crate (`perf_baseline` and
/// the unit tests below).
///
/// # Panics
///
/// Panics with `context` if the shapes differ or any element's bit
/// pattern does.
pub fn assert_bits_eq(a: &Matrix, b: &Matrix, context: &str) {
    assert_eq!(a.shape(), b.shape(), "{context}: shapes differ");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{context}: element {i} differs ({x} vs {y})"
        );
    }
}

/// The seed repository's scalar RBF row kernel, preserved verbatim as part
/// of the GPC inference reference below.
fn seed_rbf(a: &[f64], b: &[f64], length_scale: f64) -> f64 {
    let sq: f64 = a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum();
    (-sq / (2.0 * length_scale * length_scale)).exp()
}

/// The seed repository's scalar pairwise squared-distance loop (the shape
/// of `SoftKnn::sq_dists` applied per query row), preserved verbatim as
/// the baseline for the `pairwise_dists` section of the `perf_baseline`
/// JSON snapshot — `calloc_tensor::kernel::sq_dists` must stay
/// bit-identical to it.
pub fn seed_sq_dists_reference(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.rows());
    for r in 0..a.rows() {
        let q = a.row(r);
        for i in 0..b.rows() {
            let d = b
                .row(i)
                .iter()
                .zip(q)
                .map(|(p, v)| (p - v).powi(2))
                .sum::<f64>();
            out.set(r, i, d);
        }
    }
    out
}

/// The seed repository's serial scalar GPC scores loop
/// (`GpcLocalizer::scores` before the batched kernel-distance engine),
/// preserved verbatim: one RBF row per (query, training) pair, classes
/// accumulated per element in ascending training order.
pub fn seed_gpc_scores_reference(
    x_train: &Matrix,
    alpha: &Matrix,
    length_scale: f64,
    x: &Matrix,
) -> Matrix {
    let num_classes = alpha.cols();
    let mut out = Matrix::zeros(x.rows(), num_classes);
    for r in 0..x.rows() {
        for i in 0..x_train.rows() {
            let k = seed_rbf(x.row(r), x_train.row(i), length_scale);
            for c in 0..num_classes {
                out.set(r, c, out.get(r, c) + k * alpha.get(i, c));
            }
        }
    }
    out
}

/// The seed repository's serial scalar GPC `loss_and_input_grad` (before
/// the batched kernel-distance engine), preserved verbatim as the baseline
/// for the `gpc_inference` section of the `perf_baseline` JSON snapshot.
/// Note it evaluates the RBF cross-kernel **twice** per call — once inside
/// the logits and again in the gradient loop — which is exactly the
/// redundancy the shared-cross-kernel rewrite removed; the rewrite must
/// nevertheless reproduce these bits exactly.
pub fn seed_gpc_loss_and_input_grad_reference(
    x_train: &Matrix,
    alpha: &Matrix,
    config: calloc_baselines::GpcConfig,
    x: &Matrix,
    targets: &[usize],
) -> (f64, Matrix) {
    assert_eq!(targets.len(), x.rows(), "label count mismatch");
    let logits =
        seed_gpc_scores_reference(x_train, alpha, config.length_scale, x).scale(config.sharpness);
    let (loss, grad_logits) = calloc_nn::loss::cross_entropy(&logits, targets);

    let num_classes = alpha.cols();
    let ls2 = config.length_scale * config.length_scale;
    let mut grad_x = Matrix::zeros(x.rows(), x.cols());
    for r in 0..x.rows() {
        for i in 0..x_train.rows() {
            let k = seed_rbf(x.row(r), x_train.row(i), config.length_scale);
            let mut w = 0.0;
            for c in 0..num_classes {
                w += grad_logits.get(r, c) * alpha.get(i, c);
            }
            w *= config.sharpness * k / ls2;
            for col in 0..x.cols() {
                let delta = x_train.get(i, col) - x.get(r, col);
                grad_x.set(r, col, grad_x.get(r, col) + w * delta);
            }
        }
    }
    (loss, grad_x)
}

/// The seed repository's matmul kernel (naive i-k-j triple loop with its
/// per-element `a == 0.0` skip), preserved verbatim as the shared baseline
/// for the `matmul` criterion bench and the `perf_baseline` JSON snapshot
/// — both must measure against the exact same reference.
pub fn seed_matmul_reference(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    let (ad, bd) = (a.as_slice(), b.as_slice());
    let (k, n) = (a.cols(), b.cols());
    let od = out.as_mut_slice();
    for i in 0..a.rows() {
        for kk in 0..k {
            let av = ad[i * k + kk];
            if av == 0.0 {
                continue;
            }
            let orow = &bd[kk * n..(kk + 1) * n];
            let crow = &mut od[i * n..(i + 1) * n];
            for (cv, &ov) in crow.iter_mut().zip(orow) {
                *cv += av * ov;
            }
        }
    }
    out
}

/// Between-phase environment change of one online session, as realized by
/// the seed scenario generator below (verbatim copy of the simulator's
/// private `PhaseDrift`).
struct SeedPhaseDrift {
    ap_drift_db: Vec<f64>,
    reshadow_db: Matrix,
}

impl SeedPhaseDrift {
    fn none(n_rp: usize, n_ap: usize) -> Self {
        SeedPhaseDrift {
            ap_drift_db: vec![0.0; n_ap],
            reshadow_db: Matrix::zeros(n_rp, n_ap),
        }
    }

    fn sample(n_rp: usize, n_ap: usize, drift_std: f64, reshadow_std: f64, rng: &mut Rng) -> Self {
        SeedPhaseDrift {
            ap_drift_db: (0..n_ap).map(|_| rng.normal(0.0, drift_std)).collect(),
            reshadow_db: Matrix::from_fn(n_rp, n_ap, |_, _| rng.normal(0.0, reshadow_std)),
        }
    }
}

/// The seed repository's per-session collection loop, preserved verbatim
/// as part of the scenario-generation reference below.
fn seed_collect(
    building: &Building,
    propagation: &calloc_sim::PropagationModel,
    device: &calloc_sim::DeviceProfile,
    per_rp: usize,
    drift: &SeedPhaseDrift,
    rng: &mut Rng,
) -> calloc_sim::Dataset {
    let n_rp = building.num_rps();
    let n_ap = building.num_aps();
    let mut x = Matrix::zeros(n_rp * per_rp, n_ap);
    let mut labels = Vec::with_capacity(n_rp * per_rp);
    let mut row = 0;
    for rp in 0..n_rp {
        for _ in 0..per_rp {
            for ap in 0..n_ap {
                let truth = propagation.measure_dbm(building, rp, ap, rng);
                let shifted = if truth > RSS_FLOOR_DBM {
                    (truth + drift.ap_drift_db[ap] + drift.reshadow_db.get(rp, ap))
                        .clamp(RSS_FLOOR_DBM, 0.0)
                } else {
                    truth
                };
                let observed = device.observe(shifted, rng);
                x.set(row, ap, normalize_rss(observed));
            }
            labels.push(rp);
            row += 1;
        }
    }
    calloc_sim::Dataset::new(x, labels, building.rp_positions().to_vec())
}

/// The seed repository's serial `Scenario::generate` (before the
/// session-parallel fan-out), preserved verbatim as the baseline for the
/// `scenario_generation` section of the `perf_baseline` JSON snapshot —
/// the parallel generator (and therefore every `ScenarioSet` cell) must
/// stay **bit-identical** to it for matching `(building, config, seed)`
/// triples, which is also what keeps `tests/golden/quick_sweep.csv`
/// byte-stable across the scenario-grid redesign.
pub fn seed_scenario_generate_reference(
    building: &Building,
    config: &CollectionConfig,
    seed: u64,
) -> Scenario {
    let mut rng = Rng::new(seed ^ building.spec().seed.rotate_left(17));
    let no_drift = SeedPhaseDrift::none(building.num_rps(), building.num_aps());
    let train = seed_collect(
        building,
        &config.propagation,
        &config.reference_device,
        config.train_fingerprints_per_rp,
        &no_drift,
        &mut rng.fork(1),
    );
    let test_per_device = config
        .test_devices
        .iter()
        .enumerate()
        .map(|(i, device)| {
            let mut session_rng = rng.fork(100 + i as u64);
            let drift = SeedPhaseDrift::sample(
                building.num_rps(),
                building.num_aps(),
                config.temporal_drift_std_db,
                config.reshadow_std_db,
                &mut session_rng,
            );
            let ds = seed_collect(
                building,
                &config.propagation,
                device,
                config.test_fingerprints_per_rp,
                &drift,
                &mut session_rng,
            );
            (device.clone(), ds)
        })
        .collect();
    Scenario {
        train,
        test_per_device,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_profile_is_default() {
        // The test environment does not set CALLOC_PROFILE.
        if std::env::var("CALLOC_PROFILE").is_err() {
            assert_eq!(Profile::from_env(), Profile::Quick);
        }
    }

    #[test]
    fn full_profile_generates_table_ii() {
        let b = buildings(Profile::Full);
        assert_eq!(b.len(), 5);
        assert_eq!(b[0].num_aps(), 156);
        assert_eq!(b[4].num_aps(), 218);
    }

    #[test]
    fn quick_buildings_are_small() {
        let b = buildings(Profile::Quick);
        assert_eq!(b.len(), 2);
        assert!(b.iter().all(|b| b.num_rps() <= 24 && b.num_aps() <= 40));
    }

    #[test]
    fn trajectory_grid_generation_is_bit_identical_to_seed_reference() {
        let spec = TrajectorySpec::from_base(
            vec![
                BuildingSpec {
                    path_length_m: 9,
                    num_aps: 7,
                    ..BuildingId::B1.spec()
                },
                BuildingSpec {
                    path_length_m: 10,
                    num_aps: 6,
                    ..BuildingId::B2.spec()
                },
            ],
            4,
            calloc_sim::MotionConfig::paper(),
            CollectionConfig::small(),
            vec![5, 8],
            vec![2, 7],
        )
        .with_environments(vec![EnvLevel::BASELINE, EnvLevel::uniform(2.0)]);
        let plan = spec.plan();
        let reference = seed_trajectory_set_reference(&plan);
        let set = plan.generate();
        assert_eq!(reference.len(), set.len());
        for (i, (a, b)) in reference.iter().zip(set.trajectories()).enumerate() {
            assert_eq!(a.rp_labels, b.rp_labels, "cell {i} labels");
            for (j, (x, y)) in a
                .observations
                .as_slice()
                .iter()
                .zip(b.observations.as_slice())
                .enumerate()
            {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "cell {i} observation {j} diverges from the serial reference"
                );
            }
        }
    }

    #[test]
    fn quick_trajectory_sweep_covers_the_whole_grid() {
        let table = trajectory_sweep_table(Profile::Quick);
        let grid = trajectory_grid(Profile::Quick);
        let cells = grid.buildings.len()
            * grid.path_lengths.len()
            * grid.environments.len()
            * grid.seeds.len();
        // Two members (KNN, GPC) × three estimators per cell.
        assert_eq!(table.len(), cells * 2 * 3);
        assert!(table
            .rows()
            .iter()
            .all(|r| r.mean_error_m.is_finite() && r.final_error_m.is_finite()));
        let envs: std::collections::BTreeSet<&str> =
            table.rows().iter().map(|r| r.env.as_str()).collect();
        assert_eq!(envs.len(), 2, "both environment levels present: {envs:?}");
    }

    #[test]
    fn blocked_cholesky_is_bit_identical_to_seed_reference() {
        use calloc_tensor::{linalg, Rng};
        let n = 100; // crosses the 64-wide panel boundary
        let mut rng = Rng::new(11);
        let b = Matrix::from_fn(n, n, |_, _| rng.normal(0.0, 1.0));
        let a = linalg::add_diagonal(&b.matmul(&b.transpose()), 5.0);
        let seed = seed_cholesky_reference(&a).expect("spd");
        let blocked = linalg::cholesky(&a).expect("spd");
        assert_bits_eq(&seed, &blocked, "blocked cholesky diverges from seed");
    }

    #[test]
    fn batched_sq_dists_is_bit_identical_to_seed_reference() {
        use calloc_tensor::{kernel, Rng};
        let mut rng = Rng::new(21);
        let a = Matrix::from_fn(23, 17, |_, _| rng.uniform(0.0, 1.0));
        let b = Matrix::from_fn(31, 17, |_, _| rng.uniform(0.0, 1.0));
        let seed = seed_sq_dists_reference(&a, &b);
        let batched = kernel::sq_dists(&a, &b);
        assert_bits_eq(&seed, &batched, "batched sq_dists diverges from seed");
    }

    #[test]
    fn batched_gpc_inference_is_bit_identical_to_seed_reference() {
        use calloc_baselines::{GpcConfig, GpcLocalizer};
        use calloc_nn::DifferentiableModel;
        use calloc_tensor::Rng;
        let mut rng = Rng::new(33);
        let classes = 5;
        let x_train = Matrix::from_fn(40, 8, |_, _| rng.uniform(0.0, 1.0));
        let y_train: Vec<usize> = (0..40).map(|i| i % classes).collect();
        let config = GpcConfig::default();
        let gpc = GpcLocalizer::fit(x_train, y_train, classes, config).expect("fit");
        let x = Matrix::from_fn(13, 8, |_, _| rng.uniform(0.0, 1.0));
        let targets: Vec<usize> = (0..13).map(|i| (i * 2) % classes).collect();

        let seed_scores =
            seed_gpc_scores_reference(gpc.x_train(), gpc.alpha(), config.length_scale, &x);
        assert_bits_eq(
            &seed_scores,
            &gpc.scores(&x),
            "batched GPC scores diverge from seed",
        );

        let (seed_loss, seed_grad) = seed_gpc_loss_and_input_grad_reference(
            gpc.x_train(),
            gpc.alpha(),
            config,
            &x,
            &targets,
        );
        let (loss, grad) = gpc.loss_and_input_grad(&x, &targets);
        assert_eq!(seed_loss.to_bits(), loss.to_bits(), "loss diverges");
        assert_bits_eq(&seed_grad, &grad, "GPC input grad diverges from seed");
    }

    #[test]
    fn parallel_scenario_generate_is_bit_identical_to_seed_reference() {
        use calloc_tensor::par;
        let spec = BuildingSpec {
            path_length_m: 12,
            num_aps: 14,
            ..BuildingId::B3.spec()
        };
        let building = Building::generate(spec, 3);
        let config = CollectionConfig::small();
        let reference = seed_scenario_generate_reference(&building, &config, 17);
        let _threads = par::ThreadGuard::new(1);
        for threads in [1usize, 4] {
            par::set_threads(threads);
            let generated = Scenario::generate(&building, &config, 17);
            assert_bits_eq(
                &reference.train.x,
                &generated.train.x,
                &format!("train survey diverges from seed at {threads} threads"),
            );
            assert_eq!(reference.train.labels, generated.train.labels);
            for ((dr, tr), (dg, tg)) in reference
                .test_per_device
                .iter()
                .zip(&generated.test_per_device)
            {
                assert_eq!(dr, dg, "device order diverges at {threads} threads");
                assert_bits_eq(
                    &tr.x,
                    &tg.x,
                    &format!(
                        "{} session diverges from seed at {threads} threads",
                        dr.acronym
                    ),
                );
            }
        }
    }

    #[test]
    fn scenario_grid_matches_profile_buildings() {
        for profile in [Profile::Quick, Profile::Full] {
            let grid = scenario_grid(profile);
            let direct = buildings(profile);
            assert_eq!(grid.buildings.len(), direct.len());
            let planned = grid.plan();
            for (a, b) in planned.buildings().iter().zip(&direct) {
                assert_eq!(a.spec(), b.spec(), "{profile:?}");
                assert_eq!(a.ap_positions(), b.ap_positions(), "{profile:?}");
            }
            assert_eq!(
                grid.base.train_fingerprints_per_rp,
                CollectionConfig::paper().train_fingerprints_per_rp
            );
        }
    }

    #[test]
    fn bench_sweep_spec_matches_profile_grids() {
        let spec = sweep_spec(Profile::Quick);
        assert_eq!(spec.epsilons, epsilon_grid(Profile::Quick));
        assert_eq!(spec.phis, phi_grid(Profile::Quick));
        assert_eq!(spec.epsilon_unit, EPSILON_UNIT);
        assert!(
            !spec.include_clean,
            "paper robustness figures are attack-only"
        );
    }

    #[test]
    fn grids_match_paper_ranges() {
        let eps = epsilon_grid(Profile::Full);
        assert_eq!(eps.first(), Some(&0.1));
        assert_eq!(eps.last(), Some(&0.5));
        let phi = phi_grid(Profile::Full);
        assert_eq!(phi.first(), Some(&10.0));
        assert_eq!(phi.last(), Some(&100.0));
        assert_eq!(phi_grid_fig7(Profile::Full).first(), Some(&1.0));
    }
}
