//! Regenerates Fig. 1: accuracy reduction (increase in localization error)
//! in three classical ML localization solutions — KNN, GPC and DNN — under
//! an FGSM adversarial attack.
//!
//! The paper's bar chart shows, per solution, the clean error and the
//! attacked error; the message is the multiplicative blow-up. We print the
//! same two bars per solution, averaged over all six test devices.

use calloc_attack::AttackConfig;
use calloc_baselines::{DnnConfig, DnnLocalizer, GpcConfig, GpcLocalizer, KnnLocalizer};
use calloc_bench::{buildings, scenario_for, Profile};
use calloc_eval::{evaluate, Localizer};
use calloc_tensor::stats;

fn main() {
    let profile = Profile::from_env();
    println!(
        "FIG 1 — FGSM impact on classical localization (profile: {})",
        profile.name()
    );
    let building = &buildings(profile)[0];
    let scenario = scenario_for(building, 42);
    let train = &scenario.train;
    let k = train.num_classes();
    println!(
        "building: {} ({} APs, {} RPs)\n",
        building.spec().id.name(),
        building.num_aps(),
        building.num_rps()
    );

    let attack = AttackConfig::fgsm(calloc_bench::calibrate_epsilon(0.3), 100.0);

    // KNN — attacked through its differentiable soft surrogate.
    let knn = KnnLocalizer::fit(train.x.clone(), train.labels.clone(), k, 3);
    let soft = knn.to_soft(0.05);
    report("KNN", &knn, Some(&soft), &scenario, &attack);

    // GPC — analytic RBF gradients.
    let gpc = GpcLocalizer::fit(
        train.x.clone(),
        train.labels.clone(),
        k,
        GpcConfig::default(),
    )
    .expect("GPC fit");
    report("GPC", &gpc, None, &scenario, &attack);

    // DNN — standard white-box.
    let dnn = DnnLocalizer::fit(
        &train.x,
        &train.labels,
        k,
        &DnnConfig {
            epochs: 60,
            ..Default::default()
        },
    );
    report("DNN", &dnn, None, &scenario, &attack);

    println!(
        "\n(paper trend: every classical solution suffers a multi-x error blow-up under FGSM)"
    );
}

fn report(
    name: &str,
    model: &dyn Localizer,
    surrogate: Option<&dyn calloc_eval::DifferentiableModel>,
    scenario: &calloc_sim::Scenario,
    attack: &AttackConfig,
) {
    let mut clean = Vec::new();
    let mut attacked = Vec::new();
    for (_, test) in &scenario.test_per_device {
        clean.push(evaluate(model, test, None, None).summary.mean);
        attacked.push(evaluate(model, test, Some(attack), surrogate).summary.mean);
    }
    let c = stats::mean(&clean);
    let a = stats::mean(&attacked);
    let blowup = if c > 0.0 { a / c } else { f64::INFINITY };
    println!(
        "{name:<5} clean {c:>6.2} m   under FGSM {a:>6.2} m   ({blowup:>4.1}x)  {}",
        bar(a, 20.0)
    );
    println!("      {}", bar_labelled(c, 20.0, "clean"));
}

fn bar(v: f64, max: f64) -> String {
    let n = ((v / max) * 40.0).round().clamp(1.0, 40.0) as usize;
    "█".repeat(n)
}

fn bar_labelled(v: f64, max: f64, label: &str) -> String {
    format!("{} {label}", bar(v, max))
}
