//! Regenerates Fig. 5: the impact of curriculum learning. For each attack
//! method and ε value, the mean error of CALLOC (with curriculum) is
//! compared against the NC ablation (no curriculum), averaged over all
//! devices, buildings and ø ∈ {10..100}.

use calloc::{CallocTrainer, Curriculum};
use calloc_attack::AttackConfig;
use calloc_baselines::{DnnConfig, DnnLocalizer};
use calloc_bench::{
    attacks, buildings, epsilon_grid, phi_grid, scenario_for, suite_profile, Profile,
};
use calloc_eval::evaluate;
use calloc_tensor::stats;

fn main() {
    let profile = Profile::from_env();
    println!(
        "FIG 5 — impact of curriculum learning (profile: {})\n",
        profile.name()
    );
    let suite = suite_profile(profile);
    let eps_grid = epsilon_grid(profile);
    let phis = phi_grid(profile);

    let bldgs = buildings(profile);
    let mut pairs = Vec::new(); // (curriculum model, NC model, scenario)
    for (i, b) in bldgs.iter().enumerate() {
        let scenario = scenario_for(b, 77 + i as u64);
        let trainer = CallocTrainer::new(suite.calloc).with_curriculum(Curriculum::linear(
            suite.lessons.max(2),
            suite.train_epsilon,
        ));
        let with = trainer.fit(&scenario.train).model;
        let without = trainer.fit_no_curriculum(&scenario.train).model;
        // An independent surrogate makes the evaluation a worst-case
        // adversary (white-box or transfer, whichever is stronger) so that
        // gradient masking cannot flatter either variant.
        let surrogate = DnnLocalizer::fit(
            &scenario.train.x,
            &scenario.train.labels,
            scenario.train.num_classes(),
            &DnnConfig {
                hidden: vec![64],
                epochs: suite.baseline_epochs,
                ..Default::default()
            },
        );
        eprintln!("trained CALLOC + NC on {}", b.spec().id.name());
        pairs.push((with, without, surrogate, scenario));
    }

    println!(
        "{:<6} {:>5} | {:>12} {:>12} {:>9}",
        "attack", "eps", "CALLOC [m]", "NC [m]", "NC/CALLOC"
    );
    println!("{}", "-".repeat(52));
    for kind in attacks() {
        for &eps in &eps_grid {
            let mut with_errs = Vec::new();
            let mut without_errs = Vec::new();
            for (with, without, surrogate, scenario) in &pairs {
                let sur = surrogate.network();
                for (_, test) in &scenario.test_per_device {
                    for &phi in &phis {
                        let cfg =
                            AttackConfig::standard(kind, calloc_bench::calibrate_epsilon(eps), phi);
                        with_errs.push(evaluate(with, test, Some(&cfg), Some(sur)).summary.mean);
                        without_errs
                            .push(evaluate(without, test, Some(&cfg), Some(sur)).summary.mean);
                    }
                }
            }
            let w = stats::mean(&with_errs);
            let wo = stats::mean(&without_errs);
            println!(
                "{:<6} {:>5.1} | {:>12.2} {:>12.2} {:>8.2}x",
                kind.name(),
                eps,
                w,
                wo,
                wo / w.max(1e-9)
            );
        }
        println!("{}", "-".repeat(52));
    }
    println!("(paper trend: the curriculum keeps errors low at every ε; NC degrades sharply,");
    println!(" especially at high ε)");
}
