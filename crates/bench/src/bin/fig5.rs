//! Regenerates Fig. 5: the impact of curriculum learning. For each attack
//! method and ε value, the mean error of CALLOC (with curriculum) is
//! compared against the NC ablation (no curriculum), averaged over all
//! devices, buildings and ø ∈ {10..100}.
//!
//! Both variants evaluate as members of one sweep plan per building, so
//! the comparison runs on the engine's parallel fan-out.

use calloc::{CallocTrainer, Curriculum};
use calloc_baselines::{DnnConfig, DnnLocalizer};
use calloc_bench::{
    attacks, epsilon_grid, finish_model_cache, model_cache, run_sweep_stored, scenario_grid,
    suite_profile, Profile,
};
use calloc_eval::{Localizer, ResultTable, Suite};

fn main() {
    let profile = Profile::from_env();
    println!(
        "FIG 5 — impact of curriculum learning (profile: {})\n",
        profile.name()
    );
    let suite = suite_profile(profile);
    let spec = calloc_bench::sweep_spec(profile);
    let eps_grid = epsilon_grid(profile);
    let set = scenario_grid(profile).with_seeds(vec![77]).generate();
    let mut cache = model_cache();

    let mut table = ResultTable::new();
    for index in 0..set.len() {
        let scenario = set.scenario(index);
        let cell = set.cell_identity(index);
        let trainer = CallocTrainer::new(suite.calloc).with_curriculum(Curriculum::linear(
            suite.lessons.max(2),
            suite.train_epsilon,
        ));
        let with = cache
            .calloc(&Suite::cache_key(&Suite::calloc_key(&suite), &cell), || {
                trainer.fit(&scenario.train).model
            })
            .expect("model cache");
        let without = cache
            .calloc(&Suite::cache_key(&Suite::nc_key(&suite), &cell), || {
                trainer.fit_no_curriculum(&scenario.train).model
            })
            .expect("model cache");
        // An independent surrogate makes the evaluation a worst-case
        // adversary (white-box or transfer, whichever is stronger) so that
        // gradient masking cannot flatter either variant.
        let sur_config = DnnConfig {
            hidden: vec![64],
            epochs: suite.baseline_epochs,
            ..Default::default()
        };
        let sur_key = Suite::cache_key(&format!("surrogate v1 config={sur_config:?}"), &cell);
        let surrogate = match cache.get_surrogate(&sur_key).expect("model cache") {
            Some(net) => net,
            None => {
                let net = DnnLocalizer::fit(
                    &scenario.train.x,
                    &scenario.train.labels,
                    scenario.train.num_classes(),
                    &sur_config,
                )
                .network()
                .clone();
                cache.insert_surrogate(&sur_key, &net).expect("model cache");
                net
            }
        };
        eprintln!("trained CALLOC + NC on {}", set.building_name(index));
        let datasets = Suite::set_datasets(&set, index);
        let members: [(&str, &dyn Localizer); 2] = [("CALLOC", &with), ("NC", &without)];
        table.extend(run_sweep_stored(
            &format!("fig5_{}_{}", profile.name(), set.building_name(index)),
            &members,
            Some(&surrogate),
            &datasets,
            &spec,
        ));
    }
    finish_model_cache(&cache);

    println!(
        "{:<6} {:>5} | {:>12} {:>12} {:>9}",
        "attack", "eps", "CALLOC [m]", "NC [m]", "NC/CALLOC"
    );
    println!("{}", "-".repeat(52));
    for kind in attacks() {
        for &eps in &eps_grid {
            let w = table
                .mean_where(|r| {
                    r.framework == "CALLOC" && r.attack == kind.name() && r.epsilon == eps
                })
                .expect("CALLOC rows for every (attack, eps)");
            let wo = table
                .mean_where(|r| r.framework == "NC" && r.attack == kind.name() && r.epsilon == eps)
                .expect("NC rows for every (attack, eps)");
            println!(
                "{:<6} {:>5.1} | {:>12.2} {:>12.2} {:>8.2}x",
                kind.name(),
                eps,
                w,
                wo,
                wo / w.max(1e-9)
            );
        }
        println!("{}", "-".repeat(52));
    }
    println!("(paper trend: the curriculum keeps errors low at every ε; NC degrades sharply,");
    println!(" especially at high ε)");
}
