//! Regenerates Fig. 6: CALLOC against the state-of-the-art frameworks
//! (AdvLoc, SANGRIA, ANVIL, WiDeep) — lowest mean and worst-case errors
//! over all devices, buildings, attacks, ε ∈ 0.1–0.5 and ø ∈ 1–100.
//!
//! The paper's headline ratios: CALLOC beats AdvLoc by 1.77×/2.35×
//! (mean/worst-case), SANGRIA by 2.64×/2.92×, ANVIL by 3.77×/4.26× and
//! WiDeep by 6.03×/4.6×.
//!
//! The whole grid runs through the sweep engine
//! (`calloc_eval::sweep`): one plan per building, fanned out on
//! `CALLOC_THREADS` workers and merged in plan-index order, so the CSV at
//! the end is bit-identical for every thread count.

use calloc_bench::{
    epsilon_grid, finish_model_cache, model_cache, phi_grid_fig7, scenario_grid, suite_profile,
    suite_sweep_stored, Profile,
};
use calloc_eval::{ResultTable, Suite, SweepSpec};

fn main() {
    let profile = Profile::from_env();
    println!(
        "FIG 6 — CALLOC vs state-of-the-art (profile: {})\n",
        profile.name()
    );
    let sp = suite_profile(profile);
    let mut spec = calloc_bench::sweep_spec(profile);
    spec.epsilons = epsilon_grid(profile);
    spec.phis = phi_grid_fig7(profile);
    let set = scenario_grid(profile).with_seeds(vec![1000]).generate();
    let mut cache = model_cache();

    let mut table = ResultTable::new();
    for index in 0..set.len() {
        let scenario = set.scenario(index);
        let suite = Suite::train_cached(scenario, &sp, &set.cell_identity(index), &mut cache)
            .expect("model cache");
        eprintln!("trained suite on {}", set.building_name(index));
        let datasets = Suite::set_datasets(&set, index);
        table.extend(suite_sweep_stored(
            &format!("fig6_{}_{}", profile.name(), set.building_name(index)),
            &suite,
            &datasets,
            &spec,
        ));
    }
    finish_model_cache(&cache);

    print_ratios(&table, &spec);
    println!("\n(paper reference ratios vs CALLOC — AdvLoc 1.77x/2.35x, SANGRIA 2.64x/2.92x,");
    println!(" ANVIL 3.77x/4.26x, WiDeep 6.03x/4.6x; expect the same ordering here)");
    println!("\nCSV of all {} cells follows:\n", table.len());
    print!("{}", table.to_csv());
}

fn print_ratios(table: &ResultTable, spec: &SweepSpec) {
    let frameworks = ["CALLOC", "AdvLoc", "SANGRIA", "ANVIL", "WiDeep"];
    let calloc_mean = table
        .mean_where(|r| r.framework == "CALLOC")
        .expect("CALLOC rows");
    let calloc_max = table
        .max_where(|r| r.framework == "CALLOC")
        .expect("CALLOC rows");

    println!(
        "{} attack cells per (framework, device): {} kinds x {} eps x {} phi",
        spec.attacks.len() * spec.epsilons.len() * spec.phis.len(),
        spec.attacks.len(),
        spec.epsilons.len(),
        spec.phis.len()
    );
    println!(
        "{:<8} | {:>9} {:>12} | {:>10} {:>13}",
        "framework", "mean [m]", "vs CALLOC", "worst [m]", "vs CALLOC"
    );
    println!("{}", "-".repeat(62));
    for f in frameworks {
        let Some(mean) = table.mean_where(|r| r.framework == f) else {
            continue;
        };
        let max = table.max_where(|r| r.framework == f).unwrap_or(f64::NAN);
        println!(
            "{:<8} | {:>9.2} {:>11.2}x | {:>10.2} {:>12.2}x",
            f,
            mean,
            mean / calloc_mean.max(1e-9),
            max,
            max / calloc_max.max(1e-9)
        );
    }
}
