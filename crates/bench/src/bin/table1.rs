//! Regenerates Table I: the heterogeneous smartphone suite, together with
//! the simulated transfer-function parameters that stand in for each
//! chipset (see DESIGN.md §1).

use calloc_sim::DeviceProfile;

fn main() {
    println!("TABLE I: SMARTPHONE DETAILS (paper columns + simulation profile)");
    println!(
        "{:<12} {:<12} {:<8} {:>9} {:>7} {:>9} {:>8} {:>10}",
        "Manufacturer", "Model", "Acronym", "Gain[dB]", "Scale", "Noise[dB]", "Q[dB]", "Floor[dBm]"
    );
    for d in DeviceProfile::paper_devices() {
        println!(
            "{:<12} {:<12} {:<8} {:>9.1} {:>7.2} {:>9.1} {:>8.1} {:>10.1}",
            d.manufacturer,
            d.model,
            d.acronym,
            d.gain_offset_db,
            d.scale,
            d.noise_std_db,
            d.quantization_db,
            d.sensitivity_floor_dbm
        );
    }
    println!("\nOP3 is the reference (training) device, as in the paper.");
}
