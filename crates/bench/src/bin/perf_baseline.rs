//! Records a wall-clock performance snapshot of the tensor hot-path
//! kernels to `BENCH_kernels.json` (in the current directory).
//!
//! For each square size the snapshot compares the seed's naive matmul
//! triple loop against the cache-blocked serial kernel
//! (`CALLOC_THREADS=1`) and the row-chunk-parallel kernel (thread budget
//! from `CALLOC_THREADS` / available parallelism), plus the transpose-free
//! `A·Bᵀ` product, the blocked transpose and the parallel row softmax.
//! Every variant's output is asserted bit-identical to the naive reference
//! before it is timed — the determinism contract is checked, not assumed.
//!
//! ```bash
//! cargo run -p calloc-bench --release --bin perf_baseline
//! ```

use calloc_bench::seed_matmul_reference;
use calloc_tensor::{par, Matrix, Rng};
use std::fmt::Write as _;
use std::time::Instant;

/// Best-of-`reps` wall time in milliseconds.
fn best_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let threads = par::threads();
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let reps = 5;
    let mut rows = Vec::new();

    for &size in &[128usize, 256, 384] {
        let mut rng = Rng::new(size as u64);
        let a = Matrix::from_fn(size, size, |_, _| rng.normal(0.0, 1.0));
        let b = Matrix::from_fn(size, size, |_, _| rng.normal(0.0, 1.0));

        let reference = seed_matmul_reference(&a, &b);
        par::set_threads(1);
        assert_eq!(reference, a.matmul(&b), "blocked kernel diverges at {size}");
        par::set_threads(0);
        assert_eq!(
            reference,
            a.matmul(&b),
            "parallel kernel diverges at {size}"
        );
        assert_eq!(
            a.matmul_transposed(&b),
            a.matmul(&b.transpose()),
            "matmul_transposed diverges at {size}"
        );

        let naive_ms = best_ms(reps, || seed_matmul_reference(&a, &b));
        par::set_threads(1);
        let blocked_serial_ms = best_ms(reps, || a.matmul(&b));
        par::set_threads(0);
        let parallel_ms = best_ms(reps, || a.matmul(&b));
        let matmul_transposed_ms = best_ms(reps, || a.matmul_transposed(&b));
        let transpose_ms = best_ms(reps, || a.transpose());
        let softmax_ms = best_ms(reps, || a.softmax_rows());

        println!(
            "matmul {size}x{size}: naive {naive_ms:.3} ms | blocked(serial) \
             {blocked_serial_ms:.3} ms ({:.2}x) | parallel({threads}t) {parallel_ms:.3} ms ({:.2}x)",
            naive_ms / blocked_serial_ms,
            naive_ms / parallel_ms,
        );

        let mut row = String::new();
        write!(
            row,
            "    {{\"size\": {size}, \"naive_ms\": {naive_ms:.4}, \
             \"blocked_serial_ms\": {blocked_serial_ms:.4}, \"parallel_ms\": {parallel_ms:.4}, \
             \"blocked_speedup\": {:.3}, \"parallel_speedup\": {:.3}, \
             \"matmul_transposed_ms\": {matmul_transposed_ms:.4}, \
             \"transpose_ms\": {transpose_ms:.4}, \"softmax_ms\": {softmax_ms:.4}}}",
            naive_ms / blocked_serial_ms,
            naive_ms / parallel_ms,
        )
        .expect("write to string");
        rows.push(row);
    }

    let json = format!(
        "{{\n  \"bench\": \"tensor_kernels\",\n  \"threads\": {threads},\n  \
         \"available_parallelism\": {available},\n  \"reps\": {reps},\n  \"matmul\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json ({threads} worker threads, {available} cores available)");
}
