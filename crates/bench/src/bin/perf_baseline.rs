//! Records a wall-clock performance snapshot of the tensor hot-path
//! kernels to `BENCH_kernels.json` (in the current directory).
//!
//! For each square size the snapshot compares the seed's naive matmul
//! triple loop against the cache-blocked serial kernel
//! (`CALLOC_THREADS=1`) and the row-chunk-parallel kernel (thread budget
//! from `CALLOC_THREADS` / available parallelism), plus the transpose-free
//! `A·Bᵀ` product, the blocked transpose and the parallel row softmax.
//! The same comparison runs for the Cholesky factorization: the seed's
//! unblocked kernel against the blocked right-looking one, serial and
//! parallel (this is the GPC baseline's fit hot path, which dominated
//! attack-sweep wall clock before the blocked kernel landed).
//! Every variant's output is asserted bit-identical to the seed reference
//! before it is timed — the determinism contract is checked, not assumed.
//!
//! ```bash
//! cargo run -p calloc-bench --release --bin perf_baseline
//! ```

use calloc_bench::{seed_cholesky_reference, seed_matmul_reference};
use calloc_tensor::{linalg, par, Matrix, Rng};
use std::fmt::Write as _;
use std::time::Instant;

/// Best-of-`reps` wall time in milliseconds.
fn best_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let threads = par::threads();
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let reps = 5;
    let mut rows = Vec::new();

    for &size in &[128usize, 256, 384] {
        let mut rng = Rng::new(size as u64);
        let a = Matrix::from_fn(size, size, |_, _| rng.normal(0.0, 1.0));
        let b = Matrix::from_fn(size, size, |_, _| rng.normal(0.0, 1.0));

        let reference = seed_matmul_reference(&a, &b);
        par::set_threads(1);
        assert_eq!(reference, a.matmul(&b), "blocked kernel diverges at {size}");
        par::set_threads(0);
        assert_eq!(
            reference,
            a.matmul(&b),
            "parallel kernel diverges at {size}"
        );
        assert_eq!(
            a.matmul_transposed(&b),
            a.matmul(&b.transpose()),
            "matmul_transposed diverges at {size}"
        );

        let naive_ms = best_ms(reps, || seed_matmul_reference(&a, &b));
        par::set_threads(1);
        let blocked_serial_ms = best_ms(reps, || a.matmul(&b));
        par::set_threads(0);
        let parallel_ms = best_ms(reps, || a.matmul(&b));
        let matmul_transposed_ms = best_ms(reps, || a.matmul_transposed(&b));
        let transpose_ms = best_ms(reps, || a.transpose());
        let softmax_ms = best_ms(reps, || a.softmax_rows());

        println!(
            "matmul {size}x{size}: naive {naive_ms:.3} ms | blocked(serial) \
             {blocked_serial_ms:.3} ms ({:.2}x) | parallel({threads}t) {parallel_ms:.3} ms ({:.2}x)",
            naive_ms / blocked_serial_ms,
            naive_ms / parallel_ms,
        );

        let mut row = String::new();
        write!(
            row,
            "    {{\"size\": {size}, \"naive_ms\": {naive_ms:.4}, \
             \"blocked_serial_ms\": {blocked_serial_ms:.4}, \"parallel_ms\": {parallel_ms:.4}, \
             \"blocked_speedup\": {:.3}, \"parallel_speedup\": {:.3}, \
             \"matmul_transposed_ms\": {matmul_transposed_ms:.4}, \
             \"transpose_ms\": {transpose_ms:.4}, \"softmax_ms\": {softmax_ms:.4}}}",
            naive_ms / blocked_serial_ms,
            naive_ms / parallel_ms,
        )
        .expect("write to string");
        rows.push(row);
    }

    let mut chol_rows = Vec::new();
    for &size in &[128usize, 256, 384] {
        let mut rng = Rng::new(0x5EED ^ size as u64);
        let b = Matrix::from_fn(size, size, |_, _| rng.normal(0.0, 1.0));
        let spd = linalg::add_diagonal(&b.matmul(&b.transpose()), size as f64 * 0.05);

        let reference = seed_cholesky_reference(&spd).expect("SPD by construction");
        par::set_threads(1);
        assert_eq!(
            reference,
            linalg::cholesky(&spd).expect("spd"),
            "blocked cholesky diverges from seed at {size}"
        );
        par::set_threads(0);
        assert_eq!(
            reference,
            linalg::cholesky(&spd).expect("spd"),
            "parallel cholesky diverges from seed at {size}"
        );

        let naive_ms = best_ms(reps, || seed_cholesky_reference(&spd));
        par::set_threads(1);
        let blocked_serial_ms = best_ms(reps, || linalg::cholesky(&spd));
        par::set_threads(0);
        let parallel_ms = best_ms(reps, || linalg::cholesky(&spd));

        println!(
            "cholesky {size}x{size}: seed {naive_ms:.3} ms | blocked(serial) \
             {blocked_serial_ms:.3} ms ({:.2}x) | parallel({threads}t) {parallel_ms:.3} ms ({:.2}x)",
            naive_ms / blocked_serial_ms,
            naive_ms / parallel_ms,
        );

        let mut row = String::new();
        write!(
            row,
            "    {{\"size\": {size}, \"seed_ms\": {naive_ms:.4}, \
             \"blocked_serial_ms\": {blocked_serial_ms:.4}, \"parallel_ms\": {parallel_ms:.4}, \
             \"blocked_speedup\": {:.3}, \"parallel_speedup\": {:.3}}}",
            naive_ms / blocked_serial_ms,
            naive_ms / parallel_ms,
        )
        .expect("write to string");
        chol_rows.push(row);
    }

    let json = format!(
        "{{\n  \"bench\": \"tensor_kernels\",\n  \"threads\": {threads},\n  \
         \"available_parallelism\": {available},\n  \"reps\": {reps},\n  \"matmul\": [\n{}\n  ],\n  \
         \"cholesky\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
        chol_rows.join(",\n")
    );
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json ({threads} worker threads, {available} cores available)");
}
