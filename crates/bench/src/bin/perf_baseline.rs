//! Records a wall-clock performance snapshot of the tensor hot-path
//! kernels to `BENCH_kernels.json` (in the current directory).
//!
//! For each square size the snapshot compares the seed's naive matmul
//! triple loop against the cache-blocked serial kernel
//! (`CALLOC_THREADS=1`) and the row-chunk-parallel kernel (thread budget
//! from `CALLOC_THREADS` / available parallelism), plus the transpose-free
//! `A·Bᵀ` product, the blocked transpose and the parallel row softmax.
//! The same comparison runs for the Cholesky factorization: the seed's
//! unblocked kernel against the blocked right-looking one, serial and
//! parallel (this is the GPC baseline's fit hot path, which dominated
//! attack-sweep wall clock before the blocked kernel landed); for the
//! batched pairwise-distance primitives (`kernel::sq_dists` /
//! `kernel::rbf_cross` against the seed's per-query scalar loop); and for
//! GPC *inference* (`loss_and_input_grad` on the shared cross-kernel
//! against the seed scalar path that evaluated every RBF row twice per
//! attack step — the sweep-cell hot path since PR 3); and for scenario
//! generation (the session-parallel `Scenario::generate` and the
//! `ScenarioSpec` grid engine against the seed's serial collector,
//! preserved verbatim as `calloc_bench::seed_scenario_generate_reference`).
//! The `trajectory_generation` section runs the same comparison for the
//! trajectory grid (`TrajectoryPlan::generate` against the serial cell
//! loop `calloc_bench::seed_trajectory_set_reference`), and the
//! `recalibration` section prices online GPC recalibration: the rank-1
//! `absorb` path against a full refit on a growing fingerprint bank,
//! with the absorb-vs-refit divergence asserted inside the documented
//! 1e-6 tolerance tier — and every *batch* kernel still asserted
//! bit-identical to its seed reference — before anything is timed.
//! The `pool` section profiles the worker pool itself: the budget nested
//! fan-outs actually observe (asserted > 1 — the pre-pool runtime
//! collapsed them to serial), a sweep-shaped mixed-cost work list whose
//! straggler cell exercises work reclaiming, and an outer fan-out of
//! row-parallel kernels. The `sweep_resilience` section prices the
//! fault-tolerant sweep layer on a small real KNN sweep: the per-cell
//! panic quarantine, the in-memory and checkpointed-disk result stores,
//! a two-shard split-and-merge, and a resume over a half-full store —
//! each asserted byte-identical to the plain one-shot run before it is
//! timed. The `model_cache` section prices the content-addressed
//! trained-model cache: a small suite trained cold into a fresh disk
//! cache against the warm restore from a reopen, with both paths
//! asserted to sweep byte-identically to a cache-off `Suite::train`
//! before the clock starts. Every variant's output is asserted
//! bit-identical to the seed reference before it is timed — the
//! determinism contract is checked, not assumed.
//!
//! ```bash
//! cargo run -p calloc-bench --release --bin perf_baseline
//! ```

use calloc::CallocConfig;
use calloc_baselines::{GpcConfig, GpcLocalizer, KnnLocalizer};
use calloc_bench::{
    assert_bits_eq, seed_cholesky_reference, seed_gpc_loss_and_input_grad_reference,
    seed_gpc_scores_reference, seed_matmul_reference, seed_scenario_generate_reference,
    seed_sq_dists_reference, seed_trajectory_set_reference,
};
use calloc_eval::{ExecSpec, Localizer, ModelCache, StoreError, Suite, SuiteProfile, SweepSpec};
use calloc_nn::DifferentiableModel;
use calloc_sim::{
    collection_identity, Building, BuildingId, BuildingSpec, CollectionConfig, Dataset, Scenario,
    ScenarioSpec, TrajectorySpec,
};
use calloc_tensor::{kernel, linalg, par, Matrix, Rng};
use std::fmt::Write as _;
use std::time::Instant;

/// Best-of-`reps` wall time in milliseconds.
fn best_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Unwraps a store result or exits with the typed error (which names the
/// offending path) — benches fail loudly, they don't unwind.
fn or_die<T>(result: Result<T, StoreError>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("benchmark store failure: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let threads = par::threads();
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let reps = 5;
    let mut rows = Vec::new();

    for &size in &[128usize, 256, 384] {
        let mut rng = Rng::new(size as u64);
        let a = Matrix::from_fn(size, size, |_, _| rng.normal(0.0, 1.0));
        let b = Matrix::from_fn(size, size, |_, _| rng.normal(0.0, 1.0));

        let reference = seed_matmul_reference(&a, &b);
        par::set_threads(1);
        assert_eq!(reference, a.matmul(&b), "blocked kernel diverges at {size}");
        par::set_threads(0);
        assert_eq!(
            reference,
            a.matmul(&b),
            "parallel kernel diverges at {size}"
        );
        assert_eq!(
            a.matmul_transposed(&b),
            a.matmul(&b.transpose()),
            "matmul_transposed diverges at {size}"
        );

        let naive_ms = best_ms(reps, || seed_matmul_reference(&a, &b));
        par::set_threads(1);
        let blocked_serial_ms = best_ms(reps, || a.matmul(&b));
        par::set_threads(0);
        let parallel_ms = best_ms(reps, || a.matmul(&b));
        let matmul_transposed_ms = best_ms(reps, || a.matmul_transposed(&b));
        let transpose_ms = best_ms(reps, || a.transpose());
        let softmax_ms = best_ms(reps, || a.softmax_rows());

        println!(
            "matmul {size}x{size}: naive {naive_ms:.3} ms | blocked(serial) \
             {blocked_serial_ms:.3} ms ({:.2}x) | parallel({threads}t) {parallel_ms:.3} ms ({:.2}x)",
            naive_ms / blocked_serial_ms,
            naive_ms / parallel_ms,
        );

        let mut row = String::new();
        write!(
            row,
            "    {{\"size\": {size}, \"naive_ms\": {naive_ms:.4}, \
             \"blocked_serial_ms\": {blocked_serial_ms:.4}, \"parallel_ms\": {parallel_ms:.4}, \
             \"blocked_speedup\": {:.3}, \"parallel_speedup\": {:.3}, \
             \"matmul_transposed_ms\": {matmul_transposed_ms:.4}, \
             \"transpose_ms\": {transpose_ms:.4}, \"softmax_ms\": {softmax_ms:.4}}}",
            naive_ms / blocked_serial_ms,
            naive_ms / parallel_ms,
        )
        .expect("write to string");
        rows.push(row);
    }

    let mut chol_rows = Vec::new();
    for &size in &[128usize, 256, 384] {
        let mut rng = Rng::new(0x5EED ^ size as u64);
        let b = Matrix::from_fn(size, size, |_, _| rng.normal(0.0, 1.0));
        let spd = linalg::add_diagonal(&b.matmul(&b.transpose()), size as f64 * 0.05);

        let reference = seed_cholesky_reference(&spd).expect("SPD by construction");
        par::set_threads(1);
        assert_eq!(
            reference,
            linalg::cholesky(&spd).expect("spd"),
            "blocked cholesky diverges from seed at {size}"
        );
        par::set_threads(0);
        assert_eq!(
            reference,
            linalg::cholesky(&spd).expect("spd"),
            "parallel cholesky diverges from seed at {size}"
        );

        let naive_ms = best_ms(reps, || seed_cholesky_reference(&spd));
        par::set_threads(1);
        let blocked_serial_ms = best_ms(reps, || linalg::cholesky(&spd));
        par::set_threads(0);
        let parallel_ms = best_ms(reps, || linalg::cholesky(&spd));

        println!(
            "cholesky {size}x{size}: seed {naive_ms:.3} ms | blocked(serial) \
             {blocked_serial_ms:.3} ms ({:.2}x) | parallel({threads}t) {parallel_ms:.3} ms ({:.2}x)",
            naive_ms / blocked_serial_ms,
            naive_ms / parallel_ms,
        );

        let mut row = String::new();
        write!(
            row,
            "    {{\"size\": {size}, \"seed_ms\": {naive_ms:.4}, \
             \"blocked_serial_ms\": {blocked_serial_ms:.4}, \"parallel_ms\": {parallel_ms:.4}, \
             \"blocked_speedup\": {:.3}, \"parallel_speedup\": {:.3}}}",
            naive_ms / blocked_serial_ms,
            naive_ms / parallel_ms,
        )
        .expect("write to string");
        chol_rows.push(row);
    }

    // --- Batched pairwise-distance primitives vs the seed scalar loop ---
    let mut pair_rows = Vec::new();
    for &(batch, train, dim) in &[(100usize, 150usize, 24usize), (200, 300, 40)] {
        let mut rng = Rng::new(0xD157 ^ (batch * train) as u64);
        let a = Matrix::from_fn(batch, dim, |_, _| rng.uniform(0.0, 1.0));
        let b = Matrix::from_fn(train, dim, |_, _| rng.uniform(0.0, 1.0));

        let reference = seed_sq_dists_reference(&a, &b);
        par::set_threads(1);
        assert_bits_eq(
            &reference,
            &kernel::sq_dists(&a, &b),
            &format!("batched sq_dists diverges from seed at {batch}x{train}x{dim}"),
        );
        par::set_threads(0);
        assert_bits_eq(
            &reference,
            &kernel::sq_dists(&a, &b),
            &format!("parallel sq_dists diverges from seed at {batch}x{train}x{dim}"),
        );
        assert_bits_eq(
            &kernel::rbf_cross(&a, &b, 0.5),
            &kernel::rbf_from_sq_dists(&kernel::sq_dists(&a, &b), 0.5),
            &format!("fused rbf_cross diverges from the composition at {batch}x{train}x{dim}"),
        );

        let seed_ms = best_ms(reps, || seed_sq_dists_reference(&a, &b));
        par::set_threads(1);
        let batched_serial_ms = best_ms(reps, || kernel::sq_dists(&a, &b));
        par::set_threads(0);
        let parallel_ms = best_ms(reps, || kernel::sq_dists(&a, &b));
        let rbf_cross_ms = best_ms(reps, || kernel::rbf_cross(&a, &b, 0.5));

        println!(
            "pairwise {batch}x{train}x{dim}: seed {seed_ms:.3} ms | batched(serial) \
             {batched_serial_ms:.3} ms ({:.2}x) | parallel({threads}t) {parallel_ms:.3} ms ({:.2}x)",
            seed_ms / batched_serial_ms,
            seed_ms / parallel_ms,
        );

        let mut row = String::new();
        write!(
            row,
            "    {{\"batch\": {batch}, \"train\": {train}, \"dim\": {dim}, \
             \"seed_ms\": {seed_ms:.4}, \"batched_serial_ms\": {batched_serial_ms:.4}, \
             \"parallel_ms\": {parallel_ms:.4}, \"serial_speedup\": {:.3}, \
             \"parallel_speedup\": {:.3}, \"rbf_cross_ms\": {rbf_cross_ms:.4}}}",
            seed_ms / batched_serial_ms,
            seed_ms / parallel_ms,
        )
        .expect("write to string");
        pair_rows.push(row);
    }

    // --- GPC inference (the attack-step hot path) vs the seed scalar path ---
    let mut gpc_rows = Vec::new();
    for &(train, batch, dim, classes) in
        &[(150usize, 100usize, 24usize, 12usize), (300, 200, 40, 24)]
    {
        let mut rng = Rng::new(0x69C ^ train as u64);
        let x_train = Matrix::from_fn(train, dim, |_, _| rng.uniform(0.0, 1.0));
        let y_train: Vec<usize> = (0..train).map(|i| i % classes).collect();
        let config = GpcConfig::default();
        let gpc = GpcLocalizer::fit(x_train, y_train, classes, config).expect("SPD kernel");
        let x = Matrix::from_fn(batch, dim, |_, _| rng.uniform(0.0, 1.0));
        let targets: Vec<usize> = (0..batch).map(|i| (i * 7) % classes).collect();

        let scores_ref =
            seed_gpc_scores_reference(gpc.x_train(), gpc.alpha(), config.length_scale, &x);
        let (loss_ref, grad_ref) = seed_gpc_loss_and_input_grad_reference(
            gpc.x_train(),
            gpc.alpha(),
            config,
            &x,
            &targets,
        );
        for thread_setting in [1usize, 0] {
            par::set_threads(thread_setting);
            assert_bits_eq(
                &scores_ref,
                &gpc.scores(&x),
                &format!(
                    "batched GPC scores diverge from seed at {train}x{batch} \
                     (threads {thread_setting})"
                ),
            );
            let (loss, grad) = gpc.loss_and_input_grad(&x, &targets);
            assert_eq!(
                loss_ref.to_bits(),
                loss.to_bits(),
                "GPC loss diverges from seed at {train}x{batch} (threads {thread_setting})"
            );
            assert_bits_eq(
                &grad_ref,
                &grad,
                &format!(
                    "GPC input grad diverges from seed at {train}x{batch} \
                     (threads {thread_setting})"
                ),
            );
        }
        par::set_threads(0);

        let seed_ms = best_ms(reps, || {
            seed_gpc_loss_and_input_grad_reference(gpc.x_train(), gpc.alpha(), config, &x, &targets)
        });
        par::set_threads(1);
        let batched_serial_ms = best_ms(reps, || gpc.loss_and_input_grad(&x, &targets));
        par::set_threads(0);
        let parallel_ms = best_ms(reps, || gpc.loss_and_input_grad(&x, &targets));
        let scores_ms = best_ms(reps, || gpc.scores(&x));

        println!(
            "gpc_inference {train}train x {batch}batch x {dim}d x {classes}c: seed {seed_ms:.3} ms \
             | batched(serial) {batched_serial_ms:.3} ms ({:.2}x) | parallel({threads}t) \
             {parallel_ms:.3} ms ({:.2}x)",
            seed_ms / batched_serial_ms,
            seed_ms / parallel_ms,
        );

        let mut row = String::new();
        write!(
            row,
            "    {{\"train\": {train}, \"batch\": {batch}, \"dim\": {dim}, \
             \"classes\": {classes}, \"seed_ms\": {seed_ms:.4}, \
             \"batched_serial_ms\": {batched_serial_ms:.4}, \"parallel_ms\": {parallel_ms:.4}, \
             \"serial_speedup\": {:.3}, \"parallel_speedup\": {:.3}, \
             \"scores_ms\": {scores_ms:.4}}}",
            seed_ms / batched_serial_ms,
            seed_ms / parallel_ms,
        )
        .expect("write to string");
        gpc_rows.push(row);
    }

    // --- Scenario generation: session-parallel collector + grid engine
    //     vs the seed serial path (preserved verbatim in calloc-bench) ---
    let mut scen_rows = Vec::new();
    for &(path_m, aps) in &[(24usize, 40usize), (48, 80)] {
        let bspec = BuildingSpec {
            path_length_m: path_m,
            num_aps: aps,
            ..BuildingId::B1.spec()
        };
        let building = Building::generate(bspec, 0);
        let config = CollectionConfig::paper();
        let sessions = config.test_devices.len() + 1;

        let reference = seed_scenario_generate_reference(&building, &config, 42);
        for thread_setting in [1usize, 0] {
            par::set_threads(thread_setting);
            let generated = Scenario::generate(&building, &config, 42);
            assert_bits_eq(
                &reference.train.x,
                &generated.train.x,
                &format!(
                    "scenario survey diverges from seed at {path_m}m (threads {thread_setting})"
                ),
            );
            for ((dr, tr), (dg, tg)) in reference
                .test_per_device
                .iter()
                .zip(&generated.test_per_device)
            {
                assert_eq!(dr, dg, "device order diverges at {path_m}m");
                assert_bits_eq(
                    &tr.x,
                    &tg.x,
                    &format!(
                        "{} session diverges from seed at {path_m}m (threads {thread_setting})",
                        dr.acronym
                    ),
                );
            }
        }
        par::set_threads(0);

        let seed_ms = best_ms(reps, || {
            seed_scenario_generate_reference(&building, &config, 42)
        });
        par::set_threads(1);
        let serial_ms = best_ms(reps, || Scenario::generate(&building, &config, 42));
        par::set_threads(0);
        let parallel_ms = best_ms(reps, || Scenario::generate(&building, &config, 42));

        println!(
            "scenario {path_m}rp x {aps}ap x {sessions}sessions: seed {seed_ms:.3} ms | \
             serial {serial_ms:.3} ms ({:.2}x) | parallel({threads}t) {parallel_ms:.3} ms ({:.2}x)",
            seed_ms / serial_ms,
            seed_ms / parallel_ms,
        );

        let mut row = String::new();
        write!(
            row,
            "    {{\"rps\": {path_m}, \"aps\": {aps}, \"sessions\": {sessions}, \
             \"seed_ms\": {seed_ms:.4}, \"serial_ms\": {serial_ms:.4}, \
             \"parallel_ms\": {parallel_ms:.4}, \"serial_speedup\": {:.3}, \
             \"parallel_speedup\": {:.3}}}",
            seed_ms / serial_ms,
            seed_ms / parallel_ms,
        )
        .expect("write to string");
        scen_rows.push(row);
    }

    // The grid engine: a quick-profile ScenarioSpec fanned out over cells.
    let grid = ScenarioSpec::quick().with_seeds(vec![1, 2]);
    let grid_cells = grid.plan().len();
    par::set_threads(1);
    let grid_serial_ms = best_ms(reps, || grid.generate());
    par::set_threads(0);
    let grid_parallel_ms = best_ms(reps, || grid.generate());
    println!(
        "scenario_grid {grid_cells} cells: serial {grid_serial_ms:.3} ms | \
         parallel({threads}t) {grid_parallel_ms:.3} ms ({:.2}x)",
        grid_serial_ms / grid_parallel_ms,
    );

    // --- Trajectory generation: the grid fan-out vs the seed serial
    //     cell loop (preserved verbatim in calloc-bench) ---
    let traj_spec = TrajectorySpec::quick().with_seeds(vec![1, 2]);
    let traj_plan = traj_spec.plan();
    let traj_cells = traj_plan.len();
    let traj_reference = seed_trajectory_set_reference(&traj_plan);
    for thread_setting in [1usize, 0] {
        par::set_threads(thread_setting);
        let generated = traj_plan.shard(0..traj_cells).generate();
        for (i, (a, b)) in traj_reference
            .iter()
            .zip(generated.trajectories())
            .enumerate()
        {
            assert_eq!(
                a.rp_labels, b.rp_labels,
                "trajectory walk {i} diverges from seed (threads {thread_setting})"
            );
            assert_bits_eq(
                &a.observations,
                &b.observations,
                &format!(
                    "trajectory observations {i} diverge from seed (threads {thread_setting})"
                ),
            );
        }
    }
    par::set_threads(0);

    let traj_seed_ms = best_ms(reps, || seed_trajectory_set_reference(&traj_plan));
    par::set_threads(1);
    let traj_serial_ms = best_ms(reps, || traj_plan.shard(0..traj_cells).generate());
    par::set_threads(0);
    let traj_parallel_ms = best_ms(reps, || traj_plan.shard(0..traj_cells).generate());

    println!(
        "trajectory_generation {traj_cells} cells: seed {traj_seed_ms:.3} ms | serial \
         {traj_serial_ms:.3} ms ({:.2}x) | parallel({threads}t) {traj_parallel_ms:.3} ms ({:.2}x)",
        traj_seed_ms / traj_serial_ms,
        traj_seed_ms / traj_parallel_ms,
    );

    // --- Online recalibration: rank-1 absorb vs full refit on a growing
    //     fingerprint bank ---
    // The untouched batch kernels stay bit-pinned (asserted above and in
    // the cholesky/gpc sections); absorb itself lives in the documented
    // 1e-6 tolerance tier, asserted here before anything is timed.
    let mut recal_rows = Vec::new();
    for &(bank, added) in &[(128usize, 8usize), (256, 8)] {
        let (dim, classes) = (24usize, 12usize);
        let mut rng = Rng::new(0xABBA ^ bank as u64);
        let x = Matrix::from_fn(bank + added, dim, |_, _| rng.uniform(0.0, 1.0));
        let y: Vec<usize> = (0..bank + added).map(|i| i % classes).collect();
        let head = Matrix::from_fn(bank, dim, |r, c| x.get(r, c));
        let tail = Matrix::from_fn(added, dim, |r, c| x.get(bank + r, c));
        let config = GpcConfig::default();
        let base = GpcLocalizer::fit(head, y[..bank].to_vec(), classes, config).expect("fit");

        let mut absorbed = base.clone();
        absorbed.absorb(&tail, &y[bank..]).expect("absorb");
        let refit = GpcLocalizer::fit(x.clone(), y.clone(), classes, config).expect("refit");
        let queries = Matrix::from_fn(32, dim, |_, _| rng.uniform(0.0, 1.0));
        let (sa, sr) = (absorbed.scores(&queries), refit.scores(&queries));
        let max_div = sa
            .as_slice()
            .iter()
            .zip(sr.as_slice())
            .map(|(p, q)| (p - q).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_div < 1e-6,
            "absorb diverges from refit beyond the tolerance tier at {bank}: {max_div:e}"
        );
        assert_eq!(
            absorbed.predict_classes(&queries),
            refit.predict_classes(&queries),
            "absorb flips predictions at {bank}"
        );

        let refit_ms = best_ms(reps, || {
            GpcLocalizer::fit(x.clone(), y.clone(), classes, config).expect("refit")
        });
        let absorb_ms = best_ms(reps, || {
            let mut g = base.clone();
            g.absorb(&tail, &y[bank..]).expect("absorb");
            g
        });

        println!(
            "recalibration bank {bank}+{added}: refit {refit_ms:.3} ms | absorb \
             {absorb_ms:.3} ms ({:.2}x) | max divergence {max_div:.3e}",
            refit_ms / absorb_ms,
        );

        let mut row = String::new();
        write!(
            row,
            "    {{\"bank\": {bank}, \"added\": {added}, \"dim\": {dim}, \
             \"classes\": {classes}, \"refit_ms\": {refit_ms:.4}, \"absorb_ms\": {absorb_ms:.4}, \
             \"absorb_speedup\": {:.3}, \"max_divergence\": {max_div:.3e}}}",
            refit_ms / absorb_ms,
        )
        .expect("write to string");
        recal_rows.push(row);
    }

    // --- The worker pool itself: nested fan-out budget and the
    //     work-reclaiming straggler profile ---
    // A job running inside a fan-out must see the full configured budget
    // (the pre-pool runtime collapsed nested fan-outs to a budget of 1) —
    // asserted here at an explicit budget so the check is meaningful even
    // on a single-core runner.
    let nested_budget = {
        let _t = par::ThreadGuard::new(4);
        par::par_run(
            (0..4)
                .map(|_| Box::new(par::threads) as Box<dyn FnOnce() -> usize + Send>)
                .collect(),
        )
        .into_iter()
        .min()
        .expect("four probe jobs")
    };
    assert!(
        nested_budget > 1,
        "a job inside a fan-out must see the configured budget, got {nested_budget}"
    );

    // Sweep-shaped mixed-cost work list: one straggler cell (a large
    // matmul, the GPC-heavy sweep cell) among many cheap ones. Under the
    // old static chunking the straggler's chunk-mates idled; with work
    // reclaiming the cheap cells drain around it. Speedup is ~1.0x on a
    // single-core runner and grows with available cores.
    let mut rng = Rng::new(0xF001);
    let big_a = Matrix::from_fn(256, 256, |_, _| rng.normal(0.0, 1.0));
    let big_b = Matrix::from_fn(256, 256, |_, _| rng.normal(0.0, 1.0));
    let small_a = Matrix::from_fn(64, 64, |_, _| rng.normal(0.0, 1.0));
    let small_b = Matrix::from_fn(64, 64, |_, _| rng.normal(0.0, 1.0));
    let straggler_jobs = || {
        let mut jobs: Vec<Box<dyn FnOnce() -> Matrix + Send>> = Vec::new();
        let (ba, bb, sa, sb) = (&big_a, &big_b, &small_a, &small_b);
        jobs.push(Box::new(move || ba.matmul(bb)));
        for _ in 0..15 {
            jobs.push(Box::new(move || sa.matmul(sb)));
        }
        jobs
    };
    par::set_threads(1);
    let straggler_serial_ms = best_ms(reps, || par::par_run(straggler_jobs()));
    par::set_threads(0);
    let straggler_parallel_ms = best_ms(reps, || par::par_run(straggler_jobs()));

    // Nested fan-out wall clock: an outer par_run whose jobs are
    // themselves row-parallel matmuls (the grid-cell → session → kernel
    // shape the sweep and grid engines produce).
    let nested_run = || {
        let (ba, bb) = (&big_a, &big_b);
        let jobs: Vec<Box<dyn FnOnce() -> Matrix + Send>> = (0..4)
            .map(|_| Box::new(move || ba.matmul(bb)) as _)
            .collect();
        par::par_run(jobs)
    };
    par::set_threads(1);
    let nested_serial_ms = best_ms(reps, nested_run);
    par::set_threads(0);
    let nested_parallel_ms = best_ms(reps, nested_run);

    println!(
        "pool: nested budget {nested_budget} (of 4) | straggler sweep serial \
         {straggler_serial_ms:.3} ms, parallel({threads}t) {straggler_parallel_ms:.3} ms ({:.2}x) \
         | nested fan-out serial {nested_serial_ms:.3} ms, parallel {nested_parallel_ms:.3} ms \
         ({:.2}x)",
        straggler_serial_ms / straggler_parallel_ms,
        nested_serial_ms / nested_parallel_ms,
    );

    // --- Fault-tolerant sweep execution: quarantine, store, shard and
    //     resume overhead on a small real KNN sweep ---
    let sweep_building = Building::generate(
        BuildingSpec {
            path_length_m: 12,
            num_aps: 16,
            ..BuildingId::B1.spec()
        },
        3,
    );
    let sweep_scenario = Scenario::generate(&sweep_building, &CollectionConfig::small(), 8);
    let knn = KnnLocalizer::fit(
        sweep_scenario.train.x.clone(),
        sweep_scenario.train.labels.clone(),
        sweep_scenario.train.num_classes(),
        3,
    );
    let soft = knn.to_soft(0.05);
    let names = vec!["KNN".to_string()];
    let labels: Vec<(String, String)> = sweep_scenario
        .test_per_device
        .iter()
        .map(|(d, _)| ("B1".to_string(), d.acronym.clone()))
        .collect();
    let data: Vec<&Dataset> = sweep_scenario
        .test_per_device
        .iter()
        .map(|(_, t)| t)
        .collect();
    let plan = SweepSpec::full_grid(vec![0.1, 0.3], vec![50.0, 100.0])
        .with_seed(5)
        .plan(&names, &labels);
    let models: Vec<&dyn Localizer> = vec![&knn];
    let exec = ExecSpec::default();
    let sweep_cells = plan.len();
    let half = sweep_cells / 2;

    // Byte-identity of every resilient path before any of them is timed.
    let reference_csv = plan.run(&models, Some(&soft), &data).to_csv();
    let ft = plan.run_fault_tolerant(&models, Some(&soft), &data, &exec);
    assert!(ft.is_complete(), "clean sweep must not quarantine cells");
    assert_eq!(
        ft.table.to_csv(),
        reference_csv,
        "fault-tolerant sweep diverges from the plain run"
    );
    let mut half_store = plan.memory_store();
    or_die(
        plan.shard(0..half)
            .run_with_store(&models, Some(&soft), &data, &exec, &mut half_store),
    );
    let mut resumed_store = plan.memory_store();
    or_die(resumed_store.merge(&half_store));
    let resumed =
        or_die(plan.run_with_store(&models, Some(&soft), &data, &exec, &mut resumed_store));
    assert_eq!(resumed.executed, sweep_cells - half);
    assert_eq!(
        resumed.table.to_csv(),
        reference_csv,
        "resumed sweep diverges from the one-shot run"
    );

    let plain_ms = best_ms(reps, || plan.run(&models, Some(&soft), &data));
    let quarantined_ms = best_ms(reps, || {
        plan.run_fault_tolerant(&models, Some(&soft), &data, &exec)
    });
    let store_ms = best_ms(reps, || {
        let mut s = plan.memory_store();
        or_die(plan.run_with_store(&models, Some(&soft), &data, &exec, &mut s)).executed
    });
    let shard_merge_ms = best_ms(reps, || {
        let mut a = plan.memory_store();
        or_die(
            plan.shard(0..half)
                .run_with_store(&models, Some(&soft), &data, &exec, &mut a),
        );
        let mut b = plan.memory_store();
        or_die(plan.shard(half..sweep_cells).run_with_store(
            &models,
            Some(&soft),
            &data,
            &exec,
            &mut b,
        ));
        or_die(a.merge(&b));
        plan.table_from_store(&a).len()
    });
    let store_path =
        std::env::temp_dir().join(format!("calloc_bench_store_{}.bin", std::process::id()));
    let disk_exec = exec.clone().with_checkpoint_every(8);
    let checkpointed_disk_ms = best_ms(reps, || {
        let _ = std::fs::remove_file(&store_path);
        let mut s = or_die(plan.open_store(&store_path));
        or_die(plan.run_with_store(&models, Some(&soft), &data, &disk_exec, &mut s)).executed
    });
    let _ = std::fs::remove_file(&store_path);
    let resume_half_ms = best_ms(reps, || {
        let mut s = plan.memory_store();
        or_die(s.merge(&half_store));
        or_die(plan.run_with_store(&models, Some(&soft), &data, &exec, &mut s)).executed
    });

    println!(
        "sweep_resilience {sweep_cells} cells: plain {plain_ms:.3} ms | quarantined \
         {quarantined_ms:.3} ms ({:.2}x of plain) | in-memory store {store_ms:.3} ms | two shards \
         + merge {shard_merge_ms:.3} ms | disk checkpoints {checkpointed_disk_ms:.3} ms | \
         resume-after-half {resume_half_ms:.3} ms ({:.2}x of plain)",
        quarantined_ms / plain_ms,
        resume_half_ms / plain_ms,
    );

    // --- Content-addressed model cache: cold training vs warm restore ---
    // A small suite (CALLOC + the classical baselines + the surrogate) is
    // trained cold into a fresh disk cache, then restored warm from a
    // reopen. Both paths are asserted to sweep to the **byte-identical**
    // CSV of a cache-off `Suite::train` before anything is timed — the
    // cache must be invisible in the results, only in the wall clock.
    let cache_profile = SuiteProfile {
        calloc: CallocConfig {
            epochs_per_lesson: 4,
            ..CallocConfig::fast()
        },
        lessons: 3,
        include_nc: false,
        include_sota: false,
        include_classical: true,
        baseline_epochs: 10,
        ..SuiteProfile::quick()
    };
    // `sweep_building` was generated with salt 3 and collected under the
    // small protocol with seed 8 — the cell identity restates exactly that.
    let mc_cell = collection_identity(sweep_building.spec(), 3, &CollectionConfig::small(), 8);
    let mc_datasets = Suite::scenario_datasets(&sweep_scenario, "B1");
    let mc_spec = SweepSpec::full_grid(vec![0.1], vec![50.0]).with_seed(5);
    let reference_mc_csv = Suite::train(&sweep_scenario, &cache_profile)
        .sweep(&mc_datasets, &mc_spec)
        .to_csv();
    let cache_path = std::env::temp_dir().join(format!(
        "calloc_bench_model_cache_{}.bin",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&cache_path);
    let mut mc = or_die(ModelCache::open(&cache_path));
    let cold_suite = or_die(Suite::train_cached(
        &sweep_scenario,
        &cache_profile,
        &mc_cell,
        &mut mc,
    ));
    assert_eq!(mc.hits(), 0, "a fresh cache cannot hit");
    let mc_members = mc.misses();
    let mc_entries = mc.len();
    assert_eq!(
        cold_suite.sweep(&mc_datasets, &mc_spec).to_csv(),
        reference_mc_csv,
        "cold cached suite diverges from the cache-off run"
    );
    let mut warm = or_die(ModelCache::open(&cache_path));
    let warm_suite = or_die(Suite::train_cached(
        &sweep_scenario,
        &cache_profile,
        &mc_cell,
        &mut warm,
    ));
    assert_eq!(warm.misses(), 0, "a warm cache must hit every member");
    assert_eq!(warm.hits(), mc_members, "every training must be restored");
    assert_eq!(
        warm_suite.sweep(&mc_datasets, &mc_spec).to_csv(),
        reference_mc_csv,
        "warm cached suite diverges from the cache-off run"
    );

    // Cold reps retrain the whole suite; keep them few — the warm path is
    // the one whose speed matters every run.
    let cache_cold_ms = best_ms(2, || {
        let _ = std::fs::remove_file(&cache_path);
        let mut c = or_die(ModelCache::open(&cache_path));
        or_die(Suite::train_cached(
            &sweep_scenario,
            &cache_profile,
            &mc_cell,
            &mut c,
        ))
    });
    let cache_warm_ms = best_ms(reps, || {
        let mut c = or_die(ModelCache::open(&cache_path));
        or_die(Suite::train_cached(
            &sweep_scenario,
            &cache_profile,
            &mc_cell,
            &mut c,
        ))
    });
    let _ = std::fs::remove_file(&cache_path);

    println!(
        "model_cache {mc_members} trainings ({mc_entries} cached models): cold \
         {cache_cold_ms:.3} ms | warm {cache_warm_ms:.3} ms ({:.2}x)",
        cache_cold_ms / cache_warm_ms,
    );

    let json = format!(
        "{{\n  \"bench\": \"tensor_kernels\",\n  \"threads\": {threads},\n  \
         \"available_parallelism\": {available},\n  \"reps\": {reps},\n  \"matmul\": [\n{}\n  ],\n  \
         \"cholesky\": [\n{}\n  ],\n  \"pairwise_dists\": [\n{}\n  ],\n  \
         \"gpc_inference\": [\n{}\n  ],\n  \"scenario_generation\": [\n{}\n  ],\n  \
         \"scenario_grid\": {{\"cells\": {grid_cells}, \"serial_ms\": {grid_serial_ms:.4}, \
         \"parallel_ms\": {grid_parallel_ms:.4}, \"speedup\": {:.3}}},\n  \
         \"trajectory_generation\": {{\"cells\": {traj_cells}, \"seed_ms\": {traj_seed_ms:.4}, \
         \"serial_ms\": {traj_serial_ms:.4}, \"parallel_ms\": {traj_parallel_ms:.4}, \
         \"serial_speedup\": {:.3}, \"parallel_speedup\": {:.3}}},\n  \
         \"recalibration\": [\n{}\n  ],\n  \
         \"pool\": {{\"nested_budget\": {nested_budget}, \
         \"straggler_serial_ms\": {straggler_serial_ms:.4}, \
         \"straggler_parallel_ms\": {straggler_parallel_ms:.4}, \
         \"straggler_speedup\": {:.3}, \"nested_serial_ms\": {nested_serial_ms:.4}, \
         \"nested_parallel_ms\": {nested_parallel_ms:.4}, \"nested_speedup\": {:.3}}},\n  \
         \"sweep_resilience\": {{\"cells\": {sweep_cells}, \"plain_ms\": {plain_ms:.4}, \
         \"quarantined_ms\": {quarantined_ms:.4}, \"quarantine_overhead\": {:.3}, \
         \"memory_store_ms\": {store_ms:.4}, \"shard_merge_ms\": {shard_merge_ms:.4}, \
         \"checkpointed_disk_ms\": {checkpointed_disk_ms:.4}, \
         \"resume_half_ms\": {resume_half_ms:.4}, \"resume_ratio\": {:.3}}},\n  \
         \"model_cache\": {{\"trainings\": {mc_members}, \"entries\": {mc_entries}, \
         \"cold_ms\": {cache_cold_ms:.4}, \"warm_ms\": {cache_warm_ms:.4}, \
         \"warm_speedup\": {:.3}}}\n}}\n",
        rows.join(",\n"),
        chol_rows.join(",\n"),
        pair_rows.join(",\n"),
        gpc_rows.join(",\n"),
        scen_rows.join(",\n"),
        grid_serial_ms / grid_parallel_ms,
        traj_seed_ms / traj_serial_ms,
        traj_seed_ms / traj_parallel_ms,
        recal_rows.join(",\n"),
        straggler_serial_ms / straggler_parallel_ms,
        nested_serial_ms / nested_parallel_ms,
        quarantined_ms / plain_ms,
        resume_half_ms / plain_ms,
        cache_cold_ms / cache_warm_ms,
    );
    // Crash-safe, typed-error write: a killed bench can't leave a
    // truncated snapshot that looks like results.
    or_die(calloc_eval::write_atomic(
        std::path::Path::new("BENCH_kernels.json"),
        json.as_bytes(),
    ));
    println!("wrote BENCH_kernels.json ({threads} worker threads, {available} cores available)");
}
