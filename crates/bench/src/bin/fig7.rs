//! Regenerates Fig. 7: the effect of the number of attacked APs (ø) on
//! localization error under FGSM (ε = 0.1), one series per framework,
//! averaged over buildings and devices.
//!
//! Paper trends: CALLOC stays nearly flat as ø grows; AdvLoc tracks it but
//! rises from ø ≈ 60; ANVIL/SANGRIA/WiDeep sit higher across the range.

use calloc_attack::{AttackConfig, AttackKind};
use calloc_bench::{buildings, phi_grid_fig7, scenario_for, suite_profile, Profile};
use calloc_eval::{evaluate, Suite};
use calloc_tensor::stats;
use std::collections::BTreeMap;

fn main() {
    let profile = Profile::from_env();
    println!(
        "FIG 7 — error vs attacked APs ø, FGSM ε=0.1 (profile: {})\n",
        profile.name()
    );
    let sp = suite_profile(profile);
    let phis = phi_grid_fig7(profile);

    // series[framework][phi index] = collected mean errors
    let mut series: BTreeMap<String, Vec<Vec<f64>>> = BTreeMap::new();
    for (i, b) in buildings(profile).iter().enumerate() {
        let scenario = scenario_for(b, 2000 + i as u64);
        let suite = Suite::train(&scenario, &sp);
        eprintln!("trained suite on {}", b.spec().id.name());
        for member in &suite.members {
            let entry = series
                .entry(member.name.clone())
                .or_insert_with(|| vec![Vec::new(); phis.len()]);
            for (_, test) in &scenario.test_per_device {
                for (pi, &phi) in phis.iter().enumerate() {
                    let cfg = AttackConfig::standard(
                        AttackKind::Fgsm,
                        calloc_bench::calibrate_epsilon(0.1),
                        phi,
                    );
                    let eval = evaluate(
                        member.model.as_ref(),
                        test,
                        Some(&cfg),
                        Some(suite.surrogate()),
                    );
                    entry[pi].push(eval.summary.mean);
                }
            }
        }
    }

    print!("{:<9}", "phi");
    for &phi in &phis {
        print!("{phi:>8.0}");
    }
    println!();
    println!("{}", "-".repeat(9 + 8 * phis.len()));
    let order = ["CALLOC", "AdvLoc", "SANGRIA", "ANVIL", "WiDeep"];
    for name in order {
        let Some(per_phi) = series.get(name) else {
            continue;
        };
        print!("{name:<9}");
        for errs in per_phi {
            print!("{:>8.2}", stats::mean(errs));
        }
        println!();
    }
    println!("\n(mean localization error in meters; rows should preserve the paper's ordering,");
    println!(" with CALLOC flattest across ø)");
}
