//! Regenerates Fig. 7: the effect of the number of attacked APs (ø) on
//! localization error under FGSM (ε = 0.1), one series per framework,
//! averaged over buildings and devices.
//!
//! Paper trends: CALLOC stays nearly flat as ø grows; AdvLoc tracks it but
//! rises from ø ≈ 60; ANVIL/SANGRIA/WiDeep sit higher across the range.
//!
//! The ø axis is one sweep-engine plan per building (FGSM only); each
//! series is a `mean_where` slice of the merged table.

use calloc_attack::AttackKind;
use calloc_bench::{
    finish_model_cache, model_cache, phi_grid_fig7, scenario_grid, suite_profile,
    suite_sweep_stored, Profile,
};
use calloc_eval::{ResultTable, Suite};

fn main() {
    let profile = Profile::from_env();
    println!(
        "FIG 7 — error vs attacked APs ø, FGSM ε=0.1 (profile: {})\n",
        profile.name()
    );
    let sp = suite_profile(profile);
    let phis = phi_grid_fig7(profile);
    let mut spec = calloc_bench::sweep_spec(profile);
    spec.attacks = vec![AttackKind::Fgsm];
    spec.epsilons = vec![0.1];
    spec.phis = phis.clone();
    let set = scenario_grid(profile).with_seeds(vec![2000]).generate();
    let mut cache = model_cache();

    let mut table = ResultTable::new();
    for index in 0..set.len() {
        let scenario = set.scenario(index);
        let suite = Suite::train_cached(scenario, &sp, &set.cell_identity(index), &mut cache)
            .expect("model cache");
        eprintln!("trained suite on {}", set.building_name(index));
        let datasets = Suite::set_datasets(&set, index);
        table.extend(suite_sweep_stored(
            &format!("fig7_{}_{}", profile.name(), set.building_name(index)),
            &suite,
            &datasets,
            &spec,
        ));
    }
    finish_model_cache(&cache);

    print!("{:<9}", "phi");
    for &phi in &phis {
        print!("{phi:>8.0}");
    }
    println!();
    println!("{}", "-".repeat(9 + 8 * phis.len()));
    let order = ["CALLOC", "AdvLoc", "SANGRIA", "ANVIL", "WiDeep"];
    for name in order {
        if table.for_framework(name).is_empty() {
            continue;
        }
        print!("{name:<9}");
        for &phi in &phis {
            let mean = table
                .mean_where(|r| r.framework == name && r.phi == phi)
                .expect("every (framework, phi) cell is planned");
            print!("{mean:>8.2}");
        }
        println!();
    }
    println!("\n(mean localization error in meters; rows should preserve the paper's ordering,");
    println!(" with CALLOC flattest across ø)");
}
