//! Regenerates Fig. 4: heatmaps of CALLOC's mean localization error across
//! devices (columns), buildings (rows) and attack methods (one heatmap per
//! attack), averaged over the ε (0.1–0.5) and ø (10–100) grids — trained on
//! OP3, tested on all devices.

use calloc::CallocTrainer;
use calloc::Curriculum;
use calloc_attack::AttackConfig;
use calloc_bench::{
    attacks, buildings, epsilon_grid, phi_grid, scenario_for, suite_profile, Profile,
};
use calloc_eval::{ascii_heatmap, evaluate};
use calloc_tensor::stats;

fn main() {
    let profile = Profile::from_env();
    println!(
        "FIG 4 — CALLOC error heatmaps (profile: {})\n",
        profile.name()
    );
    let suite = suite_profile(profile);
    let eps_grid = epsilon_grid(profile);
    let phis = phi_grid(profile);

    let bldgs = buildings(profile);
    let mut models = Vec::new();
    let mut scenarios = Vec::new();
    for (i, b) in bldgs.iter().enumerate() {
        let scenario = scenario_for(b, 42 + i as u64);
        let trainer = CallocTrainer::new(suite.calloc).with_curriculum(Curriculum::linear(
            suite.lessons.max(2),
            suite.train_epsilon,
        ));
        let model = trainer.fit(&scenario.train).model;
        eprintln!("trained CALLOC on {}", b.spec().id.name());
        models.push(model);
        scenarios.push(scenario);
    }

    let device_names: Vec<String> = scenarios[0]
        .test_per_device
        .iter()
        .map(|(d, _)| d.acronym.clone())
        .collect();
    let building_names: Vec<String> = bldgs
        .iter()
        .map(|b| b.spec().id.name().to_string())
        .collect();

    for kind in attacks() {
        let mut grid = Vec::new();
        for (bi, scenario) in scenarios.iter().enumerate() {
            let mut row = Vec::new();
            for (_, test) in &scenario.test_per_device {
                let mut errs = Vec::new();
                for &eps in &eps_grid {
                    for &phi in &phis {
                        let cfg =
                            AttackConfig::standard(kind, calloc_bench::calibrate_epsilon(eps), phi);
                        let eval = evaluate(&models[bi], test, Some(&cfg), None);
                        errs.push(eval.summary.mean);
                    }
                }
                row.push(stats::mean(&errs));
            }
            grid.push(row);
        }
        println!(
            "{}",
            ascii_heatmap(
                &format!(
                    "{} attack — mean error [m] (rows: buildings, cols: devices)",
                    kind.name()
                ),
                &building_names,
                &device_names,
                &grid,
            )
        );
    }
    println!("(paper trends: errors stay bounded; rows are roughly flat across devices;");
    println!(" FGSM ≤ PGD/MIM; buildings with more dynamic noise show slightly higher errors)");
}
