//! Regenerates Fig. 4: heatmaps of CALLOC's mean localization error across
//! devices (columns), buildings (rows) and attack methods (one heatmap per
//! attack), averaged over the ε (0.1–0.5) and ø (10–100) grids — trained on
//! OP3, tested on all devices.
//!
//! The building axis is one declarative scenario grid
//! (`calloc_bench::scenario_grid`, generated in parallel); each cell's
//! attack grid runs through the sweep engine; the per-attack heatmaps are
//! pivots of the one merged `ResultTable`.

use calloc::CallocTrainer;
use calloc::Curriculum;
use calloc_bench::{
    attacks, finish_model_cache, model_cache, run_sweep_stored, scenario_grid, suite_profile,
    Profile,
};
use calloc_eval::{ascii_heatmap, Localizer, ResultTable, Suite};

fn main() {
    let profile = Profile::from_env();
    println!(
        "FIG 4 — CALLOC error heatmaps (profile: {})\n",
        profile.name()
    );
    let suite = suite_profile(profile);
    let spec = calloc_bench::sweep_spec(profile);
    let set = scenario_grid(profile).with_seeds(vec![42]).generate();
    let mut cache = model_cache();

    let mut table = ResultTable::new();
    let mut building_names = Vec::new();
    // All cells collect the same device suite; the first cell's dataset
    // labels fix the heatmap column order.
    let mut device_names = Vec::new();
    for index in 0..set.len() {
        let scenario = set.scenario(index);
        let trainer = CallocTrainer::new(suite.calloc).with_curriculum(Curriculum::linear(
            suite.lessons.max(2),
            suite.train_epsilon,
        ));
        let key = Suite::cache_key(&Suite::calloc_key(&suite), &set.cell_identity(index));
        let model = cache
            .calloc(&key, || trainer.fit(&scenario.train).model)
            .expect("model cache");
        let name = set.building_name(index).to_string();
        eprintln!("trained CALLOC on {name}");
        let datasets = Suite::set_datasets(&set, index);
        if device_names.is_empty() {
            device_names = datasets.iter().map(|(_, d, _)| d.clone()).collect();
        }
        let members: [(&str, &dyn Localizer); 1] = [("CALLOC", &model)];
        table.extend(run_sweep_stored(
            &format!("fig4_{}_{name}", profile.name()),
            &members,
            None,
            &datasets,
            &spec,
        ));
        building_names.push(name);
    }
    finish_model_cache(&cache);

    for kind in attacks() {
        let per_attack = table.filtered(|r| r.attack == kind.name());
        let grid = per_attack.pivot_mean(
            &building_names,
            &device_names,
            |r| &r.building,
            |r| &r.device,
        );
        println!(
            "{}",
            ascii_heatmap(
                &format!(
                    "{} attack — mean error [m] (rows: buildings, cols: devices)",
                    kind.name()
                ),
                &building_names,
                &device_names,
                &grid,
            )
        );
    }
    println!("(paper trends: errors stay bounded; rows are roughly flat across devices;");
    println!(" FGSM ≤ PGD/MIM; buildings with more dynamic noise show slightly higher errors)");
}
