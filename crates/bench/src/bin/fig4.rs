//! Regenerates Fig. 4: heatmaps of CALLOC's mean localization error across
//! devices (columns), buildings (rows) and attack methods (one heatmap per
//! attack), averaged over the ε (0.1–0.5) and ø (10–100) grids — trained on
//! OP3, tested on all devices.
//!
//! Each building's grid runs through the sweep engine; the per-attack
//! heatmaps are pivots of the one merged `ResultTable`.

use calloc::CallocTrainer;
use calloc::Curriculum;
use calloc_bench::{attacks, buildings, scenario_for, suite_profile, Profile};
use calloc_eval::{ascii_heatmap, run_sweep, Localizer, ResultTable, Suite};

fn main() {
    let profile = Profile::from_env();
    println!(
        "FIG 4 — CALLOC error heatmaps (profile: {})\n",
        profile.name()
    );
    let suite = suite_profile(profile);
    let spec = calloc_bench::sweep_spec(profile);

    let mut table = ResultTable::new();
    let mut building_names = Vec::new();
    // All buildings collect the same device suite; the first building's
    // dataset labels fix the heatmap column order.
    let mut device_names = Vec::new();
    for (i, b) in buildings(profile).iter().enumerate() {
        let scenario = scenario_for(b, 42 + i as u64);
        let trainer = CallocTrainer::new(suite.calloc).with_curriculum(Curriculum::linear(
            suite.lessons.max(2),
            suite.train_epsilon,
        ));
        let model = trainer.fit(&scenario.train).model;
        eprintln!("trained CALLOC on {}", b.spec().id.name());
        let name = b.spec().id.name().to_string();
        let datasets = Suite::scenario_datasets(&scenario, &name);
        if device_names.is_empty() {
            device_names = datasets.iter().map(|(_, d, _)| d.clone()).collect();
        }
        let members: [(&str, &dyn Localizer); 1] = [("CALLOC", &model)];
        table.extend(run_sweep(&members, None, &datasets, &spec));
        building_names.push(name);
    }

    for kind in attacks() {
        let per_attack = table.filtered(|r| r.attack == kind.name());
        let grid = per_attack.pivot_mean(
            &building_names,
            &device_names,
            |r| &r.building,
            |r| &r.device,
        );
        println!(
            "{}",
            ascii_heatmap(
                &format!(
                    "{} attack — mean error [m] (rows: buildings, cols: devices)",
                    kind.name()
                ),
                &building_names,
                &device_names,
                &grid,
            )
        );
    }
    println!("(paper trends: errors stay bounded; rows are roughly flat across devices;");
    println!(" FGSM ≤ PGD/MIM; buildings with more dynamic noise show slightly higher errors)");
}
