//! Regenerates the trajectory figure: localization error versus walked
//! path length, per environment level and member, comparing the raw
//! per-sample estimator against the forward-filtered and smoothed
//! sequential decoders.
//!
//! Also prints the online-recalibration accuracy table: the maximum
//! divergence between `GpcLocalizer::absorb` and a full refit on a
//! growing fingerprint bank, which must stay inside the documented
//! 1e-6 tolerance tier.

use calloc_baselines::{GpcConfig, GpcLocalizer, Localizer};
use calloc_bench::{trajectory_grid, trajectory_sweep_table, Profile};
use calloc_sim::{CollectionConfig, Scenario};
use calloc_tensor::Matrix;

fn main() {
    let profile = Profile::from_env();
    println!(
        "FIG TRAJ — error vs path length under sequential inference (profile: {})\n",
        profile.name()
    );

    let table = trajectory_sweep_table(profile);
    let grid = trajectory_grid(profile);

    println!(
        "{:<6} {:>6} {:>10} | {:>9} {:>10} {:>10}",
        "member", "steps", "env", "raw [m]", "filt [m]", "smooth [m]"
    );
    println!("{}", "-".repeat(60));
    for member in ["KNN", "GPC"] {
        for &steps in &grid.path_lengths {
            for env in &grid.environments {
                let label = env.label();
                let mode_mean = |mode: &str| {
                    let errors: Vec<f64> = table
                        .rows()
                        .iter()
                        .filter(|r| {
                            r.member == member
                                && r.path_steps == steps
                                && r.env == label
                                && r.mode == mode
                        })
                        .map(|r| r.mean_error_m)
                        .collect();
                    assert!(!errors.is_empty(), "no rows for {member}/{steps}/{label}");
                    errors.iter().sum::<f64>() / errors.len() as f64
                };
                println!(
                    "{:<6} {:>6} {:>10} | {:>9.2} {:>10.2} {:>10.2}",
                    member,
                    steps,
                    label,
                    mode_mean("raw"),
                    mode_mean("filtered"),
                    mode_mean("smoothed"),
                );
            }
        }
        println!("{}", "-".repeat(60));
    }

    let csv_path = format!("fig_traj_{}.csv", profile.name());
    calloc_eval::write_atomic(std::path::Path::new(&csv_path), table.to_csv().as_bytes())
        .expect("write fig_traj CSV");
    println!("wrote {csv_path} ({} rows)\n", table.len());

    recalibration_table(profile);

    println!("(paper trend: sequential decoding tightens errors as paths lengthen, and the");
    println!(" filter's advantage widens under environment drift)");
}

/// Absorb-vs-refit accuracy on a growing fingerprint bank: one survey's
/// fingerprints absorbed point by point into a GPC trained on the rest.
fn recalibration_table(profile: Profile) {
    println!("online recalibration — absorb vs refit on a growing bank");
    println!(
        "{:<10} {:>6} {:>6} | {:>14} {:>10}",
        "building", "base", "new", "max |Δscore|", "agree"
    );
    println!("{}", "-".repeat(54));
    let buildings = calloc_bench::buildings(profile);
    for building in &buildings {
        let scenario = Scenario::generate(
            building,
            &CollectionConfig::small(),
            calloc_bench::TRAJECTORY_TRAIN_SEED,
        );
        let train = &scenario.train;
        let n = train.x.rows();
        let keep = n - (n / 4).max(1);
        let classes = building.num_rps();
        let head = Matrix::from_fn(keep, train.x.cols(), |r, c| train.x.get(r, c));
        let tail = Matrix::from_fn(n - keep, train.x.cols(), |r, c| train.x.get(keep + r, c));

        let mut absorbed = GpcLocalizer::fit(
            head,
            train.labels[..keep].to_vec(),
            classes,
            GpcConfig::default(),
        )
        .expect("fit");
        absorbed
            .absorb(&tail, &train.labels[keep..])
            .expect("absorb");
        let refit = GpcLocalizer::fit(
            train.x.clone(),
            train.labels.clone(),
            classes,
            GpcConfig::default(),
        )
        .expect("refit");

        let queries = &scenario.test_per_device[0].1.x;
        let (sa, sr) = (absorbed.scores(queries), refit.scores(queries));
        let max_div = sa
            .as_slice()
            .iter()
            .zip(sr.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        let agree = absorbed.predict_classes(queries) == refit.predict_classes(queries);
        assert!(
            max_div < 1e-6,
            "absorb left its tolerance tier: {max_div:e}"
        );
        println!(
            "{:<10} {:>6} {:>6} | {:>14.3e} {:>10}",
            building.spec().id.name(),
            keep,
            n - keep,
            max_div,
            if agree { "yes" } else { "NO" },
        );
    }
    println!();
}
