//! Extension experiments beyond the paper (DESIGN.md §6):
//!
//! 1. **Attacker-knowledge ablation** — how much does the adversary's AP
//!    targeting strategy (strongest / random / weakest) matter?
//! 2. **Curriculum-schedule ablation** — linear ø ramp vs. a two-lesson
//!    "shock" schedule vs. the adaptive controller disabled.
//! 3. **Transfer-attack study** — adversarial examples crafted on a
//!    surrogate DNN applied to CALLOC (the realistic black-box scenario
//!    the paper leaves open).

use calloc::{AdaptiveConfig, CallocTrainer, Curriculum, Localizer};
use calloc_attack::{craft, AttackConfig, AttackKind, Targeting};
use calloc_baselines::{DnnConfig, DnnLocalizer};
use calloc_bench::{
    buildings, calibrate_epsilon, finish_model_cache, model_cache, scenario_for, suite_profile,
    Profile,
};
use calloc_eval::{evaluate, Suite};
use calloc_sim::{collection_identity, CollectionConfig};
use calloc_tensor::stats;

fn main() {
    let profile = Profile::from_env();
    println!(
        "ABLATIONS — extensions beyond the paper (profile: {})\n",
        profile.name()
    );
    let sp = suite_profile(profile);
    let building = &buildings(profile)[0];
    let scenario = scenario_for(building, 4242);
    let eps = calibrate_epsilon(0.3);
    let mut cache = model_cache();
    // `buildings` generates with salt 0; `scenario_for` collects under the
    // paper protocol — the cell identity must restate exactly that.
    let cell = collection_identity(building.spec(), 0, &CollectionConfig::paper(), 4242);

    let trainer = CallocTrainer::new(sp.calloc)
        .with_curriculum(Curriculum::linear(sp.lessons.max(2), sp.train_epsilon));
    let model = cache
        .calloc(&Suite::cache_key(&Suite::calloc_key(&sp), &cell), || {
            trainer.fit(&scenario.train).model
        })
        .expect("model cache");

    // 1. Targeting ablation.
    println!("1) attacker AP-targeting strategy (FGSM, paper ε=0.3, ø=50):");
    for targeting in [Targeting::Strongest, Targeting::Random, Targeting::Weakest] {
        let cfg = AttackConfig::fgsm(eps, 50.0).with_targeting(targeting);
        let mut errs = Vec::new();
        for (_, test) in &scenario.test_per_device {
            errs.push(evaluate(&model, test, Some(&cfg), None).summary.mean);
        }
        println!("   {targeting:?}: mean error {:.2} m", stats::mean(&errs));
    }
    println!("   (a rational adversary targets the strongest APs)\n");

    // 2. Curriculum schedule ablation.
    println!("2) curriculum schedule (PGD, paper ε=0.3, ø=100):");
    // Each schedule variant gets its own member-key half: the curriculum
    // and adaptive settings are part of what was trained, so they must be
    // part of the key (the paper schedule is exactly the suite trainer's,
    // and shares its cache entry).
    let schedules: Vec<(&str, String, CallocTrainer)> = vec![
        ("linear (paper)", Suite::calloc_key(&sp), trainer.clone()),
        (
            "two-lesson shock",
            format!("{} curriculum=linear(2)", Suite::calloc_key(&sp)),
            trainer
                .clone()
                .with_curriculum(Curriculum::linear(2, sp.train_epsilon)),
        ),
        (
            "adaptive off",
            format!("{} adaptive=off", Suite::calloc_key(&sp)),
            trainer.clone().with_adaptive(AdaptiveConfig {
                enabled: false,
                ..Default::default()
            }),
        ),
    ];
    let attack = AttackConfig::standard(AttackKind::Pgd, eps, 100.0);
    for (name, member_half, t) in schedules {
        let m = cache
            .calloc(&Suite::cache_key(&member_half, &cell), || {
                t.fit(&scenario.train).model
            })
            .expect("model cache");
        let mut clean = Vec::new();
        let mut attacked = Vec::new();
        for (_, test) in &scenario.test_per_device {
            clean.push(evaluate(&m, test, None, None).summary.mean);
            attacked.push(evaluate(&m, test, Some(&attack), None).summary.mean);
        }
        println!(
            "   {name:<18} clean {:.2} m  attacked {:.2} m",
            stats::mean(&clean),
            stats::mean(&attacked)
        );
    }
    println!();

    // 3. Black-box transfer onto CALLOC.
    println!("3) black-box transfer (FGSM crafted on a surrogate DNN, ø=100):");
    let sur_config = DnnConfig {
        epochs: sp.baseline_epochs,
        ..Default::default()
    };
    let sur_key = Suite::cache_key(&format!("surrogate v1 config={sur_config:?}"), &cell);
    let surrogate = match cache.get_surrogate(&sur_key).expect("model cache") {
        Some(net) => net,
        None => {
            let net = DnnLocalizer::fit(
                &scenario.train.x,
                &scenario.train.labels,
                scenario.train.num_classes(),
                &sur_config,
            )
            .network()
            .clone();
            cache.insert_surrogate(&sur_key, &net).expect("model cache");
            net
        }
    };
    finish_model_cache(&cache);
    for paper_eps in [0.1, 0.3, 0.5] {
        let cfg = AttackConfig::fgsm(calibrate_epsilon(paper_eps), 100.0);
        let sur = &surrogate;
        let mut white = Vec::new();
        let mut transfer = Vec::new();
        for (_, test) in &scenario.test_per_device {
            let adv_w = craft(&model, &test.x, &test.labels, &cfg);
            white.push(stats::mean(
                &test.errors_meters(&model.predict_classes(&adv_w)),
            ));
            let adv_t = craft(sur, &test.x, &test.labels, &cfg);
            transfer.push(stats::mean(
                &test.errors_meters(&model.predict_classes(&adv_t)),
            ));
        }
        println!(
            "   ε={paper_eps}: white-box {:.2} m   transfer {:.2} m",
            stats::mean(&white),
            stats::mean(&transfer)
        );
    }
    println!("   (transfer attacks are weaker than white-box — CALLOC's white-box");
    println!("    robustness therefore upper-bounds the realistic black-box threat)");
}
