//! Reports the CALLOC model's trainable-parameter count and size for the
//! paper's §V.A setting (the paper reports 65,239 parameters / 254.84 kB).

use calloc::{CallocConfig, CallocModel};
use calloc_tensor::{Matrix, Rng};

fn main() {
    // The paper's parameter breakdown implies 165 effective AP inputs
    // (42,496 = 2 × (165·128 + 128)) and a 29-class final layer.
    let num_aps = 165;
    let num_classes = 29;
    let mut rng = Rng::new(0);
    let memory = Matrix::zeros(num_classes, num_aps);
    let rps: Vec<(f64, f64)> = (0..num_classes).map(|i| (i as f64, 0.0)).collect();
    let model = CallocModel::new(memory, &rps, CallocConfig::default(), &mut rng);

    println!("CALLOC model size (paper §V.A dimensions: {num_aps} APs, {num_classes} RP classes)");
    println!("  trainable parameters : {}", model.parameter_count());
    println!("  f32 model size       : {:.2} kB", model.size_kb_f32());
    println!("  paper reference      : 65,239 parameters / 254.84 kB");
    println!();
    println!("Per-building sizes (Table II dimensions):");
    for id in calloc_sim::BuildingId::ALL {
        let spec = id.spec();
        let memory = Matrix::zeros(spec.path_length_m, spec.num_aps);
        let rps: Vec<(f64, f64)> = (0..spec.path_length_m).map(|i| (i as f64, 0.0)).collect();
        let m = CallocModel::new(memory, &rps, CallocConfig::default(), &mut rng);
        println!(
            "  {:<12} {:>8} params  {:>9.2} kB",
            id.name(),
            m.parameter_count(),
            m.size_kb_f32()
        );
    }
}
