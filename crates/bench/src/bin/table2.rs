//! Regenerates Table II: the five building floorplans, plus the realized
//! statistics of the simulated substitutes (visible APs, RP count, signal
//! coverage).

use calloc_sim::{Building, BuildingId, PropagationModel, RSS_FLOOR_DBM};

fn main() {
    let pm = PropagationModel::default();
    println!("TABLE II: BUILDING FLOORPLAN DETAILS (paper columns + realized simulation)");
    // Column widths match the data rows below: <12 >11 >12 >6 >10 >12.
    println!(
        "Building     Visible APs  Path Length    RPs n (PL exp)  Detected[%]  Characteristics"
    );
    for id in BuildingId::ALL {
        let spec = id.spec();
        let b = Building::generate(spec.clone(), 0);
        let mut detected = 0usize;
        let mut total = 0usize;
        for rp in 0..b.num_rps() {
            for ap in 0..b.num_aps() {
                total += 1;
                if pm.mean_rss_dbm(&b, rp, ap) > RSS_FLOOR_DBM {
                    detected += 1;
                }
            }
        }
        let mats: Vec<String> = spec.materials.iter().map(|m| format!("{m:?}")).collect();
        println!(
            "{:<12} {:>11} {:>9} m {:>6} {:>10.1} {:>11.1}%  {}",
            id.name(),
            b.num_aps(),
            spec.path_length_m,
            b.num_rps(),
            spec.path_loss_exponent,
            100.0 * detected as f64 / total as f64,
            mats.join(", ")
        );
    }
}
