//! Inference-throughput benchmarks for every localization framework
//! (relevant to the paper's mobile/IoT deployment claim).

use calloc::{CallocConfig, CallocTrainer, Curriculum};
use calloc_baselines::{DnnConfig, DnnLocalizer, GpcConfig, GpcLocalizer, KnnLocalizer};
use calloc_nn::Localizer;
use calloc_sim::{Building, BuildingId, BuildingSpec, CollectionConfig, Scenario};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_inference(c: &mut Criterion) {
    let spec = BuildingSpec {
        path_length_m: 16,
        num_aps: 32,
        ..BuildingId::B1.spec()
    };
    let building = Building::generate(spec, 1);
    let s = Scenario::generate(&building, &CollectionConfig::small(), 3);
    let train = &s.train;
    let k = train.num_classes();
    let test = &s.test_per_device[0].1;

    let knn = KnnLocalizer::fit(train.x.clone(), train.labels.clone(), k, 3);
    c.bench_function("predict_knn", |b| {
        b.iter(|| black_box(knn.predict_classes(black_box(&test.x))))
    });

    let gpc = GpcLocalizer::fit(
        train.x.clone(),
        train.labels.clone(),
        k,
        GpcConfig::default(),
    )
    .expect("gpc fit");
    c.bench_function("predict_gpc", |b| {
        b.iter(|| black_box(gpc.predict_classes(black_box(&test.x))))
    });

    let dnn = DnnLocalizer::fit(
        &train.x,
        &train.labels,
        k,
        &DnnConfig {
            epochs: 5,
            ..Default::default()
        },
    );
    c.bench_function("predict_dnn", |b| {
        b.iter(|| black_box(dnn.predict_classes(black_box(&test.x))))
    });

    let calloc = CallocTrainer::new(CallocConfig {
        epochs_per_lesson: 2,
        ..CallocConfig::fast()
    })
    .with_curriculum(Curriculum::linear(2, 0.1))
    .fit(train)
    .model;
    c.bench_function("predict_calloc", |b| {
        b.iter(|| black_box(calloc.predict_classes(black_box(&test.x))))
    });
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
