//! Matmul kernel comparison: the seed's naive triple loop vs. the
//! cache-blocked serial kernel vs. the row-chunk-parallel kernel, plus the
//! transpose-free `A·Bᵀ` product, at the sizes that dominate attention and
//! suite training.
//!
//! `cargo run -p calloc-bench --release --bin perf_baseline` records the
//! same comparison as a JSON snapshot (`BENCH_kernels.json`).

use calloc_bench::seed_matmul_reference;
use calloc_tensor::{par, Matrix, Rng};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_matmul(c: &mut Criterion) {
    for &size in &[128usize, 256] {
        let mut rng = Rng::new(size as u64);
        let a = Matrix::from_fn(size, size, |_, _| rng.normal(0.0, 1.0));
        let b = Matrix::from_fn(size, size, |_, _| rng.normal(0.0, 1.0));

        c.bench_function(&format!("matmul_naive_{size}"), |bch| {
            bch.iter(|| seed_matmul_reference(black_box(&a), black_box(&b)))
        });

        par::set_threads(1);
        c.bench_function(&format!("matmul_blocked_serial_{size}"), |bch| {
            bch.iter(|| black_box(&a).matmul(black_box(&b)))
        });

        par::set_threads(0); // CALLOC_THREADS / available parallelism
        c.bench_function(&format!("matmul_blocked_parallel_{size}"), |bch| {
            bch.iter(|| black_box(&a).matmul(black_box(&b)))
        });

        c.bench_function(&format!("matmul_transposed_{size}"), |bch| {
            bch.iter(|| black_box(&a).matmul_transposed(black_box(&b)))
        });

        c.bench_function(&format!("transpose_then_matmul_{size}"), |bch| {
            bch.iter(|| black_box(&a).matmul(&black_box(&b).transpose()))
        });
    }
}

criterion_group!(benches, bench_matmul);
criterion_main!(benches);
