//! Benchmarks of training throughput: one CALLOC curriculum lesson and
//! one DNN epoch on a small simulated building.

use calloc::{CallocConfig, CallocTrainer, Curriculum};
use calloc_baselines::{DnnConfig, DnnLocalizer};
use calloc_sim::{Building, BuildingId, BuildingSpec, CollectionConfig, Scenario};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn scenario() -> Scenario {
    let spec = BuildingSpec {
        path_length_m: 16,
        num_aps: 32,
        ..BuildingId::B1.spec()
    };
    let building = Building::generate(spec, 1);
    Scenario::generate(&building, &CollectionConfig::small(), 3)
}

fn bench_training(c: &mut Criterion) {
    let s = scenario();

    c.bench_function("calloc_two_lesson_curriculum", |b| {
        let trainer = CallocTrainer::new(CallocConfig {
            epochs_per_lesson: 2,
            ..CallocConfig::fast()
        })
        .with_curriculum(Curriculum::linear(2, 0.1));
        b.iter(|| black_box(trainer.fit(black_box(&s.train))))
    });

    c.bench_function("dnn_short_training", |b| {
        b.iter(|| {
            black_box(DnnLocalizer::fit(
                black_box(&s.train.x),
                black_box(&s.train.labels),
                s.train.num_classes(),
                &DnnConfig {
                    hidden: vec![32],
                    epochs: 2,
                    ..Default::default()
                },
            ))
        })
    });
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
