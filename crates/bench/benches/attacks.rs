//! Microbenchmarks of adversarial-example crafting (FGSM one-step vs the
//! 10-step PGD/MIM) against a DNN victim of paper-like size.

use calloc_attack::{craft, AttackConfig};
use calloc_baselines::{DnnConfig, DnnLocalizer};
use calloc_nn::Localizer;
use calloc_tensor::{Matrix, Rng};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn victim() -> (DnnLocalizer, Matrix, Vec<usize>) {
    let mut rng = Rng::new(1);
    let n = 64;
    let x = Matrix::from_fn(n, 80, |_, _| rng.uniform(0.0, 1.0));
    let y: Vec<usize> = (0..n).map(|i| i % 16).collect();
    let dnn = DnnLocalizer::fit(
        &x,
        &y,
        16,
        &DnnConfig {
            epochs: 3,
            ..Default::default()
        },
    );
    (dnn, x, y)
}

fn bench_attacks(c: &mut Criterion) {
    let (dnn, x, y) = victim();
    let model = dnn.as_differentiable().expect("differentiable");
    for (name, cfg) in [
        ("fgsm_e0.3_phi100", AttackConfig::fgsm(0.3, 100.0)),
        ("pgd10_e0.3_phi100", AttackConfig::pgd(0.3, 100.0)),
        ("mim10_e0.3_phi100", AttackConfig::mim(0.3, 100.0)),
        ("fgsm_e0.3_phi10", AttackConfig::fgsm(0.3, 10.0)),
    ] {
        c.bench_function(&format!("craft_{name}"), |b| {
            b.iter(|| {
                craft(
                    black_box(model),
                    black_box(&x),
                    black_box(&y),
                    black_box(&cfg),
                )
            })
        });
    }
}

criterion_group!(benches, bench_attacks);
criterion_main!(benches);
