//! Benchmarks of the RF simulator: building generation and the paper's
//! full fingerprint-collection protocol.

use calloc_sim::{Building, BuildingId, CollectionConfig, Scenario};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    c.bench_function("generate_building_1", |b| {
        b.iter(|| black_box(Building::generate(BuildingId::B1.spec(), black_box(0))))
    });

    let building = Building::generate(BuildingId::B3.spec(), 0);
    c.bench_function("collect_paper_scenario_b3", |b| {
        b.iter(|| {
            black_box(Scenario::generate(
                black_box(&building),
                &CollectionConfig::paper(),
                black_box(7),
            ))
        })
    });
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
