//! Microbenchmarks of the scaled dot-product attention primitive at the
//! paper's dimensions (128-d hyperspaces, 64-d projections, 64-RP memory).

use calloc_nn::attention::{attention_backward, attention_forward};
use calloc_tensor::{Matrix, Rng};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_attention(c: &mut Criterion) {
    let mut rng = Rng::new(0);
    let q = Matrix::from_fn(32, 64, |_, _| rng.normal(0.0, 1.0));
    let k = Matrix::from_fn(64, 64, |_, _| rng.normal(0.0, 1.0));
    let v = Matrix::from_fn(64, 2, |_, _| rng.normal(0.0, 1.0));

    c.bench_function("attention_forward_b32_m64_d64", |b| {
        b.iter(|| attention_forward(black_box(&q), black_box(&k), black_box(&v)))
    });

    let (out, cache) = attention_forward(&q, &k, &v);
    let g = Matrix::from_fn(out.rows(), out.cols(), |_, _| rng.normal(0.0, 1.0));
    c.bench_function("attention_backward_b32_m64_d64", |b| {
        b.iter(|| attention_backward(black_box(&cache), black_box(&g)))
    });
}

criterion_group!(benches, bench_attention);
criterion_main!(benches);
