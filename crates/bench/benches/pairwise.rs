//! Pairwise kernel-distance primitive comparison: the seed's per-query
//! scalar squared-distance loop vs. the batched row-parallel
//! `kernel::sq_dists`, plus the fused `kernel::rbf_cross` (the GPC
//! attack-step cross-kernel) serial and parallel, at sweep-cell sizes.
//!
//! `cargo run -p calloc-bench --release --bin perf_baseline` records the
//! same comparison as a JSON snapshot (`BENCH_kernels.json`, sections
//! `pairwise_dists` and `gpc_inference`).

use calloc_bench::seed_sq_dists_reference;
use calloc_tensor::{kernel, par, Matrix, Rng};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_pairwise(c: &mut Criterion) {
    for &(batch, train, dim) in &[(100usize, 150usize, 24usize), (200, 300, 40)] {
        let mut rng = Rng::new((batch * train) as u64);
        let a = Matrix::from_fn(batch, dim, |_, _| rng.uniform(0.0, 1.0));
        let b = Matrix::from_fn(train, dim, |_, _| rng.uniform(0.0, 1.0));
        let tag = format!("{batch}x{train}x{dim}");

        c.bench_function(&format!("sq_dists_seed_{tag}"), |bch| {
            bch.iter(|| seed_sq_dists_reference(black_box(&a), black_box(&b)))
        });

        par::set_threads(1);
        c.bench_function(&format!("sq_dists_batched_serial_{tag}"), |bch| {
            bch.iter(|| kernel::sq_dists(black_box(&a), black_box(&b)))
        });
        c.bench_function(&format!("rbf_cross_serial_{tag}"), |bch| {
            bch.iter(|| kernel::rbf_cross(black_box(&a), black_box(&b), black_box(0.5)))
        });

        par::set_threads(0); // CALLOC_THREADS / available parallelism
        c.bench_function(&format!("sq_dists_batched_parallel_{tag}"), |bch| {
            bch.iter(|| kernel::sq_dists(black_box(&a), black_box(&b)))
        });
        c.bench_function(&format!("rbf_cross_parallel_{tag}"), |bch| {
            bch.iter(|| kernel::rbf_cross(black_box(&a), black_box(&b), black_box(0.5)))
        });

        c.bench_function(&format!("rbf_unfused_{tag}"), |bch| {
            bch.iter(|| {
                kernel::rbf_from_sq_dists(
                    &kernel::sq_dists(black_box(&a), black_box(&b)),
                    black_box(0.5),
                )
            })
        });
    }
}

criterion_group!(benches, bench_pairwise);
criterion_main!(benches);
