//! Property tests for the batched pairwise kernel-distance primitives
//! (`calloc_tensor::kernel`): the batched, unrolled, row-parallel kernels
//! must be **bit-identical** to the scalar per-pair loops they replaced,
//! across random shapes, seeds and thread counts.
//!
//! Like `proptest_parallel.rs`, the tests force the parallel code path on
//! tiny inputs by dropping the per-chunk work floor
//! (`par::set_min_work(1)`) and compare `CALLOC_THREADS`-style settings
//! 1, 2, 3 and 8 via `par::set_threads`; the knobs are process-global, so
//! every test takes a shared lock.

use calloc_tensor::{kernel, par, Matrix, Rng};
use proptest::prelude::*;
use std::sync::Mutex;

static KNOB_LOCK: Mutex<()> = Mutex::new(());

fn lock_knobs() -> std::sync::MutexGuard<'static, ()> {
    KNOB_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Rng::new(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.normal(0.0, 1.0))
}

/// True raw-bit equality (distinguishes `0.0` from `-0.0`).
fn bits_eq(a: &Matrix, b: &Matrix) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// The scalar reference: one squared distance per (query, bank) pair,
/// accumulated element-wise in ascending column order — the loop shape the
/// batched primitives replaced in the GPC and KNN baselines.
fn scalar_sq_dists(a: &Matrix, b: &Matrix) -> Matrix {
    Matrix::from_fn(a.rows(), b.rows(), |r, i| {
        a.row(r)
            .iter()
            .zip(b.row(i))
            .map(|(x, y)| (x - y).powi(2))
            .sum::<f64>()
    })
}

/// The scalar RBF reference (the former `calloc_baselines::gpc::rbf`).
fn scalar_rbf_cross(a: &Matrix, b: &Matrix, length_scale: f64) -> Matrix {
    let sq = scalar_sq_dists(a, b);
    sq.map(|v| (-v / (2.0 * length_scale * length_scale)).exp())
}

/// Runs `f` serially, then at several worker budgets with the work floor
/// dropped to one flop, asserting every run is bitwise equal to
/// `reference`. RAII guards restore both knobs even when a `prop_assert!`
/// returns early — a failing case must not leak a stale budget.
fn assert_matches_reference_at_all_thread_counts(
    reference: &Matrix,
    f: impl Fn() -> Matrix,
) -> Result<(), proptest::prelude::TestCaseError> {
    let _floor = par::MinWorkGuard::new(1);
    let _threads = par::ThreadGuard::new(1);
    for threads in [1usize, 2, 3, 8] {
        par::set_threads(threads);
        let batched = f();
        prop_assert!(
            bits_eq(reference, &batched),
            "diverged from the scalar reference at {} threads",
            threads
        );
    }
    Ok(())
}

proptest! {
    #[test]
    fn batched_sq_dists_is_bit_identical_to_scalar(
        m in 1usize..24, n in 1usize..24, d in 1usize..40, seed in any::<u64>()
    ) {
        let _guard = lock_knobs();
        let a = rand_matrix(m, d, seed);
        let b = rand_matrix(n, d, seed ^ 0x9E37_79B9);
        let reference = scalar_sq_dists(&a, &b);
        assert_matches_reference_at_all_thread_counts(&reference, || kernel::sq_dists(&a, &b))?;
    }

    #[test]
    fn batched_rbf_cross_is_bit_identical_to_scalar(
        m in 1usize..20, n in 1usize..20, d in 1usize..32,
        ls in 0.05f64..2.0, seed in any::<u64>()
    ) {
        let _guard = lock_knobs();
        let a = rand_matrix(m, d, seed);
        let b = rand_matrix(n, d, seed ^ 0xDEAD_BEEF);
        let reference = scalar_rbf_cross(&a, &b, ls);
        assert_matches_reference_at_all_thread_counts(
            &reference,
            || kernel::rbf_cross(&a, &b, ls),
        )?;
    }

    #[test]
    fn rbf_from_sq_dists_matches_fused_kernel(
        m in 1usize..20, n in 1usize..20, d in 1usize..32,
        ls in 0.05f64..2.0, seed in any::<u64>()
    ) {
        let _guard = lock_knobs();
        let a = rand_matrix(m, d, seed);
        let b = rand_matrix(n, d, seed ^ 0x5151_5151);
        let fused = kernel::rbf_cross(&a, &b, ls);
        assert_matches_reference_at_all_thread_counts(
            &fused,
            || kernel::rbf_from_sq_dists(&kernel::sq_dists(&a, &b), ls),
        )?;
    }

    #[test]
    fn rbf_gram_is_bit_identical_to_scalar_cross(
        n in 1usize..24, d in 1usize..24, ls in 0.05f64..2.0, seed in any::<u64>()
    ) {
        let _guard = lock_knobs();
        let x = rand_matrix(n, d, seed);
        let reference = scalar_rbf_cross(&x, &x, ls);
        assert_matches_reference_at_all_thread_counts(&reference, || kernel::rbf_gram(&x, ls))?;
    }

    #[test]
    fn sq_dists_unroll_is_invisible_across_bank_sizes(
        // Bank sizes straddling the 4-wide unroll boundary, including the
        // pure-remainder (< 4) and exact-multiple cases.
        n in 1usize..13, seed in any::<u64>()
    ) {
        let _guard = lock_knobs();
        let a = rand_matrix(7, 9, seed);
        let b = rand_matrix(n, 9, seed ^ 0xABCD);
        prop_assert!(bits_eq(&scalar_sq_dists(&a, &b), &kernel::sq_dists(&a, &b)));
    }
}

#[test]
fn zero_width_rows_match_scalar_reference() {
    let _guard = lock_knobs();
    let a = Matrix::zeros(5, 0);
    let b = Matrix::zeros(6, 0);
    assert!(bits_eq(&scalar_sq_dists(&a, &b), &kernel::sq_dists(&a, &b)));
    assert!(bits_eq(
        &scalar_rbf_cross(&a, &b, 0.5),
        &kernel::rbf_cross(&a, &b, 0.5)
    ));
}
