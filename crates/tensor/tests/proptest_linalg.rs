//! Property tests for the dense linear algebra routines, centered on the
//! blocked Cholesky factorization:
//!
//! * random SPD matrices (`AᵀA` plus diagonal jitter) factor and
//!   reconstruct within 1e-9;
//! * `solve_spd` matches the explicit forward/backward triangular-solve
//!   composition;
//! * the blocked factorization is **bit-identical** to the unblocked
//!   serial kernel for every block size and thread count (the same
//!   contract `calloc_tensor::par` imposes on every parallel kernel).

use calloc_tensor::{linalg, par, Matrix, Rng};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes tests that flip the process-global `par` knobs.
static KNOB_LOCK: Mutex<()> = Mutex::new(());

fn lock_knobs() -> std::sync::MutexGuard<'static, ()> {
    KNOB_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A random SPD matrix: `BᵀB` is positive semi-definite, the jitter makes
/// it safely positive definite.
fn random_spd(n: usize, seed: u64) -> Matrix {
    let mut rng = Rng::new(seed);
    let b = Matrix::from_fn(n, n, |_, _| rng.normal(0.0, 1.0));
    linalg::add_diagonal(&b.transposed_matmul(&b), 1e-2 + n as f64 * 0.05)
}

fn bits_eq(a: &Matrix, b: &Matrix) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `L·Lᵀ` reconstructs the input within 1e-9 and `L` is lower
    /// triangular with strictly positive diagonal.
    #[test]
    fn cholesky_reconstructs_random_spd(n in 1usize..48, seed in any::<u64>()) {
        let a = random_spd(n, seed);
        let l = linalg::cholesky(&a).expect("SPD by construction");
        prop_assert!(l.matmul(&l.transpose()).approx_eq(&a, 1e-9));
        for i in 0..n {
            prop_assert!(l.get(i, i) > 0.0, "non-positive diagonal at {i}");
            for j in i + 1..n {
                prop_assert_eq!(l.get(i, j), 0.0, "upper triangle not zero at ({}, {})", i, j);
            }
        }
    }

    /// `solve_spd` is exactly the forward/backward triangular-solve
    /// composition over the same factor.
    #[test]
    fn solve_spd_matches_triangular_composition(
        n in 1usize..40, rhs in 1usize..4, seed in any::<u64>()
    ) {
        let a = random_spd(n, seed);
        let mut rng = Rng::new(seed ^ 0xABCD_EF01);
        let b = Matrix::from_fn(n, rhs, |_, _| rng.normal(0.0, 2.0));
        let x = linalg::solve_spd(&a, &b).expect("solve");
        let l = linalg::cholesky(&a).expect("spd");
        let y = linalg::solve_lower_triangular(&l, &b).expect("fwd");
        let x2 = linalg::solve_upper_from_lower(&l, &y).expect("bwd");
        prop_assert!(bits_eq(&x, &x2), "solve_spd diverges from its own composition");
        prop_assert!(a.matmul(&x).approx_eq(&b, 1e-7));
    }

    /// Rank-1 recalibration laws: `cholesky_update` reconstructs
    /// `A + v·vᵀ`, a `downdate` of the same vector round-trips back to the
    /// original factor within tolerance, and the rotated factor agrees
    /// with a fresh factorization of the perturbed matrix — the
    /// tolerance-tier contract of the online-recalibration path.
    #[test]
    fn rank_one_update_then_downdate_round_trips(
        n in 1usize..40, seed in any::<u64>()
    ) {
        let a = random_spd(n, seed);
        let l = linalg::cholesky(&a).expect("SPD by construction");
        let mut rng = Rng::new(seed ^ 0x5A5A_0F0F);
        let v = Matrix::from_fn(n, 1, |_, _| rng.normal(0.0, 1.0));

        let updated = linalg::cholesky_update(&l, &v).expect("update");
        // The rotated factor equals a fresh factorization of A + v·vᵀ
        // (both are lower triangular with positive diagonal, so the
        // factor is unique) within floating-point tolerance.
        let perturbed = {
            let mut m = a.clone();
            for i in 0..n {
                for j in 0..n {
                    m.set(i, j, m.get(i, j) + v.get(i, 0) * v.get(j, 0));
                }
            }
            m
        };
        let refactored = linalg::cholesky(&perturbed).expect("still spd");
        prop_assert!(
            updated.approx_eq(&refactored, 1e-6),
            "updated factor diverges from refactoring"
        );

        let round_trip = linalg::cholesky_downdate(&updated, &v).expect("downdate");
        prop_assert!(
            round_trip.approx_eq(&l, 1e-6),
            "update-then-downdate must round-trip"
        );
    }

    /// Blocked-vs-serial bit identity: every block size must reproduce the
    /// single-panel (unblocked) kernel exactly, at several thread counts,
    /// with the fan-out work floor dropped so the parallel trailing update
    /// actually engages at test sizes.
    #[test]
    fn blocked_cholesky_is_bit_identical_across_threads(
        n in 1usize..48, nb in 1usize..16, seed in any::<u64>()
    ) {
        let _guard = lock_knobs();
        let a = random_spd(n, seed);
        let serial = linalg::cholesky_with_block(&a, usize::MAX).expect("spd");
        let _floor = par::MinWorkGuard::new(1);
        let _threads = par::ThreadGuard::new(1);
        for threads in [1usize, 2, 3, 8] {
            par::set_threads(threads);
            let blocked = linalg::cholesky_with_block(&a, nb)
                .expect("same matrix must stay positive definite");
            let default_block = linalg::cholesky(&a).expect("spd");
            prop_assert!(
                bits_eq(&serial, &blocked),
                "nb={} diverged from serial at {} threads", nb, threads
            );
            prop_assert!(
                bits_eq(&serial, &default_block),
                "default block diverged from serial at {} threads", threads
            );
        }
    }
}
