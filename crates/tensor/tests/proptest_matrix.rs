//! Property-based tests for the matrix and RNG primitives.

use calloc_tensor::{linalg, stats, Matrix, Rng};
use proptest::prelude::*;

/// Strategy producing a matrix of the given shape with bounded entries.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-100.0..100.0f64, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    #[test]
    fn transpose_is_involutive(m in matrix(4, 7)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_is_associative(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.approx_eq(&right, 1e-6));
    }

    #[test]
    fn matmul_distributes_over_addition(a in matrix(3, 4), b in matrix(4, 2), c in matrix(4, 2)) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(left.approx_eq(&right, 1e-6));
    }

    #[test]
    fn transpose_reverses_product(a in matrix(3, 4), b in matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(left.approx_eq(&right, 1e-8));
    }

    #[test]
    fn add_is_commutative(a in matrix(5, 5), b in matrix(5, 5)) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn scale_then_sum_scales_sum(a in matrix(4, 4), s in -10.0..10.0f64) {
        let lhs = a.scale(s).sum();
        let rhs = a.sum() * s;
        prop_assert!((lhs - rhs).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_are_distributions(m in matrix(6, 9)) {
        let s = m.softmax_rows();
        for r in 0..s.rows() {
            let sum: f64 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(s.row(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn clamp_respects_bounds(m in matrix(3, 3), lo in -5.0..0.0f64, hi in 0.0..5.0f64) {
        let c = m.clamp(lo, hi);
        prop_assert!(c.as_slice().iter().all(|&x| x >= lo && x <= hi));
    }

    #[test]
    fn spd_solve_round_trips(seed in 0u64..1000) {
        let mut rng = Rng::new(seed);
        let n = 5;
        let b = Matrix::from_fn(n, n, |_, _| rng.normal(0.0, 1.0));
        let a = linalg::add_diagonal(&b.matmul(&b.transpose()), 1.0);
        let rhs = Matrix::from_fn(n, 1, |_, _| rng.normal(0.0, 1.0));
        let x = linalg::solve_spd(&a, &rhs).expect("spd solve");
        prop_assert!(a.matmul(&x).approx_eq(&rhs, 1e-6));
    }

    #[test]
    fn percentile_is_monotone(v in proptest::collection::vec(-50.0..50.0f64, 1..40),
                              p1 in 0.0..100.0f64, p2 in 0.0..100.0f64) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(stats::percentile(&v, lo) <= stats::percentile(&v, hi) + 1e-12);
    }

    #[test]
    fn summary_mean_between_min_and_max(v in proptest::collection::vec(-50.0..50.0f64, 1..40)) {
        let s = stats::Summary::of(&v);
        prop_assert!(s.min <= s.mean + 1e-12);
        prop_assert!(s.mean <= s.max + 1e-12);
    }

    #[test]
    fn rng_uniform_in_bounds(seed in 0u64..500, lo in -10.0..0.0f64, span in 0.001..10.0f64) {
        let mut rng = Rng::new(seed);
        let hi = lo + span;
        for _ in 0..64 {
            let x = rng.uniform(lo, hi);
            prop_assert!(x >= lo && x < hi);
        }
    }

    #[test]
    fn rng_permutation_valid(seed in 0u64..500, n in 1usize..64) {
        let mut rng = Rng::new(seed);
        let mut p = rng.permutation(n);
        p.sort_unstable();
        prop_assert_eq!(p, (0..n).collect::<Vec<_>>());
    }
}
