//! Property tests for the deterministic parallel runtime: every parallel
//! kernel must be **bit-identical** to the serial fallback for every
//! thread count, across random shapes and seeds.
//!
//! The tests force the parallel code path on tiny inputs by dropping the
//! per-chunk work floor (`par::set_min_work(1)`), then compare
//! `CALLOC_THREADS`-style settings 1, 2, 3 and 8 via `par::set_threads`.
//! Because those knobs are process-global and some assertions are about
//! *chunk structure*, every test takes a shared lock.

use calloc_tensor::{par, Matrix, Rng};
use proptest::prelude::*;
use std::sync::Mutex;

static KNOB_LOCK: Mutex<()> = Mutex::new(());

fn lock_knobs() -> std::sync::MutexGuard<'static, ()> {
    KNOB_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Rng::new(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.normal(0.0, 1.0))
}

/// True raw-bit equality: unlike `PartialEq` on `f64`, this distinguishes
/// `0.0` from `-0.0` — the contract is *bit*-identity, not numeric
/// equality.
fn bits_eq(a: &Matrix, b: &Matrix) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Runs `f` serially, then at several worker budgets with the work floor
/// dropped to one flop, asserting bitwise-equal `Matrix` results. The
/// RAII guards restore both knobs even when a `prop_assert!` returns
/// early — a failing case must not leak a stale budget into later cases.
fn assert_thread_count_invariant(
    f: impl Fn() -> Matrix,
) -> Result<(), proptest::prelude::TestCaseError> {
    let _floor = par::MinWorkGuard::new(1);
    let _threads = par::ThreadGuard::new(1);
    let serial = f();
    for threads in [2usize, 3, 8] {
        par::set_threads(threads);
        let parallel = f();
        prop_assert!(
            bits_eq(&serial, &parallel),
            "diverged at {} threads",
            threads
        );
    }
    Ok(())
}

proptest! {
    #[test]
    fn parallel_matmul_is_bit_identical(
        m in 1usize..24, k in 1usize..80, n in 1usize..24, seed in any::<u64>()
    ) {
        let _guard = lock_knobs();
        let a = rand_matrix(m, k, seed);
        let b = rand_matrix(k, n, seed ^ 0x9E37_79B9);
        assert_thread_count_invariant(|| a.matmul(&b))?;
    }

    #[test]
    fn parallel_matmul_transposed_is_bit_identical(
        m in 1usize..24, k in 1usize..80, n in 1usize..24, seed in any::<u64>()
    ) {
        let _guard = lock_knobs();
        let a = rand_matrix(m, k, seed);
        let b = rand_matrix(n, k, seed ^ 0xDEAD_BEEF);
        assert_thread_count_invariant(|| a.matmul_transposed(&b))?;
    }

    #[test]
    fn parallel_transposed_matmul_is_bit_identical(
        m in 1usize..80, k in 1usize..24, n in 1usize..24, seed in any::<u64>()
    ) {
        let _guard = lock_knobs();
        let a = rand_matrix(m, k, seed);
        let b = rand_matrix(m, n, seed ^ 0x5151_5151);
        assert_thread_count_invariant(|| a.transposed_matmul(&b))?;
    }

    #[test]
    fn parallel_softmax_is_bit_identical(
        rows in 1usize..40, cols in 1usize..40, seed in any::<u64>()
    ) {
        let _guard = lock_knobs();
        let a = rand_matrix(rows, cols, seed);
        assert_thread_count_invariant(|| a.softmax_rows())?;
    }

    #[test]
    fn parallel_log_softmax_is_bit_identical(
        rows in 1usize..40, cols in 1usize..40, seed in any::<u64>()
    ) {
        let _guard = lock_knobs();
        let a = rand_matrix(rows, cols, seed);
        assert_thread_count_invariant(|| a.log_softmax_rows())?;
    }

    #[test]
    fn parallel_transpose_is_bit_identical(
        rows in 1usize..70, cols in 1usize..70, seed in any::<u64>()
    ) {
        let _guard = lock_knobs();
        let a = rand_matrix(rows, cols, seed);
        assert_thread_count_invariant(|| a.transpose())?;
    }

    #[test]
    fn matmul_transposed_equals_explicit_transpose(
        m in 1usize..20, k in 1usize..70, n in 1usize..20, seed in any::<u64>()
    ) {
        let _guard = lock_knobs();
        let a = rand_matrix(m, k, seed);
        let b = rand_matrix(n, k, seed ^ 0xABCD);
        // Exact, not approximate: the kernels accumulate in the same order.
        prop_assert!(bits_eq(&a.matmul_transposed(&b), &a.matmul(&b.transpose())));
    }

    #[test]
    fn transposed_matmul_equals_explicit_transpose(
        m in 1usize..70, k in 1usize..20, n in 1usize..20, seed in any::<u64>()
    ) {
        let _guard = lock_knobs();
        let a = rand_matrix(m, k, seed);
        let b = rand_matrix(m, n, seed ^ 0x1234);
        prop_assert!(bits_eq(&a.transposed_matmul(&b), &a.transpose().matmul(&b)));
    }

    #[test]
    fn par_chunks_merges_in_index_order(len in 0usize..500, seed in any::<u64>()) {
        let _guard = lock_knobs();
        let _ = seed;
        let _floor = par::MinWorkGuard::new(1);
        let _threads = par::ThreadGuard::new(7);
        let chunks = par::par_chunks(len, 1, |r| r.clone());
        let flattened: Vec<usize> = chunks.into_iter().flatten().collect();
        prop_assert_eq!(flattened, (0..len).collect::<Vec<usize>>());
    }

    /// Work-reclaimed `par_run` (jobs popped one at a time off the shared
    /// queue) is bit-identical to the serial run at every budget — the
    /// pool's counterpart of the old static round-robin deal.
    #[test]
    fn par_run_is_bit_identical_across_thread_counts(
        n_jobs in 1usize..12, rows in 1usize..12, k in 1usize..24, seed in any::<u64>()
    ) {
        let _guard = lock_knobs();
        let _floor = par::MinWorkGuard::new(1);
        let _threads = par::ThreadGuard::new(1);
        let run = || {
            let jobs: Vec<Box<dyn FnOnce() -> Matrix + Send>> = (0..n_jobs)
                .map(|j| {
                    let a = rand_matrix(rows, k, seed ^ (j as u64).wrapping_mul(0x9E37));
                    let b = rand_matrix(k, rows, seed ^ (j as u64).wrapping_mul(0x79B9) ^ 1);
                    Box::new(move || a.matmul(&b)) as Box<dyn FnOnce() -> Matrix + Send>
                })
                .collect();
            par::par_run(jobs)
        };
        let serial = run();
        for threads in [2usize, 3, 8] {
            par::set_threads(threads);
            let parallel = run();
            prop_assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(&parallel) {
                prop_assert!(bits_eq(a, b), "job output diverged at {} threads", threads);
            }
        }
    }

    /// Nested fan-out (outer `par_run` job → inner matmul kernel, the
    /// grid-cell → session → kernel shape): the inner kernel must see the
    /// full configured budget — the old runtime collapsed it to 1 — and
    /// the merged output must stay bit-identical at every thread count.
    #[test]
    fn nested_fan_out_sees_full_budget_and_is_bit_identical(
        n_jobs in 2usize..6, rows in 4usize..16, k in 1usize..24, seed in any::<u64>()
    ) {
        let _guard = lock_knobs();
        let _floor = par::MinWorkGuard::new(1);
        let _threads = par::ThreadGuard::new(1);
        let run = || {
            let jobs: Vec<Box<dyn FnOnce() -> (usize, Matrix) + Send>> = (0..n_jobs)
                .map(|j| {
                    let a = rand_matrix(rows, k, seed ^ (j as u64).wrapping_mul(0xA5A5));
                    let b = rand_matrix(k, rows, seed ^ (j as u64).wrapping_mul(0x5A5A) ^ 1);
                    Box::new(move || (par::threads(), a.matmul(&b)))
                        as Box<dyn FnOnce() -> (usize, Matrix) + Send>
                })
                .collect();
            par::par_run(jobs)
        };
        let serial = run();
        for threads in [2usize, 3, 8] {
            par::set_threads(threads);
            let parallel = run();
            for (j, ((_, a), (inner_budget, b))) in serial.iter().zip(&parallel).enumerate() {
                prop_assert_eq!(
                    *inner_budget, threads,
                    "job {} must see the configured budget inside the fan-out", j
                );
                prop_assert!(bits_eq(a, b), "job {} diverged at {} threads", j, threads);
            }
        }
    }
}
