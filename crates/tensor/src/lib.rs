//! # calloc-tensor
//!
//! Numeric substrate for the CALLOC indoor-localization reproduction.
//!
//! This crate provides the small set of dense linear-algebra, random-number
//! and statistics primitives that every other crate in the workspace builds
//! on. It is deliberately dependency-free (besides `serde` for
//! serialization) so that every experiment in the reproduction is
//! bit-for-bit deterministic for a fixed seed.
//!
//! The main types are:
//!
//! * [`Matrix`] — a dense, row-major `f64` matrix with the usual
//!   element-wise, broadcast and matrix-product operations.
//! * [`Rng`] — a seeded xoshiro256++ generator with uniform, normal
//!   (Box–Muller), permutation and subset-sampling helpers.
//! * [`linalg`] — Cholesky factorization and triangular solves used by the
//!   Gaussian-process baseline.
//! * [`kernel`] — batched pairwise squared-distance / RBF cross-kernel
//!   primitives behind the kernel-method baselines (GPC, soft-KNN, KNN);
//!   row-parallel and bit-identical to the scalar loops they replaced.
//! * [`stats`] — descriptive statistics (mean, std, percentiles) used by the
//!   evaluation harness.
//! * [`par`] — the deterministic parallel compute runtime (`CALLOC_THREADS`
//!   knob, index-order-merge fork-join primitives) behind the parallel
//!   matrix kernels; results are bit-identical for every thread count.
//!
//! # Example
//!
//! ```
//! use calloc_tensor::{Matrix, Rng};
//!
//! let mut rng = Rng::new(42);
//! let a = Matrix::from_fn(2, 3, |_, _| rng.normal(0.0, 1.0));
//! let b = a.transpose();
//! let g = a.matmul(&b); // 2x2 Gram matrix
//! assert_eq!(g.rows(), 2);
//! assert_eq!(g.cols(), 2);
//! ```

#![deny(missing_docs)]

mod matrix;
mod rng;

pub mod kernel;
pub mod linalg;
pub mod par;
pub mod stats;

pub use matrix::Matrix;
pub use rng::Rng;

/// Crate-wide error type for shape and numeric failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes. Carries a human-readable
    /// description of the mismatch.
    ShapeMismatch(String),
    /// A numeric routine (e.g. Cholesky) failed; the payload explains why.
    Numeric(String),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            TensorError::Numeric(msg) => write!(f, "numeric error: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}
