//! Batched pairwise kernel-distance primitives.
//!
//! Every kernel-method baseline in the reproduction (GPC, WiDeep's GPC
//! head, soft-KNN, hard KNN) reduces to the same pairwise computation: the
//! matrix of squared Euclidean distances between a batch of query rows and
//! a bank of training rows, optionally pushed through an RBF. Before this
//! module existed that computation was hand-rolled as a serial scalar loop
//! in three places and recomputed twice per attack step on the GPC hot
//! path; the batched primitives here turn it into row-parallel,
//! slice-streaming work while preserving the exact result bits.
//!
//! # Bit-identity contract
//!
//! Each output element `(r, i)` accumulates its squared distance
//! `Σ_t (a[r][t] − b[i][t])²` **element-wise in ascending column order
//! `t`**, left-associated from `f64::Sum`'s `-0.0` seed — precisely the
//! operation sequence of
//! the scalar loops these primitives replaced (IEEE-754 negation before
//! squaring is exact, so the `a−b` vs `b−a` orientation of the historical
//! call sites cannot change a bit). Rows fan out over
//! [`par::par_row_chunks_mut`] under the contiguous-chunk /
//! index-order-merge contract, so results are bit-identical for every
//! `CALLOC_THREADS` value. `crates/tensor/tests/proptest_pairwise.rs`
//! enforces both properties.
//!
//! # Example
//!
//! ```
//! use calloc_tensor::{kernel, Matrix};
//!
//! let queries = Matrix::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0]]);
//! let train = Matrix::from_rows(&[vec![0.0, 0.0]]);
//! let sq = kernel::sq_dists(&queries, &train);
//! assert_eq!(sq.get(0, 0), 0.0);
//! assert_eq!(sq.get(1, 0), 25.0);
//! let k = kernel::rbf_cross(&queries, &train, 5.0);
//! assert_eq!(k.get(0, 0), 1.0); // exp(0)
//! ```

use crate::par;
use crate::Matrix;

/// Squared Euclidean distance between two equally-long rows, accumulated
/// element-wise in ascending column order (left-associated, from
/// `f64::Sum`'s `-0.0` seed) — the shared inner loop of every primitive in
/// this module.
#[inline]
fn row_sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f64>()
}

/// The batch × train matrix of squared Euclidean distances:
/// `out[r][i] = ‖a.row(r) − b.row(i)‖²`.
///
/// Row-parallel over the rows of `a`; each element accumulates in
/// ascending column order, so the result is bit-identical to the scalar
/// per-row loops for every thread count.
///
/// # Panics
///
/// Panics if `a` and `b` have different column counts.
pub fn sq_dists(a: &Matrix, b: &Matrix) -> Matrix {
    pairwise(a, b, |sq| sq)
}

/// Maps a matrix of squared distances through the RBF
/// `k = exp(−sq / (2ℓ²))`, element-wise and row-parallel.
///
/// The per-element expression is exactly the one the scalar GPC kernel
/// used (`(-sq / (2.0 * ℓ * ℓ)).exp()`), so composing
/// [`sq_dists`] with this function is bit-identical to [`rbf_cross`].
pub fn rbf_from_sq_dists(sq: &Matrix, length_scale: f64) -> Matrix {
    let denom = 2.0 * length_scale * length_scale;
    let mut out = sq.clone();
    let cols = sq.cols();
    if cols == 0 || sq.rows() == 0 {
        return out;
    }
    // exp dominates; weight an element as ~16 work units.
    let min_rows = par::min_rows_for(cols.saturating_mul(16));
    par::par_row_chunks_mut(out.as_mut_slice(), cols, min_rows, |_, chunk| {
        for v in chunk.iter_mut() {
            *v = (-*v / denom).exp();
        }
    });
    out
}

/// The fused batch × train RBF cross-kernel
/// `out[r][i] = exp(−‖a.row(r) − b.row(i)‖² / (2ℓ²))`, computed in one
/// row-parallel pass without materializing the squared distances.
///
/// Bit-identical to `rbf_from_sq_dists(&sq_dists(a, b), ℓ)` — the squared
/// distance accumulates in ascending column order and is pushed through
/// the same `exp` expression per element.
///
/// # Panics
///
/// Panics if `a` and `b` have different column counts.
pub fn rbf_cross(a: &Matrix, b: &Matrix, length_scale: f64) -> Matrix {
    let denom = 2.0 * length_scale * length_scale;
    pairwise(a, b, move |sq| (-sq / denom).exp())
}

/// The symmetric n × n RBF Gram matrix `out[i][j] = exp(−‖xᵢ − xⱼ‖² /
/// (2ℓ²))` of a single row bank — `rbf_cross(x, x, ℓ)` computed at half
/// the kernel evaluations: each row fills its lower triangle (diagonal
/// included) and the strict upper triangle is mirrored afterwards.
///
/// Bit-identical to `rbf_cross(x, x, ℓ)`: the mirrored `(j, i)` element
/// equals the directly-computed one because IEEE-754 negation before
/// squaring is exact — which is also why the triangular-plus-mirror GPC
/// fit loop this replaces produced the same bits.
pub fn rbf_gram(x: &Matrix, length_scale: f64) -> Matrix {
    let denom = 2.0 * length_scale * length_scale;
    let f = move |sq: f64| (-sq / denom).exp();
    let (n, d) = x.shape();
    let mut out = Matrix::zeros(n, n);
    if n == 0 {
        return out;
    }
    let xd = x.as_slice();
    // Triangular fill: the average row carries half the full-row work.
    let min_rows = par::min_rows_for(n.saturating_mul(3 * d + 16) / 2);
    par::par_row_chunks_mut(out.as_mut_slice(), n, min_rows, |first_row, chunk| {
        for (rr, orow) in chunk.chunks_exact_mut(n).enumerate() {
            let r = first_row + rr;
            let arow = &xd[r * d..(r + 1) * d];
            fill_pairwise_row(arow, xd, d, &mut orow[..=r], &f);
        }
    });
    // Mirror the strict lower triangle onto the upper (pure data
    // movement, bit-exact by construction).
    for i in 1..n {
        for j in 0..i {
            let v = out.get(i, j);
            out.set(j, i, v);
        }
    }
    out
}

/// Fills `orow[i] = f(sq_dist(arow, bank_i))` for the first `orow.len()`
/// rows of the bank — the shared inner loop of [`pairwise`] (full rows)
/// and [`rbf_gram`] (lower-triangular rows).
///
/// The bank loop is unrolled four wide purely to overlap the four
/// *independent* per-element accumulation chains (a single chain is
/// FP-add-latency-bound); each output element still sums its own columns
/// strictly ascending and left-associated, so the unroll is invisible in
/// the result bits.
fn fill_pairwise_row(
    arow: &[f64],
    bd: &[f64],
    d: usize,
    orow: &mut [f64],
    f: &impl Fn(f64) -> f64,
) {
    let n = orow.len();
    let mut i = 0;
    while i + 4 <= n {
        let b0 = &bd[i * d..(i + 1) * d];
        let b1 = &bd[(i + 1) * d..(i + 2) * d];
        let b2 = &bd[(i + 2) * d..(i + 3) * d];
        let b3 = &bd[(i + 3) * d..(i + 4) * d];
        // `f64::Sum` folds from `-0.0` (so an empty sum is `-0.0`); the
        // unrolled chains must start there too or zero-width rows diverge
        // from the scalar reference by a sign bit.
        let (mut s0, mut s1, mut s2, mut s3) = (-0.0f64, -0.0f64, -0.0f64, -0.0f64);
        for (t, &av) in arow.iter().enumerate() {
            s0 += (av - b0[t]).powi(2);
            s1 += (av - b1[t]).powi(2);
            s2 += (av - b2[t]).powi(2);
            s3 += (av - b3[t]).powi(2);
        }
        orow[i] = f(s0);
        orow[i + 1] = f(s1);
        orow[i + 2] = f(s2);
        orow[i + 3] = f(s3);
        i += 4;
    }
    while i < n {
        let brow = &bd[i * d..(i + 1) * d];
        orow[i] = f(row_sq_dist(arow, brow));
        i += 1;
    }
}

/// Shared row-parallel driver: fills `out[r][i] = f(sq_dist(a_r, b_i))`.
fn pairwise(a: &Matrix, b: &Matrix, f: impl Fn(f64) -> f64 + Sync) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "pairwise kernel: query width {} must equal train width {}",
        a.cols(),
        b.cols()
    );
    let (m, n, d) = (a.rows(), b.rows(), a.cols());
    let mut out = Matrix::zeros(m, n);
    if m == 0 || n == 0 {
        return out;
    }
    let (ad, bd) = (a.as_slice(), b.as_slice());
    // ~3 flops per inner element plus the per-element map (exp ~ 16).
    let min_rows = par::min_rows_for(n.saturating_mul(3 * d + 16));
    par::par_row_chunks_mut(out.as_mut_slice(), n, min_rows, |first_row, chunk| {
        for (rr, orow) in chunk.chunks_exact_mut(n).enumerate() {
            let arow = &ad[(first_row + rr) * d..(first_row + rr + 1) * d];
            fill_pairwise_row(arow, bd, d, orow, &f);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Rng::new(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.normal(0.0, 1.0))
    }

    #[test]
    fn sq_dists_matches_hand_computed_values() {
        let a = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 0.0], vec![-1.0, 2.0]]);
        let d = sq_dists(&a, &b);
        assert_eq!(d.shape(), (2, 3));
        assert_eq!(d.get(0, 0), 0.0);
        assert_eq!(d.get(0, 1), 1.0);
        assert_eq!(d.get(0, 2), 5.0);
        assert_eq!(d.get(1, 0), 5.0);
        assert_eq!(d.get(1, 1), 4.0);
        assert_eq!(d.get(1, 2), 4.0);
    }

    #[test]
    fn sq_dists_is_symmetric_in_orientation() {
        // (a-b)² == (b-a)² exactly in IEEE-754, so swapping the operands
        // transposes the result bit-for-bit.
        let a = rand_matrix(5, 7, 1);
        let b = rand_matrix(4, 7, 2);
        let ab = sq_dists(&a, &b);
        let ba = sq_dists(&b, &a);
        for r in 0..5 {
            for i in 0..4 {
                assert_eq!(ab.get(r, i).to_bits(), ba.get(i, r).to_bits());
            }
        }
    }

    #[test]
    fn rbf_cross_equals_composition() {
        let a = rand_matrix(6, 9, 3);
        let b = rand_matrix(5, 9, 4);
        let fused = rbf_cross(&a, &b, 0.37);
        let composed = rbf_from_sq_dists(&sq_dists(&a, &b), 0.37);
        for (x, y) in fused.as_slice().iter().zip(composed.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn rbf_gram_matches_rbf_cross_bitwise() {
        // Sizes straddling the 4-wide unroll boundary of the triangular
        // fill (rows 0..n each fill 1..=r entries).
        for n in [1usize, 2, 3, 4, 5, 9, 17] {
            let x = rand_matrix(n, 6, 7 + n as u64);
            let gram = rbf_gram(&x, 0.42);
            let cross = rbf_cross(&x, &x, 0.42);
            for (i, (a, b)) in gram.as_slice().iter().zip(cross.as_slice()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "n={n}: element {i}");
            }
        }
    }

    #[test]
    fn rbf_of_zero_distance_is_one() {
        let a = Matrix::from_rows(&[vec![0.3, -0.7]]);
        let k = rbf_cross(&a, &a, 0.5);
        assert_eq!(k.get(0, 0), 1.0);
    }

    #[test]
    fn zero_width_rows_have_zero_distance() {
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(2, 0);
        let d = sq_dists(&a, &b);
        assert_eq!(d, Matrix::zeros(3, 2));
        // exp(-0 / 2ℓ²) = 1 for every pair.
        assert_eq!(rbf_cross(&a, &b, 1.0), Matrix::filled(3, 2, 1.0));
    }

    #[test]
    fn empty_batch_or_bank_yields_empty_result() {
        assert_eq!(
            sq_dists(&Matrix::zeros(0, 4), &Matrix::zeros(3, 4)).shape(),
            (0, 3)
        );
        assert_eq!(
            sq_dists(&Matrix::zeros(3, 4), &Matrix::zeros(0, 4)).shape(),
            (3, 0)
        );
    }

    #[test]
    #[should_panic(expected = "pairwise kernel")]
    fn mismatched_widths_panic() {
        let _ = sq_dists(&Matrix::zeros(2, 3), &Matrix::zeros(2, 4));
    }
}
