//! Dense linear-algebra routines.
//!
//! Only what the reproduction needs: Cholesky factorization and the
//! associated triangular / positive-definite solves. These power the
//! Gaussian-process baseline (`calloc-baselines::gpc`), which must solve
//! `(K + σ²I) α = Y` for an RBF kernel matrix `K`.

use crate::{Matrix, TensorError};

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
/// matrix, returning the lower-triangular factor `L`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `a` is not square and
/// [`TensorError::Numeric`] if a non-positive pivot is encountered (i.e.
/// `a` is not positive definite to working precision).
///
/// # Example
///
/// ```
/// use calloc_tensor::{linalg, Matrix};
///
/// let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
/// let l = linalg::cholesky(&a)?;
/// let recon = l.matmul(&l.transpose());
/// assert!(recon.approx_eq(&a, 1e-12));
/// # Ok::<(), calloc_tensor::TensorError>(())
/// ```
pub fn cholesky(a: &Matrix) -> Result<Matrix, TensorError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(TensorError::ShapeMismatch(format!(
            "cholesky requires a square matrix, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(TensorError::Numeric(format!(
                        "non-positive pivot {sum:.3e} at row {i}; matrix is not positive definite"
                    )));
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Ok(l)
}

/// Solves `L x = b` for lower-triangular `L` (forward substitution).
///
/// `b` may have multiple right-hand-side columns.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on incompatible shapes and
/// [`TensorError::Numeric`] on a zero diagonal element.
pub fn solve_lower_triangular(l: &Matrix, b: &Matrix) -> Result<Matrix, TensorError> {
    let n = l.rows();
    if l.cols() != n || b.rows() != n {
        return Err(TensorError::ShapeMismatch(format!(
            "solve_lower_triangular: L is {}x{}, b is {}x{}",
            l.rows(),
            l.cols(),
            b.rows(),
            b.cols()
        )));
    }
    let mut x = b.clone();
    for col in 0..b.cols() {
        for i in 0..n {
            let mut sum = x.get(i, col);
            for k in 0..i {
                sum -= l.get(i, k) * x.get(k, col);
            }
            let d = l.get(i, i);
            if d == 0.0 {
                return Err(TensorError::Numeric(format!("zero diagonal at row {i}")));
            }
            x.set(i, col, sum / d);
        }
    }
    Ok(x)
}

/// Solves `Lᵀ x = b` for lower-triangular `L` (backward substitution).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on incompatible shapes and
/// [`TensorError::Numeric`] on a zero diagonal element.
pub fn solve_upper_from_lower(l: &Matrix, b: &Matrix) -> Result<Matrix, TensorError> {
    let n = l.rows();
    if l.cols() != n || b.rows() != n {
        return Err(TensorError::ShapeMismatch(format!(
            "solve_upper_from_lower: L is {}x{}, b is {}x{}",
            l.rows(),
            l.cols(),
            b.rows(),
            b.cols()
        )));
    }
    let mut x = b.clone();
    for col in 0..b.cols() {
        for i in (0..n).rev() {
            let mut sum = x.get(i, col);
            for k in i + 1..n {
                // (Lᵀ)[i][k] == L[k][i]
                sum -= l.get(k, i) * x.get(k, col);
            }
            let d = l.get(i, i);
            if d == 0.0 {
                return Err(TensorError::Numeric(format!("zero diagonal at row {i}")));
            }
            x.set(i, col, sum / d);
        }
    }
    Ok(x)
}

/// Solves the symmetric positive-definite system `A x = b` via Cholesky.
///
/// # Errors
///
/// Propagates errors from [`cholesky`] and the triangular solves.
///
/// # Example
///
/// ```
/// use calloc_tensor::{linalg, Matrix};
///
/// let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
/// let b = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
/// let x = linalg::solve_spd(&a, &b)?;
/// assert!(a.matmul(&x).approx_eq(&b, 1e-10));
/// # Ok::<(), calloc_tensor::TensorError>(())
/// ```
pub fn solve_spd(a: &Matrix, b: &Matrix) -> Result<Matrix, TensorError> {
    let l = cholesky(a)?;
    let y = solve_lower_triangular(&l, b)?;
    solve_upper_from_lower(&l, &y)
}

/// Adds `jitter` to the diagonal of a square matrix (in place on a copy).
///
/// Kernel matrices are often numerically semi-definite; a small diagonal
/// jitter restores positive definiteness.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn add_diagonal(a: &Matrix, jitter: f64) -> Matrix {
    assert_eq!(a.rows(), a.cols(), "add_diagonal requires a square matrix");
    let mut out = a.clone();
    for i in 0..a.rows() {
        out.set(i, i, out.get(i, i) + jitter);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    fn random_spd(n: usize, seed: u64) -> Matrix {
        let mut rng = Rng::new(seed);
        let b = Matrix::from_fn(n, n, |_, _| rng.normal(0.0, 1.0));
        add_diagonal(&b.matmul(&b.transpose()), 1e-3 + n as f64 * 0.1)
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = random_spd(8, 1);
        let l = cholesky(&a).expect("spd");
        assert!(l.matmul(&l.transpose()).approx_eq(&a, 1e-9));
    }

    #[test]
    fn cholesky_rejects_non_square() {
        assert!(matches!(
            cholesky(&Matrix::zeros(2, 3)),
            Err(TensorError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(cholesky(&a), Err(TensorError::Numeric(_))));
    }

    #[test]
    fn solve_spd_solves() {
        let a = random_spd(10, 2);
        let mut rng = Rng::new(3);
        let b = Matrix::from_fn(10, 3, |_, _| rng.normal(0.0, 2.0));
        let x = solve_spd(&a, &b).expect("solve");
        assert!(a.matmul(&x).approx_eq(&b, 1e-7));
    }

    #[test]
    fn triangular_solves_match_direct() {
        let a = random_spd(6, 4);
        let l = cholesky(&a).expect("spd");
        let b = Matrix::from_fn(6, 1, |r, _| r as f64 + 1.0);
        let y = solve_lower_triangular(&l, &b).expect("fwd");
        assert!(l.matmul(&y).approx_eq(&b, 1e-9));
        let x = solve_upper_from_lower(&l, &y).expect("bwd");
        assert!(l.transpose().matmul(&x).approx_eq(&y, 1e-9));
    }

    #[test]
    fn add_diagonal_only_touches_diagonal() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let j = add_diagonal(&a, 0.5);
        assert_eq!(j.get(0, 0), 1.5);
        assert_eq!(j.get(1, 1), 4.5);
        assert_eq!(j.get(0, 1), 2.0);
        assert_eq!(j.get(1, 0), 3.0);
    }
}
