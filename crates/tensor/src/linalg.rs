//! Dense linear-algebra routines.
//!
//! Only what the reproduction needs: Cholesky factorization and the
//! associated triangular / positive-definite solves. These power the
//! Gaussian-process baseline (`calloc-baselines::gpc`), which must solve
//! `(K + σ²I) α = Y` for an RBF kernel matrix `K`.

use crate::{par, Matrix, TensorError};

/// Default panel width of the blocked [`cholesky`] factorization. Wide
/// enough that the trailing-matrix update dominates (and caches the panel),
/// small enough that the serial panel factorization stays negligible.
pub const CHOLESKY_BLOCK: usize = 64;

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
/// matrix, returning the lower-triangular factor `L`.
///
/// This is a **blocked right-looking** factorization: panels of
/// [`CHOLESKY_BLOCK`] columns are factored serially, then the trailing
/// matrix receives the panel's rank-`nb` update row-parallel on
/// [`par::par_row_chunks_mut`]. Every element subtracts its
/// `l(i,k)·l(j,k)` contributions one at a time in ascending `k` — exactly
/// the operation sequence of the textbook unblocked kernel — so the result
/// is **bit-identical** to the serial factorization for every block size
/// and thread count (`CALLOC_THREADS=1` degenerates to a plain serial
/// loop). `crates/tensor/tests/proptest_linalg.rs` enforces this.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `a` is not square and
/// [`TensorError::Numeric`] if a non-positive pivot is encountered (i.e.
/// `a` is not positive definite to working precision).
///
/// # Example
///
/// ```
/// use calloc_tensor::{linalg, Matrix};
///
/// let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
/// let l = linalg::cholesky(&a)?;
/// let recon = l.matmul(&l.transpose());
/// assert!(recon.approx_eq(&a, 1e-12));
/// # Ok::<(), calloc_tensor::TensorError>(())
/// ```
pub fn cholesky(a: &Matrix) -> Result<Matrix, TensorError> {
    cholesky_with_block(a, CHOLESKY_BLOCK)
}

/// [`cholesky`] with an explicit panel width `nb` (clamped to at least 1).
///
/// With `nb >= a.rows()` the whole matrix is one panel and the routine *is*
/// the unblocked serial kernel — tests and benches use that as the
/// bit-identity reference for the blocked/parallel path.
///
/// # Errors
///
/// Same conditions as [`cholesky`].
pub fn cholesky_with_block(a: &Matrix, nb: usize) -> Result<Matrix, TensorError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(TensorError::ShapeMismatch(format!(
            "cholesky requires a square matrix, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    let nb = nb.clamp(1, n.max(1));
    // Factor in place on a copy; the strict upper triangle (untouched
    // original values) is zeroed at the end.
    let mut l = a.clone();
    let data = l.as_mut_slice();
    let mut p0 = 0;
    while p0 < n {
        let p1 = (p0 + nb).min(n);
        // Panel factorization (columns p0..p1, all rows, serial). The
        // contributions of columns k < p0 were already subtracted by the
        // previous panels' trailing updates, so each element only subtracts
        // the in-panel k range here — continuing the ascending-k sequence.
        for j in p0..p1 {
            for i in j..n {
                let mut sum = data[i * n + j];
                for k in p0..j {
                    sum -= data[i * n + k] * data[j * n + k];
                }
                data[i * n + j] = sum;
            }
            let pivot = data[j * n + j];
            if pivot <= 0.0 {
                return Err(TensorError::Numeric(format!(
                    "non-positive pivot {pivot:.3e} at row {j}; matrix is not positive definite"
                )));
            }
            let d = pivot.sqrt();
            data[j * n + j] = d;
            for i in j + 1..n {
                data[i * n + j] /= d;
            }
        }
        // Trailing-matrix update: a(i,j) -= Σ_{k in panel} l(i,k)·l(j,k)
        // for i,j >= p1, j <= i. Rows are independent (each reads only the
        // finalized panel snapshot and writes its own trailing columns), so
        // the update fans out row-parallel; within each element the
        // subtractions stay in ascending k, keeping the bit-identity.
        if p1 < n {
            let nbk = p1 - p0;
            let trailing_rows = n - p1;
            let mut panel = vec![0.0; trailing_rows * nbk];
            for (i, prow) in panel.chunks_exact_mut(nbk).enumerate() {
                let src = (p1 + i) * n + p0;
                prow.copy_from_slice(&data[src..src + nbk]);
            }
            let min_rows = par::min_rows_for(nbk * trailing_rows / 2);
            par::par_row_chunks_mut(&mut data[p1 * n..], n, min_rows, |first, chunk| {
                for (ri, row) in chunk.chunks_exact_mut(n).enumerate() {
                    let i = first + ri; // row index relative to p1
                    let pi = &panel[i * nbk..(i + 1) * nbk];
                    for (j, pj) in panel.chunks_exact(nbk).enumerate().take(i + 1) {
                        let v = &mut row[p1 + j];
                        for (&lik, &ljk) in pi.iter().zip(pj) {
                            *v -= lik * ljk;
                        }
                    }
                }
            });
        }
        p0 = p1;
    }
    for i in 0..n {
        for v in &mut data[i * n + i + 1..(i + 1) * n] {
            *v = 0.0;
        }
    }
    Ok(l)
}

/// Solves `L x = b` for lower-triangular `L` (forward substitution).
///
/// `b` may have multiple right-hand-side columns.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on incompatible shapes and
/// [`TensorError::Numeric`] on a zero diagonal element.
pub fn solve_lower_triangular(l: &Matrix, b: &Matrix) -> Result<Matrix, TensorError> {
    let n = l.rows();
    if l.cols() != n || b.rows() != n {
        return Err(TensorError::ShapeMismatch(format!(
            "solve_lower_triangular: L is {}x{}, b is {}x{}",
            l.rows(),
            l.cols(),
            b.rows(),
            b.cols()
        )));
    }
    let mut x = b.clone();
    for col in 0..b.cols() {
        for i in 0..n {
            let mut sum = x.get(i, col);
            for k in 0..i {
                sum -= l.get(i, k) * x.get(k, col);
            }
            let d = l.get(i, i);
            if d == 0.0 {
                return Err(TensorError::Numeric(format!("zero diagonal at row {i}")));
            }
            x.set(i, col, sum / d);
        }
    }
    Ok(x)
}

/// Solves `Lᵀ x = b` for lower-triangular `L` (backward substitution).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on incompatible shapes and
/// [`TensorError::Numeric`] on a zero diagonal element.
pub fn solve_upper_from_lower(l: &Matrix, b: &Matrix) -> Result<Matrix, TensorError> {
    let n = l.rows();
    if l.cols() != n || b.rows() != n {
        return Err(TensorError::ShapeMismatch(format!(
            "solve_upper_from_lower: L is {}x{}, b is {}x{}",
            l.rows(),
            l.cols(),
            b.rows(),
            b.cols()
        )));
    }
    let mut x = b.clone();
    for col in 0..b.cols() {
        for i in (0..n).rev() {
            let mut sum = x.get(i, col);
            for k in i + 1..n {
                // (Lᵀ)[i][k] == L[k][i]
                sum -= l.get(k, i) * x.get(k, col);
            }
            let d = l.get(i, i);
            if d == 0.0 {
                return Err(TensorError::Numeric(format!("zero diagonal at row {i}")));
            }
            x.set(i, col, sum / d);
        }
    }
    Ok(x)
}

/// Solves the symmetric positive-definite system `A x = b` via Cholesky.
///
/// # Errors
///
/// Propagates errors from [`cholesky`] and the triangular solves.
///
/// # Example
///
/// ```
/// use calloc_tensor::{linalg, Matrix};
///
/// let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
/// let b = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
/// let x = linalg::solve_spd(&a, &b)?;
/// assert!(a.matmul(&x).approx_eq(&b, 1e-10));
/// # Ok::<(), calloc_tensor::TensorError>(())
/// ```
pub fn solve_spd(a: &Matrix, b: &Matrix) -> Result<Matrix, TensorError> {
    let l = cholesky(a)?;
    let y = solve_lower_triangular(&l, b)?;
    solve_upper_from_lower(&l, &y)
}

/// Rank-1 **update** of a Cholesky factor: given lower-triangular `L`
/// with `A = L Lᵀ` and a column vector `v`, returns the factor `L'` of
/// `A + v vᵀ` in `O(n²)` — without refactoring the `O(n³)` matrix.
///
/// The factor is rotated column by column with Givens-style rotations
/// (the classic `cholupdate` recurrence); this is the primitive behind
/// online recalibration (`calloc_baselines`' `GpcLocalizer::absorb`
/// folds newly surveyed fingerprints into its kernel factor instead of
/// refitting). Like all incremental paths it lives in the **tolerance
/// tier**: the result agrees with a fresh factorization of `A + v vᵀ` to
/// floating-point rounding, not bit-exactly —
/// `crates/tensor/tests/proptest_linalg.rs` pins the tolerance.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `l` is not square or `v` is
/// not an `n×1` column, and [`TensorError::Numeric`] if a diagonal
/// element of `l` is not positive.
pub fn cholesky_update(l: &Matrix, v: &Matrix) -> Result<Matrix, TensorError> {
    rank_one_rotate(l, v, 1.0)
}

/// Rank-1 **downdate** of a Cholesky factor: given `L` with `A = L Lᵀ`,
/// returns the factor of `A − v vᵀ` in `O(n²)` — the inverse of
/// [`cholesky_update`], used to retire stale fingerprints from an online
/// factor.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on bad shapes and
/// [`TensorError::Numeric`] if `A − v vᵀ` is not positive definite to
/// working precision (the downdated pivot would be non-positive).
pub fn cholesky_downdate(l: &Matrix, v: &Matrix) -> Result<Matrix, TensorError> {
    rank_one_rotate(l, v, -1.0)
}

/// Shared recurrence of [`cholesky_update`] (`sign = +1`) and
/// [`cholesky_downdate`] (`sign = -1`).
fn rank_one_rotate(l: &Matrix, v: &Matrix, sign: f64) -> Result<Matrix, TensorError> {
    let n = l.rows();
    if l.cols() != n || v.rows() != n || v.cols() != 1 {
        return Err(TensorError::ShapeMismatch(format!(
            "cholesky rank-1: L is {}x{}, v is {}x{} (need n x n and n x 1)",
            l.rows(),
            l.cols(),
            v.rows(),
            v.cols()
        )));
    }
    let mut out = l.clone();
    let mut x: Vec<f64> = (0..n).map(|i| v.get(i, 0)).collect();
    for k in 0..n {
        let d = out.get(k, k);
        if d <= 0.0 {
            return Err(TensorError::Numeric(format!(
                "non-positive diagonal {d:.3e} at row {k}; not a Cholesky factor"
            )));
        }
        let r2 = d * d + sign * x[k] * x[k];
        if r2 <= 0.0 {
            return Err(TensorError::Numeric(format!(
                "downdated pivot {r2:.3e} at row {k}; result is not positive definite"
            )));
        }
        let r = r2.sqrt();
        let c = r / d;
        let s = x[k] / d;
        out.set(k, k, r);
        for (i, xi) in x.iter_mut().enumerate().skip(k + 1) {
            let lik = (out.get(i, k) + sign * s * *xi) / c;
            out.set(i, k, lik);
            *xi = c * *xi - s * lik;
        }
    }
    Ok(out)
}

/// Adds `jitter` to the diagonal of a square matrix (in place on a copy).
///
/// Kernel matrices are often numerically semi-definite; a small diagonal
/// jitter restores positive definiteness.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn add_diagonal(a: &Matrix, jitter: f64) -> Matrix {
    assert_eq!(a.rows(), a.cols(), "add_diagonal requires a square matrix");
    let mut out = a.clone();
    for i in 0..a.rows() {
        out.set(i, i, out.get(i, i) + jitter);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    fn random_spd(n: usize, seed: u64) -> Matrix {
        let mut rng = Rng::new(seed);
        let b = Matrix::from_fn(n, n, |_, _| rng.normal(0.0, 1.0));
        add_diagonal(&b.matmul(&b.transpose()), 1e-3 + n as f64 * 0.1)
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = random_spd(8, 1);
        let l = cholesky(&a).expect("spd");
        assert!(l.matmul(&l.transpose()).approx_eq(&a, 1e-9));
    }

    #[test]
    fn cholesky_rejects_non_square() {
        assert!(matches!(
            cholesky(&Matrix::zeros(2, 3)),
            Err(TensorError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(cholesky(&a), Err(TensorError::Numeric(_))));
    }

    #[test]
    fn blocked_is_bit_identical_to_unblocked() {
        for n in [1usize, 5, 17, 40, 70] {
            let a = random_spd(n, n as u64);
            // One panel spanning the whole matrix == the unblocked kernel.
            let reference = cholesky_with_block(&a, usize::MAX).expect("spd");
            for nb in [1usize, 2, 3, 8, 64] {
                let blocked = cholesky_with_block(&a, nb).expect("spd");
                for (i, (x, y)) in reference
                    .as_slice()
                    .iter()
                    .zip(blocked.as_slice())
                    .enumerate()
                {
                    assert_eq!(x.to_bits(), y.to_bits(), "n={n} nb={nb} element {i}");
                }
            }
        }
    }

    #[test]
    fn blocked_rejects_indefinite_in_later_panel() {
        // Positive-definite leading block, indefinite overall: the failure
        // must surface in a panel past the first.
        let n = 12;
        let mut a = random_spd(n, 9);
        a.set(n - 1, n - 1, -5.0);
        assert!(matches!(
            cholesky_with_block(&a, 4),
            Err(TensorError::Numeric(_))
        ));
    }

    #[test]
    fn solve_spd_solves() {
        let a = random_spd(10, 2);
        let mut rng = Rng::new(3);
        let b = Matrix::from_fn(10, 3, |_, _| rng.normal(0.0, 2.0));
        let x = solve_spd(&a, &b).expect("solve");
        assert!(a.matmul(&x).approx_eq(&b, 1e-7));
    }

    #[test]
    fn triangular_solves_match_direct() {
        let a = random_spd(6, 4);
        let l = cholesky(&a).expect("spd");
        let b = Matrix::from_fn(6, 1, |r, _| r as f64 + 1.0);
        let y = solve_lower_triangular(&l, &b).expect("fwd");
        assert!(l.matmul(&y).approx_eq(&b, 1e-9));
        let x = solve_upper_from_lower(&l, &y).expect("bwd");
        assert!(l.transpose().matmul(&x).approx_eq(&y, 1e-9));
    }

    #[test]
    fn update_reconstructs_the_rank_one_perturbed_matrix() {
        let a = random_spd(9, 5);
        let l = cholesky(&a).expect("spd");
        let mut rng = Rng::new(6);
        let v = Matrix::from_fn(9, 1, |_, _| rng.normal(0.0, 1.0));
        let updated = cholesky_update(&l, &v).expect("update");
        let expected = {
            let mut m = a.clone();
            for i in 0..9 {
                for j in 0..9 {
                    m.set(i, j, m.get(i, j) + v.get(i, 0) * v.get(j, 0));
                }
            }
            m
        };
        assert!(updated
            .matmul(&updated.transpose())
            .approx_eq(&expected, 1e-9));
        // The factor stays lower triangular.
        for i in 0..9 {
            for j in i + 1..9 {
                assert_eq!(updated.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn downdate_inverts_update() {
        let a = random_spd(7, 8);
        let l = cholesky(&a).expect("spd");
        let mut rng = Rng::new(9);
        let v = Matrix::from_fn(7, 1, |_, _| rng.normal(0.0, 1.0));
        let round_trip =
            cholesky_downdate(&cholesky_update(&l, &v).expect("update"), &v).expect("downdate");
        assert!(round_trip.approx_eq(&l, 1e-8));
    }

    #[test]
    fn downdate_rejects_a_rank_one_term_that_breaks_definiteness() {
        let a = random_spd(5, 10);
        let l = cholesky(&a).expect("spd");
        // Subtracting 10·A's first basis direction overwhelms the matrix.
        let big = Matrix::from_fn(5, 1, |i, _| if i == 0 { 1e6 } else { 0.0 });
        assert!(matches!(
            cholesky_downdate(&l, &big),
            Err(TensorError::Numeric(_))
        ));
    }

    #[test]
    fn rank_one_rejects_bad_shapes() {
        let l = cholesky(&random_spd(4, 11)).expect("spd");
        assert!(matches!(
            cholesky_update(&l, &Matrix::zeros(3, 1)),
            Err(TensorError::ShapeMismatch(_))
        ));
        assert!(matches!(
            cholesky_update(&l, &Matrix::zeros(4, 2)),
            Err(TensorError::ShapeMismatch(_))
        ));
        assert!(matches!(
            cholesky_update(&Matrix::zeros(3, 4), &Matrix::zeros(3, 1)),
            Err(TensorError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn add_diagonal_only_touches_diagonal() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let j = add_diagonal(&a, 0.5);
        assert_eq!(j.get(0, 0), 1.5);
        assert_eq!(j.get(1, 1), 4.5);
        assert_eq!(j.get(0, 1), 2.0);
        assert_eq!(j.get(1, 0), 3.0);
    }
}
