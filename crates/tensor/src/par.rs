//! Deterministic parallel compute runtime.
//!
//! Every parallel kernel in the workspace is built on the primitives in
//! this module, and all of them share one contract:
//!
//! > **Chunks are contiguous index ranges and results are merged in index
//! > order, so the output of a parallel computation is bit-identical to the
//! > serial computation regardless of the thread count.**
//!
//! Concretely, work of length `n` is split into contiguous chunks — up to
//! [`CHUNKS_PER_WORKER`] of them per budgeted worker, each carrying at
//! least the caller's minimum chunk size — which are pushed, in ascending
//! index order, onto a fan-out-local FIFO queue. Up to [`threads`] workers
//! (the calling thread plus jobs on the persistent pool beneath the
//! vendored `rayon`) then *reclaim* chunks from that queue: each worker
//! pops the lowest-indexed remaining chunk, evaluates it, and moves on, so
//! a straggling chunk never idles the rest of the pool — the fast workers
//! simply drain what is left. The per-chunk results are written back or
//! reassembled **in ascending chunk order**. Because each index's value
//! never depends on which chunk computed it or which worker ran the chunk,
//! changing `CALLOC_THREADS` can only change wall time, never a single bit
//! of output. `tests/determinism.rs` and
//! `crates/tensor/tests/proptest_parallel.rs` enforce this.
//!
//! # Thread-count knob
//!
//! The worker budget is resolved in this order:
//!
//! 1. a process-local override installed with [`set_threads`] (used by
//!    benches and tests — prefer the RAII [`ThreadGuard`], which restores
//!    the previous override even when an assertion unwinds),
//! 2. the `CALLOC_THREADS` environment variable (read once, on first use;
//!    `0` selects the machine default like `set_threads(0)`, and anything
//!    non-numeric panics rather than being silently ignored),
//! 3. [`std::thread::available_parallelism`].
//!
//! `CALLOC_THREADS=1` (or `set_threads(1)`) selects the serial fallback:
//! no pool work is ever queued and every primitive degenerates to a plain
//! loop on the calling thread. Budgets above the physical core count are
//! honored, not clamped — an oversubscribed budget simply queues more
//! chunks than can run at once, which CI exercises deliberately.
//!
//! # Granularity
//!
//! Queuing a chunk costs a mutex push and a worker wake-up, so kernels
//! only fan out when every chunk carries at least [`min_work`] units of
//! work (roughly flops); small matrices always take the serial path. Tests
//! can lower the floor with [`set_min_work`] (or the RAII [`MinWorkGuard`])
//! to force the parallel code path on tiny inputs.
//!
//! # Nested fan-outs
//!
//! Fan-outs nest: a job of a [`par_run`] / [`par_join`] fan-out (a
//! scenario-grid cell, a collection session, a sweep chunk) that calls a
//! parallel kernel opens its own fan-out with the **full configured
//! budget** — [`threads`] reports the same value on every thread. The
//! persistent pool makes that safe: nested fan-outs queue chunks on the
//! same pool instead of spawning threads-of-threads, idle workers reclaim
//! them (a worker that finishes its own chunks helps drain a straggler's
//! nested chunks), and a waiting fan-out owner drains the pool queue
//! instead of blocking. Actual OS-thread concurrency is bounded by the
//! pool, not by the product of nested budgets. Like everything else here,
//! nesting only shifts wall time, never bits.

use std::any::Any;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Default minimum amount of work (≈ flops) a chunk must carry before a
/// kernel fans out to worker threads.
pub const DEFAULT_MIN_WORK: usize = 1 << 20;

/// Target number of chunks per budgeted worker when a kernel fans out.
///
/// Splitting finer than one chunk per worker is what makes work
/// reclaiming effective: when per-chunk cost is uneven (a GPC-heavy sweep
/// chunk, a dense scenario cell), workers that finish early pop the
/// remaining chunks instead of idling behind the straggler. The caller's
/// minimum chunk size still bounds the split from below, so tiny inputs
/// never over-fragment.
pub const CHUNKS_PER_WORKER: usize = 4;

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static MIN_WORK_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

/// Parses a `CALLOC_THREADS` value: a positive integer is the budget, `0`
/// means "machine default" (matching [`set_threads`]`(0)` semantics).
///
/// # Panics
///
/// Panics on anything non-numeric — a typo'd budget silently falling back
/// to machine parallelism would invalidate a determinism or perf run.
fn parse_env_threads(raw: &str) -> usize {
    match raw.trim().parse::<usize>() {
        Ok(0) => rayon::current_num_threads(),
        Ok(n) => n,
        Err(_) => panic!(
            "CALLOC_THREADS must be a non-negative integer \
             (0 = machine parallelism), got {raw:?}"
        ),
    }
}

fn env_threads() -> usize {
    match std::env::var("CALLOC_THREADS") {
        Ok(v) => parse_env_threads(&v),
        Err(std::env::VarError::NotPresent) => rayon::current_num_threads(),
        Err(std::env::VarError::NotUnicode(v)) => {
            panic!("CALLOC_THREADS is not valid unicode: {v:?}")
        }
    }
}

/// The worker-thread budget parallel kernels may use (always ≥ 1).
///
/// See the [module docs](self) for the resolution order of the
/// `CALLOC_THREADS` knob. A value of `1` means "serial": primitives run
/// entirely on the calling thread.
///
/// The budget is the same on every thread — a kernel nested inside a
/// fan-out job sees the full configured budget and draws on the shared
/// persistent pool, rather than collapsing to a serial fallback the way
/// the old spawn-per-fork runtime forced it to.
pub fn threads() -> usize {
    configured_threads()
}

fn configured_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => *ENV_THREADS.get_or_init(env_threads),
        n => n,
    }
}

/// Overrides [`threads`] process-wide; `0` restores the environment-driven
/// default. Intended for benches and tests that need to compare thread
/// counts within one process — tests should prefer the RAII
/// [`ThreadGuard`], which cannot leak the override when an assertion
/// fails between the set and the restore.
///
/// Because of the index-order-merge contract, flipping this concurrently
/// with running kernels can never change any result — only how fast it is
/// produced. The persistent pool survives any number of changes: budgets
/// only gate how many workers a fan-out *dispatches*, never pool lifetime.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// RAII guard for the [`set_threads`] override: installs `n` on
/// construction and restores the *previous* override on drop — also on
/// unwind, so a failing assertion between a `set_threads(n)` /
/// `set_threads(0)` pair can no longer leak a stale budget into every
/// subsequent test in the process.
///
/// ```
/// use calloc_tensor::par;
///
/// {
///     let _threads = par::ThreadGuard::new(3);
///     assert_eq!(par::threads(), 3);
///     par::set_threads(8); // interim flips are fine…
/// }
/// // …the guard still restores the pre-guard default on drop.
/// ```
#[must_use = "the override is restored when the guard drops"]
pub struct ThreadGuard {
    prev: usize,
}

impl ThreadGuard {
    /// Installs `n` as the [`threads`] override (0 = environment default)
    /// and remembers the previous override for restoration on drop.
    pub fn new(n: usize) -> Self {
        Self {
            prev: THREAD_OVERRIDE.swap(n, Ordering::Relaxed),
        }
    }
}

impl Drop for ThreadGuard {
    fn drop(&mut self) {
        THREAD_OVERRIDE.store(self.prev, Ordering::Relaxed);
    }
}

/// Minimum work (≈ flops) per chunk before kernels fan out.
pub fn min_work() -> usize {
    match MIN_WORK_OVERRIDE.load(Ordering::Relaxed) {
        0 => DEFAULT_MIN_WORK,
        n => n,
    }
}

/// Overrides [`min_work`] process-wide; `0` restores
/// [`DEFAULT_MIN_WORK`]. Tests lower this to `1` to exercise the parallel
/// code path on tiny inputs — prefer the RAII [`MinWorkGuard`] there.
pub fn set_min_work(n: usize) {
    MIN_WORK_OVERRIDE.store(n, Ordering::Relaxed);
}

/// RAII guard for the [`set_min_work`] override, mirroring
/// [`ThreadGuard`]: installs `n` on construction, restores the previous
/// work floor on drop (also on unwind).
#[must_use = "the override is restored when the guard drops"]
pub struct MinWorkGuard {
    prev: usize,
}

impl MinWorkGuard {
    /// Installs `n` as the [`min_work`] override (0 = default floor) and
    /// remembers the previous override for restoration on drop.
    pub fn new(n: usize) -> Self {
        Self {
            prev: MIN_WORK_OVERRIDE.swap(n, Ordering::Relaxed),
        }
    }
}

impl Drop for MinWorkGuard {
    fn drop(&mut self) {
        MIN_WORK_OVERRIDE.store(self.prev, Ordering::Relaxed);
    }
}

/// Minimum rows per chunk for a row-parallel kernel whose per-row cost is
/// `work_per_row` (≈ flops); always ≥ 1.
pub fn min_rows_for(work_per_row: usize) -> usize {
    min_work().div_ceil(work_per_row.max(1)).max(1)
}

/// Runs the two closures, in parallel when the thread budget allows, and
/// returns `(a(), b())`. With [`threads`] `== 1` both run sequentially on
/// the calling thread, in order.
pub fn par_join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if threads() <= 1 {
        let ra = a();
        let rb = b();
        (ra, rb)
    } else {
        rayon::join(a, b)
    }
}

/// Splits `len` items into contiguous ranges of at least `min_chunk` items
/// each — up to [`CHUNKS_PER_WORKER`] ranges per budgeted worker, so
/// reclaiming has slack to rebalance uneven chunks (a single range when
/// `len` is too small) — balanced to within one item.
fn split_ranges(len: usize, min_chunk: usize) -> Vec<Range<usize>> {
    let max_chunks = (len / min_chunk.max(1)).max(1);
    let budget = threads();
    let target = if budget <= 1 {
        1
    } else {
        budget.saturating_mul(CHUNKS_PER_WORKER)
    };
    let n_chunks = target.min(max_chunks).max(1);
    let base = len / n_chunks;
    let extra = len % n_chunks;
    let mut ranges = Vec::with_capacity(n_chunks);
    let mut start = 0;
    for i in 0..n_chunks {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// An index-tagged work queue shared by one fan-out's workers. Items are
/// queued in ascending index order and popped front-first, so dispatch
/// order is deterministic; completion order is not, which is why every
/// result carries its index for the ascending merge.
type ReclaimQueue<I> = Mutex<VecDeque<(usize, I)>>;

fn pop_item<I>(queue: &ReclaimQueue<I>) -> Option<(usize, I)> {
    queue.lock().unwrap_or_else(|e| e.into_inner()).pop_front()
}

/// One fan-out worker: pops the lowest-indexed remaining item, evaluates
/// it, appends `(index, result)` to its private output, repeats until the
/// queue is drained. Workers that finish early keep popping — this is the
/// work-reclaiming loop that keeps a straggling item from idling the rest
/// of the budget.
fn drain_queue<I, T>(
    queue: &ReclaimQueue<I>,
    out: &mut Vec<(usize, T)>,
    f: &(impl Fn(I) -> T + Sync),
) {
    while let Some((index, item)) = pop_item(queue) {
        out.push((index, f(item)));
    }
}

/// Evaluates `f` over every item, fanned out over up to [`threads`]
/// workers that reclaim items from a shared FIFO queue, and returns the
/// results **in item order**. Serial (budget 1, or ≤ 1 item) runs the
/// items front to back on the calling thread.
fn run_reclaimed<I: Send, T: Send>(items: Vec<I>, f: &(impl Fn(I) -> T + Sync)) -> Vec<T> {
    let n = items.len();
    let workers = threads().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue: ReclaimQueue<I> = Mutex::new(items.into_iter().enumerate().collect());
    let queue = &queue;
    let mut outs: Vec<Vec<(usize, T)>> = (0..workers)
        .map(|_| Vec::with_capacity(n.div_ceil(workers)))
        .collect();
    {
        let (own, spawned) = outs.split_first_mut().expect("workers >= 2");
        rayon::scope(|s| {
            for out in spawned.iter_mut() {
                s.spawn(move |_| drain_queue(queue, out, f));
            }
            drain_queue(queue, own, f);
        });
    }
    let mut indexed: Vec<(usize, T)> = outs.into_iter().flatten().collect();
    debug_assert_eq!(indexed.len(), n);
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, t)| t).collect()
}

/// Evaluates `f` over contiguous sub-ranges of `0..len` — each at least
/// `min_chunk` long, split finer than the worker budget (see
/// [`CHUNKS_PER_WORKER`]) so idle workers can reclaim queued chunks — and
/// returns the per-chunk results **in index order**.
///
/// With a single chunk (serial fallback, small input, or `threads() == 1`)
/// this is exactly `vec![f(0..len)]` on the calling thread.
///
/// # Example
///
/// ```
/// use calloc_tensor::par;
///
/// let partial_sums = par::par_chunks(1000, 1, |r| r.sum::<usize>());
/// let total: usize = partial_sums.iter().sum();
/// assert_eq!(total, 499_500);
/// ```
pub fn par_chunks<T, F>(len: usize, min_chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    run_reclaimed(split_ranges(len, min_chunk), &f)
}

/// Splits a row-major buffer of `row_len`-wide rows into contiguous row
/// chunks of at least `min_rows` rows each (split finer than the worker
/// budget so chunks can be reclaimed, see [`CHUNKS_PER_WORKER`]) and runs
/// `f(first_row, chunk)` on every chunk, in parallel when the budget
/// allows.
///
/// The chunks are disjoint `&mut` slices of `data`, so each worker owns
/// its output rows exclusively; because chunk boundaries never change what
/// any individual row computes, the filled buffer is bit-identical for
/// every thread count.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `row_len` — including the
/// `row_len == 0` case for non-empty `data` (only an empty buffer has
/// zero-width rows).
pub fn par_row_chunks_mut<F>(data: &mut [f64], row_len: usize, min_rows: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    if data.is_empty() {
        f(0, data);
        return;
    }
    assert!(
        row_len != 0 && data.len() % row_len == 0,
        "buffer length {} is not a multiple of row length {row_len}",
        data.len()
    );
    let rows = data.len() / row_len;
    let ranges = split_ranges(rows, min_rows);
    if ranges.len() <= 1 {
        f(0, data);
        return;
    }
    let mut chunks = Vec::with_capacity(ranges.len());
    let mut rest = data;
    let mut row = 0;
    for range in &ranges {
        let (head, tail) = rest.split_at_mut(range.len() * row_len);
        chunks.push((row, head));
        row += range.len();
        rest = tail;
    }
    run_reclaimed(chunks, &|(first_row, chunk): (usize, &mut [f64])| {
        f(first_row, chunk)
    });
}

/// Runs a list of heterogeneous jobs, in parallel when the thread budget
/// allows, and returns their results **in job order**.
///
/// Jobs go onto a shared FIFO queue in job order and up to [`threads`]
/// workers reclaim them one at a time, so an expensive job never strands
/// the jobs queued behind it — whichever workers finish early drain the
/// remainder — and the results are reassembled by original index. With
/// `threads() == 1` the jobs simply run front to back on the calling
/// thread.
///
/// This is the primitive behind parallel suite training
/// (`calloc_eval::Suite::train`) and session fan-out
/// (`calloc_sim::Scenario::generate`): each job consumes only its own
/// forked seed, so jobs are independent and the result list comes back in
/// the caller's order regardless of the thread count. Kernels *inside* a
/// job see the full thread budget and share the same pool (see the
/// [module docs](self) on nesting).
pub fn par_run<R: Send>(jobs: Vec<Box<dyn FnOnce() -> R + Send + '_>>) -> Vec<R> {
    run_reclaimed(jobs, &|job| job())
}

/// A panic captured at a panic-isolation boundary ([`caught`] /
/// [`par_run_caught`]): the payload rendered as a message string, so
/// callers can record or report the failure without carrying the original
/// `Box<dyn Any>` across threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaughtPanic {
    message: String,
}

impl CaughtPanic {
    /// Renders a raw `catch_unwind` payload. `panic!` with a format string
    /// yields a `String` payload and a literal yields `&'static str`; any
    /// other payload type is reported as opaque rather than dropped.
    fn from_payload(payload: Box<dyn Any + Send>) -> Self {
        let message = if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else if let Some(s) = payload.downcast_ref::<&'static str>() {
            (*s).to_string()
        } else {
            "<non-string panic payload>".to_string()
        };
        CaughtPanic { message }
    }

    /// The rendered panic message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for CaughtPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "panicked: {}", self.message)
    }
}

/// Runs `f`, converting a panic into an `Err(CaughtPanic)` instead of
/// unwinding into the caller — the single-job form of the panic-isolation
/// boundary used by [`par_run_caught`]. Callers that retry a failed unit
/// of work (the sweep engine's per-cell retry budget) wrap each attempt in
/// this.
///
/// The closure is treated as unwind-safe: the intended use is a *pure*
/// unit of work (a sweep cell, a generation cell) whose partial effects
/// are discarded wholesale on failure, so no torn state can leak.
pub fn caught<T>(f: impl FnOnce() -> T) -> Result<T, CaughtPanic> {
    panic::catch_unwind(AssertUnwindSafe(f)).map_err(CaughtPanic::from_payload)
}

/// The panic-isolating variant of [`par_run`]: runs the jobs with the same
/// FIFO-reclaiming fan-out and job-order merge, but a panicking job yields
/// `Err(CaughtPanic)` in its slot instead of poisoning the whole fan-out
/// (plain [`par_run`] re-throws the first job panic at the scope boundary,
/// discarding every other job's result).
///
/// The order contract is unchanged: slot `i` always holds job `i`'s
/// outcome, so which worker observed the panic — or how many jobs ran
/// before it — can never change a bit of the merged output.
pub fn par_run_caught<R: Send>(
    jobs: Vec<Box<dyn FnOnce() -> R + Send + '_>>,
) -> Vec<Result<R, CaughtPanic>> {
    run_reclaimed(jobs, &|job| caught(job))
}

/// Installs (once, process-wide) a panic-hook filter that suppresses the
/// default "thread panicked" stderr report for panics whose payload
/// contains `"injected fault"` — the recognizable prefix of
/// fault-injection panics (see `calloc_eval`'s `FaultPlan`). All other
/// panics keep the previous hook's behavior. Test harnesses exercising
/// quarantine/retry paths call this so thousands of *expected* injected
/// panics don't flood the test log; it never changes what
/// [`caught`]/[`par_run_caught`] observe or return.
pub fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let message = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&'static str>().copied());
            if message.is_some_and(|m| m.contains("injected fault")) {
                return;
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that mutate the process-global knobs: chunk
    /// *structure* (unlike kernel output) does depend on the thread count.
    static KNOB_LOCK: Mutex<()> = Mutex::new(());

    fn lock_knobs() -> std::sync::MutexGuard<'static, ()> {
        KNOB_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn split_ranges_covers_exactly_once() {
        let _guard = lock_knobs();
        for threads in [1usize, 3, 8] {
            let _t = ThreadGuard::new(threads);
            for len in [0usize, 1, 7, 100, 1001] {
                for min_chunk in [1usize, 3, 64] {
                    let ranges = split_ranges(len, min_chunk);
                    let mut next = 0;
                    for r in &ranges {
                        assert_eq!(r.start, next, "ranges must be contiguous");
                        next = r.end;
                    }
                    assert_eq!(next, len, "ranges must cover 0..{len}");
                }
            }
        }
    }

    #[test]
    fn split_ranges_oversplits_for_reclaiming() {
        let _guard = lock_knobs();
        let _t = ThreadGuard::new(4);
        let ranges = split_ranges(1000, 1);
        assert_eq!(
            ranges.len(),
            4 * CHUNKS_PER_WORKER,
            "a large fan-out must split finer than the budget"
        );
        // …but never below the minimum chunk size.
        for r in split_ranges(1000, 300) {
            assert!(r.len() >= 300);
        }
    }

    #[test]
    fn parse_env_threads_zero_means_machine_default() {
        assert_eq!(parse_env_threads("0"), rayon::current_num_threads());
        assert_eq!(parse_env_threads(" 0 "), rayon::current_num_threads());
    }

    #[test]
    fn parse_env_threads_accepts_positive_budgets() {
        assert_eq!(parse_env_threads("1"), 1);
        assert_eq!(parse_env_threads(" 12 "), 12);
    }

    #[test]
    #[should_panic(expected = "CALLOC_THREADS must be a non-negative integer")]
    fn parse_env_threads_panics_on_garbage() {
        parse_env_threads("fast");
    }

    #[test]
    #[should_panic(expected = "CALLOC_THREADS must be a non-negative integer")]
    fn parse_env_threads_panics_on_negative() {
        parse_env_threads("-2");
    }

    #[test]
    fn thread_guard_restores_previous_override_on_drop() {
        let _guard = lock_knobs();
        set_threads(0);
        {
            let _t = ThreadGuard::new(3);
            assert_eq!(threads(), 3);
            // Interim manual flips are restored over.
            set_threads(7);
            assert_eq!(threads(), 7);
        }
        assert_eq!(
            THREAD_OVERRIDE.load(Ordering::Relaxed),
            0,
            "guard must restore the pre-guard override"
        );
    }

    #[test]
    fn thread_guard_restores_on_unwind() {
        let _guard = lock_knobs();
        set_threads(0);
        let result = std::panic::catch_unwind(|| {
            let _t = ThreadGuard::new(5);
            panic!("assertion failed mid-test");
        });
        assert!(result.is_err());
        assert_eq!(
            THREAD_OVERRIDE.load(Ordering::Relaxed),
            0,
            "a panicking test must not leak its thread override"
        );
    }

    #[test]
    fn min_work_guard_restores_previous_override_on_drop() {
        let _guard = lock_knobs();
        set_min_work(0);
        {
            let _w = MinWorkGuard::new(1);
            assert_eq!(min_work(), 1);
        }
        assert_eq!(min_work(), DEFAULT_MIN_WORK);
    }

    #[test]
    fn par_chunks_results_are_in_index_order() {
        let _guard = lock_knobs();
        let _t = ThreadGuard::new(4);
        let _w = MinWorkGuard::new(1);
        let chunks = par_chunks(100, 1, |r| r.start);
        let mut sorted = chunks.clone();
        sorted.sort_unstable();
        assert_eq!(chunks, sorted);
    }

    #[test]
    fn par_chunks_serial_is_single_chunk() {
        let _guard = lock_knobs();
        let _t = ThreadGuard::new(1);
        let chunks = par_chunks(100, 1, |r| (r.start, r.end));
        assert_eq!(chunks, vec![(0, 100)]);
    }

    #[test]
    fn par_row_chunks_mut_visits_every_row_once() {
        let _guard = lock_knobs();
        for n_threads in [1usize, 2, 5] {
            let _t = ThreadGuard::new(n_threads);
            let rows = 17;
            let cols = 3;
            let mut data = vec![0.0; rows * cols];
            par_row_chunks_mut(&mut data, cols, 1, |first_row, chunk| {
                for (i, row) in chunk.chunks_exact_mut(cols).enumerate() {
                    for v in row.iter_mut() {
                        *v += (first_row + i) as f64;
                    }
                }
            });
            for r in 0..rows {
                for c in 0..cols {
                    assert_eq!(data[r * cols + c], r as f64, "threads={n_threads}");
                }
            }
        }
    }

    #[test]
    fn par_row_chunks_mut_handles_empty() {
        let mut data: Vec<f64> = Vec::new();
        par_row_chunks_mut(&mut data, 4, 1, |_, chunk| assert!(chunk.is_empty()));
        // Zero-width rows are fine for an empty buffer only.
        par_row_chunks_mut(&mut data, 0, 1, |_, chunk| assert!(chunk.is_empty()));
    }

    #[test]
    #[should_panic(expected = "not a multiple of row length 0")]
    fn par_row_chunks_mut_rejects_zero_row_len_for_nonempty_data() {
        let mut data = vec![1.0, 2.0, 3.0];
        par_row_chunks_mut(&mut data, 0, 1, |_, _| {});
    }

    #[test]
    #[should_panic(expected = "not a multiple of row length 4")]
    fn par_row_chunks_mut_rejects_ragged_buffer() {
        let mut data = vec![0.0; 10];
        par_row_chunks_mut(&mut data, 4, 1, |_, _| {});
    }

    #[test]
    fn par_join_returns_in_operand_order() {
        let _guard = lock_knobs();
        for n_threads in [1usize, 3] {
            let _t = ThreadGuard::new(n_threads);
            let (a, b) = par_join(|| 1, || 2);
            assert_eq!((a, b), (1, 2));
        }
    }

    #[test]
    fn par_run_preserves_job_order() {
        let _guard = lock_knobs();
        for n_threads in [1usize, 2, 4, 9] {
            let _t = ThreadGuard::new(n_threads);
            let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..9usize)
                .map(|i| Box::new(move || i * 10) as Box<dyn FnOnce() -> usize + Send>)
                .collect();
            let out = par_run(jobs);
            assert_eq!(out, (0..9usize).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_run_actually_distributes_jobs_across_threads() {
        // Regression guard: the fan-out must reach pool workers, not just
        // run everything on the caller. Each job sleeps briefly so the
        // calling thread cannot race through the whole queue before a
        // worker wakes.
        let _guard = lock_knobs();
        let _t = ThreadGuard::new(4);
        let jobs: Vec<Box<dyn FnOnce() -> std::thread::ThreadId + Send>> = (0..4)
            .map(|_| {
                Box::new(|| {
                    std::thread::sleep(std::time::Duration::from_millis(25));
                    std::thread::current().id()
                }) as Box<dyn FnOnce() -> std::thread::ThreadId + Send>
            })
            .collect();
        let ids = par_run(jobs);
        let distinct: std::collections::HashSet<_> = ids.iter().collect();
        assert!(
            distinct.len() > 1,
            "4 sleeping jobs at 4 threads must span more than one worker thread"
        );
    }

    #[test]
    fn straggler_does_not_idle_the_pool() {
        // One long job up front plus many short jobs: with reclaiming the
        // short jobs drain on other workers while the straggler runs, so
        // at least one short job must land off the straggler's thread and
        // all results still come back in order.
        let _guard = lock_knobs();
        let _t = ThreadGuard::new(3);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..12usize)
            .map(|i| {
                Box::new(move || {
                    if i == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(60));
                    }
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let out = par_run(jobs);
        assert_eq!(out, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn nested_fan_outs_draw_real_budget() {
        // The old spawn-per-fork runtime reported a budget of 1 inside any
        // fan-out job, serializing every nested kernel. The pool removes
        // that collapse: the budget is the same on every thread.
        let _guard = lock_knobs();
        let _t = ThreadGuard::new(4);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..4)
            .map(|_| Box::new(threads) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let budgets = par_run(jobs);
        assert!(
            budgets.iter().all(|&t| t == 4),
            "nested budget must stay at the configured 4, got {budgets:?}"
        );
        let (a, b) = par_join(threads, threads);
        assert_eq!((a, b), (4, 4), "par_join operands must see the full budget");
        assert_eq!(threads(), 4);
    }

    #[test]
    fn nested_par_chunks_inside_par_run_merges_correctly() {
        let _guard = lock_knobs();
        let _t = ThreadGuard::new(3);
        let _w = MinWorkGuard::new(1);
        type NestedJob = Box<dyn FnOnce() -> (usize, Vec<usize>) + Send>;
        let jobs: Vec<NestedJob> = (0..5usize)
            .map(|j| {
                Box::new(move || {
                    let inner = par_chunks(40, 1, |r| r.map(|i| i + 100 * j).sum::<usize>());
                    (threads(), inner)
                }) as NestedJob
            })
            .collect();
        for (j, (budget, partials)) in par_run(jobs).into_iter().enumerate() {
            assert_eq!(budget, 3, "inner fan-out of job {j} must see the budget");
            let total: usize = partials.iter().sum();
            assert_eq!(total, (0..40).map(|i| i + 100 * j).sum::<usize>());
        }
    }

    #[test]
    fn pool_survives_set_threads_changes_mid_process() {
        // Shutdown/re-entry: growing, shrinking and restoring the budget
        // must all dispatch correctly on the same persistent pool.
        let _guard = lock_knobs();
        let _w = MinWorkGuard::new(1);
        let expected: usize = (0..500).sum();
        for budget in [2usize, 8, 1, 3, 8, 2] {
            let _t = ThreadGuard::new(budget);
            let total: usize = par_chunks(500, 1, |r| r.sum::<usize>()).iter().sum();
            assert_eq!(total, expected, "budget {budget} dispatched incorrectly");
        }
    }

    #[test]
    fn caught_returns_ok_for_clean_closures() {
        assert_eq!(caught(|| 41 + 1), Ok(42));
    }

    #[test]
    fn caught_captures_string_and_str_payloads() {
        let err = caught(|| -> () { panic!("formatted {}", 7) }).unwrap_err();
        assert_eq!(err.message(), "formatted 7");
        assert_eq!(format!("{err}"), "panicked: formatted 7");
        let err = caught(|| -> () { panic!("literal payload") }).unwrap_err();
        assert_eq!(err.message(), "literal payload");
        let err = caught(|| -> () { std::panic::panic_any(17usize) }).unwrap_err();
        assert_eq!(err.message(), "<non-string panic payload>");
    }

    #[test]
    fn par_run_caught_isolates_panics_per_job_slot() {
        let _guard = lock_knobs();
        for n_threads in [1usize, 3] {
            let _t = ThreadGuard::new(n_threads);
            let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
                .map(|i| {
                    Box::new(move || {
                        if i % 3 == 1 {
                            panic!("job {i} poisoned");
                        }
                        i * 10
                    }) as Box<dyn FnOnce() -> usize + Send>
                })
                .collect();
            let out = par_run_caught(jobs);
            assert_eq!(out.len(), 8);
            for (i, slot) in out.iter().enumerate() {
                if i % 3 == 1 {
                    let err = slot.as_ref().unwrap_err();
                    assert_eq!(
                        err.message(),
                        format!("job {i} poisoned"),
                        "threads={n_threads}"
                    );
                } else {
                    assert_eq!(slot, &Ok(i * 10), "threads={n_threads}");
                }
            }
        }
    }

    #[test]
    fn min_rows_for_is_positive_and_monotone() {
        assert!(min_rows_for(0) >= 1);
        assert!(min_rows_for(usize::MAX) >= 1);
        assert!(min_rows_for(1) >= min_rows_for(1 << 30));
    }
}
