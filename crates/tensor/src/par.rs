//! Deterministic parallel compute runtime.
//!
//! Every parallel kernel in the workspace is built on the primitives in
//! this module, and all of them share one contract:
//!
//! > **Chunks are contiguous index ranges and results are merged in index
//! > order, so the output of a parallel computation is bit-identical to the
//! > serial computation regardless of the thread count.**
//!
//! Concretely, work of length `n` is split into at most [`threads`]
//! contiguous chunks; each chunk is evaluated on its own scoped worker
//! thread (via the vendored `rayon::join`, a `std::thread::scope`-based
//! fork-join); and the per-chunk results are written back or concatenated
//! in ascending chunk order. Because each index's value never depends on
//! which chunk computed it, changing `CALLOC_THREADS` can only change wall
//! time, never a single bit of output. `tests/determinism.rs` and
//! `crates/tensor/tests/proptest_parallel.rs` enforce this.
//!
//! # Thread-count knob
//!
//! The worker budget is resolved in this order:
//!
//! 1. a process-local override installed with [`set_threads`] (used by
//!    benches and tests),
//! 2. the `CALLOC_THREADS` environment variable (read once, on first use),
//! 3. [`std::thread::available_parallelism`].
//!
//! `CALLOC_THREADS=1` (or `set_threads(1)`) selects the serial fallback:
//! no worker threads are ever spawned and every primitive degenerates to a
//! plain loop on the calling thread.
//!
//! # Granularity
//!
//! Spawning a scoped worker costs tens of microseconds, so kernels only
//! fan out when every chunk carries at least [`min_work`] units of work
//! (roughly flops); small matrices always take the serial path. Tests can
//! lower the floor with [`set_min_work`] to force the parallel code path
//! on tiny inputs.
//!
//! Fan-outs do not nest: while a thread is executing one job of a fan-out
//! ([`par_run`] / [`par_join`] operands, and the per-chunk callbacks of
//! [`par_chunks`] / [`par_row_chunks_mut`] when they actually fanned out),
//! [`threads`] reports `1` on that thread, so the kernels inside (matmuls
//! of a training loop, say) stay serial instead of oversubscribing the
//! machine with threads-of-threads. The single-chunk serial fallback is
//! not marked — no sibling holds the budget there. Like everything else
//! here this only shifts wall time, never bits.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

thread_local! {
    /// Set while this thread is executing one job of a coarse fan-out
    /// ([`par_run`] / [`par_join`]): sibling jobs already consume the
    /// thread budget, so nested kernel calls stay serial instead of
    /// oversubscribing the machine (the scoped stand-in pool spawns real
    /// OS threads per fork). Purely a throughput decision — by the
    /// index-order-merge contract it cannot change any result.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` with this thread marked as a fan-out worker (nested parallel
/// kernels degenerate to their serial fallback), restoring the previous
/// mark afterwards — also on unwind, so a panicking job cannot leave the
/// calling thread permanently serial.
fn run_marked<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            IN_WORKER.with(|w| w.set(self.0));
        }
    }
    let _restore = Restore(IN_WORKER.with(|w| w.replace(true)));
    f()
}

/// Default minimum amount of work (≈ flops) a chunk must carry before a
/// kernel fans out to worker threads.
pub const DEFAULT_MIN_WORK: usize = 1 << 20;

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static MIN_WORK_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

fn env_threads() -> usize {
    match std::env::var("CALLOC_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => rayon::current_num_threads(),
        },
        Err(_) => rayon::current_num_threads(),
    }
}

/// The worker-thread budget parallel kernels may use (always ≥ 1).
///
/// See the [module docs](self) for the resolution order of the
/// `CALLOC_THREADS` knob. A value of `1` means "serial": primitives run
/// entirely on the calling thread.
///
/// On a thread that is itself executing one job of a coarse fan-out
/// ([`par_run`] / [`par_join`]) this returns `1`: the sibling jobs already
/// consume the budget, so nested kernels run serially rather than
/// oversubscribing the machine with threads-of-threads.
pub fn threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    configured_threads()
}

fn configured_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => *ENV_THREADS.get_or_init(env_threads),
        n => n,
    }
}

/// Overrides [`threads`] process-wide; `0` restores the environment-driven
/// default. Intended for benches and tests that need to compare thread
/// counts within one process.
///
/// Because of the index-order-merge contract, flipping this concurrently
/// with running kernels can never change any result — only how fast it is
/// produced.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Minimum work (≈ flops) per chunk before kernels fan out.
pub fn min_work() -> usize {
    match MIN_WORK_OVERRIDE.load(Ordering::Relaxed) {
        0 => DEFAULT_MIN_WORK,
        n => n,
    }
}

/// Overrides [`min_work`] process-wide; `0` restores
/// [`DEFAULT_MIN_WORK`]. Tests lower this to `1` to exercise the parallel
/// code path on tiny inputs.
pub fn set_min_work(n: usize) {
    MIN_WORK_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Minimum rows per chunk for a row-parallel kernel whose per-row cost is
/// `work_per_row` (≈ flops); always ≥ 1.
pub fn min_rows_for(work_per_row: usize) -> usize {
    min_work().div_ceil(work_per_row.max(1)).max(1)
}

/// Runs the two closures, in parallel when the thread budget allows, and
/// returns `(a(), b())`. With [`threads`] `== 1` both run sequentially on
/// the calling thread, in order.
pub fn par_join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if threads() <= 1 {
        let ra = a();
        let rb = b();
        (ra, rb)
    } else {
        rayon::join(|| run_marked(a), || run_marked(b))
    }
}

/// Splits `len` items into at most `threads()` contiguous ranges of at
/// least `min_chunk` items each (a single range when `len` is too small),
/// balanced to within one item.
fn split_ranges(len: usize, min_chunk: usize) -> Vec<Range<usize>> {
    let max_chunks = (len / min_chunk.max(1)).max(1);
    let n_chunks = threads().min(max_chunks).max(1);
    let base = len / n_chunks;
    let extra = len % n_chunks;
    let mut ranges = Vec::with_capacity(n_chunks);
    let mut start = 0;
    for i in 0..n_chunks {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

fn run_ranges<T, F>(mut ranges: Vec<Range<usize>>, f: &F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    match ranges.len() {
        0 => Vec::new(),
        // Leaves run marked: sibling chunks already consume the budget, so
        // kernels nested inside a chunk callback must stay serial.
        1 => vec![run_marked(|| f(ranges.pop().expect("one range")))],
        n => {
            let right = ranges.split_off(n / 2);
            let (mut lo, hi) = rayon::join(|| run_ranges(ranges, f), || run_ranges(right, f));
            lo.extend(hi);
            lo
        }
    }
}

/// Evaluates `f` over contiguous sub-ranges of `0..len`, at most
/// [`threads`] of them and each at least `min_chunk` long, and returns the
/// per-chunk results **in index order**.
///
/// With a single chunk (serial fallback, small input, or `threads() == 1`)
/// this is exactly `vec![f(0..len)]` on the calling thread.
///
/// # Example
///
/// ```
/// use calloc_tensor::par;
///
/// let partial_sums = par::par_chunks(1000, 1, |r| r.sum::<usize>());
/// let total: usize = partial_sums.iter().sum();
/// assert_eq!(total, 499_500);
/// ```
pub fn par_chunks<T, F>(len: usize, min_chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = split_ranges(len, min_chunk);
    if ranges.len() <= 1 {
        return ranges.into_iter().map(&f).collect();
    }
    run_ranges(ranges, &f)
}

fn run_row_chunks<F>(mut chunks: Vec<(usize, &mut [f64])>, f: &F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    match chunks.len() {
        0 => {}
        // Leaves run marked, as in `run_ranges`.
        1 => {
            let (first_row, data) = chunks.pop().expect("one chunk");
            run_marked(|| f(first_row, data));
        }
        n => {
            let right = chunks.split_off(n / 2);
            rayon::join(|| run_row_chunks(chunks, f), || run_row_chunks(right, f));
        }
    }
}

/// Splits a row-major buffer of `row_len`-wide rows into at most
/// [`threads`] contiguous row chunks of at least `min_rows` rows each and
/// runs `f(first_row, chunk)` on every chunk, in parallel when the budget
/// allows.
///
/// The chunks are disjoint `&mut` slices of `data`, so each worker owns
/// its output rows exclusively; because chunk boundaries never change what
/// any individual row computes, the filled buffer is bit-identical for
/// every thread count.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `row_len` (for non-empty
/// `data`).
pub fn par_row_chunks_mut<F>(data: &mut [f64], row_len: usize, min_rows: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    if data.is_empty() || row_len == 0 {
        f(0, data);
        return;
    }
    assert_eq!(
        data.len() % row_len,
        0,
        "buffer length {} is not a multiple of row length {row_len}",
        data.len()
    );
    let rows = data.len() / row_len;
    let ranges = split_ranges(rows, min_rows);
    if ranges.len() <= 1 {
        f(0, data);
        return;
    }
    let mut chunks = Vec::with_capacity(ranges.len());
    let mut rest = data;
    let mut row = 0;
    for range in &ranges {
        let (head, tail) = rest.split_at_mut(range.len() * row_len);
        chunks.push((row, head));
        row += range.len();
        rest = tail;
    }
    run_row_chunks(chunks, &f);
}

/// A deferred computation tagged with its original index.
type IndexedJob<'a, R> = (usize, Box<dyn FnOnce() -> R + Send + 'a>);

fn run_jobs<R: Send>(mut jobs: Vec<IndexedJob<'_, R>>) -> Vec<(usize, R)> {
    match jobs.len() {
        0 => Vec::new(),
        1 => {
            let (i, job) = jobs.pop().expect("one job");
            vec![(i, job())]
        }
        n => {
            let right = jobs.split_off(n / 2);
            let (mut lo, hi) = rayon::join(|| run_jobs(jobs), || run_jobs(right));
            lo.extend(hi);
            lo
        }
    }
}

/// Runs a list of heterogeneous jobs, in parallel when the thread budget
/// allows, and returns their results **in job order**.
///
/// At most [`threads`] jobs run concurrently: jobs are dealt round-robin
/// onto that many workers (so expensive jobs listed first spread across
/// workers), each worker runs its share sequentially, and the results are
/// reassembled by original index. With `threads() == 1` the jobs simply
/// run front to back on the calling thread.
///
/// This is the primitive behind parallel suite training
/// (`calloc_eval::Suite::train`): each framework trains from its own
/// derived seed, so training jobs are independent and the member list
/// comes back in figure order regardless of the thread count.
pub fn par_run<R: Send>(jobs: Vec<Box<dyn FnOnce() -> R + Send + '_>>) -> Vec<R> {
    let workers = threads().min(jobs.len().max(1));
    if workers <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    let n_jobs = jobs.len();
    // Deal jobs round-robin into `workers` sequential groups.
    let mut groups: Vec<Vec<IndexedJob<'_, R>>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        groups[i % workers].push((i, job));
    }
    let group_jobs: Vec<IndexedJob<'_, Vec<(usize, R)>>> = groups
        .into_iter()
        .enumerate()
        .map(|(g, group)| {
            let job: Box<dyn FnOnce() -> Vec<(usize, R)> + Send + '_> = Box::new(move || {
                run_marked(|| {
                    group
                        .into_iter()
                        .map(|(i, job)| (i, job()))
                        .collect::<Vec<_>>()
                })
            });
            (g, job)
        })
        .collect();
    let mut indexed: Vec<(usize, R)> = run_jobs(group_jobs)
        .into_iter()
        .flat_map(|(_, results)| results)
        .collect();
    indexed.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(indexed.len(), n_jobs);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that mutate the process-global knobs: chunk
    /// *structure* (unlike kernel output) does depend on the thread count.
    static KNOB_LOCK: Mutex<()> = Mutex::new(());

    fn lock_knobs() -> std::sync::MutexGuard<'static, ()> {
        KNOB_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn split_ranges_covers_exactly_once() {
        for len in [0usize, 1, 7, 100, 1001] {
            for min_chunk in [1usize, 3, 64] {
                let ranges = split_ranges(len, min_chunk);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "ranges must be contiguous");
                    next = r.end;
                }
                assert_eq!(next, len, "ranges must cover 0..{len}");
            }
        }
    }

    #[test]
    fn par_chunks_results_are_in_index_order() {
        let _guard = lock_knobs();
        set_threads(4);
        set_min_work(1);
        let chunks = par_chunks(100, 1, |r| r.start);
        let mut sorted = chunks.clone();
        sorted.sort_unstable();
        assert_eq!(chunks, sorted);
        set_threads(0);
        set_min_work(0);
    }

    #[test]
    fn par_chunks_serial_is_single_chunk() {
        let _guard = lock_knobs();
        set_threads(1);
        let chunks = par_chunks(100, 1, |r| (r.start, r.end));
        assert_eq!(chunks, vec![(0, 100)]);
        set_threads(0);
    }

    #[test]
    fn par_row_chunks_mut_visits_every_row_once() {
        let _guard = lock_knobs();
        for n_threads in [1usize, 2, 5] {
            set_threads(n_threads);
            let rows = 17;
            let cols = 3;
            let mut data = vec![0.0; rows * cols];
            par_row_chunks_mut(&mut data, cols, 1, |first_row, chunk| {
                for (i, row) in chunk.chunks_exact_mut(cols).enumerate() {
                    for v in row.iter_mut() {
                        *v += (first_row + i) as f64;
                    }
                }
            });
            for r in 0..rows {
                for c in 0..cols {
                    assert_eq!(data[r * cols + c], r as f64, "threads={n_threads}");
                }
            }
        }
        set_threads(0);
    }

    #[test]
    fn par_row_chunks_mut_handles_empty() {
        let mut data: Vec<f64> = Vec::new();
        par_row_chunks_mut(&mut data, 4, 1, |_, chunk| assert!(chunk.is_empty()));
    }

    #[test]
    fn par_join_returns_in_operand_order() {
        let _guard = lock_knobs();
        for n_threads in [1usize, 3] {
            set_threads(n_threads);
            let (a, b) = par_join(|| 1, || 2);
            assert_eq!((a, b), (1, 2));
        }
        set_threads(0);
    }

    #[test]
    fn par_run_preserves_job_order() {
        let _guard = lock_knobs();
        for n_threads in [1usize, 2, 4, 9] {
            set_threads(n_threads);
            let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..9usize)
                .map(|i| Box::new(move || i * 10) as Box<dyn FnOnce() -> usize + Send>)
                .collect();
            let out = par_run(jobs);
            assert_eq!(out, (0..9usize).map(|i| i * 10).collect::<Vec<_>>());
        }
        set_threads(0);
    }

    #[test]
    fn par_run_actually_distributes_jobs_across_threads() {
        // Regression guard: a par_run nested under an already-marked
        // fan-out collapses to serial — the top-level call must not.
        let _guard = lock_knobs();
        set_threads(4);
        let jobs: Vec<Box<dyn FnOnce() -> std::thread::ThreadId + Send>> = (0..4)
            .map(|_| {
                Box::new(|| std::thread::current().id())
                    as Box<dyn FnOnce() -> std::thread::ThreadId + Send>
            })
            .collect();
        let ids = par_run(jobs);
        set_threads(0);
        let distinct: std::collections::HashSet<_> = ids.iter().collect();
        assert!(
            distinct.len() > 1,
            "4 jobs at 4 threads must span more than one worker thread"
        );
    }

    #[test]
    fn nested_kernels_inside_fan_out_workers_run_serial() {
        let _guard = lock_knobs();
        set_threads(4);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..4)
            .map(|_| Box::new(threads) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let budgets = par_run(jobs);
        assert!(
            budgets.iter().all(|&t| t == 1),
            "nested budget must collapse to 1 inside fan-out jobs, got {budgets:?}"
        );
        let (a, b) = par_join(threads, threads);
        assert_eq!((a, b), (1, 1), "par_join operands must see a serial budget");
        // The caller's own budget is restored once the fan-out returns.
        assert_eq!(threads(), 4);
        set_threads(0);
    }

    #[test]
    fn min_rows_for_is_positive_and_monotone() {
        assert!(min_rows_for(0) >= 1);
        assert!(min_rows_for(usize::MAX) >= 1);
        assert!(min_rows_for(1) >= min_rows_for(1 << 30));
    }
}
