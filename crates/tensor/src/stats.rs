//! Descriptive statistics used by the evaluation harness.

/// Summary statistics of a sample of localization errors (or any sample).
///
/// # Example
///
/// ```
/// use calloc_tensor::stats::Summary;
///
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// Population standard deviation (0.0 when empty).
    pub std_dev: f64,
    /// Minimum (0.0 when empty).
    pub min: f64,
    /// Maximum — the paper's "worst-case error" (0.0 when empty).
    pub max: f64,
    /// Median (0.0 when empty).
    pub median: f64,
    /// 95th percentile (0.0 when empty).
    pub p95: f64,
}

impl Summary {
    /// Computes all summary statistics of `samples`.
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
                p95: 0.0,
            };
        }
        let mean = mean(samples);
        Summary {
            count: samples.len(),
            mean,
            std_dev: std_dev(samples),
            min: samples.iter().cloned().fold(f64::INFINITY, f64::min),
            max: samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            median: percentile(samples, 50.0),
            p95: percentile(samples, 95.0),
        }
    }
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    }
}

/// Population standard deviation; 0.0 for fewer than two samples.
pub fn std_dev(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let m = mean(samples);
    (samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / samples.len() as f64).sqrt()
}

/// Linear-interpolated percentile `p` in `[0, 100]`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN samples"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Pearson correlation of two equal-length samples; 0.0 when degenerate.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson requires equal lengths");
    if a.len() < 2 {
        return 0.0;
    }
    let ma = mean(a);
    let mb = mean(b);
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        num += (x - ma) * (y - mb);
        da += (x - ma).powi(2);
        db += (y - mb).powi(2);
    }
    let den = (da * db).sqrt();
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_known_sample() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn std_dev_of_constant_is_zero() {
        assert_eq!(std_dev(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn std_dev_known_value() {
        // population std of [2,4,4,4,5,5,7,9] is 2
        let s = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_endpoints() {
        let v = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 3.0);
        assert_eq!(percentile(&v, 50.0), 2.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert!((percentile(&v, 25.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_rejects_out_of_range() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn summary_consistency() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 100.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert!(s.mean > s.median); // skewed by the outlier
    }

    #[test]
    fn pearson_perfect_correlation() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [-1.0, -2.0, -3.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }
}
