//! Deterministic random number generation.
//!
//! Every stochastic component of the reproduction (shadowing, fading, weight
//! initialization, dropout masks, attack target selection, ...) draws from
//! [`Rng`], a xoshiro256++ generator seeded through SplitMix64. Identical
//! seeds produce identical experiment outputs on every platform.

/// Seeded xoshiro256++ pseudo-random generator.
///
/// # Example
///
/// ```
/// use calloc_tensor::Rng;
///
/// let mut a = Rng::new(7);
/// let mut b = Rng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let u = a.uniform(0.0, 1.0);
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f64>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The four words of xoshiro state are expanded from the seed with
    /// SplitMix64, as recommended by the xoshiro authors.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng {
            state: [next_sm(), next_sm(), next_sm(), next_sm()],
            spare_normal: None,
        }
    }

    /// Derives an independent child generator; useful for giving each
    /// building/device/lesson its own stream while staying reproducible.
    pub fn fork(&mut self, stream: u64) -> Rng {
        let base = self.next_u64();
        Rng::new(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform bounds inverted: [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot draw an index from an empty range");
        // Rejection-free multiply-shift; bias is negligible for n << 2^64.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Standard normal draw via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal draw with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "negative standard deviation {std_dev}");
        mean + std_dev * self.standard_normal()
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0,1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Returns a random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).collect();
        self.shuffle(&mut v);
        v
    }

    /// Samples `k` distinct indices from `0..n` (order randomized).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct indices from {n}");
        let mut perm = self.permutation(n);
        perm.truncate(k);
        perm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(123);
        let mut b = Rng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_within_bounds() {
        let mut rng = Rng::new(9);
        for _ in 0..1000 {
            let x = rng.uniform(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = Rng::new(42);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn index_covers_range() {
        let mut rng = Rng::new(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.index(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = Rng::new(11);
        let mut p = rng.permutation(50);
        p.sort_unstable();
        assert_eq!(p, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Rng::new(13);
        let s = rng.sample_indices(100, 30);
        let mut t = s.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), 30);
        assert!(t.iter().all(|&i| i < 100));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_indices_too_many_panics() {
        Rng::new(0).sample_indices(3, 4);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = Rng::new(77);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Rng::new(3);
        assert!(!(0..100).any(|_| rng.bernoulli(0.0)));
        assert!((0..100).all(|_| rng.bernoulli(1.0)));
    }
}
