//! Dense row-major `f64` matrix.

use serde::{Deserialize, Serialize};

use crate::TensorError;

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is the workhorse of the whole reproduction: RSS fingerprint
/// batches, network activations, weight tensors and kernel matrices are all
/// `Matrix` values. Shapes are validated eagerly; shape errors panic with a
/// descriptive message because they are always programming bugs, never data
/// conditions (the fallible [`Matrix::checked_matmul`] variant is available
/// for callers that prefer a `Result`).
///
/// # Example
///
/// ```
/// use calloc_tensor::Matrix;
///
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// assert_eq!(a.get(1, 0), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix by calling `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                cols,
                "row {i} has length {} but row 0 has length {cols}",
                row.len()
            );
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "flat data length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Builds a 1-by-`n` row matrix from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c]
    }

    /// Writes element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies row `r` into a new 1-row matrix.
    pub fn row_matrix(&self, r: usize) -> Matrix {
        Matrix::row_vector(self.row(r))
    }

    /// Copies column `c` into a `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(
            c < self.cols,
            "col {c} out of bounds for {} cols",
            self.cols
        );
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Overwrites row `r` with `values`.
    ///
    /// # Panics
    ///
    /// Panics on index or length mismatch.
    pub fn set_row(&mut self, r: usize, values: &[f64]) {
        assert_eq!(values.len(), self.cols, "row length mismatch");
        self.row_mut(r).copy_from_slice(values);
    }

    /// Borrows the flat row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the flat row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns a new matrix whose elements are `f(x)` of this one's.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise combination of two equally-shaped matrices.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        self.assert_same_shape(other, "zip_map");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise difference (`self - other`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Adds `other` scaled by `alpha` in place (`self += alpha * other`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        self.assert_same_shape(other, "axpy");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Broadcast-adds a 1-by-`cols` row vector to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not 1-by-`cols`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows, 1, "bias must have exactly one row");
        assert_eq!(
            bias.cols, self.cols,
            "bias has {} cols but matrix has {}",
            bias.cols, self.cols
        );
        let mut out = self.clone();
        for r in 0..out.rows {
            for c in 0..out.cols {
                out.data[r * out.cols + c] += bias.data[c];
            }
        }
        out
    }

    /// Sums over rows, producing a 1-by-`cols` row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.get(r, c);
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements; 0.0 for an empty matrix.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Maximum element; `f64::NEG_INFINITY` for an empty matrix.
    pub fn max(&self) -> f64 {
        self.data.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum element; `f64::INFINITY` for an empty matrix.
    pub fn min(&self) -> f64 {
        self.data.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f64, hi: f64) -> Matrix {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        self.checked_matmul(other).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Matrix product returning an error instead of panicking on a shape
    /// mismatch.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the inner dimensions differ.
    pub fn checked_matmul(&self, other: &Matrix) -> Result<Matrix, TensorError> {
        if self.cols != other.rows {
            return Err(TensorError::ShapeMismatch(format!(
                "cannot multiply {}x{} by {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order: streams through `other` rows for cache locality.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let crow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (cv, &ov) in crow.iter_mut().zip(orow) {
                    *cv += a * ov;
                }
            }
        }
        Ok(out)
    }

    /// Row-wise softmax: each row is exponentiated (with max subtraction for
    /// stability) and normalized to sum to one.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = &mut out.data[r * out.cols..(r + 1) * out.cols];
            let m = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - m).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        out
    }

    /// Row-wise log-softmax (numerically stable).
    pub fn log_softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = &mut out.data[r * out.cols..(r + 1) * out.cols];
            let m = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let lse = m + row.iter().map(|&v| (v - m).exp()).sum::<f64>().ln();
            for v in row.iter_mut() {
                *v -= lse;
            }
        }
        out
    }

    /// Index of the maximum element in each row.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Stacks two matrices vertically (`self` on top).
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "vstack requires equal column counts ({} vs {})",
            self.cols, other.cols
        );
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Concatenates two matrices horizontally (`self` on the left).
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "hstack requires equal row counts ({} vs {})",
            self.rows, other.rows
        );
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.data[r * out.cols..r * out.cols + self.cols].copy_from_slice(self.row(r));
            out.data[r * out.cols + self.cols..(r + 1) * out.cols].copy_from_slice(other.row(r));
        }
        out
    }

    /// Extracts the rows with the given indices, in order, into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            out.set_row(i, self.row(idx));
        }
        out
    }

    /// Extracts the columns with the given indices, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_cols(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, indices.len());
        for r in 0..self.rows {
            for (j, &c) in indices.iter().enumerate() {
                out.set(r, j, self.get(r, c));
            }
        }
        out
    }

    /// `true` when every corresponding element differs by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    fn assert_same_shape(&self, other: &Matrix, op: &str) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op}: shape {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(10) {
                write!(f, "{:>10.4}", self.get(r, c))?;
            }
            if self.cols > 10 {
                write!(f, "  ...")?;
            }
            writeln!(f)?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn checked_matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.checked_matmul(&b),
            Err(TensorError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_swaps_indices() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), a.get(1, 2));
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-5.0, 0.0, 5.0]]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f64 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        let b = a.map(|x| x + 100.0);
        assert!(a.softmax_rows().approx_eq(&b.softmax_rows(), 1e-12));
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let a = Matrix::row_vector(&[0.5, -1.0, 2.0, 0.0]);
        let ls = a.log_softmax_rows();
        let s = a.softmax_rows().map(f64::ln);
        assert!(ls.approx_eq(&s, 1e-10));
    }

    #[test]
    fn argmax_rows_picks_maximum() {
        let a = Matrix::from_rows(&[vec![0.1, 0.9, 0.0], vec![3.0, 1.0, 2.0]]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn add_row_broadcast_adds_bias_to_each_row() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let bias = Matrix::row_vector(&[10.0, 20.0]);
        let out = a.add_row_broadcast(&bias);
        assert_eq!(
            out,
            Matrix::from_rows(&[vec![11.0, 22.0], vec![13.0, 24.0]])
        );
    }

    #[test]
    fn sum_rows_collapses_to_row_vector() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.sum_rows(), Matrix::row_vector(&[4.0, 6.0]));
    }

    #[test]
    fn hstack_and_vstack_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        assert_eq!(a.hstack(&b).shape(), (2, 5));
        let c = Matrix::zeros(4, 3);
        assert_eq!(a.vstack(&c).shape(), (6, 3));
    }

    #[test]
    fn hstack_preserves_values() {
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let b = Matrix::from_rows(&[vec![3.0], vec![4.0]]);
        let h = a.hstack(&b);
        assert_eq!(h.row(0), &[1.0, 3.0]);
        assert_eq!(h.row(1), &[2.0, 4.0]);
    }

    #[test]
    fn select_rows_and_cols() {
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ]);
        let r = a.select_rows(&[2, 0]);
        assert_eq!(
            r,
            Matrix::from_rows(&[vec![7.0, 8.0, 9.0], vec![1.0, 2.0, 3.0]])
        );
        let c = a.select_cols(&[1]);
        assert_eq!(c, Matrix::from_rows(&[vec![2.0], vec![5.0], vec![8.0]]));
    }

    #[test]
    fn clamp_bounds_elements() {
        let a = Matrix::row_vector(&[-2.0, 0.5, 3.0]);
        assert_eq!(a.clamp(0.0, 1.0), Matrix::row_vector(&[0.0, 0.5, 1.0]));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::row_vector(&[1.0, 1.0]);
        let b = Matrix::row_vector(&[2.0, 3.0]);
        a.axpy(0.5, &b);
        assert_eq!(a, Matrix::row_vector(&[2.0, 2.5]));
    }

    #[test]
    fn frobenius_norm_of_unit_vectors() {
        let a = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn add_shape_mismatch_panics() {
        let _ = Matrix::zeros(2, 2).add(&Matrix::zeros(2, 3));
    }

    #[test]
    fn serde_round_trip() {
        let a = Matrix::from_rows(&[vec![1.5, -2.5], vec![0.0, 9.0]]);
        let json = serde_json_like(&a);
        assert!(json.contains("1.5"));
    }

    // serde_json is not a dependency; just check Serialize is wired by using
    // the Debug representation as a stand-in round trip driver.
    fn serde_json_like(m: &Matrix) -> String {
        format!("{m:?}")
    }
}
