//! Dense row-major `f64` matrix.
//!
//! The compute-heavy kernels (`matmul`, `matmul_transposed`,
//! `transposed_matmul`, `transpose`, `softmax_rows`) are cache-blocked and
//! row-chunk-parallel on top of [`crate::par`]. Every kernel accumulates
//! each output element in a fixed ascending order that does not depend on
//! chunk boundaries, so results are bit-identical for every
//! `CALLOC_THREADS` value (including the serial fallback).

use serde::{Deserialize, Serialize};

use crate::par;
use crate::TensorError;

/// Number of inner-dimension (`k`) entries processed per cache block of the
/// matmul kernel: the block of `other` rows it keeps hot is
/// `MATMUL_K_BLOCK × other.cols()` doubles (32 KiB at 64 columns).
const MATMUL_K_BLOCK: usize = 64;

/// Output-column tile width of the packed `A · Bᵀ` kernel; together with
/// [`MATMUL_K_BLOCK`] it bounds the pack scratch at 32 KiB (L1-sized).
const MATMUL_J_BLOCK: usize = 64;

/// Square tile edge of the blocked transpose.
const TRANSPOSE_BLOCK: usize = 32;

/// Microkernel shared by the matmul-family kernels:
/// `crow[j] (+)= Σ_t asub[t] * b_block[t * ldb + j]`, with `t` strictly
/// ascending and every addition left-associated onto the existing value.
///
/// The `t` loop is unrolled eight wide purely to cut `crow` load/store
/// traffic; the per-element chain `c + p0 + p1 + …` associates left, so the
/// result bits are identical to adding one product at a time.
fn accumulate_block(asub: &[f64], b_block: &[f64], ldb: usize, crow: &mut [f64]) {
    let kw = asub.len();
    let jw = crow.len();
    let mut t = 0;
    while t + 8 <= kw {
        let (a0, a1, a2, a3) = (asub[t], asub[t + 1], asub[t + 2], asub[t + 3]);
        let (a4, a5, a6, a7) = (asub[t + 4], asub[t + 5], asub[t + 6], asub[t + 7]);
        let b0 = &b_block[t * ldb..t * ldb + jw];
        let b1 = &b_block[(t + 1) * ldb..(t + 1) * ldb + jw];
        let b2 = &b_block[(t + 2) * ldb..(t + 2) * ldb + jw];
        let b3 = &b_block[(t + 3) * ldb..(t + 3) * ldb + jw];
        let b4 = &b_block[(t + 4) * ldb..(t + 4) * ldb + jw];
        let b5 = &b_block[(t + 5) * ldb..(t + 5) * ldb + jw];
        let b6 = &b_block[(t + 6) * ldb..(t + 6) * ldb + jw];
        let b7 = &b_block[(t + 7) * ldb..(t + 7) * ldb + jw];
        for j in 0..jw {
            // Not `+=`: the explicit left-associated chain keeps the
            // additions in exact ascending-t order; `c += p0+p1+…` would
            // round differently.
            #[allow(clippy::assign_op_pattern)]
            {
                crow[j] = crow[j]
                    + a0 * b0[j]
                    + a1 * b1[j]
                    + a2 * b2[j]
                    + a3 * b3[j]
                    + a4 * b4[j]
                    + a5 * b5[j]
                    + a6 * b6[j]
                    + a7 * b7[j];
            }
        }
        t += 8;
    }
    while t < kw {
        let av = asub[t];
        let brow = &b_block[t * ldb..t * ldb + jw];
        for (c, &bv) in crow.iter_mut().zip(brow) {
            *c += av * bv;
        }
        t += 1;
    }
}

/// One row chunk of the dense product `out += A · B`.
///
/// `out_chunk` holds rows `first_row ..` of the product; `a` and `b` are
/// the full operand buffers with inner dimension `k` and output width `n`.
/// The `k` loop is blocked ([`MATMUL_K_BLOCK`]) and delegated to
/// [`accumulate_block`], but every output element is accumulated by a
/// chain of left-associated `+` in ascending `k` — the same order as the
/// naive triple loop — so the blocking, the unroll, and the row chunking
/// are all invisible in the result bits.
fn matmul_chunk(a: &[f64], k: usize, b: &[f64], n: usize, first_row: usize, out_chunk: &mut [f64]) {
    if n == 0 || k == 0 {
        return;
    }
    let chunk_rows = out_chunk.len() / n;
    for kb in (0..k).step_by(MATMUL_K_BLOCK) {
        let kend = (kb + MATMUL_K_BLOCK).min(k);
        for i in 0..chunk_rows {
            let arow = &a[(first_row + i) * k..(first_row + i + 1) * k];
            let crow = &mut out_chunk[i * n..(i + 1) * n];
            accumulate_block(&arow[kb..kend], &b[kb * n..kend * n], n, crow);
        }
    }
}

/// One row chunk of `out = A · Bᵀ`, without materializing `Bᵀ` globally:
/// an L1-sized tile of `B` (at most [`MATMUL_K_BLOCK`] ×
/// [`MATMUL_J_BLOCK`]) is transposed into a pack scratch per `(j, k)`
/// block, then fed through the same [`accumulate_block`] microkernel as
/// the dense product.
///
/// For every output element the `k` blocks are visited in ascending order
/// and the microkernel accumulates ascending within the block, so
/// `a.matmul_transposed(&b) == a.matmul(&b.transpose())` holds bitwise.
fn matmul_t_chunk(
    a: &[f64],
    k: usize,
    b: &[f64],
    n: usize,
    first_row: usize,
    out_chunk: &mut [f64],
) {
    if n == 0 || k == 0 {
        return;
    }
    let chunk_rows = out_chunk.len() / n;
    let mut pack = [0.0f64; MATMUL_K_BLOCK * MATMUL_J_BLOCK];
    for jb in (0..n).step_by(MATMUL_J_BLOCK) {
        let jw = MATMUL_J_BLOCK.min(n - jb);
        for kb in (0..k).step_by(MATMUL_K_BLOCK) {
            let kw = MATMUL_K_BLOCK.min(k - kb);
            // Pack the transpose of B[jb..jb+jw][kb..kb+kw] row-major.
            for (jj, dst_col) in (jb..jb + jw).enumerate() {
                let brow = &b[dst_col * k + kb..dst_col * k + kb + kw];
                for (t, &bv) in brow.iter().enumerate() {
                    pack[t * jw + jj] = bv;
                }
            }
            for i in 0..chunk_rows {
                let arow = &a[(first_row + i) * k..(first_row + i + 1) * k];
                let crow = &mut out_chunk[i * n + jb..i * n + jb + jw];
                accumulate_block(&arow[kb..kb + kw], &pack[..kw * jw], jw, crow);
            }
        }
    }
}

/// One row chunk of `out = Aᵀ · B`: rows `first_row ..` of the output are
/// columns `first_row ..` of `a`.
///
/// Blocks of [`MATMUL_K_BLOCK`] `a` rows are processed at a time: the
/// column strip of `a` belonging to each output row is gathered into a
/// small buffer and fed through [`accumulate_block`] against the matching
/// block of `b` rows. Each output element accumulates over ascending `a`
/// rows, matching `a.transpose().matmul(&b)` bit for bit.
fn t_matmul_chunk(
    a: &[f64],
    a_rows: usize,
    a_cols: usize,
    b: &[f64],
    n: usize,
    first_row: usize,
    out_chunk: &mut [f64],
) {
    if n == 0 || a_rows == 0 {
        return;
    }
    let chunk_rows = out_chunk.len() / n;
    for ib in (0..a_rows).step_by(MATMUL_K_BLOCK) {
        let iw = MATMUL_K_BLOCK.min(a_rows - ib);
        let b_block = &b[ib * n..(ib + iw) * n];
        for jj in 0..chunk_rows {
            let col = first_row + jj;
            let mut asub = [0.0f64; MATMUL_K_BLOCK];
            for (t, dst) in asub[..iw].iter_mut().enumerate() {
                *dst = a[(ib + t) * a_cols + col];
            }
            let crow = &mut out_chunk[jj * n..(jj + 1) * n];
            accumulate_block(&asub[..iw], b_block, n, crow);
        }
    }
}

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is the workhorse of the whole reproduction: RSS fingerprint
/// batches, network activations, weight tensors and kernel matrices are all
/// `Matrix` values. Shapes are validated eagerly; shape errors panic with a
/// descriptive message because they are always programming bugs, never data
/// conditions (the fallible [`Matrix::checked_matmul`] variant is available
/// for callers that prefer a `Result`).
///
/// # Example
///
/// ```
/// use calloc_tensor::Matrix;
///
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// assert_eq!(a.get(1, 0), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix by calling `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                cols,
                "row {i} has length {} but row 0 has length {cols}",
                row.len()
            );
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "flat data length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Builds a 1-by-`n` row matrix from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c]
    }

    /// Writes element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies row `r` into a new 1-row matrix.
    pub fn row_matrix(&self, r: usize) -> Matrix {
        Matrix::row_vector(self.row(r))
    }

    /// Copies column `c` into a `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(
            c < self.cols,
            "col {c} out of bounds for {} cols",
            self.cols
        );
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Overwrites row `r` with `values`.
    ///
    /// # Panics
    ///
    /// Panics on index or length mismatch.
    pub fn set_row(&mut self, r: usize, values: &[f64]) {
        assert_eq!(values.len(), self.cols, "row length mismatch");
        self.row_mut(r).copy_from_slice(values);
    }

    /// Borrows the flat row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the flat row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns a new matrix whose elements are `f(x)` of this one's.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise combination of two equally-shaped matrices.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        self.assert_same_shape(other, "zip_map");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise difference (`self - other`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Adds `other` scaled by `alpha` in place (`self += alpha * other`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        self.assert_same_shape(other, "axpy");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Broadcast-adds a 1-by-`cols` row vector to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not 1-by-`cols`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows, 1, "bias must have exactly one row");
        assert_eq!(
            bias.cols, self.cols,
            "bias has {} cols but matrix has {}",
            bias.cols, self.cols
        );
        let mut out = self.clone();
        if self.cols == 0 {
            return out;
        }
        for row in out.data.chunks_exact_mut(self.cols) {
            for (v, &bv) in row.iter_mut().zip(&bias.data) {
                *v += bv;
            }
        }
        out
    }

    /// Sums over rows, producing a 1-by-`cols` row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        if self.cols == 0 {
            return out;
        }
        for row in self.data.chunks_exact(self.cols) {
            for (acc, &v) in out.data.iter_mut().zip(row) {
                *acc += v;
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements; 0.0 for an empty matrix.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Maximum element; `f64::NEG_INFINITY` for an empty matrix.
    ///
    /// NaN-robust: the fold uses [`f64::max`], which implements IEEE-754
    /// `maximumNumber` semantics — NaN elements are *ignored*, never
    /// propagated, so an otherwise-finite matrix with a stray NaN still
    /// reports its largest real element (and an all-NaN matrix reports
    /// `NEG_INFINITY`, as if empty). Callers that must detect NaNs should
    /// check [`Matrix::has_non_finite`] explicitly.
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum element; `f64::INFINITY` for an empty matrix.
    ///
    /// NaN-robust like [`Matrix::max`]: NaN elements are ignored, and an
    /// all-NaN matrix reports `INFINITY`. Check
    /// [`Matrix::has_non_finite`] to detect NaNs.
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f64, hi: f64) -> Matrix {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Matrix transpose (cache-blocked, row-chunk-parallel).
    ///
    /// Pure data movement, so it is trivially bit-identical for every
    /// thread count.
    pub fn transpose(&self) -> Matrix {
        let (in_rows, in_cols) = (self.rows, self.cols);
        let mut out = Matrix::zeros(in_cols, in_rows);
        if in_rows == 0 || in_cols == 0 {
            return out;
        }
        let src = &self.data;
        // Memory-bound: weight a moved element as ~4 work units.
        let min_rows = par::min_rows_for(in_rows.saturating_mul(4));
        par::par_row_chunks_mut(&mut out.data, in_rows, min_rows, |first_row, chunk| {
            let chunk_rows = chunk.len() / in_rows;
            for ob in (0..chunk_rows).step_by(TRANSPOSE_BLOCK) {
                let oend = (ob + TRANSPOSE_BLOCK).min(chunk_rows);
                for ib in (0..in_rows).step_by(TRANSPOSE_BLOCK) {
                    let iend = (ib + TRANSPOSE_BLOCK).min(in_rows);
                    for o in ob..oend {
                        let col = first_row + o;
                        for i in ib..iend {
                            chunk[o * in_rows + i] = src[i * in_cols + col];
                        }
                    }
                }
            }
        });
        out
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        self.checked_matmul(other).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Matrix product returning an error instead of panicking on a shape
    /// mismatch.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the inner dimensions differ.
    pub fn checked_matmul(&self, other: &Matrix) -> Result<Matrix, TensorError> {
        if self.cols != other.rows {
            return Err(TensorError::ShapeMismatch(format!(
                "cannot multiply {}x{} by {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let (k, n) = (self.cols, other.cols);
        let mut out = Matrix::zeros(self.rows, n);
        if self.rows == 0 || n == 0 || k == 0 {
            return Ok(out);
        }
        let (a, b) = (&self.data, &other.data);
        let min_rows = par::min_rows_for(k.saturating_mul(n));
        par::par_row_chunks_mut(&mut out.data, n, min_rows, |first_row, chunk| {
            matmul_chunk(a, k, b, n, first_row, chunk);
        });
        Ok(out)
    }

    /// Matrix product with the transpose of `other`: `self · otherᵀ`,
    /// computed without materializing the transpose (both operands stream
    /// along contiguous rows).
    ///
    /// Bit-identical to `self.matmul(&other.transpose())`: every output
    /// element is a dot product accumulated in the same ascending order the
    /// dense kernel uses.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    ///
    /// # Example
    ///
    /// ```
    /// use calloc_tensor::Matrix;
    ///
    /// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
    /// let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
    /// assert_eq!(a.matmul_transposed(&b), a.matmul(&b.transpose()));
    /// ```
    pub fn matmul_transposed(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transposed: width {} must equal width {}",
            self.cols, other.cols
        );
        let (k, n) = (self.cols, other.rows);
        let mut out = Matrix::zeros(self.rows, n);
        if self.rows == 0 || n == 0 {
            return out;
        }
        let (a, b) = (&self.data, &other.data);
        let min_rows = par::min_rows_for(k.saturating_mul(n));
        par::par_row_chunks_mut(&mut out.data, n, min_rows, |first_row, chunk| {
            matmul_t_chunk(a, k, b, n, first_row, chunk);
        });
        out
    }

    /// Matrix product of the transpose of `self` with `other`:
    /// `selfᵀ · other`, computed without materializing the transpose.
    ///
    /// Bit-identical to `self.transpose().matmul(other)`: each output
    /// element accumulates over the rows of `self` in ascending order, the
    /// same order the dense kernel uses on the materialized transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    ///
    /// # Example
    ///
    /// ```
    /// use calloc_tensor::Matrix;
    ///
    /// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
    /// let b = Matrix::from_rows(&[vec![5.0], vec![6.0]]);
    /// assert_eq!(a.transposed_matmul(&b), a.transpose().matmul(&b));
    /// ```
    pub fn transposed_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "transposed_matmul: height {} must equal height {}",
            self.rows, other.rows
        );
        let n = other.cols;
        let mut out = Matrix::zeros(self.cols, n);
        if self.cols == 0 || n == 0 {
            return out;
        }
        let (a, b) = (&self.data, &other.data);
        let (a_rows, a_cols) = (self.rows, self.cols);
        let min_rows = par::min_rows_for(a_rows.saturating_mul(n));
        par::par_row_chunks_mut(&mut out.data, n, min_rows, |first_row, chunk| {
            t_matmul_chunk(a, a_rows, a_cols, b, n, first_row, chunk);
        });
        out
    }

    /// Row-wise softmax: each row is exponentiated (with max subtraction for
    /// stability) and normalized to sum to one.
    ///
    /// Rows are independent, so the kernel is row-chunk-parallel and
    /// bit-identical for every thread count.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        let cols = self.cols;
        if cols == 0 || self.rows == 0 {
            return out;
        }
        // exp dominates; weight an element as ~16 work units.
        let min_rows = par::min_rows_for(cols.saturating_mul(16));
        par::par_row_chunks_mut(&mut out.data, cols, min_rows, |_, chunk| {
            for row in chunk.chunks_exact_mut(cols) {
                let m = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let mut sum = 0.0;
                for v in row.iter_mut() {
                    *v = (*v - m).exp();
                    sum += *v;
                }
                if sum > 0.0 {
                    for v in row.iter_mut() {
                        *v /= sum;
                    }
                }
            }
        });
        out
    }

    /// Row-wise log-softmax (numerically stable).
    ///
    /// Rows are independent, so the kernel is row-chunk-parallel like
    /// [`Matrix::softmax_rows`]; the per-row arithmetic order is unchanged
    /// from the serial loop, so results are bit-identical for every thread
    /// count.
    pub fn log_softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        let cols = self.cols;
        if cols == 0 || self.rows == 0 {
            return out;
        }
        // exp dominates; weight an element as ~16 work units.
        let min_rows = par::min_rows_for(cols.saturating_mul(16));
        par::par_row_chunks_mut(&mut out.data, cols, min_rows, |_, chunk| {
            for row in chunk.chunks_exact_mut(cols) {
                let m = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let lse = m + row.iter().map(|&v| (v - m).exp()).sum::<f64>().ln();
                for v in row.iter_mut() {
                    *v -= lse;
                }
            }
        });
        out
    }

    /// Index of the maximum element in each row.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Stacks two matrices vertically (`self` on top).
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "vstack requires equal column counts ({} vs {})",
            self.cols, other.cols
        );
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Concatenates two matrices horizontally (`self` on the left).
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "hstack requires equal row counts ({} vs {})",
            self.rows, other.rows
        );
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.data[r * out.cols..r * out.cols + self.cols].copy_from_slice(self.row(r));
            out.data[r * out.cols + self.cols..(r + 1) * out.cols].copy_from_slice(other.row(r));
        }
        out
    }

    /// Extracts the rows with the given indices, in order, into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            out.set_row(i, self.row(idx));
        }
        out
    }

    /// Extracts the columns with the given indices, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_cols(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, indices.len());
        for r in 0..self.rows {
            for (j, &c) in indices.iter().enumerate() {
                out.set(r, j, self.get(r, c));
            }
        }
        out
    }

    /// `true` when every corresponding element differs by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    fn assert_same_shape(&self, other: &Matrix, op: &str) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op}: shape {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(10) {
                write!(f, "{:>10.4}", self.get(r, c))?;
            }
            if self.cols > 10 {
                write!(f, "  ...")?;
            }
            writeln!(f)?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn checked_matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.checked_matmul(&b),
            Err(TensorError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_swaps_indices() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), a.get(1, 2));
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-5.0, 0.0, 5.0]]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f64 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        let b = a.map(|x| x + 100.0);
        assert!(a.softmax_rows().approx_eq(&b.softmax_rows(), 1e-12));
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let a = Matrix::row_vector(&[0.5, -1.0, 2.0, 0.0]);
        let ls = a.log_softmax_rows();
        let s = a.softmax_rows().map(f64::ln);
        assert!(ls.approx_eq(&s, 1e-10));
    }

    #[test]
    fn argmax_rows_picks_maximum() {
        let a = Matrix::from_rows(&[vec![0.1, 0.9, 0.0], vec![3.0, 1.0, 2.0]]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn add_row_broadcast_adds_bias_to_each_row() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let bias = Matrix::row_vector(&[10.0, 20.0]);
        let out = a.add_row_broadcast(&bias);
        assert_eq!(
            out,
            Matrix::from_rows(&[vec![11.0, 22.0], vec![13.0, 24.0]])
        );
    }

    #[test]
    fn sum_rows_collapses_to_row_vector() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.sum_rows(), Matrix::row_vector(&[4.0, 6.0]));
    }

    #[test]
    fn hstack_and_vstack_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        assert_eq!(a.hstack(&b).shape(), (2, 5));
        let c = Matrix::zeros(4, 3);
        assert_eq!(a.vstack(&c).shape(), (6, 3));
    }

    #[test]
    fn hstack_preserves_values() {
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let b = Matrix::from_rows(&[vec![3.0], vec![4.0]]);
        let h = a.hstack(&b);
        assert_eq!(h.row(0), &[1.0, 3.0]);
        assert_eq!(h.row(1), &[2.0, 4.0]);
    }

    #[test]
    fn select_rows_and_cols() {
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ]);
        let r = a.select_rows(&[2, 0]);
        assert_eq!(
            r,
            Matrix::from_rows(&[vec![7.0, 8.0, 9.0], vec![1.0, 2.0, 3.0]])
        );
        let c = a.select_cols(&[1]);
        assert_eq!(c, Matrix::from_rows(&[vec![2.0], vec![5.0], vec![8.0]]));
    }

    #[test]
    fn clamp_bounds_elements() {
        let a = Matrix::row_vector(&[-2.0, 0.5, 3.0]);
        assert_eq!(a.clamp(0.0, 1.0), Matrix::row_vector(&[0.0, 0.5, 1.0]));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::row_vector(&[1.0, 1.0]);
        let b = Matrix::row_vector(&[2.0, 3.0]);
        a.axpy(0.5, &b);
        assert_eq!(a, Matrix::row_vector(&[2.0, 2.5]));
    }

    #[test]
    fn frobenius_norm_of_unit_vectors() {
        let a = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    /// Reference triple loop (the seed kernel, minus its `a == 0.0` skip):
    /// the blocked/unrolled kernel must match it bit for bit.
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for k in 0..a.cols() {
                let av = a.get(i, k);
                for j in 0..b.cols() {
                    let v = out.get(i, j) + av * b.get(k, j);
                    out.set(i, j, v);
                }
            }
        }
        out
    }

    fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = crate::Rng::new(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.normal(0.0, 1.0))
    }

    /// Raw-bit equality (distinguishes `0.0` from `-0.0`, unlike
    /// `PartialEq` on `f64`): the kernel contract is bit-identity.
    fn assert_bits_eq(a: &Matrix, b: &Matrix, context: &str) {
        assert_eq!(a.shape(), b.shape(), "{context}");
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{context}: element {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn blocked_matmul_matches_naive_bitwise_across_block_boundaries() {
        // Shapes straddling the k-block (64) and unroll (4) boundaries.
        for &(m, k, n) in &[(3, 1, 5), (7, 63, 9), (5, 64, 4), (9, 65, 7), (4, 130, 3)] {
            let a = rand_matrix(m, k, 1000 + k as u64);
            let b = rand_matrix(k, n, 2000 + k as u64);
            assert_bits_eq(
                &a.matmul(&b),
                &naive_matmul(&a, &b),
                &format!("shape {m}x{k}x{n}"),
            );
        }
    }

    #[test]
    fn matmul_transposed_matches_explicit_transpose_bitwise() {
        for &(m, k, n) in &[(1, 1, 1), (4, 7, 5), (9, 65, 6), (3, 128, 11)] {
            let a = rand_matrix(m, k, 31 + n as u64);
            let b = rand_matrix(n, k, 77 + m as u64);
            assert_bits_eq(
                &a.matmul_transposed(&b),
                &a.matmul(&b.transpose()),
                &format!("shape {m}x{k} · ({n}x{k})ᵀ"),
            );
        }
    }

    #[test]
    fn transposed_matmul_matches_explicit_transpose_bitwise() {
        for &(m, k, n) in &[(1, 1, 1), (6, 4, 5), (65, 9, 6), (128, 3, 11)] {
            let a = rand_matrix(m, k, 13 + n as u64);
            let b = rand_matrix(m, n, 57 + k as u64);
            assert_bits_eq(
                &a.transposed_matmul(&b),
                &a.transpose().matmul(&b),
                &format!("shape ({m}x{k})ᵀ · {m}x{n}"),
            );
        }
    }

    #[test]
    #[should_panic(expected = "matmul_transposed")]
    fn matmul_transposed_rejects_mismatched_widths() {
        let _ = Matrix::zeros(2, 3).matmul_transposed(&Matrix::zeros(2, 4));
    }

    #[test]
    #[should_panic(expected = "transposed_matmul")]
    fn transposed_matmul_rejects_mismatched_heights() {
        let _ = Matrix::zeros(3, 2).transposed_matmul(&Matrix::zeros(4, 2));
    }

    #[test]
    fn blocked_transpose_handles_non_tile_multiples() {
        // 70x33 straddles the 32-wide tile in both dimensions.
        let a = rand_matrix(70, 33, 5);
        let t = a.transpose();
        assert_eq!(t.shape(), (33, 70));
        for r in 0..a.rows() {
            for c in 0..a.cols() {
                assert_eq!(t.get(c, r).to_bits(), a.get(r, c).to_bits());
            }
        }
    }

    #[test]
    fn max_min_ignore_nan() {
        let a = Matrix::row_vector(&[1.0, f64::NAN, -3.0, 2.0]);
        assert_eq!(a.max(), 2.0);
        assert_eq!(a.min(), -3.0);
        // The guard for callers that care about NaNs:
        assert!(a.has_non_finite());
    }

    #[test]
    fn max_min_of_all_nan_behave_like_empty() {
        let a = Matrix::row_vector(&[f64::NAN, f64::NAN]);
        assert_eq!(a.max(), f64::NEG_INFINITY);
        assert_eq!(a.min(), f64::INFINITY);
        let empty = Matrix::zeros(0, 0);
        assert_eq!(empty.max(), f64::NEG_INFINITY);
        assert_eq!(empty.min(), f64::INFINITY);
    }

    #[test]
    fn zero_inner_dimension_products_are_zero_matrices() {
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 4);
        assert_eq!(a.matmul(&b), Matrix::zeros(3, 4));
        let c = Matrix::zeros(5, 0);
        assert_eq!(a.matmul_transposed(&c), Matrix::zeros(3, 5));
        let d = Matrix::zeros(0, 2);
        assert_eq!(b.transposed_matmul(&d), Matrix::zeros(4, 2));
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn add_shape_mismatch_panics() {
        let _ = Matrix::zeros(2, 2).add(&Matrix::zeros(2, 3));
    }

    #[test]
    fn serde_round_trip() {
        let a = Matrix::from_rows(&[vec![1.5, -2.5], vec![0.0, 9.0]]);
        let json = serde_json_like(&a);
        assert!(json.contains("1.5"));
    }

    // serde_json is not a dependency; just check Serialize is wired by using
    // the Debug representation as a stand-in round trip driver.
    fn serde_json_like(m: &Matrix) -> String {
        format!("{m:?}")
    }
}
