//! Motion-prior transition model over the RP grid.
//!
//! Reference points are laid out along a serpentine survey path
//! (`calloc_sim::Building` numbers them by arc length), so physical
//! adjacency is index adjacency: a walker at RP `i` can only reach RPs
//! within `speed × sample_period` metres of grid arc length in one tick.
//! The transition matrix encodes exactly the same motion grammar the
//! simulator walks — dwell mass on the diagonal, the remaining mass
//! split uniformly over the reachable offsets in both directions,
//! reflecting off the ends of the path like the walk itself does.

use calloc_sim::{Building, MotionConfig};
use calloc_tensor::Matrix;

/// Probability floor mixed into every transition so that no state is ever
/// unreachable; keeps the forward filter well-posed when the localizer
/// briefly disagrees with the motion model.
const TRANSITION_FLOOR: f64 = 1e-6;

/// A row-stochastic RP-to-RP transition matrix derived from a
/// [`MotionConfig`] motion prior.
///
/// Row `i` is the distribution over the walker's next RP given it is at
/// RP `i` now. Rows sum to exactly the post-normalization value of 1
/// (up to floating point), every entry is strictly positive, and the
/// construction is pure arithmetic over the config — bit-identical for
/// equal inputs regardless of thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionModel {
    probs: Matrix,
}

impl TransitionModel {
    /// Builds the transition model for `building`'s RP grid under the
    /// given motion prior.
    pub fn from_building(building: &Building, motion: &MotionConfig) -> Self {
        Self::from_motion(building.num_rps(), motion)
    }

    /// Builds the transition model for a serpentine path of `num_states`
    /// RPs. `num_states` must be at least 1.
    pub fn from_motion(num_states: usize, motion: &MotionConfig) -> Self {
        assert!(num_states > 0, "transition model needs at least one RP");
        let n = num_states;
        // Maximum arc-length step (in RP indices) the walker can take in
        // one sample period; moving walkers always reach at least the
        // neighboring RP.
        let max_step = (motion.speed_mps * motion.sample_period_s).ceil().max(1.0) as usize;
        let stay = motion.dwell_prob.clamp(0.0, 1.0);
        let move_mass = (1.0 - stay) / (2 * max_step) as f64;

        let mut probs = Matrix::zeros(n, n);
        for i in 0..n {
            probs.set(i, i, probs.get(i, i) + stay);
            for step in 1..=max_step {
                for dir in [-1i64, 1] {
                    let j = reflect(i as i64 + dir * step as i64, n);
                    probs.set(i, j, probs.get(i, j) + move_mass);
                }
            }
            // Floor + renormalize the row so every state stays reachable.
            let mut sum = 0.0;
            for j in 0..n {
                let p = probs.get(i, j) + TRANSITION_FLOOR;
                probs.set(i, j, p);
                sum += p;
            }
            for j in 0..n {
                probs.set(i, j, probs.get(i, j) / sum);
            }
        }
        TransitionModel { probs }
    }

    /// Number of RP states.
    pub fn num_states(&self) -> usize {
        self.probs.rows()
    }

    /// The full row-stochastic matrix.
    pub fn probs(&self) -> &Matrix {
        &self.probs
    }

    /// Transition probability from RP `from` to RP `to`.
    pub fn prob(&self, from: usize, to: usize) -> f64 {
        self.probs.get(from, to)
    }
}

/// Reflects an index off the closed interval `[0, n - 1]`, mirroring the
/// boundary handling of `MotionModel::walk`.
fn reflect(index: i64, n: usize) -> usize {
    let max = n as i64 - 1;
    if max == 0 {
        return 0;
    }
    let period = 2 * max;
    let mut k = index.rem_euclid(period);
    if k > max {
        k = period - k;
    }
    k as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_stochastic_and_strictly_positive() {
        let motion = MotionConfig::paper();
        for n in [1usize, 2, 5, 24] {
            let model = TransitionModel::from_motion(n, &motion);
            assert_eq!(model.num_states(), n);
            for i in 0..n {
                let sum: f64 = (0..n).map(|j| model.prob(i, j)).sum();
                assert!((sum - 1.0).abs() < 1e-12, "row {i} sums to {sum}");
                for j in 0..n {
                    assert!(model.prob(i, j) > 0.0, "zero mass at ({i}, {j})");
                }
            }
        }
    }

    #[test]
    fn dwell_mass_dominates_the_diagonal() {
        let motion = MotionConfig {
            dwell_prob: 0.6,
            ..MotionConfig::paper()
        };
        let model = TransitionModel::from_motion(12, &motion);
        for i in 0..12 {
            let diag = model.prob(i, i);
            assert!(diag > 0.5, "diagonal {i} lost its dwell mass: {diag}");
        }
    }

    #[test]
    fn faster_walkers_reach_further() {
        let slow = TransitionModel::from_motion(
            20,
            &MotionConfig {
                speed_mps: 0.5,
                ..MotionConfig::paper()
            },
        );
        let fast = TransitionModel::from_motion(
            20,
            &MotionConfig {
                speed_mps: 3.0,
                ..MotionConfig::paper()
            },
        );
        // A 3 m/s walker spreads mass over offsets a 0.5 m/s walker only
        // sees through the smoothing floor.
        assert!(fast.prob(10, 13) > 100.0 * slow.prob(10, 13));
    }

    #[test]
    fn boundaries_reflect_like_the_walk() {
        let motion = MotionConfig::paper();
        let model = TransitionModel::from_motion(6, &motion);
        // At RP 0 both directions land on RP 1 (reflection), so the edge
        // neighbor holds roughly double the interior one-sided mass (up
        // to the smoothing floor's renormalization).
        let edge = model.prob(0, 1);
        let interior = model.prob(3, 4);
        assert!(
            (edge - 2.0 * interior).abs() < 1e-4,
            "edge {edge} vs interior {interior}"
        );
    }

    #[test]
    fn reflect_maps_out_of_range_indices_into_bounds() {
        assert_eq!(reflect(-1, 5), 1);
        assert_eq!(reflect(-2, 5), 2);
        assert_eq!(reflect(4, 5), 4);
        assert_eq!(reflect(5, 5), 3);
        assert_eq!(reflect(8, 5), 0);
        assert_eq!(reflect(3, 1), 0);
    }
}
