//! Trajectory sweep runner: error vs path length × environment level ×
//! member, over a [`TrajectorySet`].
//!
//! For every `(cell, member)` pair the runner scores three estimators —
//! the localizer's raw per-sample predictions, the forward-filtered MAP
//! path, and the sliding-window-smoothed MAP path — in metres against
//! the walker's true positions. Jobs fan out over `calloc_tensor::par`
//! in a fixed cell-major order and are merged by index, so the table
//! (and its CSV rendering) is bit-identical at every `CALLOC_THREADS`.

use crate::filter::{emission_probs, map_estimates, smooth, ForwardFilter, TrackConfig};
use crate::transition::TransitionModel;
use calloc_nn::Localizer;
use calloc_sim::{Building, Trajectory, TrajectorySet};
use calloc_tensor::par;

/// One row of the trajectory sweep: a single estimator's error on a
/// single `(cell, member)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryRecord {
    /// Plan index of the trajectory cell this row was scored on.
    pub plan_index: usize,
    /// Human-readable building name.
    pub building: String,
    /// Member (localizer) name.
    pub member: String,
    /// Environment-level label (`"baseline"`, `"env x2"`, …).
    pub env: String,
    /// Number of sample ticks in the trajectory.
    pub path_steps: usize,
    /// Trajectory seed.
    pub seed: u64,
    /// Estimator: `"raw"`, `"filtered"` or `"smoothed"`.
    pub mode: &'static str,
    /// Mean localization error over the trajectory, in metres.
    pub mean_error_m: f64,
    /// Error at the final tick, in metres.
    pub final_error_m: f64,
}

/// The full trajectory sweep result, in deterministic cell-major order
/// (cell, then member, then raw/filtered/smoothed).
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryTable {
    rows: Vec<TrajectoryRecord>,
}

impl TrajectoryTable {
    /// All rows, in deterministic order.
    pub fn rows(&self) -> &[TrajectoryRecord] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Deterministic CSV rendering: fixed header, one row per record,
    /// errors formatted to four decimal places (the golden-tier format —
    /// byte-identical for bit-identical tables).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "plan_index,building,member,env,path_steps,seed,mode,mean_error_m,final_error_m\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{:.4},{:.4}\n",
                r.plan_index,
                r.building,
                r.member,
                r.env,
                r.path_steps,
                r.seed,
                r.mode,
                r.mean_error_m,
                r.final_error_m,
            ));
        }
        out
    }
}

/// Per-tick localization error in metres: the Euclidean distance between
/// the predicted RP's surveyed position and the walker's true position.
pub fn track_errors_m(
    predicted: &[usize],
    trajectory: &Trajectory,
    building: &Building,
) -> Vec<f64> {
    assert_eq!(
        predicted.len(),
        trajectory.len(),
        "one prediction per trajectory tick"
    );
    let rps = building.rp_positions();
    predicted
        .iter()
        .zip(&trajectory.positions_m)
        .map(|(&rp, &(x, y))| {
            let (px, py) = rps[rp];
            ((px - x).powi(2) + (py - y).powi(2)).sqrt()
        })
        .collect()
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Runs the trajectory sweep: every cell of `set` scored by every member
/// trained for that cell's building.
///
/// `members` is indexed by the plan's building axis — `members[b]` holds
/// the `(name, localizer)` pairs for `set.plan().buildings()[b]`, each
/// trained on fingerprints from that building realization. Rows come
/// back cell-major (plan order), then member order, then the fixed
/// raw/filtered/smoothed estimator order; the fan-out over
/// `(cell, member)` jobs is chunked contiguously and merged by index, so
/// the result is bit-identical at every thread count.
pub fn run_trajectory_sweep(
    set: &TrajectorySet,
    members: &[Vec<(&str, &dyn Localizer)>],
    config: &TrackConfig,
) -> TrajectoryTable {
    assert_eq!(
        members.len(),
        set.plan().buildings().len(),
        "one member list per building axis entry"
    );
    let jobs: Vec<(usize, usize)> = (0..set.len())
        .flat_map(|cell| {
            let building = set.cell(cell).building;
            (0..members[building].len()).map(move |m| (cell, m))
        })
        .collect();

    let rows: Vec<TrajectoryRecord> = par::par_chunks(jobs.len(), 1, |range| {
        range
            .flat_map(|job| {
                let (cell_index, member_index) = jobs[job];
                score_cell_member(set, members, config, cell_index, member_index)
            })
            .collect::<Vec<TrajectoryRecord>>()
    })
    .into_iter()
    .flatten()
    .collect();

    TrajectoryTable { rows }
}

/// Scores one `(cell, member)` pair: three rows, one per estimator.
fn score_cell_member(
    set: &TrajectorySet,
    members: &[Vec<(&str, &dyn Localizer)>],
    config: &TrackConfig,
    cell_index: usize,
    member_index: usize,
) -> Vec<TrajectoryRecord> {
    let cell = set.cell(cell_index);
    let building = set.building_for(cell_index);
    let trajectory = set.trajectory(cell_index);
    let (name, localizer) = members[cell.building][member_index];
    let num_rps = building.num_rps();

    let raw = localizer.predict_classes(&trajectory.observations);
    let emissions = emission_probs(
        localizer,
        &trajectory.observations,
        num_rps,
        config.emission_floor,
    );
    let transition = TransitionModel::from_building(building, &set.plan().spec().motion);
    let posteriors = ForwardFilter::new(&transition).posteriors(&emissions);
    let filtered = map_estimates(&posteriors);
    let smoothed = map_estimates(&smooth(&posteriors, config.smoothing_half_window));

    [("raw", raw), ("filtered", filtered), ("smoothed", smoothed)]
        .into_iter()
        .map(|(mode, predicted)| {
            let errors = track_errors_m(&predicted, trajectory, building);
            TrajectoryRecord {
                plan_index: cell.plan_index,
                building: set.building_name(cell_index).to_string(),
                member: name.to_string(),
                env: set.env_for(cell_index).label(),
                path_steps: trajectory.len(),
                seed: set.seed_for(cell_index),
                mode,
                mean_error_m: mean(&errors),
                final_error_m: errors.last().copied().unwrap_or(0.0),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use calloc_sim::{BuildingId, BuildingSpec, CollectionConfig, MotionConfig, TrajectorySpec};
    use calloc_tensor::Matrix;

    /// A localizer that always predicts RP 0 — enough structure to pin
    /// table shape, ordering and CSV format without training anything.
    struct Origin;

    impl Localizer for Origin {
        fn name(&self) -> &str {
            "origin"
        }

        fn predict_classes(&self, x: &Matrix) -> Vec<usize> {
            vec![0; x.rows()]
        }
    }

    /// A localizer that predicts the tick index modulo the class count —
    /// distinct from [`Origin`] so member ordering is observable.
    struct TickMod(usize);

    impl Localizer for TickMod {
        fn name(&self) -> &str {
            "tickmod"
        }

        fn predict_classes(&self, x: &Matrix) -> Vec<usize> {
            (0..x.rows()).map(|t| t % self.0).collect()
        }
    }

    fn tiny_set() -> TrajectorySet {
        let spec = TrajectorySpec::from_base(
            vec![BuildingSpec {
                path_length_m: 9,
                num_aps: 6,
                ..BuildingId::B1.spec()
            }],
            3,
            MotionConfig::paper(),
            CollectionConfig::small(),
            vec![5, 8],
            vec![11],
        );
        spec.generate()
    }

    #[test]
    fn sweep_emits_three_modes_per_cell_and_member_in_plan_order() {
        let set = tiny_set();
        let origin = Origin;
        let num_rps = set.plan().buildings()[0].num_rps();
        let tickmod = TickMod(num_rps);
        let members: Vec<Vec<(&str, &dyn Localizer)>> =
            vec![vec![("Origin", &origin), ("TickMod", &tickmod)]];
        let table = run_trajectory_sweep(&set, &members, &TrackConfig::paper());

        assert_eq!(table.len(), set.len() * 2 * 3);
        let rows = table.rows();
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.plan_index, i / 6, "cell-major order");
            let member = if (i / 3) % 2 == 0 {
                "Origin"
            } else {
                "TickMod"
            };
            assert_eq!(row.member, member, "member order at row {i}");
            let mode = ["raw", "filtered", "smoothed"][i % 3];
            assert_eq!(row.mode, mode, "estimator order at row {i}");
            assert!(row.mean_error_m >= 0.0 && row.final_error_m >= 0.0);
        }
        assert_eq!(rows[0].path_steps, 5);
        assert_eq!(rows[6].path_steps, 8);
    }

    #[test]
    fn csv_rendering_is_well_formed() {
        let set = tiny_set();
        let origin = Origin;
        let members: Vec<Vec<(&str, &dyn Localizer)>> = vec![vec![("Origin", &origin)]];
        let table = run_trajectory_sweep(&set, &members, &TrackConfig::paper());
        let csv = table.to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "plan_index,building,member,env,path_steps,seed,mode,mean_error_m,final_error_m"
        );
        let body: Vec<&str> = lines.collect();
        assert_eq!(body.len(), table.len());
        for line in body {
            assert_eq!(line.split(',').count(), 9, "bad row: {line}");
        }
    }

    #[test]
    fn errors_are_euclidean_distances_to_the_predicted_rp() {
        let set = tiny_set();
        let building = set.building_for(0);
        let trajectory = set.trajectory(0);
        let predicted = vec![0; trajectory.len()];
        let errors = track_errors_m(&predicted, trajectory, building);
        let (px, py) = building.rp_positions()[0];
        for (t, err) in errors.iter().enumerate() {
            let (x, y) = trajectory.positions_m[t];
            let expected = ((px - x).powi(2) + (py - y).powi(2)).sqrt();
            assert_eq!(err.to_bits(), expected.to_bits(), "tick {t}");
        }
    }
}
