//! HMM forward filtering and sliding-window smoothing over localizer
//! outputs.
//!
//! The filter contract: given per-sample emission probabilities (one row
//! per trajectory tick, one column per RP) and a row-stochastic
//! [`TransitionModel`], the forward filter maintains a belief over RPs —
//! predict through the transition, multiply by the emission row,
//! renormalize. The smoother then averages filtered posteriors over a
//! centered window. Both are pure `f64` loops: bit-identical outputs for
//! equal inputs at any thread count.

use crate::transition::TransitionModel;
use calloc_nn::Localizer;
use calloc_tensor::Matrix;

/// Knobs of the sequential-inference stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackConfig {
    /// Half-width of the centered smoothing window: posterior rows
    /// `t - w ..= t + w` (clamped to the trajectory) are averaged.
    /// `0` makes smoothing the identity.
    pub smoothing_half_window: usize,
    /// Probability floor mixed into every emission row so a confidently
    /// wrong localizer can never zero out the true state.
    pub emission_floor: f64,
}

impl TrackConfig {
    /// The configuration used by the figures: a five-tick centered
    /// window and a 1e-3 emission floor.
    pub fn paper() -> Self {
        TrackConfig {
            smoothing_half_window: 2,
            emission_floor: 1e-3,
        }
    }
}

impl Default for TrackConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Per-sample emission probabilities for a localizer over a batch of
/// observations; shape `ticks x num_classes`, rows sum to 1.
///
/// Differentiable localizers whose head matches `num_classes` emit their
/// softmaxed logits; everything else (e.g. KNN) emits a floored one-hot
/// of its hard prediction. Both paths mix in `floor` mass per class and
/// renormalize, so every row is strictly positive.
pub fn emission_probs(
    model: &dyn Localizer,
    observations: &Matrix,
    num_classes: usize,
    floor: f64,
) -> Matrix {
    let ticks = observations.rows();
    let soft = model
        .as_differentiable()
        .filter(|d| d.num_classes() == num_classes)
        .map(|d| d.logits(observations).softmax_rows());
    let raw = match soft {
        Some(p) => p,
        None => {
            let classes = model.predict_classes(observations);
            Matrix::from_fn(
                ticks,
                num_classes,
                |t, c| {
                    if classes[t] == c {
                        1.0
                    } else {
                        0.0
                    }
                },
            )
        }
    };
    let norm = 1.0 + num_classes as f64 * floor;
    Matrix::from_fn(ticks, num_classes, |t, c| (raw.get(t, c) + floor) / norm)
}

/// The HMM-style forward filter: maintains a belief over RPs as each
/// trajectory tick's emission row arrives.
#[derive(Debug, Clone, Copy)]
pub struct ForwardFilter<'a> {
    transition: &'a TransitionModel,
}

impl<'a> ForwardFilter<'a> {
    /// A filter over the given transition model.
    pub fn new(transition: &'a TransitionModel) -> Self {
        ForwardFilter { transition }
    }

    /// Runs the filter over `emissions` (one row per tick, one column
    /// per RP) and returns the filtered posterior per tick, same shape.
    ///
    /// The belief starts uniform, is pushed through the transition
    /// before each tick, multiplied by the tick's emission row, and
    /// renormalized. Emission rows must be strictly positive (as
    /// [`emission_probs`] guarantees), which keeps every normalizer
    /// positive.
    pub fn posteriors(&self, emissions: &Matrix) -> Matrix {
        let n = self.transition.num_states();
        assert_eq!(
            emissions.cols(),
            n,
            "emission columns must match transition states"
        );
        let ticks = emissions.rows();
        let mut out = Matrix::zeros(ticks, n);
        let mut belief = vec![1.0 / n as f64; n];
        let mut predicted = vec![0.0; n];
        for t in 0..ticks {
            for item in predicted.iter_mut() {
                *item = 0.0;
            }
            for (i, &b) in belief.iter().enumerate() {
                for (j, item) in predicted.iter_mut().enumerate() {
                    *item += b * self.transition.prob(i, j);
                }
            }
            let mut sum = 0.0;
            for (j, item) in predicted.iter_mut().enumerate() {
                *item *= emissions.get(t, j);
                sum += *item;
            }
            for (j, item) in predicted.iter_mut().enumerate() {
                let p = *item / sum;
                out.set(t, j, p);
                belief[j] = p;
            }
        }
        out
    }
}

/// Centered sliding-window smoother over filtered posteriors: row `t` of
/// the result is the mean of rows `t - w ..= t + w` (clamped to the
/// matrix), renormalized. `half_window == 0` returns the input
/// unchanged.
pub fn smooth(posteriors: &Matrix, half_window: usize) -> Matrix {
    if half_window == 0 {
        return posteriors.clone();
    }
    let (ticks, n) = posteriors.shape();
    Matrix::from_fn(ticks, n, |t, j| {
        let lo = t.saturating_sub(half_window);
        let hi = (t + half_window).min(ticks.saturating_sub(1));
        let mut sum = 0.0;
        for row in lo..=hi {
            sum += posteriors.get(row, j);
        }
        sum / (hi - lo + 1) as f64
    })
}

/// Maximum-a-posteriori RP per tick: the argmax of each posterior row.
pub fn map_estimates(posteriors: &Matrix) -> Vec<usize> {
    posteriors.argmax_rows()
}

#[cfg(test)]
mod tests {
    use super::*;
    use calloc_sim::MotionConfig;

    /// A test localizer that always predicts a fixed sequence of labels.
    struct Scripted(Vec<usize>);

    impl Localizer for Scripted {
        fn name(&self) -> &str {
            "scripted"
        }

        fn predict_classes(&self, x: &Matrix) -> Vec<usize> {
            (0..x.rows()).map(|t| self.0[t % self.0.len()]).collect()
        }
    }

    fn slow_motion() -> MotionConfig {
        MotionConfig {
            speed_mps: 0.8,
            ..MotionConfig::paper()
        }
    }

    #[test]
    fn emission_rows_are_strictly_positive_and_normalized() {
        let model = Scripted(vec![0, 2, 1]);
        let x = Matrix::zeros(3, 4);
        let e = emission_probs(&model, &x, 3, 1e-3);
        assert_eq!(e.shape(), (3, 3));
        for t in 0..3 {
            let sum: f64 = (0..3).map(|c| e.get(t, c)).sum();
            assert!((sum - 1.0).abs() < 1e-12);
            for c in 0..3 {
                assert!(e.get(t, c) > 0.0);
            }
        }
        // The hard prediction keeps almost all of the mass.
        assert!(e.get(0, 0) > 0.9);
        assert!(e.get(1, 2) > 0.9);
    }

    #[test]
    fn filter_posteriors_are_distributions() {
        let transition = TransitionModel::from_motion(5, &slow_motion());
        let model = Scripted(vec![0, 1, 2, 3, 4, 4, 3]);
        let x = Matrix::zeros(7, 2);
        let e = emission_probs(&model, &x, 5, 1e-3);
        let post = ForwardFilter::new(&transition).posteriors(&e);
        assert_eq!(post.shape(), (7, 5));
        for t in 0..7 {
            let sum: f64 = (0..5).map(|c| post.get(t, c)).sum();
            assert!((sum - 1.0).abs() < 1e-12, "tick {t} sums to {sum}");
        }
    }

    #[test]
    fn filter_suppresses_physically_impossible_jumps() {
        // A walker cannot teleport from RP 0 to RP 9 in one tick; the
        // filter should override the single outlier prediction.
        let transition = TransitionModel::from_motion(10, &slow_motion());
        let model = Scripted(vec![0, 0, 9, 1, 1, 2]);
        let x = Matrix::zeros(6, 2);
        let e = emission_probs(&model, &x, 10, 1e-3);
        let post = ForwardFilter::new(&transition).posteriors(&e);
        let map = map_estimates(&post);
        assert_ne!(map[2], 9, "filter accepted a teleport");
        assert!(map[2] <= 2, "filter should stay near the walk: {map:?}");
    }

    #[test]
    fn smoothing_with_zero_window_is_the_identity() {
        let m = Matrix::from_fn(4, 3, |t, c| ((t + 1) * (c + 2)) as f64 / 20.0);
        let s = smooth(&m, 0);
        assert_eq!(
            m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            s.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn smoothing_averages_neighboring_rows() {
        let m = Matrix::from_fn(3, 1, |t, _| t as f64);
        let s = smooth(&m, 1);
        assert!((s.get(0, 0) - 0.5).abs() < 1e-12);
        assert!((s.get(1, 0) - 1.0).abs() < 1e-12);
        assert!((s.get(2, 0) - 1.5).abs() < 1e-12);
    }
}
