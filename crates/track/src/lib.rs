//! Sequential inference over trajectories for the CALLOC reproduction.
//!
//! The batch evaluation harness scores localizers one fingerprint at a
//! time; this crate adds the *temporal* layer on top: a walking user
//! produces a [`calloc_sim::Trajectory`] of correlated fingerprints, and
//! sequential inference exploits that correlation to beat per-sample
//! prediction. Three estimators are compared:
//!
//! * **raw** — the localizer's per-sample `predict_classes`, no temporal
//!   model (the batch baseline);
//! * **filtered** — an HMM-style forward filter ([`ForwardFilter`])
//!   whose transition model ([`TransitionModel`]) is derived from the
//!   motion prior and the serpentine RP-grid adjacency;
//! * **smoothed** — a centered sliding-window average of the filtered
//!   posteriors ([`smooth`]), trading a little latency for accuracy.
//!
//! Everything here is pure `f64` arithmetic over deterministic inputs:
//! the sweep runner fans out over `calloc_tensor::par` in contiguous
//! index chunks merged in index order, so every table is bit-identical
//! at every `CALLOC_THREADS` setting — the same contract the scenario
//! and trajectory grids obey.

mod filter;
mod sweep;
mod transition;

pub use filter::{emission_probs, map_estimates, smooth, ForwardFilter, TrackConfig};
pub use sweep::{run_trajectory_sweep, track_errors_m, TrajectoryRecord, TrajectoryTable};
pub use transition::TransitionModel;
